//! # ucsim
//!
//! A from-scratch reproduction of *"Improving the Utilization of
//! Micro-operation Caches in x86 Processors"* (Kotra & Kalamatianos,
//! MICRO 2020): a trace-driven x86 front-end simulator with a complete
//! micro-operation cache model — the paper's baseline design, **CLASP**
//! (cache-line-boundary-agnostic entries) and **compaction**
//! (RAC / PWAC / F-PWAC allocation policies) — plus every substrate the
//! evaluation needs: synthetic x86-like workloads, a TAGE + BTB decoupled
//! fetch unit, a three-level cache hierarchy, and a cycle-level pipeline
//! timing model.
//!
//! This facade crate re-exports the workspace so downstream users depend
//! on one crate:
//!
//! * [`model`] — shared types (addresses, uops, instructions, PWs).
//! * [`isa`] — synthetic x86-like instruction model.
//! * [`trace`] — workload profiles, program synthesis, trace walking.
//! * [`mem`] — caches, replacement policies, memory hierarchy.
//! * [`bpu`] — TAGE, BTB, RAS, prediction-window generation.
//! * [`uopcache`] — the uop cache (baseline, CLASP, compaction).
//! * [`pipeline`] — the simulator and its reports.
//! * [`obs`] — tracing spans and per-stage profiling (no-op unless the
//!   `enabled` feature is on; the serve layer turns it on).
//! * [`serve`] — the HTTP job service (`ucsim-serve`) and its client.
//!
//! # Quickstart
//!
//! ```
//! use ucsim::pipeline::{SimConfig, Simulator};
//! use ucsim::trace::{Program, WorkloadProfile};
//! use ucsim::uopcache::{CompactionPolicy, UopCacheConfig};
//!
//! // Simulate a small workload on the paper's 2K baseline...
//! let profile = WorkloadProfile::quick_test();
//! let program = Program::generate(&profile);
//! let base = Simulator::new(SimConfig::table1().quick()).run(&profile, &program);
//!
//! // ...and with CLASP + F-PWAC compaction.
//! let cfg = SimConfig::table1()
//!     .with_uop_cache(UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2))
//!     .quick();
//! let opt = Simulator::new(cfg).run(&profile, &program);
//! assert!(opt.upc > 0.0 && base.upc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ucsim_bpu as bpu;
pub use ucsim_isa as isa;
pub use ucsim_mem as mem;
pub use ucsim_model as model;
pub use ucsim_obs as obs;
pub use ucsim_pipeline as pipeline;
pub use ucsim_serve as serve;
pub use ucsim_trace as trace;
pub use ucsim_uopcache as uopcache;

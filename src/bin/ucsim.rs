//! `ucsim` — command-line front end for single simulations.
//!
//! ```text
//! ucsim --workload bm-cc --capacity 2048 --compaction fpwac --insts 1000000
//! ucsim client --addr 127.0.0.1:7199 --workload redis
//! ```

use ucsim::mem::ReplacementPolicy;
use ucsim::model::Json;
use ucsim::pipeline::{SimConfig, Simulator};
use ucsim::trace::{Program, WorkloadProfile};
use ucsim::uopcache::{CompactionPolicy, UopCacheConfig};

const USAGE: &str = "\
ucsim — x86 uop cache simulator (MICRO 2020 reproduction)

USAGE:
    ucsim [OPTIONS]
    ucsim client [CLIENT OPTIONS]     submit a job to a ucsim-serve instance
    ucsim client matrix [MATRIX OPTIONS]
                                      submit a capacity x policy sweep plan and
                                      poll it to completion (one connection)
    ucsim client job --id N [--profile|--cancel] [--addr A]
                                      fetch one job's state/result, its
                                      execution profile with --profile, or
                                      cancel it with --cancel
    ucsim client program upload <file> [--addr A]
                                      upload a .asm (ucasm) or .uct trace;
                                      prints the content-addressed ref
    ucsim client program list [--kind asm|trace] [--addr A]
    ucsim client program show <id> [--raw] [--addr A]

OPTIONS:
    --workload <name>      Table II workload (default bm-cc); use --list to see all
    --asm <file>           assemble a ucasm program and simulate it instead
                           of a synthetic Table II workload
    --seed <n>             walk seed for --asm (default: FNV-1a of the
                           file bytes — the program's content address)
    --capacity <uops>      uop cache capacity: 2048/4096/.../65536 (default 2048)
    --clasp                enable CLASP
    --compaction <p>       rac | pwac | fpwac (implies --clasp)
    --max-entries <n>      compacted entries per line, 2 or 3 (default 2)
    --replacement <p>      lru | plru | srrip (default lru)
    --loop-cache <uops>    enable the loop cache with this capacity
    --trace <file>         replay a recorded .uct trace instead of synthesizing
    --insts <n>            measured instructions (default 2000000)
    --warmup <n>           warmup instructions (default 200000)
    --list                 list workloads and exit
    --help                 this text

CLIENT OPTIONS:
    --addr <host:port>     server address (default 127.0.0.1:7199)
    --peer <host:port>     failover address (repeatable): a connect error
                           or 5xx rotates to the next peer instead of
                           retrying the same node
    --workload <name>      workload to submit (default bm-cc): a profile
                           name or an uploaded-program ref
                           (program:<id> / trace:<id>)
    --seed <n>             generation seed (default: the workload's own)
    --insts <n>            measured instructions
    --warmup <n>           warmup instructions
    --background           submit async, print the job id and exit
    --job <id>             poll a background job instead of submitting
    --metrics              fetch /v1/metrics instead of submitting
    --no-retry             fail immediately instead of retrying transient
                           errors and 429 backpressure (default: 3 retries
                           with jittered exponential backoff)

MATRIX OPTIONS:
    --addr <host:port>     server address (default 127.0.0.1:7199)
    --workloads <a,b,...>  workload set (default bm-cc)
    --capacities <n,...>   capacity axis in uops (default: Table I sweep)
    --policies <p,...>     baseline|clasp|rac|pwac|fpwac (default baseline)
    --max-entries <n>      compacted entries per line (default 2)
    --seed <n>             seed for every cell (default: per-workload)
    --insts <n>            measured instructions per cell
    --warmup <n>           warmup instructions per cell
    --tenant <name>        fair-share tenant the plan is charged to
    --priority <n>         scheduling priority within the tenant (higher first)
    --adaptive             refine the capacity axis adaptively: bisect until
                           the UPC knee is bracketed instead of simulating
                           the full cross
    --tolerance <f>        relative knee tolerance for --adaptive (default 0.05)
    --cancel <id>          cancel a running sweep instead of submitting
    --poll-ms <n>          progress poll interval (default 500)
    --no-retry             fail immediately instead of retrying transient
                           errors and 429 backpressure
";

struct Args {
    workload: String,
    trace: Option<String>,
    asm: Option<String>,
    seed: Option<u64>,
    capacity: usize,
    clasp: bool,
    compaction: Option<CompactionPolicy>,
    max_entries: u32,
    replacement: ReplacementPolicy,
    loop_cache: u32,
    insts: u64,
    warmup: u64,
}

fn parse() -> Args {
    let mut a = Args {
        workload: "bm-cc".to_owned(),
        trace: None,
        asm: None,
        seed: None,
        capacity: 2048,
        clasp: false,
        compaction: None,
        max_entries: 2,
        replacement: ReplacementPolicy::Lru,
        loop_cache: 0,
        insts: 2_000_000,
        warmup: 200_000,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let bail = |m: &str| -> ! {
        eprintln!("error: {m}\n\n{USAGE}");
        std::process::exit(2)
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--list" => {
                println!("{:<14} {:<14} target-MPKI", "name", "suite");
                for p in WorkloadProfile::table2() {
                    println!("{:<14} {:<14} {:.2}", p.name, p.suite, p.target_mpki);
                }
                std::process::exit(0);
            }
            "--trace" => {
                i += 1;
                a.trace = Some(
                    argv.get(i)
                        .unwrap_or_else(|| bail("--trace needs a path"))
                        .clone(),
                );
            }
            "--asm" => {
                i += 1;
                a.asm = Some(
                    argv.get(i)
                        .unwrap_or_else(|| bail("--asm needs a path"))
                        .clone(),
                );
            }
            "--seed" => {
                i += 1;
                a.seed = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| bail("--seed needs a number")),
                );
            }
            "--workload" => {
                i += 1;
                a.workload = argv
                    .get(i)
                    .unwrap_or_else(|| bail("--workload needs a name"))
                    .clone();
            }
            "--capacity" => {
                i += 1;
                a.capacity = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bail("--capacity needs a uop count"));
            }
            "--clasp" => a.clasp = true,
            "--compaction" => {
                i += 1;
                a.compaction = Some(match argv.get(i).map(String::as_str) {
                    Some("rac") => CompactionPolicy::Rac,
                    Some("pwac") => CompactionPolicy::Pwac,
                    Some("fpwac") => CompactionPolicy::Fpwac,
                    _ => bail("--compaction takes rac|pwac|fpwac"),
                });
            }
            "--max-entries" => {
                i += 1;
                a.max_entries = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bail("--max-entries takes 2 or 3"));
            }
            "--replacement" => {
                i += 1;
                a.replacement = match argv.get(i).map(String::as_str) {
                    Some("lru") => ReplacementPolicy::Lru,
                    Some("plru") => ReplacementPolicy::TreePlru,
                    Some("srrip") => ReplacementPolicy::Srrip,
                    _ => bail("--replacement takes lru|plru|srrip"),
                };
            }
            "--loop-cache" => {
                i += 1;
                a.loop_cache = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bail("--loop-cache needs a uop count"));
            }
            "--insts" => {
                i += 1;
                a.insts = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bail("--insts needs a number"));
            }
            "--warmup" => {
                i += 1;
                a.warmup = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| bail("--warmup needs a number"));
            }
            other => bail(&format!("unknown option {other}")),
        }
        i += 1;
    }
    a
}

/// Prints a non-2xx response — decoding the uniform error envelope
/// (`{"error":{"code","message","retry_after"?}}`) when present — and
/// exits non-zero.
fn print_error_and_exit(resp: &ucsim::serve::HttpResponse) -> ! {
    let text = resp.body_str();
    if let Some(e) = Json::parse(&text).ok().as_ref().and_then(|v| {
        v.get("error").map(|e| {
            (
                e.get("code").cloned(),
                e.get("message").cloned(),
                e.get("retry_after").cloned(),
            )
        })
    }) {
        let (code, message, retry) = e;
        let code = code.as_ref().and_then(Json::as_str).unwrap_or("unknown");
        let message = message.as_ref().and_then(Json::as_str).unwrap_or("");
        eprintln!("server answered {} [{code}]: {message}", resp.status);
        if let Some(secs) = retry.as_ref().and_then(Json::as_u64) {
            eprintln!("(retry after {secs}s)");
        }
    } else {
        eprintln!("server answered {}:\n{text}", resp.status);
    }
    std::process::exit(1);
}

fn comma_list(v: &str) -> Vec<String> {
    v.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .collect()
}

/// The `ucsim client matrix` subcommand: POST a sweep, then poll it to
/// completion on the same kept-alive connection and print the aggregate.
fn client_matrix(argv: &[String]) {
    let mut addr = "127.0.0.1:7199".to_owned();
    let mut workloads = vec!["bm-cc".to_owned()];
    let mut capacities: Option<Vec<u64>> = None;
    let mut policies: Option<Vec<String>> = None;
    let mut max_entries: Option<u64> = None;
    let mut seed: Option<u64> = None;
    let mut insts: Option<u64> = None;
    let mut warmup: Option<u64> = None;
    let mut poll_ms: u64 = 500;
    let mut no_retry = false;
    let mut tenant: Option<String> = None;
    let mut priority: Option<u64> = None;
    let mut adaptive = false;
    let mut tolerance: Option<f64> = None;
    let mut cancel_id: Option<u64> = None;
    let bail = |m: &str| -> ! {
        eprintln!("error: {m}\n\n{USAGE}");
        std::process::exit(2)
    };
    let mut i = 0;
    while i < argv.len() {
        let need = |i: usize| -> &String {
            argv.get(i + 1)
                .unwrap_or_else(|| bail(&format!("{} needs a value", argv[i])))
        };
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--addr" => {
                addr = need(i).clone();
                i += 1;
            }
            "--tenant" => {
                tenant = Some(need(i).clone());
                i += 1;
            }
            "--priority" => {
                priority = Some(
                    need(i)
                        .parse()
                        .unwrap_or_else(|_| bail("--priority needs a number")),
                );
                i += 1;
            }
            "--adaptive" => adaptive = true,
            "--tolerance" => {
                tolerance = Some(
                    need(i)
                        .parse()
                        .unwrap_or_else(|_| bail("--tolerance needs a number in [0,1)")),
                );
                i += 1;
            }
            "--cancel" => {
                cancel_id = Some(
                    need(i)
                        .parse()
                        .unwrap_or_else(|_| bail("--cancel needs a sweep id")),
                );
                i += 1;
            }
            "--workloads" => {
                workloads = comma_list(need(i));
                i += 1;
            }
            "--capacities" => {
                capacities = Some(
                    comma_list(need(i))
                        .iter()
                        .map(|s| {
                            s.parse()
                                .unwrap_or_else(|_| bail("--capacities takes uop counts"))
                        })
                        .collect(),
                );
                i += 1;
            }
            "--policies" => {
                policies = Some(comma_list(need(i)));
                i += 1;
            }
            "--max-entries" => {
                max_entries = Some(
                    need(i)
                        .parse()
                        .unwrap_or_else(|_| bail("--max-entries takes a number")),
                );
                i += 1;
            }
            "--seed" => {
                seed = Some(
                    need(i)
                        .parse()
                        .unwrap_or_else(|_| bail("--seed needs a number")),
                );
                i += 1;
            }
            "--insts" => {
                insts = Some(
                    need(i)
                        .parse()
                        .unwrap_or_else(|_| bail("--insts needs a number")),
                );
                i += 1;
            }
            "--warmup" => {
                warmup = Some(
                    need(i)
                        .parse()
                        .unwrap_or_else(|_| bail("--warmup needs a number")),
                );
                i += 1;
            }
            "--poll-ms" => {
                poll_ms = need(i)
                    .parse()
                    .unwrap_or_else(|_| bail("--poll-ms needs a number"));
                i += 1;
            }
            "--no-retry" => no_retry = true,
            other => bail(&format!("unknown matrix option {other}")),
        }
        i += 1;
    }

    if let Some(id) = cancel_id {
        let resp = ucsim::serve::request(&addr, "DELETE", &format!("/v1/matrix/{id}"), b"")
            .unwrap_or_else(|e| {
                eprintln!("cannot reach {addr}: {e}");
                std::process::exit(1);
            });
        // A successful cancel answers with the standard error envelope
        // carrying the stable `cancelled` code.
        let v = Json::parse(&resp.body_str()).unwrap_or(Json::Null);
        let code = v
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .unwrap_or("?");
        if code == "cancelled" {
            let msg = v
                .get("error")
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or("");
            eprintln!("{msg}");
            return;
        }
        print_error_and_exit(&resp);
    }

    let mut fields = vec![(
        "workloads".to_owned(),
        Json::Arr(workloads.into_iter().map(Json::Str).collect()),
    )];
    if let Some(caps) = capacities {
        fields.push((
            "capacities".to_owned(),
            Json::Arr(caps.into_iter().map(Json::Uint).collect()),
        ));
    }
    if let Some(ps) = policies {
        fields.push((
            "policies".to_owned(),
            Json::Arr(ps.into_iter().map(Json::Str).collect()),
        ));
    }
    if let Some(n) = max_entries {
        fields.push(("max_entries".to_owned(), Json::Uint(n)));
    }
    if let Some(s) = seed {
        fields.push(("seed".to_owned(), Json::Uint(s)));
    }
    if let Some(w) = warmup {
        fields.push(("warmup".to_owned(), Json::Uint(w)));
    }
    if let Some(n) = insts {
        fields.push(("insts".to_owned(), Json::Uint(n)));
    }
    if let Some(t) = tenant {
        fields.push(("tenant".to_owned(), Json::Str(t)));
    }
    if let Some(p) = priority {
        fields.push(("priority".to_owned(), Json::Uint(p)));
    }
    if adaptive {
        let mut inner = vec![("axis".to_owned(), Json::Str("capacity".to_owned()))];
        if let Some(t) = tolerance {
            inner.push(("tolerance".to_owned(), Json::Float(t)));
        }
        fields.push((
            "mode".to_owned(),
            Json::Obj(vec![("adaptive".to_owned(), Json::Obj(inner))]),
        ));
    }
    let body = Json::Obj(fields).to_string().into_bytes();

    let policy = if no_retry {
        ucsim::serve::RetryPolicy::none()
    } else {
        ucsim::serve::RetryPolicy::default()
    };
    let mut client = ucsim::serve::Client::with_retry(&addr, policy);
    let cannot = |e: std::io::Error| -> ! {
        eprintln!("cannot reach {addr}: {e}");
        std::process::exit(1)
    };
    let resp = client
        .request_retrying("POST", "/v1/matrix", &body)
        .unwrap_or_else(|e| cannot(e));
    if resp.status != 202 {
        print_error_and_exit(&resp);
    }
    let accepted = Json::parse(&resp.body_str()).unwrap_or(Json::Null);
    let Some(id) = accepted.get("id").and_then(Json::as_u64) else {
        eprintln!("malformed accept response: {}", resp.body_str());
        std::process::exit(1);
    };
    let planned = accepted.get("planned").and_then(Json::as_u64).unwrap_or(0);
    eprintln!("sweep {id} accepted: {planned} cells planned");

    let path = format!("/v1/matrix/{id}");
    let mut last_done = u64::MAX;
    loop {
        let resp = client
            .request_retrying("GET", &path, b"")
            .unwrap_or_else(|e| cannot(e));
        if resp.status != 200 {
            print_error_and_exit(&resp);
        }
        let text = resp.body_str();
        let v = Json::parse(&text).unwrap_or(Json::Null);
        let state = v.get("state").and_then(Json::as_str).unwrap_or("?");
        let done = v.get("done").and_then(Json::as_u64).unwrap_or(0);
        // Adaptive plans grow: report against the current planned count.
        let planned = v.get("planned").and_then(Json::as_u64).unwrap_or(planned);
        if done != last_done {
            eprintln!("  {done}/{planned} cells done");
            last_done = done;
        }
        match state {
            "done" => {
                let skipped = v
                    .get("skipped_from_store")
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                let simulated = v.get("simulated").and_then(Json::as_u64).unwrap_or(0);
                eprintln!("sweep done: {simulated} cells simulated, {skipped} resolved from store");
                let pretty = v
                    .get("report")
                    .map_or_else(|| text.clone(), Json::to_pretty);
                println!("{pretty}");
                return;
            }
            "partial" | "failed" => {
                let failed = v.get("failed").and_then(Json::as_u64).unwrap_or(0);
                eprintln!("sweep {state}: {failed}/{planned} cells failed");
                if let Some(cells) = v.get("cells").and_then(Json::as_arr) {
                    for c in cells {
                        if let Some(err) = c.get("error") {
                            let label = c.get("label").and_then(Json::as_str).unwrap_or("?");
                            let code = err.get("code").and_then(Json::as_str).unwrap_or("unknown");
                            let msg = err.get("message").and_then(Json::as_str).unwrap_or("");
                            eprintln!("  {label}: [{code}] {msg}");
                        }
                    }
                }
                // A partial sweep still aggregated its surviving cells:
                // print that table, but exit non-zero so scripts notice.
                if let Some(agg) = v.get("report") {
                    println!("{}", agg.to_pretty());
                }
                std::process::exit(1);
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(poll_ms)),
        }
    }
}

/// The `ucsim client job` subcommand: fetch one job by id — its
/// state/result envelope, its execution profile with `--profile` — or
/// cancel it with `--cancel`.
fn client_job(argv: &[String]) {
    let mut addr = "127.0.0.1:7199".to_owned();
    let mut id: Option<u64> = None;
    let mut profile = false;
    let mut cancel = false;
    let bail = |m: &str| -> ! {
        eprintln!("error: {m}\n\n{USAGE}");
        std::process::exit(2)
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--addr" => {
                i += 1;
                addr = argv
                    .get(i)
                    .unwrap_or_else(|| bail("--addr needs host:port"))
                    .clone();
            }
            "--id" => {
                i += 1;
                id = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| bail("--id needs a job id")),
                );
            }
            "--profile" => profile = true,
            "--cancel" => cancel = true,
            other => bail(&format!("unknown job option {other}")),
        }
        i += 1;
    }
    let Some(id) = id else {
        bail("job needs --id");
    };
    if cancel {
        let resp = ucsim::serve::request(&addr, "DELETE", &format!("/v1/jobs/{id}"), b"")
            .unwrap_or_else(|e| {
                eprintln!("cannot reach {addr}: {e}");
                std::process::exit(1);
            });
        // Mirrors `matrix --cancel`: success is the standard error
        // envelope with the stable `cancelled` code.
        let v = Json::parse(&resp.body_str()).unwrap_or(Json::Null);
        let err = v.get("error");
        if err
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str)
            .is_some_and(|c| c == "cancelled")
        {
            let msg = err
                .and_then(|e| e.get("message"))
                .and_then(Json::as_str)
                .unwrap_or("");
            eprintln!("{msg}");
            return;
        }
        print_error_and_exit(&resp);
    }
    let path = if profile {
        format!("/v1/jobs/{id}/profile")
    } else {
        format!("/v1/jobs/{id}")
    };
    let resp = ucsim::serve::request(&addr, "GET", &path, b"").unwrap_or_else(|e| {
        eprintln!("cannot reach {addr}: {e}");
        std::process::exit(1);
    });
    if resp.status != 200 {
        print_error_and_exit(&resp);
    }
    let text = resp.body_str();
    println!(
        "{}",
        Json::parse(&text).map_or(text.clone(), |j| j.to_pretty())
    );
}

/// The `ucsim client program` subcommand: upload, list, or inspect
/// content-addressed user programs on a running server.
fn client_program(argv: &[String]) {
    let bail = |m: &str| -> ! {
        eprintln!("error: {m}\n\n{USAGE}");
        std::process::exit(2)
    };
    let Some(verb) = argv.first().map(String::as_str) else {
        bail("program needs upload|list|show");
    };
    let mut addr = "127.0.0.1:7199".to_owned();
    let mut kind: Option<String> = None;
    let mut raw = false;
    let mut positional: Vec<String> = Vec::new();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--addr" => {
                i += 1;
                addr = argv
                    .get(i)
                    .unwrap_or_else(|| bail("--addr needs host:port"))
                    .clone();
            }
            "--kind" => {
                i += 1;
                kind = Some(
                    argv.get(i)
                        .unwrap_or_else(|| bail("--kind takes asm|trace"))
                        .clone(),
                );
            }
            "--raw" => raw = true,
            other if !other.starts_with('-') => positional.push(other.to_owned()),
            other => bail(&format!("unknown program option {other}")),
        }
        i += 1;
    }
    let send = |method: &str, path: &str, body: &[u8]| -> ucsim::serve::HttpResponse {
        ucsim::serve::request(&addr, method, path, body).unwrap_or_else(|e| {
            eprintln!("cannot reach {addr}: {e}");
            std::process::exit(1);
        })
    };
    match verb {
        "upload" => {
            let Some(path) = positional.first() else {
                bail("program upload needs a file");
            };
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            });
            let resp = send("POST", "/v1/programs", &bytes);
            if resp.status != 200 && resp.status != 201 {
                print_error_and_exit(&resp);
            }
            let text = resp.body_str();
            let v = Json::parse(&text).unwrap_or(Json::Null);
            if let Some(r) = v.get("ref").and_then(Json::as_str) {
                let created = v.get("created").and_then(Json::as_bool).unwrap_or(false);
                let note = if created { "uploaded" } else { "already known" };
                eprintln!("{note}: {r}");
            }
            println!("{}", v.to_pretty());
        }
        "list" => {
            let path = match &kind {
                Some(k) => format!("/v1/programs?kind={k}"),
                None => "/v1/programs".to_owned(),
            };
            let resp = send("GET", &path, b"");
            if resp.status != 200 {
                print_error_and_exit(&resp);
            }
            let text = resp.body_str();
            println!(
                "{}",
                Json::parse(&text).map_or(text.clone(), |j| j.to_pretty())
            );
        }
        "show" => {
            let Some(id) = positional.first() else {
                bail("program show needs an id");
            };
            // Accept the bare 16-hex id or a full program:/trace: ref.
            let id = id.rsplit(':').next().unwrap_or(id);
            let path = if raw {
                format!("/v1/programs/{id}/raw")
            } else {
                format!("/v1/programs/{id}")
            };
            let resp = send("GET", &path, b"");
            if resp.status != 200 {
                print_error_and_exit(&resp);
            }
            if raw {
                use std::io::Write;
                std::io::stdout().write_all(&resp.body).unwrap_or_else(|e| {
                    eprintln!("cannot write raw program: {e}");
                    std::process::exit(1);
                });
            } else {
                let text = resp.body_str();
                println!(
                    "{}",
                    Json::parse(&text).map_or(text.clone(), |j| j.to_pretty())
                );
            }
        }
        other => bail(&format!("unknown program verb {other} (upload|list|show)")),
    }
}

/// The `ucsim client` subcommand: talk to a running `ucsim-serve`.
fn client_main(argv: &[String]) {
    match argv.first().map(String::as_str) {
        Some("matrix") => return client_matrix(&argv[1..]),
        Some("job") => return client_job(&argv[1..]),
        Some("program") => return client_program(&argv[1..]),
        _ => {}
    }
    let mut addr = "127.0.0.1:7199".to_owned();
    let mut peers: Vec<String> = Vec::new();
    let mut workload = "bm-cc".to_owned();
    let mut seed: Option<u64> = None;
    let mut insts: Option<u64> = None;
    let mut warmup: Option<u64> = None;
    let mut background = false;
    let mut job: Option<u64> = None;
    let mut metrics = false;
    let mut no_retry = false;
    let bail = |m: &str| -> ! {
        eprintln!("error: {m}\n\n{USAGE}");
        std::process::exit(2)
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--addr" => {
                i += 1;
                addr = argv
                    .get(i)
                    .unwrap_or_else(|| bail("--addr needs host:port"))
                    .clone();
            }
            "--peer" => {
                i += 1;
                peers.push(
                    argv.get(i)
                        .unwrap_or_else(|| bail("--peer needs host:port"))
                        .clone(),
                );
            }
            "--workload" => {
                i += 1;
                workload = argv
                    .get(i)
                    .unwrap_or_else(|| bail("--workload needs a name"))
                    .clone();
            }
            "--seed" => {
                i += 1;
                seed = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| bail("--seed needs a number")),
                );
            }
            "--insts" => {
                i += 1;
                insts = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| bail("--insts needs a number")),
                );
            }
            "--warmup" => {
                i += 1;
                warmup = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| bail("--warmup needs a number")),
                );
            }
            "--background" => background = true,
            "--job" => {
                i += 1;
                job = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| bail("--job needs an id")),
                );
            }
            "--metrics" => metrics = true,
            "--no-retry" => no_retry = true,
            other => bail(&format!("unknown client option {other}")),
        }
        i += 1;
    }

    let (method, path, body) = if metrics {
        ("GET", "/v1/metrics".to_owned(), Vec::new())
    } else if let Some(id) = job {
        ("GET", format!("/v1/jobs/{id}"), Vec::new())
    } else {
        let mut fields = vec![("workload".to_owned(), Json::Str(workload))];
        if let Some(s) = seed {
            fields.push(("seed".to_owned(), Json::Uint(s)));
        }
        if let Some(w) = warmup {
            fields.push(("warmup".to_owned(), Json::Uint(w)));
        }
        if let Some(n) = insts {
            fields.push(("insts".to_owned(), Json::Uint(n)));
        }
        if background {
            fields.push(("background".to_owned(), Json::Bool(true)));
        }
        (
            "POST",
            "/v1/sim".to_owned(),
            Json::Obj(fields).to_string().into_bytes(),
        )
    };

    let policy = if no_retry {
        ucsim::serve::RetryPolicy::none()
    } else {
        ucsim::serve::RetryPolicy::default()
    };
    let mut client = ucsim::serve::Client::with_retry(&addr, policy);
    for peer in &peers {
        client.add_peer(peer);
    }
    let resp = client
        .request_retrying(method, &path, &body)
        .unwrap_or_else(|e| {
            eprintln!("cannot reach {addr}: {e}");
            std::process::exit(1);
        });
    if resp.status != 200 && resp.status != 202 {
        print_error_and_exit(&resp);
    }
    let text = resp.body_str();
    println!(
        "{}",
        Json::parse(&text).map_or(text.clone(), |j| j.to_pretty())
    );
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("client") {
        let argv: Vec<String> = std::env::args().skip(2).collect();
        client_main(&argv);
        return;
    }
    let args = parse();

    let mut oc =
        UopCacheConfig::baseline_with_capacity(args.capacity).with_replacement(args.replacement);
    if let Some(policy) = args.compaction {
        oc = oc.with_compaction(policy, args.max_entries);
    } else if args.clasp {
        oc = oc.with_clasp();
    }

    let mut cfg = SimConfig::table1()
        .with_uop_cache(oc)
        .with_insts(args.warmup, args.insts);
    cfg.core.loop_cache_uops = args.loop_cache;

    let t0 = std::time::Instant::now();
    let r = if let Some(path) = &args.asm {
        let bytes = std::fs::read(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(2);
        });
        // The content address is what the server would mint for the same
        // upload; the walk seed defaults to it so `ucsim --asm f.asm` and a
        // served `program:<id>` job replay the exact same stream.
        let hash = ucsim::serve::fnv1a(&bytes);
        let seed = args.seed.unwrap_or(hash);
        let text = String::from_utf8(bytes).unwrap_or_else(|_| {
            eprintln!("cannot parse {path}: not UTF-8 ucasm text");
            std::process::exit(2);
        });
        let asm = ucsim::isa::assemble(&text).unwrap_or_else(|e| {
            eprintln!("cannot assemble {path}: {e}");
            std::process::exit(2);
        });
        let program = ucsim::trace::load_asm(&asm, seed);
        let profile = WorkloadProfile::user_program(seed);
        eprintln!(
            "simulating program:{hash:016x} ({path}) | capacity {} uops | clasp={} compaction={:?} | seed {seed} | {} insts",
            args.capacity, cfg.uop_cache.clasp, cfg.uop_cache.compaction, args.insts
        );
        Simulator::new(cfg).run(&profile, &program)
    } else if let Some(path) = &args.trace {
        let file = std::fs::File::open(path).unwrap_or_else(|e| {
            eprintln!("cannot open {path}: {e}");
            std::process::exit(2);
        });
        let trace = ucsim::trace::Trace::load(file).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        });
        eprintln!(
            "replaying {path} ({} insts) | capacity {} uops",
            trace.len(),
            args.capacity
        );
        Simulator::new(cfg).run_stream(path, trace.iter())
    } else {
        let Some(profile) = WorkloadProfile::by_name(&args.workload) else {
            eprintln!("unknown workload '{}' (try --list)", args.workload);
            std::process::exit(2);
        };
        eprintln!(
            "simulating {} | capacity {} uops | clasp={} compaction={:?} | {} insts",
            profile.name, args.capacity, cfg.uop_cache.clasp, cfg.uop_cache.compaction, args.insts
        );
        let program = Program::generate(&profile);
        Simulator::new(cfg).run(&profile, &program)
    };
    eprintln!("({:?})", t0.elapsed());

    println!("insts                {:>14}", r.insts);
    println!("uops                 {:>14}", r.uops);
    println!("cycles               {:>14}", r.cycles);
    println!("UPC                  {:>14.4}", r.upc);
    println!("dispatch uops/cycle  {:>14.4}", r.dispatch_bw);
    println!("OC fetch ratio       {:>14.4}", r.oc_fetch_ratio);
    println!("OC hit rate          {:>14.4}", r.oc_hit_rate);
    println!("OC fills             {:>14}", r.oc_fills);
    println!("loop-cache uops      {:>14}", r.loop_uops);
    println!("branch MPKI          {:>14.2}", r.mpki);
    println!("mispredict latency   {:>14.1}", r.avg_mispredict_latency);
    println!("decoder power        {:>14.4}", r.decoder_power);
    println!("front-end power      {:>14.4}", r.front_end_power);
    println!("taken-term fraction  {:>14.3}", r.taken_term_frac);
    println!("spanning fraction    {:>14.3}", r.spanning_frac);
    println!("compacted fraction   {:>14.3}", r.compacted_fill_frac);
    println!("SMC probes           {:>14}", r.smc_probes);
}

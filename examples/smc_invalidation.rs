//! Self-modifying-code invalidation: demonstrates the uop cache's SMC
//! probe semantics that motivate the paper's baseline design choices
//! (Section II-B4) and CLASP's bounded probe widening (Section V-A).
//!
//! ```text
//! cargo run --release --example smc_invalidation
//! ```

use ucsim::model::{Addr, DynInst, InstClass, PwId};
use ucsim::uopcache::{AccumulationBuffer, UopCache, UopCacheConfig};

/// Builds entries for a straight-line run and fills them.
fn fill_run(oc: &mut UopCache, cfg: &UopCacheConfig, start: u64, insts: u64) {
    let mut acc = AccumulationBuffer::new(cfg.clone());
    for i in 0..insts {
        let inst = DynInst::simple(Addr::new(start + i * 4), 4, InstClass::IntAlu);
        for e in acc.push(&inst, PwId(i / 8), false) {
            oc.fill(e);
        }
    }
    if let Some(e) = acc.flush() {
        oc.fill(e);
    }
}

fn show(oc: &UopCache, what: &str) {
    println!(
        "{what:<36} entries={:<3} uops={:<4} lines={}",
        oc.resident_entries(),
        oc.resident_uops(),
        oc.valid_lines()
    );
}

fn main() {
    // --- Baseline: entries never span I-cache lines, so one probe of the
    // written line's set suffices.
    let cfg = UopCacheConfig::baseline_2k();
    let mut oc = UopCache::new(cfg.clone());
    fill_run(&mut oc, &cfg, 0x1000, 48); // three I-cache lines of code
    show(&oc, "baseline after fill");

    // A JIT rewrites one instruction in line 0x1040..0x1080: every entry
    // overlapping that line must die; neighbours survive.
    let removed = oc.invalidate_icache_line(Addr::new(0x1040).line());
    println!("SMC write to line L0x41 invalidated {removed} entries");
    show(&oc, "baseline after SMC probe");
    assert!(oc.probe(Addr::new(0x1000)), "line 0x40 code survives");
    assert!(!oc.probe(Addr::new(0x1040)), "line 0x41 code is gone");

    // --- CLASP: a merged entry can start in the *previous* line, so the
    // probe also searches that line's set (bounded: max 2 lines/entry).
    println!();
    let cfg = UopCacheConfig::baseline_2k().with_clasp();
    let mut oc = UopCache::new(cfg.clone());
    fill_run(&mut oc, &cfg, 0x2014, 48); // mid-line start: entries cross boundaries
    show(&oc, "CLASP after fill");
    let spanning = oc.iter_entries().filter(|e| e.spans_boundary()).count();
    println!("spanning entries resident: {spanning}");

    let removed = oc.invalidate_icache_line(Addr::new(0x2054).line());
    println!("SMC write to the second code line invalidated {removed} entries");
    // No stale uops for the written line may survive anywhere.
    let stale = oc
        .iter_entries()
        .filter(|e| e.overlaps_line(Addr::new(0x2054).line()))
        .count();
    assert_eq!(stale, 0, "invalidation must be complete");
    show(&oc, "CLASP after SMC probe");
    println!("\nno stale entries survive — CLASP keeps SMC invalidation exact");
}

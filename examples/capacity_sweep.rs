//! Capacity sweep: the Section III motivation study (Figures 3–4) on one
//! workload — how UPC, fetch ratio and decoder power respond as the uop
//! cache grows from 2K to 64K uops.
//!
//! ```text
//! cargo run --release --example capacity_sweep
//! ```

use ucsim::pipeline::{SimConfig, Simulator};
use ucsim::trace::{Program, WorkloadProfile};
use ucsim::uopcache::UopCacheConfig;

fn main() {
    let profile = WorkloadProfile::by_name("bm-cc").expect("table2 workload");
    let program = Program::generate(&profile);
    println!("capacity sweep on {} (gcc stand-in)\n", profile.name);
    println!(
        "{:<8} {:>8} {:>12} {:>12} {:>14} {:>14}",
        "size", "sets", "UPC", "fetch-ratio", "decoder-power", "mispredict-lat"
    );

    let mut base: Option<(f64, f64)> = None;
    for uops in [2048usize, 4096, 8192, 16384, 32768, 65536] {
        let oc = UopCacheConfig::baseline_with_capacity(uops);
        let sets = oc.sets;
        let cfg = SimConfig::table1().with_uop_cache(oc).quick();
        let r = Simulator::new(cfg).run(&profile, &program);
        let (b_upc, b_pow) = *base.get_or_insert((r.upc, r.decoder_power));
        println!(
            "{:<8} {:>8} {:>7.3} ({:+5.1}%) {:>12.3} {:>8.3} ({:+5.1}%) {:>10.1}",
            format!("OC_{}K", uops / 1024),
            sets,
            r.upc,
            (r.upc / b_upc - 1.0) * 100.0,
            r.oc_fetch_ratio,
            r.decoder_power,
            (r.decoder_power / b_pow - 1.0) * 100.0,
            r.avg_mispredict_latency,
        );
    }
    println!("\nExpected shape (paper Figures 3-4): UPC and fetch ratio rise");
    println!("with capacity, decoder power and misprediction latency fall.");
}

; dispatcher.asm — an interpreter-style dispatch loop.
;
; The fetch loop indirect-calls one of four opcode handlers per
; iteration (uniform dispatch: user programs walk calli tables with no
; Zipf skew). The working set is many small, scattered functions — the
; uop cache sees short entries with poor line utilization, the shape
; compaction (RAC/PWAC/F-PWAC) is built for:
;
;   ucsim --asm examples/asm/dispatcher.asm --insts 200000
;   ucsim --asm examples/asm/dispatcher.asm --insts 200000 --compaction fpwac
.func main
fetch: load 4 imm=1
       alu 3
       calli op_add,op_load,op_store,op_branch
       alu 2
       jcc fetch trip=256
       jmp fetch
.end
.func op_add
       alu 3
       alu 3
       ret
.end
.func op_load
       load 4 imm=1
       load 4 imm=1
       ret
.end
.func op_store
       store 7 imm=2 uops=2
       ret
.end
.func op_branch
       mul 4
       jcc done p=0.5
       alu 2
done:  ret
.end

; dense_loop.asm — the uop cache's best case.
;
; One short, hot loop body of compact (3-4 byte) instructions: the whole
; loop fits in a single I-cache-line region, so even the baseline uop
; cache holds it in one entry and the OC fetch ratio saturates. Use this
; as the control against fragmenter.asm.
;
;   ucsim --asm examples/asm/dense_loop.asm --insts 200000
.func main
top: alu 3
     alu 3
     load 4 imm=1
     alu 3
     store 4 imm=1
     jcc top trip=64
     jmp top
.end

; fragmenter.asm — a hand-built fragmentation pathology (paper §3).
;
; Every hot block is ~60 bytes of maximum-length instructions, so block
; after block straddles a 64-byte I-cache-line boundary. The baseline
; uop cache must terminate an entry at every line boundary, splitting
; each block into two half-empty entries; CLASP lets the entry span the
; boundary and roughly halves the entry count. Compare:
;
;   ucsim --asm examples/asm/fragmenter.asm --insts 200000
;   ucsim --asm examples/asm/fragmenter.asm --insts 200000 --clasp
.func main
top: alu 15 imm=2
     alu 15 imm=2
     alu 15 imm=2
     alu 14 imm=2
     jcc mid p=0.8
     nop 1
mid: fp 15 imm=2
     fp 15 imm=2
     fp 15 imm=2
     fp 14 imm=2
     jcc top trip=32
     jmp top
.end

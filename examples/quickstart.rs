//! Quickstart: simulate one workload on the paper's baseline uop cache
//! and print the headline metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ucsim::pipeline::{SimConfig, Simulator};
use ucsim::trace::{Program, WorkloadProfile};

fn main() {
    // Pick a Table II workload (531.deepsjeng_r stand-in) and generate its
    // synthetic program — everything is deterministic in the profile seed.
    let profile = WorkloadProfile::by_name("bm-ds").expect("table2 workload");
    let program = Program::generate(&profile);
    println!(
        "workload {}: {} static insts, {} static uops, {:.1} KB of code",
        profile.name,
        program.static_insts(),
        program.static_uops(),
        program.code_bytes() as f64 / 1024.0
    );

    // The paper's Table I configuration: 2K-uop cache, TAGE front end,
    // 6-wide dispatch. `quick()` shortens the run for a demo.
    let cfg = SimConfig::table1().quick();
    let report = Simulator::new(cfg).run(&profile, &program);

    println!("\n-- measurement window --");
    println!("instructions      {:>12}", report.insts);
    println!("uops              {:>12}", report.uops);
    println!("cycles            {:>12}", report.cycles);
    println!("UPC               {:>12.3}", report.upc);
    println!("dispatch uops/cyc {:>12.3}", report.dispatch_bw);
    println!("OC fetch ratio    {:>12.3}", report.oc_fetch_ratio);
    println!("OC hit rate       {:>12.3}", report.oc_hit_rate);
    println!(
        "branch MPKI       {:>12.2}  (paper target {:.2})",
        report.mpki, profile.target_mpki
    );
    println!(
        "mispredict lat.   {:>12.1} cycles",
        report.avg_mispredict_latency
    );
    println!(
        "decoder power     {:>12.3} (model units)",
        report.decoder_power
    );
    println!(
        "entry sizes       {:>12}",
        report
            .entry_size_dist
            .iter()
            .map(|f| format!("{:.0}%", f * 100.0))
            .collect::<Vec<_>>()
            .join(" / ")
    );
    println!(
        "taken-branch entry terminations: {:.1}%",
        report.taken_term_frac * 100.0
    );
}

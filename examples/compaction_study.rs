//! Compaction study: the paper's Section V optimizations — baseline vs
//! CLASP vs RAC/PWAC/F-PWAC compaction at the 2K baseline capacity, on a
//! capacity-pressured workload.
//!
//! ```text
//! cargo run --release --example compaction_study
//! ```

use ucsim::pipeline::{SimConfig, Simulator};
use ucsim::trace::{Program, WorkloadProfile};
use ucsim::uopcache::{CompactionPolicy, UopCacheConfig};

fn main() {
    let profile = WorkloadProfile::by_name("bm-lla").expect("table2 workload");
    let program = Program::generate(&profile);
    println!("optimization ladder on {} (leela stand-in)\n", profile.name);

    let ladder: Vec<(&str, UopCacheConfig)> = vec![
        ("baseline", UopCacheConfig::baseline_2k()),
        ("CLASP", UopCacheConfig::baseline_2k().with_clasp()),
        (
            "RAC",
            UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Rac, 2),
        ),
        (
            "PWAC",
            UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Pwac, 2),
        ),
        (
            "F-PWAC",
            UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
        ),
    ];

    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>10} {:>10} {:>12}",
        "scheme", "UPC", "fetch-ratio", "dec-power", "spanning", "compacted", "placements"
    );
    let mut base_upc = None;
    for (label, oc) in ladder {
        let cfg = SimConfig::table1().with_uop_cache(oc).quick();
        let r = Simulator::new(cfg).run(&profile, &program);
        let b = *base_upc.get_or_insert(r.upc);
        let (rac, pwac, fpwac) = r.compaction_dist;
        println!(
            "{:<10} {:>5.3} ({:+4.1}%) {:>12.3} {:>12.3} {:>9.1}% {:>9.1}% {:>4.0}/{:.0}/{:.0}",
            label,
            r.upc,
            (r.upc / b - 1.0) * 100.0,
            r.oc_fetch_ratio,
            r.decoder_power,
            r.spanning_frac * 100.0,
            r.compacted_fill_frac * 100.0,
            rac * 100.0,
            pwac * 100.0,
            fpwac * 100.0,
        );
    }
    println!("\nExpected shape (paper Figures 15-17): F-PWAC >= PWAC >= RAC >=");
    println!("CLASP >= baseline on UPC and fetch ratio; decoder power inverts.");
}

//! Loop cache sensitivity: the third uop source in the paper's Figure 1
//! front end. The paper keeps its accounting OC-centric (loop cache
//! excluded from the fetch-ratio metric), so the default configuration
//! disables it; this example shows what enabling it does to the supply
//! mix on a loop-heavy workload.
//!
//! ```text
//! cargo run --release --example loop_cache_sensitivity
//! ```

use ucsim::pipeline::{SimConfig, Simulator};
use ucsim::trace::{Program, WorkloadProfile};

fn main() {
    let profile = WorkloadProfile::by_name("bm-x64").expect("table2 workload");
    let program = Program::generate(&profile);
    println!(
        "loop cache sensitivity on {} (x264 stand-in)\n",
        profile.name
    );
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "loop-cap", "UPC", "loop-uops", "oc-uops", "dec-uops", "dec-power"
    );

    for cap in [0u32, 16, 32, 64] {
        let mut cfg = SimConfig::table1().quick();
        cfg.core.loop_cache_uops = cap;
        let r = Simulator::new(cfg).run(&profile, &program);
        println!(
            "{:<10} {:>8.3} {:>12} {:>12} {:>12} {:>12.3}",
            if cap == 0 {
                "off".to_owned()
            } else {
                format!("{cap} uops")
            },
            r.upc,
            r.loop_uops,
            r.oc_uops,
            r.decoder_uops,
            r.decoder_power,
        );
    }
    println!("\nA larger loop buffer captures more tight-loop iterations,");
    println!("shifting uops away from both the uop cache and the decoder.");
}

//! SMT sharing: two hardware threads competing for one uop cache — the
//! setting the paper uses to motivate PW-aware compaction over
//! replacement-aware compaction (Section V-B1: another thread can scramble
//! the recency state RAC relies on; PW identity cannot be scrambled).
//!
//! ```text
//! cargo run --release --example smt_sharing
//! ```

use ucsim::pipeline::{SimConfig, Simulator, SmtSimulator};
use ucsim::trace::{Program, WorkloadProfile};
use ucsim::uopcache::{CompactionPolicy, UopCacheConfig};

fn main() {
    let a = WorkloadProfile::by_name("bm-lla").expect("workload");
    let pa = Program::generate(&a);
    let b = WorkloadProfile::by_name("bm-ds").expect("workload");
    let pb = Program::generate(&b);

    println!("SMT pair: {} + {}\n", a.name, b.name);

    // Solo references.
    for (p, prog) in [(&a, &pa), (&b, &pb)] {
        let r = Simulator::new(SimConfig::table1().quick()).run(p, prog);
        println!(
            "solo {:<8} UPC={:.3} fetch-ratio={:.3}",
            p.name, r.upc, r.oc_fetch_ratio
        );
    }

    println!();
    let ladder: Vec<(&str, UopCacheConfig)> = vec![
        ("baseline", UopCacheConfig::baseline_2k()),
        (
            "RAC",
            UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Rac, 2),
        ),
        (
            "PWAC",
            UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Pwac, 2),
        ),
        (
            "F-PWAC",
            UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
        ),
    ];
    println!(
        "{:<10} {:>8} {:>12} {:>10} {:>14}",
        "scheme", "UPC", "fetch-ratio", "compacted", "pwac-share"
    );
    for (label, oc) in ladder {
        let sim = SmtSimulator::new(SimConfig::table1().with_uop_cache(oc).quick());
        let r = sim.run((&a, &pa), (&b, &pb));
        let (_, pwac, fpwac) = r.compaction_dist;
        println!(
            "{:<10} {:>8.3} {:>12.3} {:>9.1}% {:>13.1}%",
            label,
            r.upc,
            r.oc_fetch_ratio,
            r.compacted_fill_frac * 100.0,
            (pwac + fpwac) * 100.0,
        );
    }
    println!("\nSharing one 2K-uop cache costs both threads fetch ratio;");
    println!("compaction claws some of it back even with a hostile neighbour.");
}

//! Dependency-free SVG rendering of experiment tables.
//!
//! Every figure binary writes, next to its TSV, a grouped-bar SVG that
//! mirrors the paper's plot layout: workloads on the x-axis, one bar per
//! configuration, a legend, and a y-axis with ticks. Pure string
//! assembly — no graphics dependencies.

use crate::ExperimentTable;

/// Colour cycle for series (colour-blind-safe palette).
const COLORS: [&str; 6] = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
];

/// Geometry of a rendered chart.
#[derive(Debug, Clone)]
pub struct ChartOptions {
    /// Total width in pixels.
    pub width: u32,
    /// Total height in pixels.
    pub height: u32,
    /// Draw a horizontal reference line at this y-value (e.g. 1.0 for
    /// normalized charts).
    pub reference_line: Option<f64>,
}

impl Default for ChartOptions {
    fn default() -> Self {
        ChartOptions {
            width: 1040,
            height: 420,
            reference_line: None,
        }
    }
}

/// Escapes the five XML-special characters.
fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
        .replace('\'', "&apos;")
}

/// Picks a "nice" tick step so the y-axis shows 4–8 ticks.
fn nice_step(range: f64) -> f64 {
    assert!(range > 0.0);
    let raw = range / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let step = if norm < 1.5 {
        1.0
    } else if norm < 3.5 {
        2.0
    } else if norm < 7.5 {
        5.0
    } else {
        10.0
    };
    step * mag
}

/// Renders a grouped-bar chart of the table: one group per row
/// (workload), one bar per column (configuration/series).
///
/// # Example
///
/// ```
/// use ucsim_bench::{render_grouped_bars, ChartOptions, ExperimentTable};
/// let mut t = ExperimentTable::new("figX", "demo", &["a", "b"]);
/// t.row("w1", &[1.0, 2.0]);
/// let svg = render_grouped_bars(&t, &ChartOptions::default());
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("w1"));
/// ```
pub fn render_grouped_bars(table: &ExperimentTable, opts: &ChartOptions) -> String {
    let rows = table.rows();
    let series = table.columns();
    let (w, h) = (opts.width as f64, opts.height as f64);
    let (ml, mr, mt, mb) = (64.0, 16.0, 36.0, 86.0); // margins
    let plot_w = (w - ml - mr).max(1.0);
    let plot_h = (h - mt - mb).max(1.0);

    // Value range: always include 0; pad the top.
    let mut vmax = f64::MIN;
    let mut vmin: f64 = 0.0;
    for (_, vals) in rows {
        for &v in vals {
            vmax = vmax.max(v);
            vmin = vmin.min(v);
        }
    }
    if let Some(r) = opts.reference_line {
        vmax = vmax.max(r);
        vmin = vmin.min(r);
    }
    if !vmax.is_finite() || vmax <= vmin {
        vmax = vmin + 1.0;
    }
    let span = vmax - vmin;
    vmax += span * 0.08;
    let y_of = |v: f64| mt + plot_h - (v - vmin) / (vmax - vmin) * plot_h;

    let mut s = String::with_capacity(16 * 1024);
    s.push_str(&format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{}" height="{}" font-family="Helvetica,Arial,sans-serif" font-size="11">"#,
        opts.width, opts.height
    ));
    s.push_str(&format!(
        r#"<rect width="{}" height="{}" fill="white"/>"#,
        opts.width, opts.height
    ));
    // Title.
    s.push_str(&format!(
        r#"<text x="{}" y="20" text-anchor="middle" font-size="14" font-weight="bold">{}</text>"#,
        w / 2.0,
        esc(table.title())
    ));

    // Y grid + ticks.
    let step = nice_step(vmax - vmin);
    let mut tick = (vmin / step).floor() * step;
    while tick <= vmax {
        if tick >= vmin {
            let y = y_of(tick);
            s.push_str(&format!(
                r##"<line x1="{ml}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#dddddd"/>"##,
                ml + plot_w
            ));
            s.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
                ml - 6.0,
                y + 4.0,
                format_tick(tick)
            ));
        }
        tick += step;
    }
    // Axes.
    s.push_str(&format!(
        r#"<line x1="{ml}" y1="{mt}" x2="{ml}" y2="{:.1}" stroke="black"/>"#,
        mt + plot_h
    ));
    s.push_str(&format!(
        r#"<line x1="{ml}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="black"/>"#,
        y_of(vmin.max(0.0)),
        ml + plot_w,
        y_of(vmin.max(0.0))
    ));

    // Bars.
    let n_groups = rows.len().max(1) as f64;
    let group_w = plot_w / n_groups;
    let bar_w = (group_w * 0.8 / series.len().max(1) as f64).max(1.0);
    for (gi, (label, vals)) in rows.iter().enumerate() {
        let gx = ml + gi as f64 * group_w + group_w * 0.1;
        for (si, &v) in vals.iter().enumerate() {
            let x = gx + si as f64 * bar_w;
            let y0 = y_of(v.max(0.0));
            let y1 = y_of(0.0f64.max(vmin));
            let (top, height) = if v >= 0.0 {
                (y0, (y1 - y0).max(0.5))
            } else {
                (y1, (y_of(v) - y1).max(0.5))
            };
            s.push_str(&format!(
                r#"<rect x="{x:.1}" y="{top:.1}" width="{bar_w:.1}" height="{height:.1}" fill="{}"><title>{}: {} = {v:.4}</title></rect>"#,
                COLORS[si % COLORS.len()],
                esc(label),
                esc(&series[si]),
            ));
        }
        // Rotated x label.
        let lx = gx + group_w * 0.4;
        let ly = mt + plot_h + 12.0;
        s.push_str(&format!(
            r#"<text x="{lx:.1}" y="{ly:.1}" text-anchor="end" transform="rotate(-40 {lx:.1} {ly:.1})">{}</text>"#,
            esc(label)
        ));
    }

    // Reference line.
    if let Some(r) = opts.reference_line {
        let y = y_of(r);
        s.push_str(&format!(
            r##"<line x1="{ml}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="#888888" stroke-dasharray="5,4"/>"##,
            ml + plot_w
        ));
    }

    // Legend.
    let mut lx = ml;
    let ly = h - 12.0;
    for (si, name) in series.iter().enumerate() {
        s.push_str(&format!(
            r#"<rect x="{lx:.1}" y="{:.1}" width="10" height="10" fill="{}"/>"#,
            ly - 9.0,
            COLORS[si % COLORS.len()]
        ));
        s.push_str(&format!(
            r#"<text x="{:.1}" y="{ly:.1}">{}</text>"#,
            lx + 14.0,
            esc(name)
        ));
        lx += 14.0 + 7.0 * name.len() as f64 + 18.0;
    }

    s.push_str("</svg>");
    s
}

fn format_tick(v: f64) -> String {
    if v.abs() >= 100.0 || v == v.trunc() {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExperimentTable {
        let mut t = ExperimentTable::new("figX", "A & B <test>", &["base", "opt"]);
        t.row("w1", &[1.0, 1.2]);
        t.row("w2", &[0.8, 1.5]);
        t
    }

    #[test]
    fn renders_well_formed_svg() {
        let svg = render_grouped_bars(&sample(), &ChartOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 1 + 4 + 2); // bg + 4 bars + 2 legend
        assert!(svg.contains("w1"));
        assert!(svg.contains("opt"));
    }

    #[test]
    fn escapes_xml_specials() {
        let svg = render_grouped_bars(&sample(), &ChartOptions::default());
        assert!(svg.contains("A &amp; B &lt;test&gt;"));
        assert!(!svg.contains("<test>"));
    }

    #[test]
    fn reference_line_drawn() {
        let svg = render_grouped_bars(
            &sample(),
            &ChartOptions {
                reference_line: Some(1.0),
                ..Default::default()
            },
        );
        assert!(svg.contains("stroke-dasharray"));
    }

    #[test]
    fn handles_negative_values() {
        let mut t = ExperimentTable::new("figY", "neg", &["a"]);
        t.row("w", &[-2.0]);
        let svg = render_grouped_bars(&t, &ChartOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.contains("-2.0000"));
    }

    #[test]
    fn nice_steps_are_nice() {
        for range in [0.3, 1.0, 7.0, 42.0, 900.0] {
            let s = nice_step(range);
            let ticks = (range / s).ceil() as u32;
            assert!((2..=9).contains(&ticks), "range {range}: step {s}");
        }
    }

    #[test]
    fn empty_table_renders() {
        let t = ExperimentTable::new("figZ", "empty", &["a"]);
        let svg = render_grouped_bars(&t, &ChartOptions::default());
        assert!(svg.starts_with("<svg"));
    }
}

//! Shape probe: quick sanity scan of one workload across key
//! configurations (capacity sweep ends + optimization ladder). Not a
//! paper figure; a development diagnostic.

use ucsim_bench::{run_one, RunOpts};
use ucsim_pipeline::SimConfig;
use ucsim_trace::WorkloadProfile;
use ucsim_uopcache::{CompactionPolicy, UopCacheConfig};

fn main() {
    let opts = RunOpts::from_args();
    let name = opts
        .workload_filter
        .first()
        .cloned()
        .unwrap_or_else(|| "bm-cc".to_owned());
    let profile = WorkloadProfile::by_name(&name).expect("unknown workload");
    println!(
        "probe: {} (target MPKI {})",
        profile.name, profile.target_mpki
    );

    let configs = [
        ("base-2K", UopCacheConfig::baseline_2k()),
        ("base-8K", UopCacheConfig::baseline_with_capacity(8192)),
        ("base-64K", UopCacheConfig::baseline_with_capacity(65536)),
        ("clasp-2K", UopCacheConfig::baseline_2k().with_clasp()),
        (
            "rac-2K",
            UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Rac, 2),
        ),
        (
            "pwac-2K",
            UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Pwac, 2),
        ),
        (
            "fpwac-2K",
            UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
        ),
    ];
    for (label, oc) in configs {
        let t0 = std::time::Instant::now();
        let r = run_one(&profile, &SimConfig::table1().with_uop_cache(oc), &opts);
        println!(
            "{label:<10} {} fills={} span={:.3} comp={:.3} tb_term={:.3} dir={} tgt={} dr={} [{:?}]",
            r.summary(),
            r.oc_fills,
            r.spanning_frac,
            r.compacted_fill_frac,
            r.taken_term_frac,
            r.direction_mispredicts,
            r.target_mispredicts,
            r.decode_redirects,
            t0.elapsed()
        );
        println!(
            "           mean_eB={:.1} res_uops={} lines={} entries={} sizes={:?}",
            r.mean_entry_bytes,
            r.resident_uops_end,
            r.valid_lines_end,
            r.resident_entries_end,
            r.entry_size_dist
                .iter()
                .map(|f| (f * 100.0).round())
                .collect::<Vec<_>>()
        );
        println!(
            "           coverage: total={}B unique={}B dup_ratio={:.2}",
            r.coverage_total_bytes,
            r.coverage_unique_bytes,
            r.coverage_total_bytes as f64 / r.coverage_unique_bytes.max(1) as f64,
        );
        println!(
            "           interior_misses={} / misses={}",
            r.interior_misses, r.oc_lookup_misses,
        );
        println!(
            "           terms(bound,taken,maxu,maxi,maxmc,cap,flush)={:?} mean_uops={:.2}",
            r.term_fracs
                .iter()
                .map(|f| (f * 100.0).round() as i64)
                .collect::<Vec<_>>(),
            r.mean_entry_uops
        );
    }
}

//! Seed-sensitivity study (experimental hygiene beyond the paper): rerun
//! selected workloads under several synthesis seeds and report the spread
//! of the headline metric (F-PWAC % UPC improvement over baseline at 2K).
//!
//! ```text
//! cargo run --release -p ucsim-bench --bin seeds -- --quick --workloads bm-lla
//! ```

use ucsim_bench::{run_one, ExperimentTable, RunOpts};
use ucsim_pipeline::SimConfig;
use ucsim_trace::WorkloadProfile;
use ucsim_uopcache::{CompactionPolicy, UopCacheConfig};

const SEED_OFFSETS: [u64; 5] = [0, 1000, 2000, 3000, 4000];

fn main() {
    let opts = RunOpts::from_args();
    let mut t = ExperimentTable::new(
        "seeds",
        "F-PWAC % UPC improvement across synthesis seeds",
        &["mean", "min", "max", "spread"],
    );
    for base_profile in WorkloadProfile::table2() {
        if !opts.selects(base_profile.name) {
            continue;
        }
        let mut gains = Vec::new();
        for off in SEED_OFFSETS {
            let mut p = base_profile.clone();
            p.seed = base_profile.seed + off;
            let base = run_one(&p, &SimConfig::table1(), &opts);
            let opt = run_one(
                &p,
                &SimConfig::table1().with_uop_cache(
                    UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
                ),
                &opts,
            );
            gains.push((opt.upc / base.upc - 1.0) * 100.0);
        }
        let mean = gains.iter().sum::<f64>() / gains.len() as f64;
        let min = gains.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = gains.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        t.row(base_profile.name, &[mean, min, max, max - min]);
    }
    t.emit();
}

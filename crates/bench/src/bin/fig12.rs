//! Regenerates the paper's Figure 12.
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::fig12(&opts);
}

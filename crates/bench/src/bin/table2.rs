//! Regenerates the paper's Table II (workloads, target vs measured MPKI).
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::table2(&opts);
}

//! Regenerates the paper's Figure 20.
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::fig20(&opts);
}

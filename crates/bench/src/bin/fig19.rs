//! Regenerates the paper's Figure 19.
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::fig19(&opts);
}

//! Regenerates the paper's Figure 06.
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::fig06(&opts);
}

//! Regenerates the paper's Figure 17.
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::fig17(&opts);
}

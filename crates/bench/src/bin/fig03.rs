//! Regenerates the paper's Figure 03.
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::fig03(&opts);
}

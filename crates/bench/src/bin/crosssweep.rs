//! Capacity × optimization cross sweep (extension): how do CLASP and
//! F-PWAC gains evolve as the uop cache grows? Generalizes the paper's
//! Figure 22 (which checked only the 4K point) to the whole sweep.
//!
//! `--adaptive [--tolerance T]` regenerates the grid the plan-scheduler
//! way: bisect the capacity axis per workload until the UPC knee is
//! bracketed, then run the optimization ladder only at the knee — a
//! fraction of the full cross for the same headline numbers.

use ucsim_bench::{geomean, run_matrix, ExperimentTable, LabeledConfig, MatrixCross, RunOpts};
use ucsim_pipeline::{KneeBisector, SimConfig, Simulator};
use ucsim_trace::{Program, WorkloadProfile};
use ucsim_uopcache::{CompactionPolicy, UopCacheConfig};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let adaptive = args
        .iter()
        .position(|a| a == "--adaptive")
        .map(|i| args.remove(i))
        .is_some();
    let mut tolerance = 0.05f64;
    if let Some(i) = args.iter().position(|a| a == "--tolerance") {
        args.remove(i);
        if i >= args.len() {
            panic!("--tolerance takes a number in [0, 1)");
        }
        tolerance = args.remove(i).parse().expect("--tolerance takes a number");
    }
    let opts = RunOpts::parse(&args);
    if adaptive {
        run_adaptive(&opts, tolerance);
    } else {
        run_full(&opts);
    }
}

fn run_full(opts: &RunOpts) {
    let capacities = [2048usize, 4096, 8192, 16384];
    let mut configs = Vec::new();
    for &cap in &capacities {
        let base = UopCacheConfig::baseline_with_capacity(cap);
        configs.push(LabeledConfig::new(
            &format!("base_{}K", cap / 1024),
            SimConfig::table1().with_uop_cache(base.clone()),
        ));
        configs.push(LabeledConfig::new(
            &format!("clasp_{}K", cap / 1024),
            SimConfig::table1().with_uop_cache(base.clone().with_clasp()),
        ));
        configs.push(LabeledConfig::new(
            &format!("fpwac_{}K", cap / 1024),
            SimConfig::table1().with_uop_cache(base.with_compaction(CompactionPolicy::Fpwac, 2)),
        ));
    }

    let results = run_matrix(&configs, opts);
    let cols: Vec<String> = capacities
        .iter()
        .flat_map(|&c| {
            let k = c / 1024;
            [format!("clasp_{k}K_%"), format!("fpwac_{k}K_%")]
        })
        .collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut t = ExperimentTable::new(
        "crosssweep",
        "% UPC improvement of CLASP / F-PWAC over same-capacity baseline",
        &col_refs,
    );
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); cols.len()];
    for (profile, reports) in &results {
        let mut row = Vec::new();
        for (ci, _) in capacities.iter().enumerate() {
            let base = reports[ci * 3].upc;
            let clasp = reports[ci * 3 + 1].upc;
            let fpwac = reports[ci * 3 + 2].upc;
            row.push((clasp / base - 1.0) * 100.0);
            row.push((fpwac / base - 1.0) * 100.0);
            ratios[ci * 2].push(clasp / base);
            ratios[ci * 2 + 1].push(fpwac / base);
        }
        t.row(profile.name, &row);
    }
    let g: Vec<f64> = ratios.iter().map(|v| (geomean(v) - 1.0) * 100.0).collect();
    t.row("G.Mean", &g);
    t.emit();
}

/// Per workload: bisect the baseline-UPC capacity axis (2K..64K) to the
/// knee, then run CLASP and F-PWAC only at the knee capacity. Reports the
/// knee and the simulated-cell count against the full cross.
fn run_adaptive(opts: &RunOpts, tolerance: f64) {
    let caps = MatrixCross::table1_capacities();
    let profiles: Vec<WorkloadProfile> = WorkloadProfile::table2()
        .into_iter()
        .filter(|p| opts.selects(p.name))
        .collect();
    let full_cells = caps.len() * 3;

    let rows = ucsim_pool::run_indexed(profiles.len(), opts.threads, |idx| {
        let profile = &profiles[idx];
        let program = Program::generate(profile);
        let run = |cache: UopCacheConfig| {
            let cfg = SimConfig::table1()
                .with_uop_cache(cache)
                .with_insts(opts.warmup, opts.insts);
            Simulator::new(cfg).run(profile, &program)
        };

        let mut bis = KneeBisector::new(caps.len(), tolerance);
        let mut upc_at = vec![f64::NAN; caps.len()];
        loop {
            let probes = bis.next_probes();
            if probes.is_empty() {
                break;
            }
            for i in probes {
                let upc = run(UopCacheConfig::baseline_with_capacity(caps[i])).upc;
                upc_at[i] = upc;
                bis.record(i, upc);
            }
        }
        let knee = bis.knee().expect("bisection converges on a finite axis");
        let base_upc = upc_at[knee];
        let base = UopCacheConfig::baseline_with_capacity(caps[knee]);
        let clasp = run(base.clone().with_clasp()).upc;
        let fpwac = run(base.with_compaction(CompactionPolicy::Fpwac, 2)).upc;
        let simulated = bis.probed() + 2;
        [
            (caps[knee] / 1024) as f64,
            simulated as f64,
            full_cells as f64,
            (clasp / base_upc - 1.0) * 100.0,
            (fpwac / base_upc - 1.0) * 100.0,
        ]
    });

    let mut t = ExperimentTable::new(
        "crosssweep_adaptive",
        "Adaptive cross: UPC knee capacity per workload, cells simulated vs full cross, ladder gains at the knee",
        &["knee_K", "simulated", "full", "clasp_%", "fpwac_%"],
    );
    let mut simulated_total = 0usize;
    for (profile, row) in profiles.iter().zip(&rows) {
        simulated_total += row[1] as usize;
        t.row(profile.name, row);
    }
    let full_total = full_cells * profiles.len();
    eprintln!(
        "adaptive: simulated {simulated_total} of {full_total} cells ({:.0}%)",
        100.0 * simulated_total as f64 / full_total.max(1) as f64
    );
    t.emit();
}

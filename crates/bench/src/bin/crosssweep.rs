//! Capacity × optimization cross sweep (extension): how do CLASP and
//! F-PWAC gains evolve as the uop cache grows? Generalizes the paper's
//! Figure 22 (which checked only the 4K point) to the whole sweep.

use ucsim_bench::{geomean, run_matrix, ExperimentTable, LabeledConfig, RunOpts};
use ucsim_pipeline::SimConfig;
use ucsim_uopcache::{CompactionPolicy, UopCacheConfig};

fn main() {
    let opts = RunOpts::from_args();
    let capacities = [2048usize, 4096, 8192, 16384];
    let mut configs = Vec::new();
    for &cap in &capacities {
        let base = UopCacheConfig::baseline_with_capacity(cap);
        configs.push(LabeledConfig::new(
            &format!("base_{}K", cap / 1024),
            SimConfig::table1().with_uop_cache(base.clone()),
        ));
        configs.push(LabeledConfig::new(
            &format!("clasp_{}K", cap / 1024),
            SimConfig::table1().with_uop_cache(base.clone().with_clasp()),
        ));
        configs.push(LabeledConfig::new(
            &format!("fpwac_{}K", cap / 1024),
            SimConfig::table1().with_uop_cache(base.with_compaction(CompactionPolicy::Fpwac, 2)),
        ));
    }

    let results = run_matrix(&configs, &opts);
    let cols: Vec<String> = capacities
        .iter()
        .flat_map(|&c| {
            let k = c / 1024;
            [format!("clasp_{k}K_%"), format!("fpwac_{k}K_%")]
        })
        .collect();
    let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
    let mut t = ExperimentTable::new(
        "crosssweep",
        "% UPC improvement of CLASP / F-PWAC over same-capacity baseline",
        &col_refs,
    );
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); cols.len()];
    for (profile, reports) in &results {
        let mut row = Vec::new();
        for (ci, _) in capacities.iter().enumerate() {
            let base = reports[ci * 3].upc;
            let clasp = reports[ci * 3 + 1].upc;
            let fpwac = reports[ci * 3 + 2].upc;
            row.push((clasp / base - 1.0) * 100.0);
            row.push((fpwac / base - 1.0) * 100.0);
            ratios[ci * 2].push(clasp / base);
            ratios[ci * 2 + 1].push(fpwac / base);
        }
        t.row(profile.name, &row);
    }
    let g: Vec<f64> = ratios.iter().map(|v| (geomean(v) - 1.0) * 100.0).collect();
    t.row("G.Mean", &g);
    t.emit();
}

//! Regenerates every table and figure in one run, writing TSVs to
//! `target/experiments/`.
use ucsim_bench::{figures, RunOpts};

fn main() {
    let opts = RunOpts::from_args();
    let t0 = std::time::Instant::now();
    figures::table1();
    figures::table2(&opts);
    figures::fig03(&opts);
    figures::fig04(&opts);
    figures::fig05(&opts);
    figures::fig06(&opts);
    figures::fig09(&opts);
    figures::fig12(&opts);
    figures::fig15(&opts);
    figures::fig16(&opts);
    figures::fig17(&opts);
    figures::fig18(&opts);
    figures::fig19(&opts);
    figures::fig20(&opts);
    figures::fig21(&opts);
    figures::fig22(&opts);
    eprintln!("all experiments regenerated in {:?}", t0.elapsed());
}

//! Regenerates the paper's Figure 15.
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::fig15(&opts);
}

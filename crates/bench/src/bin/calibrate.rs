//! Calibration sweep: all Table II workloads at the 2K baseline.
//!
//! Prints measured vs target branch MPKI, the OC fetch ratio at 2K and
//! 64K (the capacity-sensitivity span), entry-size distribution and
//! taken-branch termination rate — the knobs-vs-goals dashboard used to
//! tune the synthetic workload profiles. A development diagnostic, not a
//! paper figure.

use ucsim_bench::{run_one, RunOpts};
use ucsim_pipeline::SimConfig;
use ucsim_trace::WorkloadProfile;
use ucsim_uopcache::{CompactionPolicy, UopCacheConfig};

fn main() {
    let opts = RunOpts::from_args();
    println!(
        "{:<14} {:>6} {:>6} | {:>6} {:>6} {:>6} | {:>6} {:>6} | sizes[%]",
        "workload", "mpki", "tgt", "ocr2K", "ocr64K", "gain%", "tbterm", "comp"
    );
    for p in WorkloadProfile::table2() {
        if !opts.selects(p.name) {
            continue;
        }
        let r2 = run_one(&p, &SimConfig::table1(), &opts);
        let r64 = run_one(
            &p,
            &SimConfig::table1().with_uop_cache(UopCacheConfig::baseline_with_capacity(65536)),
            &opts,
        );
        let rc = run_one(
            &p,
            &SimConfig::table1().with_uop_cache(
                UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
            ),
            &opts,
        );
        println!(
            "{:<14} {:>6.2} {:>6.2} | {:>6.3} {:>6.3} {:>6.1} | {:>6.3} {:>6.3} | {:?}",
            p.name,
            r2.mpki,
            p.target_mpki,
            r2.oc_fetch_ratio,
            r64.oc_fetch_ratio,
            (r64.oc_fetch_ratio / r2.oc_fetch_ratio - 1.0) * 100.0,
            r2.taken_term_frac,
            rc.compacted_fill_frac,
            r2.entry_size_dist
                .iter()
                .map(|f| (f * 100.0).round() as i64)
                .collect::<Vec<_>>(),
        );
    }
}

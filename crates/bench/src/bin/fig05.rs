//! Regenerates the paper's Figure 05.
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::fig05(&opts);
}

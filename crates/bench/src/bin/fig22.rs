//! Regenerates the paper's Figure 22.
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::fig22(&opts);
}

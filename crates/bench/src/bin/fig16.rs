//! Regenerates the paper's Figure 16.
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::fig16(&opts);
}

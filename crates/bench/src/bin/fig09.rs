//! Regenerates the paper's Figure 09.
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::fig09(&opts);
}

//! Design-choice ablations beyond the paper's evaluation (the extensions
//! DESIGN.md calls out):
//!
//! * uop cache replacement policy (true LRU vs tree-PLRU vs SRRIP),
//! * CLASP span limit (2 vs 3 I-cache lines),
//! * front-end energy breakdown (decoder vs whole front end),
//! * entry build rule: span sequential PWs (the paper's baseline) vs
//!   terminate at PW boundaries — the lever behind the compaction rate.

use ucsim_bench::{run_one, ExperimentTable, RunOpts};
use ucsim_mem::ReplacementPolicy;
use ucsim_pipeline::SimConfig;
use ucsim_trace::WorkloadProfile;
use ucsim_uopcache::{CompactionPolicy, UopCacheConfig};

fn main() {
    let opts = RunOpts::from_args();
    let workloads: Vec<WorkloadProfile> = WorkloadProfile::table2()
        .into_iter()
        .filter(|p| opts.selects(p.name))
        .collect();

    // --- Ablation 1: OC replacement policy at the 2K baseline.
    let mut repl = ExperimentTable::new(
        "ablation_replacement",
        "OC fetch ratio by replacement policy (2K baseline)",
        &["LRU", "TreePLRU", "SRRIP"],
    );
    for p in &workloads {
        let row: Vec<f64> = [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Srrip,
        ]
        .iter()
        .map(|&pol| {
            let oc = UopCacheConfig::baseline_2k().with_replacement(pol);
            run_one(p, &SimConfig::table1().with_uop_cache(oc), &opts).oc_fetch_ratio
        })
        .collect();
        repl.row(p.name, &row);
    }
    repl.emit();

    // --- Ablation 2: CLASP span limit.
    let mut span = ExperimentTable::new(
        "ablation_clasp_span",
        "OC fetch ratio by CLASP max span (2K)",
        &["span2", "span3"],
    );
    for p in &workloads {
        let row: Vec<f64> = [2u32, 3]
            .iter()
            .map(|&lines| {
                let mut oc = UopCacheConfig::baseline_2k().with_clasp();
                oc.clasp_max_lines = lines;
                run_one(p, &SimConfig::table1().with_uop_cache(oc), &opts).oc_fetch_ratio
            })
            .collect();
        span.row(p.name, &row);
    }
    span.emit();

    // --- Ablation 3: front-end energy breakdown, baseline vs F-PWAC.
    let mut energy = ExperimentTable::new(
        "ablation_energy",
        "Decoder vs whole-front-end power (2K)",
        &["dec_base", "dec_fpwac", "fe_base", "fe_fpwac"],
    );
    for p in &workloads {
        let base = run_one(p, &SimConfig::table1(), &opts);
        let fp = run_one(
            p,
            &SimConfig::table1().with_uop_cache(
                UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
            ),
            &opts,
        );
        energy.row(
            p.name,
            &[
                base.decoder_power,
                fp.decoder_power,
                base.front_end_power,
                fp.front_end_power,
            ],
        );
    }
    energy.emit();

    // --- Ablation 4: entry build rule (span PWs vs terminate at PW end)
    // under F-PWAC. Smaller entries compact far more often, at the cost of
    // per-entry dispatch bandwidth.
    let mut rule = ExperimentTable::new(
        "ablation_build_rule",
        "Entry build rule under F-PWAC (2K): span PWs vs cut at PW end",
        &[
            "comp_span",
            "comp_cut",
            "upc_span",
            "upc_cut",
            "pwac_share_cut",
        ],
    );
    for p in &workloads {
        let span_cfg = UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2);
        let cut_cfg = span_cfg.clone().with_pw_end_termination();
        let a = run_one(p, &SimConfig::table1().with_uop_cache(span_cfg), &opts);
        let b = run_one(p, &SimConfig::table1().with_uop_cache(cut_cfg), &opts);
        let (_, pwac, fp) = b.compaction_dist;
        rule.row(
            p.name,
            &[
                a.compacted_fill_frac,
                b.compacted_fill_frac,
                a.upc,
                b.upc,
                pwac + fp,
            ],
        );
    }
    rule.emit();
}

//! Regenerates the paper's Figure 04.
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::fig04(&opts);
}

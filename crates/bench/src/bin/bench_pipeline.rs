//! Tracked pipeline throughput suite.
//!
//! Measures end-to-end simulator throughput (instructions/second) for the
//! paper's headline configurations — baseline, CLASP, F-PWAC, and an
//! 8-wide dispatch variant — plus the sweep-level benefit of
//! record-once/replay-many: a workload × capacity × policy sweep run by
//! replaying one recorded trace per workload versus regenerating the
//! stream per cell, with a byte-identity check on every cell report.
//!
//! Results go to `BENCH_pipeline.json` (machine-readable, tracked in the
//! repository) and stdout (human-readable).
//!
//! ```text
//! cargo run --release -p ucsim-bench --bin bench_pipeline             # tracked budget
//! cargo run --release -p ucsim-bench --bin bench_pipeline -- --quick  # CI smoke
//! ```

use std::time::Instant;

use criterion::{Criterion, Throughput};
use ucsim_bench::{optimization_ladder, LabeledConfig, RunOpts};
use ucsim_model::json::Json;
use ucsim_model::ToJson;
use ucsim_pipeline::{run_configs_on_trace_threads, SimConfig, Simulator};
use ucsim_trace::{record_workload, Program, WorkloadProfile};

/// Where the tracked results land (repository root under `cargo run`).
const OUT_PATH: &str = "BENCH_pipeline.json";

/// The workload the throughput group runs on (server-class, Table II).
const THROUGHPUT_WORKLOAD: &str = "redis";

/// Workloads of the sweep speedup comparison: the SPEC-like profiles
/// whose stream synthesis (CFG walk + branch-noise sampling) is most
/// expensive relative to simulating the resulting stream.
const SWEEP_WORKLOADS: [&str; 4] = ["bm-pb", "bm-cc", "bm-x64", "bm-z"];

/// Timing passes per sweep side; the reported time is the per-side
/// minimum across passes.
const SWEEP_SAMPLES: usize = 2;

fn main() {
    let opts = RunOpts::from_args();
    let total = opts.warmup + opts.insts;

    let throughput = throughput_suite(&opts, total);
    let sweep = sweep_speedup(&opts);

    let doc = Json::Obj(vec![
        (
            "schema".to_owned(),
            Json::Str("ucsim-bench-pipeline/v2".to_owned()),
        ),
        ("env".to_owned(), env_metadata(&opts)),
        ("warmup_insts".to_owned(), Json::Uint(opts.warmup)),
        ("measure_insts".to_owned(), Json::Uint(opts.insts)),
        (
            "throughput_workload".to_owned(),
            Json::Str(THROUGHPUT_WORKLOAD.to_owned()),
        ),
        ("throughput".to_owned(), throughput),
        ("sweep_replay".to_owned(), sweep),
    ]);
    std::fs::write(OUT_PATH, format!("{doc}\n")).expect("write BENCH_pipeline.json");
    println!("wrote {OUT_PATH}");
}

/// Provenance of a tracked result: which commit produced it, on how many
/// CPUs, with how many intra-cell workers. Numbers from different
/// machines are not comparable; the metadata makes that visible in the
/// checked-in file instead of leaving reviewers to guess.
fn env_metadata(opts: &RunOpts) -> Json {
    let commit = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned());
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(0);
    Json::Obj(vec![
        ("commit".to_owned(), Json::Str(commit)),
        ("cpus".to_owned(), Json::Uint(cpus)),
        (
            "cell_threads".to_owned(),
            Json::Uint(opts.cell_threads as u64),
        ),
    ])
}

/// The paper's headline configurations, each measured as whole-run
/// simulator throughput over one shared recorded trace.
fn headline_configs() -> Vec<LabeledConfig> {
    let mut configs: Vec<LabeledConfig> = optimization_ladder(2048, 2)
        .into_iter()
        .filter(|lc| matches!(lc.label.as_str(), "baseline" | "CLASP" | "F-PWAC"))
        .collect();
    let mut wide = SimConfig::table1();
    wide.core.dispatch_width = 8;
    configs.push(LabeledConfig::new("8-wide", wide));
    configs
}

/// Runs the criterion throughput group and returns its JSON rows.
fn throughput_suite(opts: &RunOpts, total: u64) -> Json {
    let profile = WorkloadProfile::by_name(THROUGHPUT_WORKLOAD).expect("known workload");
    let program = Program::generate(&profile);
    let trace = record_workload(&profile, &program, total);

    let mut c = Criterion::default();
    {
        let mut g = c.benchmark_group("pipeline_throughput");
        g.throughput(Throughput::Elements(total)).sample_size(5);
        for lc in headline_configs() {
            let cfg = lc.config.clone().with_insts(opts.warmup, opts.insts);
            let trace = ucsim_trace::SharedTrace::clone(&trace);
            g.bench_function(&lc.label, move |b| {
                let sim = Simulator::new(cfg.clone());
                b.iter(|| sim.run_trace(THROUGHPUT_WORKLOAD, &trace));
            });
        }
        g.finish();
    }

    Json::Arr(
        c.measurements()
            .iter()
            .map(|m| {
                Json::Obj(vec![
                    ("id".to_owned(), Json::Str(m.id.clone())),
                    (
                        "median_ns".to_owned(),
                        Json::Uint(m.median.as_nanos() as u64),
                    ),
                    (
                        "insts_per_sec".to_owned(),
                        Json::Float(m.rate().unwrap_or(0.0)),
                    ),
                ])
            })
            .collect(),
    )
}

/// Times a workload × capacity × policy sweep both ways — per-cell stream
/// regeneration versus record-once/replay-many — verifying every cell
/// report is byte-identical, and returns the comparison as JSON.
fn sweep_speedup(opts: &RunOpts) -> Json {
    let ladder: Vec<LabeledConfig> = [2048usize, 4096, 8192, 16384, 32768, 65536]
        .iter()
        .flat_map(|&cap| optimization_ladder(cap, 2))
        .map(|lc| {
            LabeledConfig::new(
                &lc.label,
                lc.config.clone().with_insts(opts.warmup, opts.insts),
            )
        })
        .collect();
    let profiles: Vec<WorkloadProfile> = SWEEP_WORKLOADS
        .iter()
        .map(|w| WorkloadProfile::by_name(w).expect("known workload"))
        .collect();

    // Both sides are timed over `SWEEP_SAMPLES` passes and reported as
    // the per-side minimum: wall-clock noise on a shared host only ever
    // adds time, so the minimum is the stable estimate of the true cost.
    // Within a pass the two sides alternate per workload, so slow drift
    // in host speed lands on both sides instead of skewing the ratio.
    let mut regen_s = f64::INFINITY;
    let mut replay_s = f64::INFINITY;
    let mut regen: Vec<Vec<_>> = Vec::new();
    let mut replayed: Vec<Vec<_>> = Vec::new();
    for _ in 0..SWEEP_SAMPLES {
        let mut pass_regen = 0.0;
        let mut pass_replay = 0.0;
        regen = Vec::new();
        replayed = Vec::new();
        for p in &profiles {
            // Per-cell regeneration: what the sweep paths did before
            // traces were shared — the serve-side `run_spec` built the
            // program and re-walked the stream for every single job,
            // i.e. once per |capacities| × |policies| cell.
            let t0 = Instant::now();
            regen.push(
                ladder
                    .iter()
                    .map(|lc| {
                        let prog = Program::generate(p);
                        Simulator::new(lc.config.clone()).run(p, &prog)
                    })
                    .collect(),
            );
            pass_regen += t0.elapsed().as_secs_f64();

            // Record-once/replay-many: one program build + one
            // recording per workload, shared by all cells.
            let t1 = Instant::now();
            let prog = Program::generate(p);
            let trace = record_workload(p, &prog, opts.warmup + opts.insts);
            replayed.push(run_configs_on_trace_threads(
                p.name,
                &trace,
                &ladder,
                opts.cell_threads,
            ));
            pass_replay += t1.elapsed().as_secs_f64();
        }
        regen_s = regen_s.min(pass_regen);
        replay_s = replay_s.min(pass_replay);
    }

    let byte_identical = regen
        .iter()
        .flatten()
        .zip(replayed.iter().flatten())
        .all(|(a, b)| a.to_json_string() == b.to_json_string());
    assert!(
        byte_identical,
        "replayed sweep reports diverged from regenerated ones"
    );

    let cells = (SWEEP_WORKLOADS.len() * ladder.len()) as u64;
    let speedup = regen_s / replay_s.max(1e-9);
    println!(
        "sweep {}x{} cells: regen {regen_s:.2}s, replay {replay_s:.2}s ({speedup:.2}x)",
        SWEEP_WORKLOADS.len(),
        ladder.len()
    );
    Json::Obj(vec![
        (
            "workloads".to_owned(),
            Json::Arr(
                SWEEP_WORKLOADS
                    .iter()
                    .map(|w| Json::Str((*w).to_owned()))
                    .collect(),
            ),
        ),
        ("cells".to_owned(), Json::Uint(cells)),
        ("regen_secs".to_owned(), Json::Float(regen_s)),
        ("replay_secs".to_owned(), Json::Float(replay_s)),
        ("speedup".to_owned(), Json::Float(speedup)),
        ("byte_identical".to_owned(), Json::Bool(byte_identical)),
    ])
}

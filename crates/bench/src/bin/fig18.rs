//! Regenerates the paper's Figure 18.
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::fig18(&opts);
}

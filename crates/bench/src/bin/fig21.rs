//! Regenerates the paper's Figure 21.
fn main() {
    let opts = ucsim_bench::RunOpts::from_args();
    ucsim_bench::figures::fig21(&opts);
}

//! Records a synthetic workload to the binary trace format, so downstream
//! tools (or the `ucsim --trace` CLI) can replay it — mirroring the
//! paper's own trace-driven methodology.
//!
//! ```text
//! cargo run --release -p ucsim-bench --bin tracegen -- --workloads bm-ds --insts 500000
//! ```

use std::fs::File;

use ucsim_bench::RunOpts;
use ucsim_trace::{Program, Trace, WorkloadProfile};

fn main() {
    let opts = RunOpts::from_args();
    std::fs::create_dir_all("target/traces").expect("create target/traces");
    for p in WorkloadProfile::table2() {
        if !opts.selects(p.name) {
            continue;
        }
        let program = Program::generate(&p);
        let n = (opts.warmup + opts.insts) as usize;
        let trace = Trace::record(program.walk(&p).take(n));
        let path = format!("target/traces/{}.uct", p.name.replace(['(', ')'], "_"));
        let f = File::create(&path).expect("create trace file");
        trace.save(f).expect("write trace");
        println!("{path}: {} insts", trace.len());
    }
}

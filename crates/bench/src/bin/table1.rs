//! Regenerates the paper's Table I (simulated configuration).
fn main() {
    ucsim_bench::figures::table1();
}

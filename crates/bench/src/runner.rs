//! Workload × configuration matrix execution.

use ucsim_pipeline::{run_configs_on_trace_threads, SimConfig, SimReport, Simulator};
use ucsim_pool::Progress;
use ucsim_trace::{record_workload, Program, WorkloadProfile};

use crate::RunOpts;

pub use ucsim_pipeline::LabeledConfig;

/// Runs one workload under one configuration.
pub fn run_one(profile: &WorkloadProfile, cfg: &SimConfig, opts: &RunOpts) -> SimReport {
    let program = Program::generate(profile);
    let cfg = cfg.clone().with_insts(opts.warmup, opts.insts);
    Simulator::new(cfg).run(profile, &program)
}

/// Runs every selected Table II workload under every configuration,
/// parallel across workloads. Returns, per workload (in Table II order),
/// the reports in configuration order.
pub fn run_matrix(
    configs: &[LabeledConfig],
    opts: &RunOpts,
) -> Vec<(WorkloadProfile, Vec<SimReport>)> {
    let profiles: Vec<WorkloadProfile> = WorkloadProfile::table2()
        .into_iter()
        .filter(|p| opts.selects(p.name))
        .collect();
    let progress = Progress::stderr();

    let reports = ucsim_pool::run_indexed(profiles.len(), opts.threads, |idx| {
        // Record each workload's instruction stream once; every
        // configuration cell replays the shared trace instead of
        // re-walking the program C×P times.
        let profile = &profiles[idx];
        let program = Program::generate(profile);
        let trace = record_workload(profile, &program, opts.warmup + opts.insts);
        let sized: Vec<LabeledConfig> = configs
            .iter()
            .map(|lc| {
                LabeledConfig::new(
                    &lc.label,
                    lc.config.clone().with_insts(opts.warmup, opts.insts),
                )
            })
            .collect();
        let reports: Vec<SimReport> =
            run_configs_on_trace_threads(profile.name, &trace, &sized, opts.cell_threads);
        progress.line(&format!(
            "  done {:<14} ({} configs)",
            profile.name,
            configs.len()
        ));
        reports
    });

    profiles.into_iter().zip(reports).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_produces_report() {
        let profile = WorkloadProfile::quick_test();
        let opts = RunOpts {
            warmup: 5_000,
            insts: 30_000,
            ..Default::default()
        };
        let r = run_one(&profile, &SimConfig::table1(), &opts);
        assert!(r.upc > 0.0);
        assert_eq!(r.workload, "quick-test");
    }

    #[test]
    fn matrix_respects_filter_and_order() {
        let opts = RunOpts {
            warmup: 2_000,
            insts: 10_000,
            workload_filter: vec!["redis".into(), "bm-lla".into()],
            threads: 2,
            cell_threads: 1,
        };
        let configs = vec![
            LabeledConfig::new("a", SimConfig::table1()),
            LabeledConfig::new("b", SimConfig::table1()),
        ];
        let out = run_matrix(&configs, &opts);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0.name, "redis"); // Table II order preserved
        assert_eq!(out[1].0.name, "bm-lla");
        assert_eq!(out[0].1.len(), 2);
    }
}

//! The capacity × policy configuration cross, extracted from the figure
//! binaries' hand-built config sets into one shared, serve-callable form.
//!
//! A [`MatrixCross`] names the two axes the paper sweeps — uop-cache
//! capacities (Table I sizes) and entry-construction policies (baseline,
//! CLASP, RAC, PWAC, F-PWAC) — and expands into the [`LabeledConfig`]
//! list `run_matrix` consumes. `ucsim-serve`'s `POST /v1/matrix` endpoint
//! expands requests through the same code path, so a served sweep and an
//! offline figure run are cell-for-cell identical.

use ucsim_pipeline::SimConfig;
use ucsim_uopcache::{CompactionPolicy, UopCacheConfig};

use crate::LabeledConfig;

/// One point on the policy axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepPolicy {
    /// The paper's baseline entry construction.
    Baseline,
    /// CLASP (cache-line-boundary-agnostic entries).
    Clasp,
    /// Replacement-aware compaction.
    Rac,
    /// Prediction-window-aware compaction.
    Pwac,
    /// Forced prediction-window-aware compaction.
    Fpwac,
}

impl SweepPolicy {
    /// Every policy, in the paper's optimization-ladder order.
    pub const ALL: [SweepPolicy; 5] = [
        SweepPolicy::Baseline,
        SweepPolicy::Clasp,
        SweepPolicy::Rac,
        SweepPolicy::Pwac,
        SweepPolicy::Fpwac,
    ];

    /// Parses a wire/CLI name (case-insensitive; `"f-pwac"` and `"fpwac"`
    /// both name F-PWAC).
    pub fn parse(name: &str) -> Option<SweepPolicy> {
        match name.to_lowercase().as_str() {
            "baseline" => Some(SweepPolicy::Baseline),
            "clasp" => Some(SweepPolicy::Clasp),
            "rac" => Some(SweepPolicy::Rac),
            "pwac" => Some(SweepPolicy::Pwac),
            "fpwac" | "f-pwac" => Some(SweepPolicy::Fpwac),
            _ => None,
        }
    }

    /// The figure-legend display name.
    pub fn name(self) -> &'static str {
        match self {
            SweepPolicy::Baseline => "baseline",
            SweepPolicy::Clasp => "CLASP",
            SweepPolicy::Rac => "RAC",
            SweepPolicy::Pwac => "PWAC",
            SweepPolicy::Fpwac => "F-PWAC",
        }
    }

    /// Applies the policy to a baseline uop-cache configuration.
    pub fn apply(self, base: UopCacheConfig, max_entries: u32) -> UopCacheConfig {
        match self {
            SweepPolicy::Baseline => base,
            SweepPolicy::Clasp => base.with_clasp(),
            SweepPolicy::Rac => base.with_compaction(CompactionPolicy::Rac, max_entries),
            SweepPolicy::Pwac => base.with_compaction(CompactionPolicy::Pwac, max_entries),
            SweepPolicy::Fpwac => base.with_compaction(CompactionPolicy::Fpwac, max_entries),
        }
    }
}

/// A capacity × policy cross ready to expand into labeled configurations.
#[derive(Debug, Clone)]
pub struct MatrixCross {
    /// Uop-cache capacities, in uops (Table I sizes: 2048 … 65536).
    pub capacities: Vec<usize>,
    /// Entry-construction policies.
    pub policies: Vec<SweepPolicy>,
    /// Compacted entries per physical line (2 or 3) for RAC/PWAC/F-PWAC.
    pub max_entries: u32,
}

impl MatrixCross {
    /// The paper's Table I capacity axis: 2K … 64K uops.
    pub fn table1_capacities() -> Vec<usize> {
        vec![2048, 4096, 8192, 16384, 32768, 65536]
    }

    /// Cells in the cross (capacities × policies).
    pub fn len(&self) -> usize {
        self.capacities.len() * self.policies.len()
    }

    /// True when either axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The label of one cell. Degenerate axes keep the historical figure
    /// labels — a baseline-only capacity sweep is `OC_2K` … `OC_64K`, a
    /// single-capacity ladder is `baseline`/`CLASP`/…; a full cross
    /// combines both (`OC_4K:PWAC`).
    pub fn label(&self, capacity_uops: usize, policy: SweepPolicy) -> String {
        // Sub-1K capacities keep the raw uop count: integer division
        // would otherwise collapse 64..512 into one ambiguous "OC_0K".
        let cap = if capacity_uops >= 1024 {
            format!("OC_{}K", capacity_uops / 1024)
        } else {
            format!("OC_{capacity_uops}")
        };
        if self.policies.len() == 1 && self.policies[0] == SweepPolicy::Baseline {
            cap
        } else if self.capacities.len() == 1 {
            policy.name().to_owned()
        } else {
            format!("{cap}:{}", policy.name())
        }
    }

    /// Expands into labeled configurations, capacity-major then policy,
    /// on top of the paper's Table I core configuration.
    pub fn expand(&self) -> Vec<LabeledConfig> {
        let mut out = Vec::with_capacity(self.len());
        for &cap in &self.capacities {
            let base = UopCacheConfig::baseline_with_capacity(cap);
            for &policy in &self.policies {
                out.push(LabeledConfig {
                    label: self.label(cap, policy),
                    config: SimConfig::table1()
                        .with_uop_cache(policy.apply(base.clone(), self.max_entries)),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip_through_parse() {
        for p in SweepPolicy::ALL {
            assert_eq!(SweepPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(SweepPolicy::parse("F-PWAC"), Some(SweepPolicy::Fpwac));
        assert_eq!(SweepPolicy::parse("nope"), None);
    }

    #[test]
    fn full_cross_expands_capacity_major() {
        let cross = MatrixCross {
            capacities: vec![2048, 4096],
            policies: vec![SweepPolicy::Baseline, SweepPolicy::Clasp],
            max_entries: 2,
        };
        let cells = cross.expand();
        let labels: Vec<_> = cells.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "OC_2K:baseline",
                "OC_2K:CLASP",
                "OC_4K:baseline",
                "OC_4K:CLASP"
            ]
        );
        assert_eq!(cells[0].config.uop_cache.capacity_uops(), 2048);
        assert_eq!(cells[3].config.uop_cache.capacity_uops(), 4096);
        assert!(cells[1].config.uop_cache.clasp);
    }

    #[test]
    fn degenerate_axes_keep_figure_labels() {
        let caps = MatrixCross {
            capacities: MatrixCross::table1_capacities(),
            policies: vec![SweepPolicy::Baseline],
            max_entries: 2,
        };
        assert_eq!(caps.expand()[0].label, "OC_2K");
        let ladder = MatrixCross {
            capacities: vec![2048],
            policies: SweepPolicy::ALL.to_vec(),
            max_entries: 2,
        };
        let labels: Vec<_> = ladder.expand().iter().map(|c| c.label.clone()).collect();
        assert_eq!(labels, ["baseline", "CLASP", "RAC", "PWAC", "F-PWAC"]);
    }

    #[test]
    fn sub_1k_capacities_get_distinct_labels() {
        let cross = MatrixCross {
            capacities: vec![64, 512, 1024],
            policies: vec![SweepPolicy::Baseline],
            max_entries: 2,
        };
        let labels: Vec<_> = cross.expand().iter().map(|c| c.label.clone()).collect();
        assert_eq!(labels, ["OC_64", "OC_512", "OC_1K"]);
    }
}

//! Command-line options shared by all figure binaries.

/// Run-length and filtering options.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Warmup instructions per run.
    pub warmup: u64,
    /// Measured instructions per run.
    pub insts: u64,
    /// Restrict to workloads whose name contains one of these substrings
    /// (empty = all).
    pub workload_filter: Vec<String>,
    /// Parallel worker threads.
    pub threads: usize,
    /// Intra-cell hash-precompute workers per sweep cell (see
    /// `PwTrace::replay_parallel`); 1 = sequential replay.
    pub cell_threads: usize,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            warmup: 200_000,
            insts: 2_000_000,
            workload_filter: Vec::new(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cell_threads: 1,
        }
    }
}

impl RunOpts {
    /// Parses `std::env::args()`: `--quick`, `--insts N`, `--warmup N`,
    /// `--workloads a,b,c`, `--threads N`.
    ///
    /// # Panics
    ///
    /// Panics (with a usage message) on malformed arguments — these are
    /// developer-facing experiment binaries.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse(&args)
    }

    /// Parses an explicit argument list. Binaries with extra flags strip
    /// them first and hand the remainder here.
    pub fn parse(args: &[String]) -> Self {
        let mut o = RunOpts::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--quick" => {
                    o.warmup = 50_000;
                    o.insts = 400_000;
                }
                "--insts" => {
                    i += 1;
                    o.insts = args[i].parse().expect("--insts takes a number");
                }
                "--warmup" => {
                    i += 1;
                    o.warmup = args[i].parse().expect("--warmup takes a number");
                }
                "--workloads" => {
                    i += 1;
                    o.workload_filter =
                        args[i].split(',').map(|s| s.trim().to_owned()).collect();
                }
                "--threads" => {
                    i += 1;
                    o.threads = args[i].parse().expect("--threads takes a number");
                }
                "--cell-threads" => {
                    i += 1;
                    o.cell_threads = args[i]
                        .parse()
                        .expect("--cell-threads takes a number >= 1");
                    assert!(o.cell_threads >= 1, "--cell-threads takes a number >= 1");
                }
                other => panic!(
                    "unknown option {other}; expected --quick | --insts N | --warmup N | --workloads a,b | --threads N | --cell-threads N"
                ),
            }
            i += 1;
        }
        o
    }

    /// True if the named workload passes the filter.
    pub fn selects(&self, name: &str) -> bool {
        self.workload_filter.is_empty()
            || self
                .workload_filter
                .iter()
                .any(|f| name.contains(f.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_selects_everything() {
        let o = RunOpts::default();
        assert!(o.selects("bm-cc"));
        assert!(o.selects("anything"));
    }

    #[test]
    fn cell_threads_parses_and_defaults_to_sequential() {
        assert_eq!(RunOpts::default().cell_threads, 1);
        let o = RunOpts::parse(&["--cell-threads".into(), "4".into()]);
        assert_eq!(o.cell_threads, 4);
    }

    #[test]
    fn filter_matches_substring() {
        let o = RunOpts {
            workload_filter: vec!["sp(".into(), "redis".into()],
            ..Default::default()
        };
        assert!(o.selects("sp(log_regr)"));
        assert!(o.selects("redis"));
        assert!(!o.selects("bm-cc"));
    }
}

//! # ucsim-bench
//!
//! The experiment harness: one binary per table/figure of the paper, plus
//! criterion microbenchmarks of the core structures.
//!
//! Figure binaries share this small library: workload × configuration
//! matrix running (parallel across workloads), the paper's normalization
//! conventions, and table output to the console and
//! `target/experiments/*.tsv`.
//!
//! Run any figure with, e.g.:
//! ```text
//! cargo run --release -p ucsim-bench --bin fig03            # full length
//! cargo run --release -p ucsim-bench --bin fig03 -- --quick # CI length
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod configs;
pub mod figures;
mod matrix;
mod opts;
mod runner;
mod svg;
mod table;

pub use configs::{capacity_sweep, optimization_ladder};
pub use matrix::{MatrixCross, SweepPolicy};
pub use opts::RunOpts;
pub use runner::{run_matrix, run_one, LabeledConfig};
pub use svg::{render_grouped_bars, ChartOptions};
pub use table::{geomean, normalize, percent_improvement, ExperimentTable};

//! Table formatting, normalization and TSV output.

use std::fs;
use std::path::PathBuf;

/// Normalizes `value` to `base` (the paper's "normalized to baseline"
/// convention). Returns 1.0 when the base is zero.
pub fn normalize(value: f64, base: f64) -> f64 {
    if base == 0.0 {
        1.0
    } else {
        value / base
    }
}

/// Percent improvement of `value` over `base` (positive = better).
pub fn percent_improvement(value: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        (value / base - 1.0) * 100.0
    }
}

/// Geometric mean of positive values (the paper's G. Mean columns).
///
/// # Panics
///
/// Panics if `values` is empty or any value is non-positive.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// A figure/table under construction: header row + labeled data rows,
/// printed to the console and saved as TSV.
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    id: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

impl ExperimentTable {
    /// Starts a table for experiment `id` (e.g. "fig03").
    pub fn new(id: &str, title: &str, columns: &[&str]) -> Self {
        ExperimentTable {
            id: id.to_owned(),
            title: title.to_owned(),
            columns: columns.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a labeled row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn row(&mut self, label: &str, values: &[f64]) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row '{label}' has {} values for {} columns",
            values.len(),
            self.columns.len()
        );
        self.rows.push((label.to_owned(), values.to_vec()));
    }

    /// The rows accumulated so far (label, values).
    pub fn rows(&self) -> &[(String, Vec<f64>)] {
        &self.rows
    }

    /// The experiment id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The human-readable title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column labels.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Renders the table for the console.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {}: {} ==\n", self.id, self.title));
        out.push_str(&format!("{:<16}", "workload"));
        for c in &self.columns {
            out.push_str(&format!("{c:>14}"));
        }
        out.push('\n');
        for (label, values) in &self.rows {
            out.push_str(&format!("{label:<16}"));
            for v in values {
                out.push_str(&format!("{v:>14.4}"));
            }
            out.push('\n');
        }
        out
    }

    /// Prints to stdout and writes `target/experiments/<id>.tsv`.
    /// Returns the TSV path.
    pub fn emit(&self) -> PathBuf {
        println!("{}", self.render());
        let dir = PathBuf::from("target/experiments");
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{}.tsv", self.id));
        let mut tsv = String::new();
        tsv.push_str(&format!("# {}: {}\n", self.id, self.title));
        tsv.push_str("workload");
        for c in &self.columns {
            tsv.push('\t');
            tsv.push_str(c);
        }
        tsv.push('\n');
        for (label, values) in &self.rows {
            tsv.push_str(label);
            for v in values {
                tsv.push_str(&format!("\t{v:.6}"));
            }
            tsv.push('\n');
        }
        if let Err(e) = fs::write(&path, tsv) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        // A paper-style grouped-bar chart beside the TSV; charts whose id
        // suggests normalization get a reference line at 1.0.
        let opts = crate::ChartOptions {
            reference_line: self
                .title
                .to_ascii_lowercase()
                .contains("normalized")
                .then_some(1.0),
            ..Default::default()
        };
        let svg_path = dir.join(format!("{}.svg", self.id));
        if let Err(e) = fs::write(&svg_path, crate::render_grouped_bars(self, &opts)) {
            eprintln!("warning: could not write {}: {e}", svg_path.display());
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_conventions() {
        assert_eq!(normalize(2.0, 4.0), 0.5);
        assert_eq!(normalize(5.0, 0.0), 1.0);
        assert!((percent_improvement(1.05, 1.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_matches_hand_calc() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn table_renders_rows() {
        let mut t = ExperimentTable::new("figX", "test", &["a", "b"]);
        t.row("w1", &[1.0, 2.0]);
        let s = t.render();
        assert!(s.contains("figX"));
        assert!(s.contains("w1"));
        assert!(s.contains("2.0000"));
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn table_rejects_bad_row() {
        let mut t = ExperimentTable::new("figX", "test", &["a", "b"]);
        t.row("w1", &[1.0]);
    }
}

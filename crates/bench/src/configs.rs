//! Standard configuration sets used across figures — thin wrappers over
//! the shared [`MatrixCross`] expansion.

use crate::matrix::{MatrixCross, SweepPolicy};
use crate::LabeledConfig;

/// The paper's capacity sweep: OC_2K … OC_64K baselines (Figures 3–4).
pub fn capacity_sweep() -> Vec<LabeledConfig> {
    MatrixCross {
        capacities: MatrixCross::table1_capacities(),
        policies: vec![SweepPolicy::Baseline],
        max_entries: 2,
    }
    .expand()
}

/// The optimization ladder at a given capacity: baseline, CLASP, RAC,
/// PWAC, F-PWAC (Figures 15–17 use 2K and ≤2 entries/line; Figure 20 uses
/// 3; Figure 22 uses a 4K capacity).
pub fn optimization_ladder(capacity_uops: usize, max_entries: u32) -> Vec<LabeledConfig> {
    MatrixCross {
        capacities: vec![capacity_uops],
        policies: SweepPolicy::ALL.to_vec(),
        max_entries,
    }
    .expand()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucsim_uopcache::CompactionPolicy;

    #[test]
    fn sweep_has_six_sizes() {
        let s = capacity_sweep();
        assert_eq!(s.len(), 6);
        assert_eq!(s[0].label, "OC_2K");
        assert_eq!(s[5].label, "OC_64K");
        assert_eq!(s[5].config.uop_cache.capacity_uops(), 65536);
    }

    #[test]
    fn ladder_has_five_schemes() {
        let l = optimization_ladder(2048, 2);
        let labels: Vec<_> = l.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, ["baseline", "CLASP", "RAC", "PWAC", "F-PWAC"]);
        assert!(!l[0].config.uop_cache.clasp);
        assert!(l[1].config.uop_cache.clasp);
        assert_eq!(l[4].config.uop_cache.compaction, CompactionPolicy::Fpwac);
    }
}

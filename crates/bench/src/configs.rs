//! Standard configuration sets used across figures.

use ucsim_pipeline::SimConfig;
use ucsim_uopcache::{CompactionPolicy, UopCacheConfig};

use crate::LabeledConfig;

/// The paper's capacity sweep: OC_2K … OC_64K baselines (Figures 3–4).
pub fn capacity_sweep() -> Vec<LabeledConfig> {
    [2048usize, 4096, 8192, 16384, 32768, 65536]
        .iter()
        .map(|&uops| {
            LabeledConfig::new(
                &format!("OC_{}K", uops / 1024),
                SimConfig::table1().with_uop_cache(UopCacheConfig::baseline_with_capacity(uops)),
            )
        })
        .collect()
}

/// The optimization ladder at a given capacity: baseline, CLASP, RAC,
/// PWAC, F-PWAC (Figures 15–17 use 2K and ≤2 entries/line; Figure 20 uses
/// 3; Figure 22 uses a 4K capacity).
pub fn optimization_ladder(capacity_uops: usize, max_entries: u32) -> Vec<LabeledConfig> {
    let base = UopCacheConfig::baseline_with_capacity(capacity_uops);
    vec![
        LabeledConfig::new("baseline", SimConfig::table1().with_uop_cache(base.clone())),
        LabeledConfig::new(
            "CLASP",
            SimConfig::table1().with_uop_cache(base.clone().with_clasp()),
        ),
        LabeledConfig::new(
            "RAC",
            SimConfig::table1().with_uop_cache(
                base.clone()
                    .with_compaction(CompactionPolicy::Rac, max_entries),
            ),
        ),
        LabeledConfig::new(
            "PWAC",
            SimConfig::table1().with_uop_cache(
                base.clone()
                    .with_compaction(CompactionPolicy::Pwac, max_entries),
            ),
        ),
        LabeledConfig::new(
            "F-PWAC",
            SimConfig::table1()
                .with_uop_cache(base.with_compaction(CompactionPolicy::Fpwac, max_entries)),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_has_six_sizes() {
        let s = capacity_sweep();
        assert_eq!(s.len(), 6);
        assert_eq!(s[0].label, "OC_2K");
        assert_eq!(s[5].label, "OC_64K");
        assert_eq!(s[5].config.uop_cache.capacity_uops(), 65536);
    }

    #[test]
    fn ladder_has_five_schemes() {
        let l = optimization_ladder(2048, 2);
        let labels: Vec<_> = l.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, ["baseline", "CLASP", "RAC", "PWAC", "F-PWAC"]);
        assert!(!l[0].config.uop_cache.clasp);
        assert!(l[1].config.uop_cache.clasp);
        assert_eq!(l[4].config.uop_cache.compaction, CompactionPolicy::Fpwac);
    }
}

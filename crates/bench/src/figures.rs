//! One function per table/figure of the paper. Each runs the necessary
//! workload × configuration matrix, prints the same rows/series the paper
//! reports, and writes `target/experiments/<id>.tsv`.

use ucsim_pipeline::{SimConfig, SimReport};
use ucsim_trace::{Program, TraceStats, WorkloadProfile};

use crate::{
    capacity_sweep, geomean, normalize, optimization_ladder, percent_improvement, run_matrix,
    ExperimentTable, LabeledConfig, RunOpts,
};

/// Table I: prints the simulated processor configuration.
pub fn table1() {
    let cfg = SimConfig::table1();
    println!("== Table I: Simulated Processor Configuration ==");
    println!("Core        3 GHz, x86 CISC-like ISA");
    println!(
        "            dispatch width: {} uops/cycle",
        cfg.core.dispatch_width
    );
    println!(
        "            retire width:   {} uops/cycle",
        cfg.core.retire_width
    );
    println!(
        "            ROB: {}  uop queue: {}",
        cfg.core.rob_size, cfg.core.uop_queue_size
    );
    println!(
        "Decoder     latency {} cycles, bandwidth {} insts/cycle",
        cfg.core.decode_latency, cfg.core.decode_width
    );
    println!(
        "Uop cache   {} sets, {}-way, true LRU, {} uops capacity",
        cfg.uop_cache.sets,
        cfg.uop_cache.ways,
        cfg.uop_cache.capacity_uops()
    );
    println!(
        "            bandwidth {} uops/cycle; uop size 56 bits",
        cfg.core.oc_dispatch_bw
    );
    println!(
        "            max/entry: {} uops, {} imm/disp (32-bit), {} micro-coded",
        cfg.uop_cache.max_uops_per_entry,
        cfg.uop_cache.max_imm_disp_per_entry,
        cfg.uop_cache.max_ucoded_per_entry
    );
    println!("Branch pred TAGE + 2-level BTB (2 branches/entry) + RAS");
    println!(
        "L1-I        {} KB, {}-way, 64 B lines, LRU, prediction-directed prefetch",
        cfg.mem.l1i.capacity_bytes() / 1024,
        cfg.mem.l1i.ways
    );
    println!(
        "L1-D        {} KB, {}-way, LRU",
        cfg.mem.l1d.capacity_bytes() / 1024,
        cfg.mem.l1d.ways
    );
    println!(
        "L2          {} KB private unified, {}-way, LRU",
        cfg.mem.l2.capacity_bytes() / 1024,
        cfg.mem.l2.ways
    );
    println!(
        "L3          {} MB shared, {}-way, RRIP",
        cfg.mem.l3.capacity_bytes() / 1024 / 1024,
        cfg.mem.l3.ways
    );
    println!(
        "DRAM        2400 MHz (≈{} core cycles)",
        cfg.mem.dram_latency
    );
}

/// Table II: the thirteen workloads with paper-target vs measured branch
/// MPKI plus trace characterization.
pub fn table2(opts: &RunOpts) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "table2",
        "Workloads: target vs measured branch MPKI",
        &[
            "target_mpki",
            "measured_mpki",
            "branch_frac",
            "block_len",
            "inst_len",
            "uops_per_inst",
            "code_lines",
        ],
    );
    let configs = vec![LabeledConfig::new("baseline", SimConfig::table1())];
    let results = run_matrix(&configs, opts);
    for (profile, reports) in &results {
        let program = Program::generate(profile);
        let stats =
            TraceStats::from_stream(program.walk(profile).take(200_000.min(opts.insts as usize)));
        let r = &reports[0];
        t.row(
            profile.name,
            &[
                profile.target_mpki,
                r.mpki,
                stats.branch_frac(),
                stats.mean_block_len(),
                stats.mean_inst_len(),
                stats.uops_per_inst(),
                stats.code_footprint_lines() as f64,
            ],
        );
    }
    t.emit();
    t
}

fn sweep_results(opts: &RunOpts) -> Vec<(WorkloadProfile, Vec<SimReport>)> {
    run_matrix(&capacity_sweep(), opts)
}

/// Figure 3: normalized UPC (bars) and normalized decoder power (line) as
/// capacity grows 2K → 64K. Everything normalized to OC_2K.
pub fn fig03(opts: &RunOpts) -> (ExperimentTable, ExperimentTable) {
    let results = sweep_results(opts);
    let labels: Vec<String> = capacity_sweep().iter().map(|c| c.label.clone()).collect();
    let cols: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    let mut upc = ExperimentTable::new("fig03_upc", "Normalized UPC vs OC capacity", &cols);
    let mut pow = ExperimentTable::new(
        "fig03_power",
        "Normalized decoder power vs OC capacity",
        &cols,
    );
    for (profile, reports) in &results {
        let base = &reports[0];
        let u: Vec<f64> = reports.iter().map(|r| normalize(r.upc, base.upc)).collect();
        let p: Vec<f64> = reports
            .iter()
            .map(|r| normalize(r.decoder_power, base.decoder_power))
            .collect();
        upc.row(profile.name, &u);
        pow.row(profile.name, &p);
    }
    upc.emit();
    pow.emit();
    (upc, pow)
}

/// Figure 4: normalized OC fetch ratio (bars), dispatched uops/cycle and
/// branch misprediction latency (lines) vs capacity, normalized to OC_2K.
pub fn fig04(opts: &RunOpts) -> (ExperimentTable, ExperimentTable, ExperimentTable) {
    let results = sweep_results(opts);
    let labels: Vec<String> = capacity_sweep().iter().map(|c| c.label.clone()).collect();
    let cols: Vec<&str> = labels.iter().map(|s| s.as_str()).collect();
    let mut ratio = ExperimentTable::new("fig04_fetch_ratio", "Normalized OC fetch ratio", &cols);
    let mut disp = ExperimentTable::new(
        "fig04_dispatch",
        "Normalized avg dispatched uops/cycle",
        &cols,
    );
    let mut mlat = ExperimentTable::new(
        "fig04_mispredict_latency",
        "Normalized avg branch misprediction latency",
        &cols,
    );
    for (profile, reports) in &results {
        let base = &reports[0];
        ratio.row(
            profile.name,
            &reports
                .iter()
                .map(|r| normalize(r.oc_fetch_ratio, base.oc_fetch_ratio))
                .collect::<Vec<_>>(),
        );
        disp.row(
            profile.name,
            &reports
                .iter()
                .map(|r| normalize(r.dispatch_bw, base.dispatch_bw))
                .collect::<Vec<_>>(),
        );
        mlat.row(
            profile.name,
            &reports
                .iter()
                .map(|r| normalize(r.avg_mispredict_latency, base.avg_mispredict_latency))
                .collect::<Vec<_>>(),
        );
    }
    ratio.emit();
    disp.emit();
    mlat.emit();
    (ratio, disp, mlat)
}

/// Figure 5: uop cache entry size distribution at the 2K baseline.
pub fn fig05(opts: &RunOpts) -> ExperimentTable {
    let configs = vec![LabeledConfig::new("baseline", SimConfig::table1())];
    let results = run_matrix(&configs, opts);
    let mut t = ExperimentTable::new(
        "fig05",
        "OC entry size distribution (bytes)",
        &["b1_19", "b20_39", "b40_64"],
    );
    for (profile, reports) in &results {
        let d = &reports[0].entry_size_dist;
        t.row(profile.name, &[d[0], d[1], d[2]]);
    }
    t.emit();
    t
}

/// Figure 6: fraction of entries terminated by a predicted-taken branch.
pub fn fig06(opts: &RunOpts) -> ExperimentTable {
    let configs = vec![LabeledConfig::new("baseline", SimConfig::table1())];
    let results = run_matrix(&configs, opts);
    let mut t = ExperimentTable::new(
        "fig06",
        "% OC entries terminated by predicted-taken branch",
        &["taken_term_frac"],
    );
    for (profile, reports) in &results {
        t.row(profile.name, &[reports[0].taken_term_frac]);
    }
    t.emit();
    t
}

/// Figure 9: fraction of entries spanning I-cache line boundaries under
/// CLASP.
pub fn fig09(opts: &RunOpts) -> ExperimentTable {
    let clasp = optimization_ladder(2048, 2).remove(1);
    let results = run_matrix(&[clasp], opts);
    let mut t = ExperimentTable::new(
        "fig09",
        "% OC entries spanning I-cache line boundaries (CLASP)",
        &["spanning_frac"],
    );
    for (profile, reports) in &results {
        t.row(profile.name, &[reports[0].spanning_frac]);
    }
    t.emit();
    t
}

/// Figure 12: distribution of uop cache entries per PW at the baseline.
pub fn fig12(opts: &RunOpts) -> ExperimentTable {
    let configs = vec![LabeledConfig::new("baseline", SimConfig::table1())];
    let results = run_matrix(&configs, opts);
    let mut t = ExperimentTable::new(
        "fig12",
        "OC entries per PW distribution",
        &["one", "two", "three", "four_plus"],
    );
    for (profile, reports) in &results {
        let d = reports[0].entries_per_pw;
        t.row(profile.name, &d);
    }
    t.emit();
    t
}

/// Figures 15–17 share the 2K optimization-ladder matrix.
fn ladder_results(
    opts: &RunOpts,
    capacity: usize,
    max_entries: u32,
) -> Vec<(WorkloadProfile, Vec<SimReport>)> {
    run_matrix(&optimization_ladder(capacity, max_entries), opts)
}

/// Figure 15: normalized decoder power per scheme.
pub fn fig15(opts: &RunOpts) -> ExperimentTable {
    let results = ladder_results(opts, 2048, 2);
    let mut t = ExperimentTable::new(
        "fig15",
        "Normalized decoder power",
        &["baseline", "CLASP", "RAC", "PWAC", "F-PWAC"],
    );
    for (profile, reports) in &results {
        let base = reports[0].decoder_power;
        t.row(
            profile.name,
            &reports
                .iter()
                .map(|r| normalize(r.decoder_power, base))
                .collect::<Vec<_>>(),
        );
    }
    t.emit();
    t
}

fn upc_improvement_table(
    id: &str,
    title: &str,
    results: &[(WorkloadProfile, Vec<SimReport>)],
) -> ExperimentTable {
    let mut t = ExperimentTable::new(id, title, &["CLASP", "RAC", "PWAC", "F-PWAC"]);
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for (profile, reports) in results {
        let base = reports[0].upc;
        let vals: Vec<f64> = reports[1..]
            .iter()
            .map(|r| percent_improvement(r.upc, base))
            .collect();
        for (i, r) in reports[1..].iter().enumerate() {
            ratios[i].push(r.upc / base);
        }
        t.row(profile.name, &vals);
    }
    let g: Vec<f64> = ratios.iter().map(|v| (geomean(v) - 1.0) * 100.0).collect();
    t.row("G.Mean", &g);
    t
}

/// Figure 16: % UPC improvement per scheme (≤2 entries/line).
pub fn fig16(opts: &RunOpts) -> ExperimentTable {
    let results = ladder_results(opts, 2048, 2);
    let t = upc_improvement_table(
        "fig16",
        "% UPC improvement over baseline (max 2 entries/line)",
        &results,
    );
    t.emit();
    t
}

/// Figure 17: normalized fetch ratio, dispatch bandwidth and misprediction
/// latency per scheme.
pub fn fig17(opts: &RunOpts) -> (ExperimentTable, ExperimentTable, ExperimentTable) {
    let results = ladder_results(opts, 2048, 2);
    let cols = ["baseline", "CLASP", "RAC", "PWAC", "F-PWAC"];
    let mut ratio = ExperimentTable::new("fig17_fetch_ratio", "Normalized OC fetch ratio", &cols);
    let mut disp = ExperimentTable::new(
        "fig17_dispatch",
        "Normalized avg dispatched uops/cycle",
        &cols,
    );
    let mut mlat = ExperimentTable::new(
        "fig17_mispredict_latency",
        "Normalized avg branch misprediction latency",
        &cols,
    );
    for (profile, reports) in &results {
        let b = &reports[0];
        ratio.row(
            profile.name,
            &reports
                .iter()
                .map(|r| normalize(r.oc_fetch_ratio, b.oc_fetch_ratio))
                .collect::<Vec<_>>(),
        );
        disp.row(
            profile.name,
            &reports
                .iter()
                .map(|r| normalize(r.dispatch_bw, b.dispatch_bw))
                .collect::<Vec<_>>(),
        );
        mlat.row(
            profile.name,
            &reports
                .iter()
                .map(|r| normalize(r.avg_mispredict_latency, b.avg_mispredict_latency))
                .collect::<Vec<_>>(),
        );
    }
    ratio.emit();
    disp.emit();
    mlat.emit();
    (ratio, disp, mlat)
}

/// Figure 18: fraction of entries compacted (placed into an existing
/// line) under the full F-PWAC configuration.
pub fn fig18(opts: &RunOpts) -> ExperimentTable {
    let fpwac = optimization_ladder(2048, 2).remove(4);
    let results = run_matrix(&[fpwac], opts);
    let mut t = ExperimentTable::new(
        "fig18",
        "% OC entries compacted without eviction (F-PWAC)",
        &["compacted_frac"],
    );
    for (profile, reports) in &results {
        t.row(profile.name, &[reports[0].compacted_fill_frac]);
    }
    t.emit();
    t
}

/// Figure 19: distribution of compacted entries across RAC / PWAC /
/// F-PWAC under the full F-PWAC configuration.
pub fn fig19(opts: &RunOpts) -> ExperimentTable {
    let fpwac = optimization_ladder(2048, 2).remove(4);
    let results = run_matrix(&[fpwac], opts);
    let mut t = ExperimentTable::new(
        "fig19",
        "Compacted entries by allocation technique",
        &["RAC", "PWAC", "F-PWAC"],
    );
    for (profile, reports) in &results {
        let (rac, pwac, fp) = reports[0].compaction_dist;
        t.row(profile.name, &[rac, pwac, fp]);
    }
    t.emit();
    t
}

/// Figure 20: % UPC improvement with up to three entries per line.
pub fn fig20(opts: &RunOpts) -> ExperimentTable {
    let results = ladder_results(opts, 2048, 3);
    let t = upc_improvement_table(
        "fig20",
        "% UPC improvement over baseline (max 3 entries/line)",
        &results,
    );
    t.emit();
    t
}

/// Figure 21: normalized OC fetch ratio with up to three entries per line.
pub fn fig21(opts: &RunOpts) -> ExperimentTable {
    let results = ladder_results(opts, 2048, 3);
    let mut t = ExperimentTable::new(
        "fig21",
        "Normalized OC fetch ratio (max 3 entries/line)",
        &["CLASP", "RAC", "PWAC", "F-PWAC"],
    );
    for (profile, reports) in &results {
        let base = reports[0].oc_fetch_ratio;
        t.row(
            profile.name,
            &reports[1..]
                .iter()
                .map(|r| normalize(r.oc_fetch_ratio, base))
                .collect::<Vec<_>>(),
        );
    }
    t.emit();
    t
}

/// Figure 22: % UPC improvement over a 4K-uop baseline.
pub fn fig22(opts: &RunOpts) -> ExperimentTable {
    let results = ladder_results(opts, 4096, 2);
    let t = upc_improvement_table(
        "fig22",
        "% UPC improvement over a 4K-uop baseline",
        &results,
    );
    t.emit();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> RunOpts {
        RunOpts {
            warmup: 2_000,
            insts: 12_000,
            workload_filter: vec!["redis".into()],
            threads: 2,
            cell_threads: 1,
        }
    }

    #[test]
    fn fig05_fractions_sum_to_one() {
        let t = fig05(&tiny_opts());
        for (_, row) in t.rows() {
            let sum: f64 = row.iter().sum();
            assert!(sum > 0.95 && sum <= 1.001, "sum={sum}");
        }
    }

    #[test]
    fn fig16_has_gmean_row() {
        let t = fig16(&tiny_opts());
        let labels: Vec<_> = t.rows().iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"G.Mean"));
        assert!(labels.contains(&"redis"));
    }

    #[test]
    fn fig03_baseline_column_is_one() {
        let (upc, pow) = fig03(&tiny_opts());
        for (_, row) in upc.rows() {
            assert!((row[0] - 1.0).abs() < 1e-9);
        }
        for (_, row) in pow.rows() {
            assert!((row[0] - 1.0).abs() < 1e-9);
        }
    }
}

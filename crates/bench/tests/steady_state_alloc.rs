//! Steady-state allocation discipline of the simulator hot loop.
//!
//! A counting global allocator wraps the system allocator and tallies
//! every `alloc`/`realloc`/`alloc_zeroed`. Two runs over the *same*
//! recorded trace differ only in how many measured batches they process;
//! if the decode→dispatch→retire loop is allocation-free in steady state
//! (all buffers pre-sized or reused: flat cache tag stores, eviction
//! scratch, the uop-kind template table, deferred stat folds), the two
//! runs perform *exactly* the same number of heap allocations — every
//! allocation belongs to setup (`RunState` construction) or teardown
//! (report building), neither of which scales with instructions.
//!
//! This is the regression gate for the batched hot-loop work: any
//! per-instruction or per-batch allocation that creeps back in shows up
//! as a count difference proportional to the extra instructions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ucsim_pipeline::{SimConfig, Simulator};
use ucsim_trace::{record_workload, Program, WorkloadProfile};

/// System allocator wrapper counting allocation events (frees are not
/// counted: the assertion is about acquiring memory in the hot loop).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocation events during `f`.
fn allocs_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    (ALLOCS.load(Ordering::Relaxed) - before, r)
}

#[test]
fn measured_batches_allocate_nothing() {
    const WARMUP: u64 = 5_000;
    const SHORT: u64 = 20_000;
    const LONG: u64 = 80_000;

    let profile = WorkloadProfile::by_name("redis").expect("known workload");
    let program = Program::generate(&profile);
    let trace = record_workload(&profile, &program, WARMUP + LONG);

    let short_cfg = SimConfig::table1().with_insts(WARMUP, SHORT);
    let long_cfg = SimConfig::table1().with_insts(WARMUP, LONG);

    // Touch every lazy global (uop-kind template table, etc.) so the
    // counted runs see only per-run allocations.
    Simulator::new(long_cfg.clone()).run_trace(profile.name, &trace);

    let (short_allocs, short_report) =
        allocs_during(|| Simulator::new(short_cfg.clone()).run_trace(profile.name, &trace));
    let (long_allocs, long_report) =
        allocs_during(|| Simulator::new(long_cfg.clone()).run_trace(profile.name, &trace));

    // Sanity: the long run really did simulate ~4x the measured batches
    // (the measurement boundary snaps to a prediction-window edge, so
    // the counts can undershoot by a few instructions).
    assert!(short_report.insts.abs_diff(SHORT) < 100);
    assert!(long_report.insts.abs_diff(LONG) < 100);
    assert!(long_report.cycles > short_report.cycles);

    // 60k extra instructions, zero extra allocations per batch: every
    // allocation is setup or report teardown. A handful of amortized
    // high-water grows of reused buffers (a larger window late in the
    // run) are tolerated; anything per-batch would show up as thousands.
    let delta = long_allocs.saturating_sub(short_allocs);
    assert!(
        delta <= 8,
        "hot loop allocated in steady state: {short_allocs} allocs for \
         {SHORT} measured insts vs {long_allocs} for {LONG} (+{delta})"
    );
}

#[test]
#[ignore]
fn diag_alloc_breakdown() {
    use ucsim_pipeline::PwTrace;
    const WARMUP: u64 = 5_000;
    const SHORT: u64 = 20_000;
    const LONG: u64 = 80_000;
    let profile = WorkloadProfile::by_name("redis").expect("known workload");
    let program = Program::generate(&profile);
    let trace = record_workload(&profile, &program, WARMUP + LONG);
    let short_cfg = SimConfig::table1().with_insts(WARMUP, SHORT);
    let long_cfg = SimConfig::table1().with_insts(WARMUP, LONG);
    Simulator::new(long_cfg.clone()).run_trace(profile.name, &trace);
    let (rs, _) = allocs_during(|| PwTrace::record(&trace, &short_cfg));
    let (rl, _) = allocs_during(|| PwTrace::record(&trace, &long_cfg));
    println!("record: short={rs} long={rl}");
    let ps = PwTrace::record(&trace, &short_cfg);
    let pl = PwTrace::record(&trace, &long_cfg);
    let (ys, _) = allocs_during(|| ps.replay(profile.name, &short_cfg));
    let (yl, _) = allocs_during(|| pl.replay(profile.name, &long_cfg));
    println!("replay: short={ys} long={yl}");
}

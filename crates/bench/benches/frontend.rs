//! Microbenchmarks of the front-end substrates: trace generation, TAGE
//! prediction, and prediction-window generation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ucsim_bpu::{BpuConfig, PwGenerator, Tage};
use ucsim_model::Addr;
use ucsim_trace::{Program, WorkloadProfile};

fn bench_trace_generation(c: &mut Criterion) {
    let profile = WorkloadProfile::by_name("bm-ds").expect("profile");
    let program = Program::generate(&profile);
    let n = 100_000u64;
    let mut g = c.benchmark_group("trace");
    g.throughput(Throughput::Elements(n));
    g.bench_function("walk_100k_insts", |b| {
        b.iter(|| {
            let count = program.walk(&profile).take(n as usize).count();
            black_box(count)
        })
    });
    g.finish();
}

fn bench_tage(c: &mut Criterion) {
    let n = 100_000u64;
    let mut g = c.benchmark_group("tage");
    g.throughput(Throughput::Elements(n));
    g.bench_function("predict_update_100k", |b| {
        b.iter(|| {
            let mut t = Tage::new(Default::default());
            let mut mis = 0u64;
            for i in 0..n {
                let pc = Addr::new(0x1000 + (i % 512) * 8);
                let taken = (i / 3) % 5 != 0;
                let p = t.predict(pc);
                t.update(pc, taken, p);
                mis += u64::from(p != taken);
            }
            black_box(mis)
        })
    });
    g.finish();
}

fn bench_pw_generation(c: &mut Criterion) {
    let profile = WorkloadProfile::by_name("bm-ds").expect("profile");
    let program = Program::generate(&profile);
    let n = 100_000usize;
    let mut g = c.benchmark_group("pwgen");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("pws_over_100k_insts", |b| {
        b.iter(|| {
            let stream = program.walk(&profile).take(n);
            let mut gen = PwGenerator::new(BpuConfig::default(), stream);
            let mut pws = 0u64;
            while gen.advance().is_some() {
                pws += 1;
            }
            black_box(pws)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_trace_generation,
    bench_tage,
    bench_pw_generation
);
criterion_main!(benches);

//! Microbenchmarks of the uop cache model: fill and lookup throughput per
//! organization, and SMC invalidation probes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ucsim_model::{Addr, DynInst, InstClass, PwId};
use ucsim_uopcache::{
    AccumulationBuffer, CompactionPolicy, UopCache, UopCacheConfig, UopCacheEntry,
};

/// Builds a realistic entry stream from a long synthetic code run.
fn entry_stream(n: usize, cfg: &UopCacheConfig) -> Vec<UopCacheEntry> {
    let mut acc = AccumulationBuffer::new(cfg.clone());
    let mut out = Vec::new();
    let mut pc = 0x10_0000u64;
    let mut i = 0u64;
    while out.len() < n {
        let len = 3 + (i % 5) as u8;
        let uops = 1 + (i % 3) as u8;
        let taken = i % 7 == 6;
        let inst = DynInst::simple(Addr::new(pc), len, InstClass::IntAlu).with_uops(uops);
        out.extend(acc.push(&inst, PwId(i / 5), taken));
        pc = if taken { pc + 0x140 } else { pc + len as u64 };
        i += 1;
    }
    out.truncate(n);
    out
}

fn bench_fill(c: &mut Criterion) {
    let mut g = c.benchmark_group("oc_fill");
    for (label, cfg) in [
        ("baseline", UopCacheConfig::baseline_2k()),
        (
            "fpwac2",
            UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
        ),
        (
            "fpwac3",
            UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 3),
        ),
    ] {
        let entries = entry_stream(4096, &cfg);
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut oc = UopCache::new(cfg.clone());
                for e in &entries {
                    black_box(oc.fill(*e));
                }
                oc.resident_entries()
            })
        });
    }
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let cfg = UopCacheConfig::baseline_2k();
    let entries = entry_stream(2048, &cfg);
    let mut oc = UopCache::new(cfg);
    for e in &entries {
        oc.fill(*e);
    }
    let probes: Vec<Addr> = entries.iter().map(|e| e.start).collect();
    c.bench_function("oc_lookup_hit_mix", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for a in &probes {
                if oc.lookup(black_box(*a)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
}

fn bench_invalidate(c: &mut Criterion) {
    let cfg = UopCacheConfig::baseline_2k().with_clasp();
    let entries = entry_stream(2048, &cfg);
    c.bench_function("oc_smc_invalidate", |b| {
        b.iter(|| {
            let mut oc = UopCache::new(cfg.clone());
            for e in &entries {
                oc.fill(*e);
            }
            let mut removed = 0;
            for i in 0..64u64 {
                removed += oc.invalidate_icache_line(Addr::new(0x10_0000 + i * 64).line());
            }
            removed
        })
    });
}

criterion_group!(benches, bench_fill, bench_lookup, bench_invalidate);
criterion_main!(benches);

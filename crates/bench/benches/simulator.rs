//! End-to-end simulator throughput: simulated instructions per second for
//! the paper's key configurations.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use ucsim_pipeline::{SimConfig, Simulator};
use ucsim_trace::{Program, WorkloadProfile};
use ucsim_uopcache::{CompactionPolicy, UopCacheConfig};

fn bench_simulator(c: &mut Criterion) {
    let profile = WorkloadProfile::by_name("bm-ds").expect("profile");
    let program = Program::generate(&profile);
    let insts = 100_000u64;
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.throughput(Throughput::Elements(insts));
    for (label, oc) in [
        ("baseline_2k", UopCacheConfig::baseline_2k()),
        ("clasp_2k", UopCacheConfig::baseline_2k().with_clasp()),
        (
            "fpwac_2k",
            UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
        ),
        (
            "baseline_64k",
            UopCacheConfig::baseline_with_capacity(65536),
        ),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let cfg = SimConfig::table1()
                    .with_uop_cache(oc.clone())
                    .with_insts(5_000, insts);
                let r = Simulator::new(cfg).run(&profile, &program);
                black_box(r.cycles)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);

//! In-memory traces with a compact binary on-disk format.
//!
//! For most experiments the walker is consumed streaming, but tests,
//! examples and trace exchange want a materialized [`Trace`] that can be
//! saved and reloaded byte-identically.

use std::io::{self, Read, Write};

use ucsim_model::{Addr, BranchExec, DynInst, InstClass};

/// Magic bytes of the trace format ("UCT1").
const MAGIC: u32 = 0x5543_5431;

/// A materialized dynamic trace.
///
/// # Example
///
/// ```
/// use ucsim_trace::{Program, Trace, WorkloadProfile};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = WorkloadProfile::quick_test();
/// let prog = Program::generate(&p);
/// let t = Trace::record(prog.walk(&p).take(256));
/// let bytes = t.to_bytes();
/// let back = Trace::from_bytes(&bytes)?;
/// assert_eq!(t.insts(), back.insts());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    insts: Vec<DynInst>,
}

impl Trace {
    /// Records all instructions from an iterator.
    pub fn record<I: IntoIterator<Item = DynInst>>(src: I) -> Self {
        Trace {
            insts: src.into_iter().collect(),
        }
    }

    /// The recorded instructions.
    pub fn insts(&self) -> &[DynInst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterates by value (for feeding the simulator).
    pub fn iter(&self) -> impl Iterator<Item = DynInst> + '_ {
        self.insts.iter().copied()
    }

    /// Serializes into the compact binary format (big-endian fields,
    /// byte-identical to the historical `bytes`-based encoder).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.insts.len() * 22);
        buf.extend_from_slice(&MAGIC.to_be_bytes());
        buf.extend_from_slice(&(self.insts.len() as u64).to_be_bytes());
        for i in &self.insts {
            buf.extend_from_slice(&i.pc.get().to_be_bytes());
            let (flags, aux) = match (i.branch, i.mem_addr) {
                (Some(b), _) => (0b01 | ((b.taken as u8) << 2), b.target.get()),
                (None, Some(m)) => (0b10, m.get()),
                (None, None) => (0, 0),
            };
            buf.extend_from_slice(&aux.to_be_bytes());
            buf.push(i.len);
            buf.push(i.uops);
            buf.push(i.imm_disp);
            buf.push(flags | ((i.microcoded as u8) << 3));
            buf.push(class_code(i.class));
        }
        buf
    }

    /// Deserializes from [`Self::to_bytes`] output.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on bad magic, truncation, or unknown class
    /// codes.
    pub fn from_bytes(data: &[u8]) -> io::Result<Self> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_owned());
        let mut r = Reader { data, pos: 0 };
        if r.remaining() < 12 {
            return Err(bad("truncated header"));
        }
        if r.get_u32() != MAGIC {
            return Err(bad("bad magic"));
        }
        let n = r.get_u64() as usize;
        let mut insts = Vec::with_capacity(n.min(r.remaining() / 21));
        for _ in 0..n {
            if r.remaining() < 21 {
                return Err(bad("truncated record"));
            }
            let pc = Addr::new(r.get_u64());
            let aux = r.get_u64();
            let len = r.get_u8();
            let uops = r.get_u8();
            let imm_disp = r.get_u8();
            let flags = r.get_u8();
            let class = class_from_code(r.get_u8()).ok_or_else(|| bad("bad class"))?;
            let branch = (flags & 0b01 != 0).then(|| BranchExec {
                taken: flags & 0b100 != 0,
                target: Addr::new(aux),
            });
            let mem_addr = (flags & 0b10 != 0).then(|| Addr::new(aux));
            insts.push(DynInst {
                pc,
                len,
                uops,
                imm_disp,
                microcoded: flags & 0b1000 != 0,
                class,
                branch,
                mem_addr,
            });
        }
        Ok(Trace { insts })
    }

    /// Writes the binary format to `w`. A `&mut` reference works as the
    /// writer (`W: Write` by value, per the usual std convention).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(&self.to_bytes())
    }

    /// Reads the binary format from `r`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and format errors.
    pub fn load<R: Read>(mut r: R) -> io::Result<Self> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        Self::from_bytes(&buf)
    }
}

impl FromIterator<DynInst> for Trace {
    fn from_iter<I: IntoIterator<Item = DynInst>>(iter: I) -> Self {
        Trace::record(iter)
    }
}

impl Extend<DynInst> for Trace {
    fn extend<I: IntoIterator<Item = DynInst>>(&mut self, iter: I) {
        self.insts.extend(iter);
    }
}

/// Big-endian cursor over a byte slice; callers bounds-check via
/// [`Reader::remaining`] before each record.
struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        let v = self.data[self.pos];
        self.pos += 1;
        v
    }

    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(
            self.data[self.pos..self.pos + 4]
                .try_into()
                .expect("4 bytes"),
        );
        self.pos += 4;
        v
    }

    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(
            self.data[self.pos..self.pos + 8]
                .try_into()
                .expect("8 bytes"),
        );
        self.pos += 8;
        v
    }
}

fn class_code(c: InstClass) -> u8 {
    match c {
        InstClass::IntAlu => 0,
        InstClass::IntMul => 1,
        InstClass::IntDiv => 2,
        InstClass::Load => 3,
        InstClass::Store => 4,
        InstClass::CondBranch => 5,
        InstClass::JumpDirect => 6,
        InstClass::JumpIndirect => 7,
        InstClass::Call => 8,
        InstClass::Ret => 9,
        InstClass::Fp => 10,
        InstClass::Simd => 11,
        InstClass::Nop => 12,
    }
}

fn class_from_code(code: u8) -> Option<InstClass> {
    Some(match code {
        0 => InstClass::IntAlu,
        1 => InstClass::IntMul,
        2 => InstClass::IntDiv,
        3 => InstClass::Load,
        4 => InstClass::Store,
        5 => InstClass::CondBranch,
        6 => InstClass::JumpDirect,
        7 => InstClass::JumpIndirect,
        8 => InstClass::Call,
        9 => InstClass::Ret,
        10 => InstClass::Fp,
        11 => InstClass::Simd,
        12 => InstClass::Nop,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Program, WorkloadProfile};

    fn sample() -> Trace {
        let p = WorkloadProfile::quick_test();
        let prog = Program::generate(&p);
        Trace::record(prog.walk(&p).take(2000))
    }

    #[test]
    fn roundtrip_is_lossless() {
        let t = sample();
        let back = Trace::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn save_load_via_io() {
        let t = sample();
        let mut buf = Vec::new();
        t.save(&mut buf).unwrap();
        let back = Trace::load(buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = sample().to_bytes().to_vec();
        bytes[0] ^= 0xff;
        assert!(Trace::from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let bytes = sample().to_bytes();
        assert!(Trace::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::default();
        assert!(t.is_empty());
        let back = Trace::from_bytes(&t.to_bytes()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let p = WorkloadProfile::quick_test();
        let prog = Program::generate(&p);
        let t: Trace = prog.walk(&p).take(10).collect();
        assert_eq!(t.len(), 10);
    }

    #[test]
    fn all_class_codes_roundtrip() {
        for code in 0..=12u8 {
            let c = class_from_code(code).unwrap();
            assert_eq!(class_code(c), code);
        }
        assert!(class_from_code(13).is_none());
    }
}

//! # ucsim-trace
//!
//! Synthetic workload substrate: statistically calibrated stand-ins for the
//! SimNow full-system traces the paper evaluated (Table II), which are
//! proprietary and cannot be redistributed.
//!
//! A [`WorkloadProfile`] describes a workload's *shape*: static code
//! footprint, basic-block sizes, instruction mix, loop/call structure,
//! branch predictability (targeting the Table II branch-MPKI column), data
//! footprint and phase behaviour. [`Program::generate`] expands a profile
//! into a concrete synthetic binary — functions of basic blocks laid out
//! in a flat physical address space with x86-like variable-length
//! instructions — and [`TraceWalker`] executes it deterministically,
//! yielding the `DynInst` stream the simulator consumes.
//!
//! Everything is seeded: the same profile always produces the same program
//! and the same trace, so A/B comparisons between uop cache designs see
//! identical instruction streams.
//!
//! # Example
//!
//! ```
//! use ucsim_trace::{Program, WorkloadProfile};
//!
//! let profile = WorkloadProfile::quick_test();
//! let program = Program::generate(&profile);
//! let trace: Vec<_> = program.walk(&profile).take(1000).collect();
//! assert_eq!(trace.len(), 1000);
//! // Control flow is consistent: each inst follows the previous one.
//! for w in trace.windows(2) {
//!     assert_eq!(w[1].pc, w[0].next_pc());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kernels;
mod loader;
mod profile;
mod program;
mod share;
mod stats;
mod tracefile;
mod walker;

pub use loader::load_asm;
pub use profile::WorkloadProfile;
pub use program::{BasicBlock, Function, Program, TermInst, TermKind};
pub use share::{record_workload, ReplayIter, SharedTrace, TraceHandle, TraceKey, TraceStore};
pub use stats::TraceStats;
pub use tracefile::Trace;
pub use walker::TraceWalker;

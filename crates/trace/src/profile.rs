//! Workload profiles — synthetic stand-ins for Table II.
//!
//! Each profile encodes the *shape* of one evaluated workload: hot code
//! footprint (the lever behind the paper's 2K→64K capacity study), basic
//! block geometry (the lever behind entry fragmentation), instruction mix,
//! call/loop structure and branch predictability (targeting the Table II
//! branch-MPKI column). The measured MPKI is reported next to the paper's
//! value by the Table II harness; matching the trend, not the digit, is
//! the goal.

use ucsim_isa::InstMix;

/// Which preset instruction mix a profile uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixKind {
    /// Integer-dominated (SPECint-like).
    Integer,
    /// Server / managed runtime.
    Server,
    /// Vector/media.
    Vector,
    /// Analytics (Spark/Mahout).
    Analytics,
}

impl MixKind {
    /// Materializes the instruction mix.
    pub fn to_mix(self) -> InstMix {
        match self {
            MixKind::Integer => InstMix::integer_heavy(),
            MixKind::Server => InstMix::server(),
            MixKind::Vector => InstMix::vector_heavy(),
            MixKind::Analytics => InstMix::analytics(),
        }
    }
}

/// A complete description of one synthetic workload.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Short name (matches the paper's x-axis labels, e.g. "bm-cc").
    pub name: &'static str,
    /// Suite label ("Cloud", "Server", "SPEC CPU 2017").
    pub suite: &'static str,
    /// Master seed; everything downstream derives from it.
    pub seed: u64,
    /// Instruction mix preset.
    pub mix: MixKind,
    /// Number of functions in the synthetic binary.
    pub num_funcs: usize,
    /// Mean basic blocks per function (geometric).
    pub blocks_per_func_mean: f64,
    /// Mean body instructions per basic block (geometric).
    pub insts_per_block_mean: f64,
    /// Probability a block ends in a loop back-edge.
    pub p_loop: f64,
    /// Mean loop trip count (geometric).
    pub loop_trip_mean: f64,
    /// Probability a block ends in a call.
    pub p_call: f64,
    /// Probability a block ends in an unconditional forward jump.
    pub p_jump: f64,
    /// Probability a block ends in a conditional forward branch.
    pub p_cond: f64,
    /// Probability a block ends in an indirect jump (switch).
    pub p_indirect: f64,
    /// Minority-outcome scale of predictable conditional branches: a
    /// mostly-taken branch falls through with probability
    /// `~0.1 × cond_taken_bias` on average (and symmetrically for
    /// mostly-not-taken). Lower ⇒ more biased ⇒ fewer baseline
    /// mispredictions.
    pub cond_taken_bias: f64,
    /// Fraction of conditional branches that are data-dependent noise.
    pub noisy_frac: f64,
    /// Taken probability of noisy branches (≈0.5 ⇒ hardest).
    pub noisy_bias: f64,
    /// Zipf exponent for dispatcher function selection (lower ⇒ flatter ⇒
    /// larger hot footprint).
    pub func_zipf_s: f64,
    /// Rotate the hot set every this many instructions (phase behaviour).
    pub phase_insts: Option<u64>,
    /// Data working set in 64-byte lines.
    pub data_lines: usize,
    /// Zipf exponent for data accesses.
    pub data_zipf_s: f64,
    /// The paper's Table II branch MPKI for this workload (reference).
    pub target_mpki: f64,
    /// Probability a store writes *code* (self-modifying code / JIT
    /// recompilation; triggers uop cache + I-cache invalidation probes).
    pub p_smc_store: f64,
}

impl WorkloadProfile {
    /// Approximate static instruction footprint (diagnostic).
    pub fn approx_static_insts(&self) -> f64 {
        self.num_funcs as f64 * self.blocks_per_func_mean * (self.insts_per_block_mean + 1.0)
    }

    /// A tiny profile for fast unit tests (not part of Table II).
    pub fn quick_test() -> Self {
        WorkloadProfile {
            name: "quick-test",
            suite: "test",
            seed: 0xDEAD_BEEF,
            mix: MixKind::Integer,
            num_funcs: 12,
            blocks_per_func_mean: 6.0,
            insts_per_block_mean: 5.0,
            p_loop: 0.15,
            loop_trip_mean: 6.0,
            p_call: 0.12,
            p_jump: 0.08,
            p_cond: 0.35,
            p_indirect: 0.02,
            cond_taken_bias: 0.154,
            noisy_frac: 0.024,
            noisy_bias: 0.6,
            func_zipf_s: 1.2,
            phase_insts: None,
            data_lines: 1 << 10,
            data_zipf_s: 1.1,
            target_mpki: 5.0,
            p_smc_store: 0.0,
        }
    }

    /// The walker-side profile for user-assembled (ucasm) programs.
    ///
    /// A hand-written program carries its own control-flow structure and
    /// branch annotations, so most profile knobs are irrelevant — this
    /// profile only supplies what the dynamic walker still samples:
    /// `seed` (branch outcome streams and the data-address base), the
    /// data-footprint knobs, and `p_smc_store = 0` (user programs never
    /// self-modify). `func_zipf_s = 0` selects indirect-call callees
    /// uniformly: the calibrated Zipf skew never picks rank 0, which
    /// would make small hand-written `calli` lists unreachable.
    pub fn user_program(seed: u64) -> Self {
        WorkloadProfile {
            name: "user-asm",
            suite: "user",
            seed,
            func_zipf_s: 0.0,
            ..Self::quick_test()
        }
    }

    /// The thirteen Table II workloads, in the paper's order.
    pub fn table2() -> Vec<WorkloadProfile> {
        let base = WorkloadProfile {
            name: "",
            suite: "",
            seed: 0,
            mix: MixKind::Integer,
            num_funcs: 400,
            blocks_per_func_mean: 24.0,
            insts_per_block_mean: 1.6,
            p_loop: 0.06,
            loop_trip_mean: 6.0,
            p_call: 0.09,
            p_jump: 0.16,
            p_cond: 0.48,
            p_indirect: 0.02,
            cond_taken_bias: 0.224,
            noisy_frac: 0.060,
            noisy_bias: 0.62,
            func_zipf_s: 1.15,
            phase_insts: None,
            data_lines: 1 << 14,
            data_zipf_s: 1.1,
            target_mpki: 5.0,
            p_smc_store: 0.0,
        };
        vec![
            // --- Cloud: huge, flat code footprints, phase churn.
            WorkloadProfile {
                name: "sp(log_regr)",
                suite: "Cloud",
                seed: 101,
                mix: MixKind::Analytics,
                num_funcs: 900,
                blocks_per_func_mean: 10.0,
                insts_per_block_mean: 6.0,
                noisy_frac: 0.078,
                func_zipf_s: 0.50,
                phase_insts: Some(400_000),
                data_lines: 1 << 16,
                cond_taken_bias: 0.224,
                p_smc_store: 1e-5,
                target_mpki: 10.37,
                ..base.clone()
            },
            WorkloadProfile {
                name: "sp(tr_cnt)",
                suite: "Cloud",
                seed: 102,
                mix: MixKind::Analytics,
                num_funcs: 800,
                blocks_per_func_mean: 10.0,
                insts_per_block_mean: 6.0,
                noisy_frac: 0.051,
                func_zipf_s: 0.52,
                phase_insts: Some(400_000),
                data_lines: 1 << 16,
                cond_taken_bias: 0.196,
                p_smc_store: 1e-5,
                target_mpki: 7.9,
                ..base.clone()
            },
            WorkloadProfile {
                name: "sp(pg_rnk)",
                suite: "Cloud",
                seed: 103,
                mix: MixKind::Analytics,
                num_funcs: 850,
                blocks_per_func_mean: 10.0,
                insts_per_block_mean: 6.0,
                noisy_frac: 0.060,
                func_zipf_s: 0.50,
                phase_insts: Some(400_000),
                data_lines: 1 << 16,
                cond_taken_bias: 0.210,
                p_smc_store: 1e-5,
                target_mpki: 9.27,
                ..base.clone()
            },
            WorkloadProfile {
                name: "nutch",
                suite: "Cloud",
                seed: 104,
                mix: MixKind::Server,
                num_funcs: 700,
                blocks_per_func_mean: 11.0,
                insts_per_block_mean: 6.0,
                noisy_frac: 0.024,
                func_zipf_s: 0.60,
                phase_insts: Some(500_000),
                data_lines: 1 << 15,
                cond_taken_bias: 0.154,
                p_smc_store: 1e-5,
                target_mpki: 5.12,
                ..base.clone()
            },
            WorkloadProfile {
                name: "mahout",
                suite: "Cloud",
                seed: 105,
                mix: MixKind::Analytics,
                num_funcs: 750,
                blocks_per_func_mean: 10.0,
                insts_per_block_mean: 6.0,
                noisy_frac: 0.060,
                func_zipf_s: 0.55,
                phase_insts: Some(450_000),
                data_lines: 1 << 15,
                cond_taken_bias: 0.210,
                p_smc_store: 1e-5,
                target_mpki: 9.05,
                ..base.clone()
            },
            // --- Server.
            WorkloadProfile {
                name: "redis",
                suite: "Server",
                seed: 106,
                mix: MixKind::Server,
                num_funcs: 250,
                blocks_per_func_mean: 8.0,
                insts_per_block_mean: 6.5,
                p_loop: 0.04,
                noisy_frac: 0.002,
                noisy_bias: 0.7,
                cond_taken_bias: 0.035,
                func_zipf_s: 1.30,
                data_lines: 1 << 15,
                loop_trip_mean: 12.0,
                target_mpki: 1.01,
                ..base.clone()
            },
            WorkloadProfile {
                name: "jvm",
                suite: "Server",
                seed: 107,
                mix: MixKind::Server,
                num_funcs: 520,
                blocks_per_func_mean: 10.0,
                insts_per_block_mean: 6.0,
                noisy_frac: 0.009,
                func_zipf_s: 0.80,
                p_indirect: 0.04,
                phase_insts: Some(800_000),
                data_lines: 1 << 15,
                cond_taken_bias: 0.063,
                p_smc_store: 2e-5,
                target_mpki: 2.15,
                ..base.clone()
            },
            // --- SPEC CPU 2017 (rate, integer unless noted).
            WorkloadProfile {
                name: "bm-pb",
                suite: "SPEC CPU 2017",
                seed: 108,
                mix: MixKind::Integer,
                num_funcs: 420,
                blocks_per_func_mean: 9.0,
                insts_per_block_mean: 6.0,
                noisy_frac: 0.009,
                func_zipf_s: 0.95,
                p_indirect: 0.035,
                data_lines: 1 << 14,
                cond_taken_bias: 0.063,
                target_mpki: 2.07,
                ..base.clone()
            },
            WorkloadProfile {
                name: "bm-cc",
                suite: "SPEC CPU 2017",
                seed: 109,
                mix: MixKind::Integer,
                num_funcs: 1000,
                blocks_per_func_mean: 12.0,
                insts_per_block_mean: 5.0,
                noisy_frac: 0.060,
                func_zipf_s: 0.55,
                p_cond: 0.42,
                p_jump: 0.12,
                data_lines: 1 << 15,
                target_mpki: 5.48,
                ..base.clone()
            },
            WorkloadProfile {
                name: "bm-x64",
                suite: "SPEC CPU 2017",
                seed: 110,
                mix: MixKind::Vector,
                num_funcs: 130,
                blocks_per_func_mean: 8.0,
                insts_per_block_mean: 6.0,
                p_loop: 0.15,
                loop_trip_mean: 16.0,
                noisy_frac: 0.007,
                func_zipf_s: 1.20,
                data_lines: 1 << 15,
                cond_taken_bias: 0.042,
                p_cond: 0.30,
                p_jump: 0.10,
                phase_insts: Some(300_000),
                target_mpki: 1.31,
                ..base.clone()
            },
            WorkloadProfile {
                name: "bm-ds",
                suite: "SPEC CPU 2017",
                seed: 111,
                mix: MixKind::Integer,
                num_funcs: 310,
                blocks_per_func_mean: 9.0,
                insts_per_block_mean: 6.0,
                noisy_frac: 0.027,
                func_zipf_s: 0.95,
                data_lines: 1 << 14,
                cond_taken_bias: 0.154,
                target_mpki: 4.5,
                ..base.clone()
            },
            WorkloadProfile {
                name: "bm-lla",
                suite: "SPEC CPU 2017",
                seed: 112,
                mix: MixKind::Integer,
                num_funcs: 210,
                blocks_per_func_mean: 8.0,
                insts_per_block_mean: 5.0,
                noisy_frac: 0.180,
                noisy_bias: 0.55,
                func_zipf_s: 1.10,
                data_lines: 1 << 13,
                cond_taken_bias: 0.280,
                target_mpki: 11.51,
                ..base.clone()
            },
            WorkloadProfile {
                name: "bm-z",
                suite: "SPEC CPU 2017",
                seed: 113,
                mix: MixKind::Integer,
                num_funcs: 260,
                blocks_per_func_mean: 8.0,
                insts_per_block_mean: 6.0,
                noisy_frac: 0.192,
                noisy_bias: 0.55,
                func_zipf_s: 1.00,
                data_lines: 1 << 15,
                cond_taken_bias: 0.280,
                target_mpki: 11.61,
                ..base
            },
        ]
    }

    /// Looks a Table II profile up by name.
    pub fn by_name(name: &str) -> Option<WorkloadProfile> {
        Self::table2().into_iter().find(|p| p.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_workloads() {
        assert_eq!(WorkloadProfile::table2().len(), 13);
    }

    #[test]
    fn names_match_paper_labels() {
        let names: Vec<_> = WorkloadProfile::table2().iter().map(|p| p.name).collect();
        for expected in [
            "sp(log_regr)",
            "sp(tr_cnt)",
            "sp(pg_rnk)",
            "nutch",
            "mahout",
            "redis",
            "jvm",
            "bm-pb",
            "bm-cc",
            "bm-x64",
            "bm-ds",
            "bm-lla",
            "bm-z",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
    }

    #[test]
    fn seeds_are_unique() {
        let profiles = WorkloadProfile::table2();
        let mut seeds: Vec<_> = profiles.iter().map(|p| p.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), profiles.len());
    }

    #[test]
    fn probabilities_are_probabilities() {
        for p in WorkloadProfile::table2() {
            for v in [
                p.p_loop,
                p.p_call,
                p.p_jump,
                p.p_cond,
                p.p_indirect,
                p.noisy_frac,
                p.noisy_bias,
                p.cond_taken_bias,
            ] {
                assert!((0.0..=1.0).contains(&v), "{}: bad prob {v}", p.name);
            }
            assert!(p.p_loop + p.p_call + p.p_jump + p.p_cond + p.p_indirect < 1.0);
        }
    }

    #[test]
    fn footprints_span_the_capacity_study() {
        let profiles = WorkloadProfile::table2();
        let gcc = profiles.iter().find(|p| p.name == "bm-cc").unwrap();
        let x264 = profiles.iter().find(|p| p.name == "bm-x64").unwrap();
        // gcc-like footprint must dwarf x264's (capacity sensitivity).
        assert!(gcc.approx_static_insts() > 5.0 * x264.approx_static_insts());
    }

    #[test]
    fn by_name_roundtrip() {
        assert!(WorkloadProfile::by_name("redis").is_some());
        assert!(WorkloadProfile::by_name("nope").is_none());
    }

    #[test]
    fn mpki_targets_match_table2() {
        let get = |n: &str| WorkloadProfile::by_name(n).unwrap().target_mpki;
        assert_eq!(get("sp(log_regr)"), 10.37);
        assert_eq!(get("redis"), 1.01);
        assert_eq!(get("bm-cc"), 5.48);
        assert_eq!(get("bm-z"), 11.61);
    }
}

//! Trace characterization.
//!
//! [`TraceStats`] summarizes the properties the figures depend on: branch
//! density, taken fraction, dynamic basic-block length, instruction byte
//! lengths, uop expansion rate, and code footprint in I-cache lines /
//! uops. The Table II harness prints these per workload next to the
//! paper's reference values.

use std::collections::HashSet;

use ucsim_model::{DynInst, Histogram, RunningStat};

/// Streaming trace statistics.
#[derive(Debug, Clone)]
pub struct TraceStats {
    insts: u64,
    uops: u64,
    branches: u64,
    cond_branches: u64,
    taken_branches: u64,
    microcoded: u64,
    mem_ops: u64,
    imm_fields: u64,
    len_hist: Histogram,
    block_len: RunningStat,
    cur_block: u64,
    code_lines: HashSet<u64>,
    static_pcs: HashSet<u64>,
    static_uops: u64,
}

impl Default for TraceStats {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        TraceStats {
            insts: 0,
            uops: 0,
            branches: 0,
            cond_branches: 0,
            taken_branches: 0,
            microcoded: 0,
            mem_ops: 0,
            imm_fields: 0,
            len_hist: Histogram::new(&[1, 2, 3, 4, 5, 6, 8, 10, 15]),
            block_len: RunningStat::new(),
            cur_block: 0,
            code_lines: HashSet::new(),
            static_pcs: HashSet::new(),
            static_uops: 0,
        }
    }

    /// Consumes one instruction.
    pub fn observe(&mut self, i: &DynInst) {
        self.insts += 1;
        self.uops += i.uops as u64;
        self.len_hist.record(i.len as u64);
        self.imm_fields += i.imm_disp as u64;
        if i.microcoded {
            self.microcoded += 1;
        }
        if i.class.is_mem() {
            self.mem_ops += 1;
        }
        self.cur_block += 1;
        if i.class.is_branch() {
            self.branches += 1;
            if i.class.is_cond_branch() {
                self.cond_branches += 1;
            }
            if i.is_taken_branch() {
                self.taken_branches += 1;
            }
            self.block_len.push(self.cur_block as f64);
            self.cur_block = 0;
        }
        self.code_lines.insert(i.pc.line().number());
        if self.static_pcs.insert(i.pc.get()) {
            self.static_uops += i.uops as u64;
        }
    }

    /// Builds statistics from a full pass over a stream.
    pub fn from_stream<I: IntoIterator<Item = DynInst>>(src: I) -> Self {
        let mut s = Self::new();
        for i in src {
            s.observe(&i);
        }
        s
    }

    /// Dynamic instruction count.
    pub fn insts(&self) -> u64 {
        self.insts
    }

    /// Dynamic uop count.
    pub fn uops(&self) -> u64 {
        self.uops
    }

    /// Mean uops per instruction.
    pub fn uops_per_inst(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.uops as f64 / self.insts as f64
        }
    }

    /// Fraction of instructions that are branches.
    pub fn branch_frac(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.branches as f64 / self.insts as f64
        }
    }

    /// Fraction of executed branches that were taken.
    pub fn taken_frac(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.taken_branches as f64 / self.branches as f64
        }
    }

    /// Mean dynamic basic-block length in instructions.
    pub fn mean_block_len(&self) -> f64 {
        self.block_len.mean()
    }

    /// Mean instruction byte length.
    pub fn mean_inst_len(&self) -> f64 {
        self.len_hist.mean()
    }

    /// Touched code footprint in 64-byte I-cache lines.
    pub fn code_footprint_lines(&self) -> usize {
        self.code_lines.len()
    }

    /// Touched static uop footprint (the unit of the OC capacity axis:
    /// how many uops the hot code would occupy if fully cached).
    pub fn static_uop_footprint(&self) -> u64 {
        self.static_uops
    }

    /// Memory operations per instruction.
    pub fn mem_frac(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.mem_ops as f64 / self.insts as f64
        }
    }

    /// Micro-coded fraction.
    pub fn microcoded_frac(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.microcoded as f64 / self.insts as f64
        }
    }

    /// Immediate/displacement fields per instruction.
    pub fn imm_per_inst(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.imm_fields as f64 / self.insts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Program, WorkloadProfile};

    fn stats(n: usize) -> TraceStats {
        let p = WorkloadProfile::quick_test();
        let prog = Program::generate(&p);
        TraceStats::from_stream(prog.walk(&p).take(n))
    }

    #[test]
    fn counts_add_up() {
        let s = stats(30_000);
        assert_eq!(s.insts(), 30_000);
        assert!(s.uops() >= s.insts());
        assert!(s.uops_per_inst() >= 1.0 && s.uops_per_inst() < 2.0);
    }

    #[test]
    fn block_lengths_match_profile_scale() {
        let s = stats(50_000);
        // quick_test mean body ~5 + terminator ⇒ dynamic blocks ~3-9.
        assert!(
            (2.0..12.0).contains(&s.mean_block_len()),
            "block len {}",
            s.mean_block_len()
        );
    }

    #[test]
    fn x86_like_lengths() {
        let s = stats(50_000);
        assert!(
            (2.5..5.5).contains(&s.mean_inst_len()),
            "mean len {}",
            s.mean_inst_len()
        );
    }

    #[test]
    fn taken_fraction_realistic() {
        let s = stats(50_000);
        // Calls/jumps/rets are always taken; conditionals mixed.
        assert!(
            (0.3..0.95).contains(&s.taken_frac()),
            "taken frac {}",
            s.taken_frac()
        );
    }

    #[test]
    fn footprint_is_positive_and_bounded() {
        let s = stats(50_000);
        assert!(s.code_footprint_lines() > 10);
        assert!(s.static_uop_footprint() > 100);
        // Footprint can't exceed dynamic stream size.
        assert!(s.static_uop_footprint() <= s.uops());
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = TraceStats::new();
        assert_eq!(s.insts(), 0);
        assert_eq!(s.branch_frac(), 0.0);
        assert_eq!(s.uops_per_inst(), 0.0);
        assert_eq!(s.mean_block_len(), 0.0);
    }
}

//! Synthetic program (CFG) generation and physical layout.
//!
//! A [`Program`] is a flat arena of basic blocks grouped into functions and
//! laid out contiguously in physical address space, x86-style: the
//! fall-through successor of a block starts at the block's last byte + 1,
//! so I-cache-line-boundary effects (the heart of the paper) emerge
//! naturally from variable-length instructions.
//!
//! Function 0 is a *dispatcher*: an indirect-call loop that models a
//! driver/interpreter selecting hot functions by a Zipf distribution —
//! this produces the strong code-reuse skew of real workloads while
//! keeping return prediction well-defined (returns always match calls).

use ucsim_isa::{InstSynthesizer, StaticInst};
use ucsim_model::{Addr, InstClass, SplitMix64};

use crate::WorkloadProfile;

/// Terminator variants of a basic block.
#[derive(Debug, Clone, PartialEq)]
pub enum TermKind {
    /// Conditional forward branch to `target_block` with the given taken
    /// probability; `seed` makes per-execution outcomes deterministic.
    CondForward {
        /// Arena index of the taken-path block.
        target_block: usize,
        /// Taken probability per execution.
        p_taken: f64,
        /// Per-branch outcome seed.
        seed: u64,
    },
    /// Conditional loop back-edge to `target_block` (a dominator of this
    /// block); taken `trip-1` times per activation.
    CondLoop {
        /// Arena index of the loop head.
        target_block: usize,
        /// Mean trip count (geometric, per activation).
        trip_mean: f64,
        /// Per-loop trip-count seed.
        seed: u64,
    },
    /// Unconditional direct jump.
    Jump {
        /// Arena index of the target.
        target_block: usize,
    },
    /// Indirect jump (switch) choosing among `targets` per execution.
    IndirectJump {
        /// Candidate arena indices.
        targets: Vec<usize>,
        /// Per-execution selection seed.
        seed: u64,
    },
    /// Direct call; execution resumes at the next block after return.
    Call {
        /// Callee function index.
        callee_func: usize,
    },
    /// Indirect call through a table of function entries (the dispatcher
    /// uses this; Zipf-weighted selection happens in the walker).
    IndirectCall {
        /// Candidate callee function indices.
        callees: Vec<usize>,
        /// Per-execution selection seed.
        seed: u64,
    },
    /// Return to the caller.
    Ret,
}

/// A block terminator: the branch instruction plus its semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct TermInst {
    /// The branch instruction itself (class/len/uops).
    pub inst: StaticInst,
    /// What it does.
    pub kind: TermKind,
}

/// A basic block: straight-line body then an optional terminator.
/// `terminator == None` means pure fall-through into the next block.
#[derive(Debug, Clone, PartialEq)]
pub struct BasicBlock {
    /// Arena index.
    pub id: usize,
    /// Address of the first instruction.
    pub start: Addr,
    /// Straight-line body (no branches).
    pub body: Vec<StaticInst>,
    /// Terminating branch, if any.
    pub terminator: Option<TermInst>,
}

impl BasicBlock {
    /// Total byte length of the block.
    pub fn byte_len(&self) -> u64 {
        let body: u64 = self.body.iter().map(|i| i.len as u64).sum();
        body + self
            .terminator
            .as_ref()
            .map(|t| t.inst.len as u64)
            .unwrap_or(0)
    }

    /// One past the last byte of the block (= fall-through address).
    pub fn end(&self) -> Addr {
        self.start.offset(self.byte_len())
    }

    /// Number of instructions including the terminator.
    pub fn inst_count(&self) -> usize {
        self.body.len() + usize::from(self.terminator.is_some())
    }

    /// Address of the terminator instruction.
    ///
    /// # Panics
    ///
    /// Panics if the block has no terminator.
    pub fn terminator_pc(&self) -> Addr {
        assert!(
            self.terminator.is_some(),
            "block {} has no terminator",
            self.id
        );
        let body: u64 = self.body.iter().map(|i| i.len as u64).sum();
        self.start.offset(body)
    }
}

/// A function: a contiguous range of arena blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function index.
    pub id: usize,
    /// Arena index of the entry block.
    pub entry_block: usize,
    /// Arena index one past the last block.
    pub end_block: usize,
}

impl Function {
    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.end_block - self.entry_block
    }
}

/// The synthetic binary.
#[derive(Debug, Clone)]
pub struct Program {
    /// Functions; index 0 is the dispatcher.
    pub funcs: Vec<Function>,
    /// Global block arena in address order.
    pub blocks: Vec<BasicBlock>,
}

/// Base of the code region; each workload is offset by its seed so that
/// distinct programs never alias (required for SMT sharing, where two
/// threads' code coexists in one physically-indexed uop cache).
const CODE_BASE: u64 = 0x40_0000;

/// Per-seed spacing between workload images (4 MB ≫ any footprint).
const CODE_STRIDE: u64 = 0x40_0000;

/// Computes the code base address for a profile. All code stays below
/// the 4 GiB code ceiling; the data region starts above it, so
/// store-address classification (self-modifying code detection) is a
/// single compare.
pub(crate) fn code_base_for(seed: u64) -> u64 {
    CODE_BASE + (seed % 960) * CODE_STRIDE
}

impl Program {
    /// Expands a profile into a concrete program (deterministic in
    /// `profile.seed`).
    pub fn generate(profile: &WorkloadProfile) -> Program {
        let mut rng = SplitMix64::new(profile.seed);
        let synth = InstSynthesizer::new(profile.mix.to_mix());
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut funcs: Vec<Function> = Vec::new();
        let mut cursor = Addr::new(code_base_for(profile.seed));

        // ---- Function 0: dispatcher (2 blocks) -------------------------
        // B0: small body + IndirectCall over all real function entries.
        // B1: small body + Jump back to B0.
        // Real entries are patched in after all functions are placed.
        {
            let entry = blocks.len();
            let mut body = Vec::new();
            for _ in 0..3 {
                body.push(synth.sample(&mut rng));
            }
            let call_inst = synth.sample_branch(InstClass::Call, &mut rng);
            let b0 = BasicBlock {
                id: entry,
                start: cursor,
                body,
                terminator: Some(TermInst {
                    inst: call_inst,
                    kind: TermKind::IndirectCall {
                        callees: Vec::new(), // patched below
                        seed: rng.next_u64(),
                    },
                }),
            };
            cursor = b0.end();
            blocks.push(b0);

            let mut body = Vec::new();
            for _ in 0..2 {
                body.push(synth.sample(&mut rng));
            }
            let jump_inst = synth.sample_branch(InstClass::JumpDirect, &mut rng);
            let b1 = BasicBlock {
                id: entry + 1,
                start: cursor,
                body,
                terminator: Some(TermInst {
                    inst: jump_inst,
                    kind: TermKind::Jump {
                        target_block: entry,
                    },
                }),
            };
            cursor = b1.end();
            blocks.push(b1);
            funcs.push(Function {
                id: 0,
                entry_block: entry,
                end_block: entry + 2,
            });
        }

        // ---- Real functions --------------------------------------------
        for f in 1..=profile.num_funcs {
            // 16-byte function alignment, like real linkers.
            let aligned = (cursor.get() + 15) & !15;
            cursor = Addr::new(aligned);
            let n_blocks = rng.geometric_mean(profile.blocks_per_func_mean).max(2) as usize;
            let first = blocks.len();

            for b in 0..n_blocks {
                // Cap the geometric tail: without the cap, long blocks
                // dominate *dynamic* instruction counts (length-biased
                // sampling) and stretch branch-free runs far beyond the
                // static mean, inflating uop cache entries.
                let cap = profile.insts_per_block_mean.ceil() as u64 + 2;
                let body_len = rng.geometric_mean(profile.insts_per_block_mean).min(cap) as usize;
                let mut body = Vec::with_capacity(body_len);
                for _ in 0..body_len {
                    body.push(synth.sample(&mut rng));
                }
                let is_last = b == n_blocks - 1;
                let id = blocks.len();

                let terminator = if is_last {
                    Some(TermInst {
                        inst: synth.sample_branch(InstClass::Ret, &mut rng),
                        kind: TermKind::Ret,
                    })
                } else {
                    Self::pick_terminator(profile, &synth, &mut rng, f, id, first, first + n_blocks)
                };

                let block = BasicBlock {
                    id,
                    start: cursor,
                    body,
                    terminator,
                };
                cursor = block.end();
                blocks.push(block);
            }
            funcs.push(Function {
                id: f,
                entry_block: first,
                end_block: first + n_blocks,
            });
        }

        // Patch the dispatcher's callee table with all real entries.
        if let Some(TermInst {
            kind: TermKind::IndirectCall { callees, .. },
            ..
        }) = blocks[0].terminator.as_mut()
        {
            *callees = (1..=profile.num_funcs).collect();
        }

        let program = Program { funcs, blocks };
        program.validate();
        program
    }

    /// Chooses a non-final block terminator per the profile probabilities.
    #[allow(clippy::too_many_arguments)]
    fn pick_terminator(
        profile: &WorkloadProfile,
        synth: &InstSynthesizer,
        rng: &mut SplitMix64,
        func_id: usize,
        block_id: usize,
        func_first: usize,
        func_end: usize,
    ) -> Option<TermInst> {
        let u = rng.unit_f64();
        let mut acc = profile.p_loop;
        if u < acc && block_id > func_first {
            // Loop back-edge to a previous block of this function (up to 3
            // blocks back, so loop bodies span 1–3 blocks).
            let span = 1 + rng.below(3.min((block_id - func_first) as u64)) as usize;
            let target = block_id + 1 - span;
            return Some(TermInst {
                inst: synth.sample_branch(InstClass::CondBranch, rng),
                kind: TermKind::CondLoop {
                    target_block: target,
                    trip_mean: profile.loop_trip_mean,
                    seed: rng.next_u64(),
                },
            });
        }
        acc += profile.p_call;
        if u < acc && func_id < profile.num_funcs {
            // Static acyclic call graph: callee index > caller index.
            // A flat-ish selection spreads utility-function reuse.
            let remaining = profile.num_funcs - func_id;
            let callee = func_id + 1 + rng.zipf(remaining, 0.9);
            return Some(TermInst {
                inst: synth.sample_branch(InstClass::Call, rng),
                kind: TermKind::Call {
                    callee_func: callee.min(profile.num_funcs),
                },
            });
        }
        acc += profile.p_jump;
        if u < acc && block_id + 2 < func_end {
            let skip = 1 + rng.below(2) as usize;
            return Some(TermInst {
                inst: synth.sample_branch(InstClass::JumpDirect, rng),
                kind: TermKind::Jump {
                    target_block: (block_id + 1 + skip).min(func_end - 1),
                },
            });
        }
        acc += profile.p_indirect;
        if u < acc && block_id + 3 < func_end {
            let targets: Vec<usize> = (1..=3)
                .map(|s| (block_id + s + 1).min(func_end - 1))
                .collect();
            return Some(TermInst {
                inst: synth.sample_branch(InstClass::JumpIndirect, rng),
                kind: TermKind::IndirectJump {
                    targets,
                    seed: rng.next_u64(),
                },
            });
        }
        acc += profile.p_cond;
        if u < acc && block_id + 2 < func_end {
            let skip = 1 + rng.below(3) as usize;
            let noisy = rng.chance(profile.noisy_frac);
            let p_taken = if noisy {
                profile.noisy_bias
            } else if rng.chance(0.75) {
                // Most predictable conditionals are mostly-taken (loop-like
                // and error-check-inverted branches dominate real x86
                // traces), which keeps dynamic runs between taken branches
                // short — the fragmentation precondition of the paper.
                // Predictable, mostly-taken (e.g. error-checks inverted).
                1.0 - profile.cond_taken_bias * rng.unit_f64() * 0.16
            } else {
                // Predictable, mostly-not-taken.
                profile.cond_taken_bias * rng.unit_f64() * 0.16
            };
            return Some(TermInst {
                inst: synth.sample_branch(InstClass::CondBranch, rng),
                kind: TermKind::CondForward {
                    target_block: (block_id + 1 + skip).min(func_end - 1),
                    p_taken,
                    seed: rng.next_u64(),
                },
            });
        }
        // Fall-through.
        None
    }

    /// The function containing arena block `block_id`.
    pub fn func_of_block(&self, block_id: usize) -> &Function {
        self.funcs
            .iter()
            .find(|f| (f.entry_block..f.end_block).contains(&block_id))
            .expect("block belongs to a function")
    }

    /// Total static instruction count.
    pub fn static_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.inst_count()).sum()
    }

    /// Total static uop count (the unit of the paper's capacity axis).
    pub fn static_uops(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| {
                b.body.iter().map(|i| i.uops as usize).sum::<usize>()
                    + b.terminator
                        .as_ref()
                        .map(|t| t.inst.uops as usize)
                        .unwrap_or(0)
            })
            .sum()
    }

    /// Code footprint in bytes.
    pub fn code_bytes(&self) -> u64 {
        let last = self.blocks.last().expect("non-empty program");
        let first = self.blocks.first().expect("non-empty program");
        last.end().get() - first.start.get()
    }

    /// Checks structural invariants (layout contiguity, target validity).
    ///
    /// # Panics
    ///
    /// Panics on violation — generation bugs must not produce silently
    /// inconsistent traces.
    pub fn validate(&self) {
        assert!(!self.blocks.is_empty());
        // Code must stay below the 4 GiB ceiling that separates it from
        // the data region (self-modifying-code detection relies on it).
        assert!(
            self.blocks.last().expect("non-empty").end().get() < 0x1_0000_0000,
            "code image crosses into the data region"
        );
        for f in &self.funcs {
            assert!(f.entry_block < f.end_block, "empty function {}", f.id);
            // Blocks within a function are contiguous in memory.
            for b in f.entry_block..f.end_block - 1 {
                assert_eq!(
                    self.blocks[b].end(),
                    self.blocks[b + 1].start,
                    "function {} blocks {} and {} not contiguous",
                    f.id,
                    b,
                    b + 1
                );
            }
        }
        for block in &self.blocks {
            if let Some(t) = &block.terminator {
                assert!(t.inst.class.is_branch(), "terminator must be a branch");
                match &t.kind {
                    TermKind::CondForward {
                        target_block,
                        p_taken,
                        ..
                    } => {
                        assert!(*target_block < self.blocks.len());
                        assert!((0.0..=1.0).contains(p_taken));
                    }
                    TermKind::CondLoop { target_block, .. } => {
                        assert!(*target_block <= block.id, "back-edge must go backwards");
                    }
                    TermKind::Jump { target_block } => {
                        assert!(*target_block < self.blocks.len());
                    }
                    TermKind::IndirectJump { targets, .. } => {
                        assert!(!targets.is_empty());
                        assert!(targets.iter().all(|&t| t < self.blocks.len()));
                    }
                    TermKind::Call { callee_func } => {
                        assert!(*callee_func < self.funcs.len());
                    }
                    TermKind::IndirectCall { callees, .. } => {
                        assert!(!callees.is_empty());
                        assert!(callees.iter().all(|&c| c < self.funcs.len()));
                    }
                    TermKind::Ret => {}
                }
            } else {
                // Fall-through must have a following block in-function.
                let f = self.func_of_block(block.id);
                assert!(
                    block.id + 1 < f.end_block,
                    "fall-through out of function {}",
                    f.id
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = WorkloadProfile::quick_test();
        let a = Program::generate(&p);
        let b = Program::generate(&p);
        assert_eq!(a.blocks.len(), b.blocks.len());
        assert_eq!(a.static_insts(), b.static_insts());
        for (x, y) in a.blocks.iter().zip(&b.blocks) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn validates_and_has_dispatcher() {
        let p = WorkloadProfile::quick_test();
        let prog = Program::generate(&p);
        assert_eq!(prog.funcs[0].num_blocks(), 2);
        match &prog.blocks[0].terminator {
            Some(TermInst {
                kind: TermKind::IndirectCall { callees, .. },
                ..
            }) => assert_eq!(callees.len(), p.num_funcs),
            other => panic!("dispatcher B0 must IndirectCall, got {other:?}"),
        }
    }

    #[test]
    fn every_function_ends_in_ret() {
        let prog = Program::generate(&WorkloadProfile::quick_test());
        for f in prog.funcs.iter().skip(1) {
            let last = &prog.blocks[f.end_block - 1];
            assert!(matches!(
                last.terminator.as_ref().map(|t| &t.kind),
                Some(TermKind::Ret)
            ));
        }
    }

    #[test]
    fn footprint_scales_with_profile() {
        let small = Program::generate(&WorkloadProfile::quick_test());
        let big_profile = WorkloadProfile::by_name("bm-cc").unwrap();
        let big = Program::generate(&big_profile);
        assert!(big.static_uops() > 20 * small.static_uops());
        // gcc-like footprint must exceed the 64K-uop top of the sweep...
        // divided by reuse; at minimum it must far exceed 2K uops.
        assert!(big.static_uops() > 16_000, "{}", big.static_uops());
    }

    #[test]
    fn functions_are_16b_aligned() {
        let prog = Program::generate(&WorkloadProfile::quick_test());
        for f in prog.funcs.iter().skip(1) {
            assert_eq!(prog.blocks[f.entry_block].start.get() % 16, 0);
        }
    }

    #[test]
    fn all_seeds_stay_below_code_ceiling() {
        for seed in [0u64, 1, 959, 960, 0xDEAD_BEEF, u64::MAX] {
            assert!(code_base_for(seed) < 0x1_0000_0000 - 0x40_0000);
        }
    }

    #[test]
    fn distinct_seeds_get_distinct_bases() {
        let a = code_base_for(101);
        let b = code_base_for(102);
        assert_ne!(a, b);
        assert!(a.abs_diff(b) >= 0x40_0000);
    }

    #[test]
    fn call_graph_is_acyclic() {
        let prog = Program::generate(&WorkloadProfile::quick_test());
        for f in prog.funcs.iter().skip(1) {
            for b in f.entry_block..f.end_block {
                if let Some(TermInst {
                    kind: TermKind::Call { callee_func },
                    ..
                }) = &prog.blocks[b].terminator
                {
                    assert!(*callee_func > f.id, "call graph must descend");
                }
            }
        }
    }
}

//! Directed micro-kernels: hand-built programs with *closed-form* expected
//! front-end behaviour.
//!
//! The synthetic Table II workloads are statistical; these kernels are the
//! opposite — minimal, exactly-shaped programs (a straight-line sled, a
//! tight loop, a call chain, a coin-flip grid) whose uop cache, predictor
//! and pipeline behaviour can be reasoned out on paper. The validation
//! suite (`tests/kernels_validation.rs`) asserts those expectations
//! against the full simulator, pinning the whole stack end to end.

use ucsim_isa::StaticInst;
use ucsim_model::{Addr, InstClass};

use crate::{BasicBlock, Function, Program, TermInst, TermKind, WorkloadProfile};

/// Where kernel code is placed (distinct from synthetic workloads).
const KERNEL_BASE: u64 = 0x80_0000;

/// A walk profile suitable for kernels: no phases, tiny data side.
///
/// The structural fields (`num_funcs`, block geometry, branch
/// probabilities) are ignored by hand-built programs; only the dynamic
/// knobs (Zipf over dispatcher callees, data footprint) matter.
pub fn kernel_profile(seed: u64) -> WorkloadProfile {
    let mut p = WorkloadProfile::quick_test();
    p.name = "kernel";
    p.seed = seed;
    p.func_zipf_s = 1.0;
    p.phase_insts = None;
    p.data_lines = 64;
    p.p_smc_store = 0.0;
    p
}

/// Incrementally assembles a valid kernel [`Program`]: dispatcher first,
/// then caller-supplied functions, contiguous layout, validated at build.
struct KernelBuilder {
    blocks: Vec<BasicBlock>,
    funcs: Vec<Function>,
    cursor: Addr,
}

impl KernelBuilder {
    fn new() -> Self {
        KernelBuilder {
            blocks: Vec::new(),
            funcs: Vec::new(),
            cursor: Addr::new(KERNEL_BASE),
        }
    }

    /// Reserves function 0 as the dispatcher (patched at `finish`).
    fn with_dispatcher(mut self) -> Self {
        let b0_id = self.blocks.len();
        let b0 = BasicBlock {
            id: b0_id,
            start: self.cursor,
            body: vec![StaticInst::new(InstClass::IntAlu, 4)],
            terminator: Some(TermInst {
                inst: StaticInst::new(InstClass::Call, 5).with_uops(2),
                kind: TermKind::IndirectCall {
                    callees: Vec::new(),
                    seed: 0xD15C,
                },
            }),
        };
        self.cursor = b0.end();
        self.blocks.push(b0);
        let b1 = BasicBlock {
            id: b0_id + 1,
            start: self.cursor,
            body: vec![StaticInst::new(InstClass::IntAlu, 4)],
            terminator: Some(TermInst {
                inst: StaticInst::new(InstClass::JumpDirect, 2),
                kind: TermKind::Jump {
                    target_block: b0_id,
                },
            }),
        };
        self.cursor = b1.end();
        self.blocks.push(b1);
        self.funcs.push(Function {
            id: 0,
            entry_block: b0_id,
            end_block: b0_id + 2,
        });
        self
    }

    /// Adds a function built from `(body, terminator)` block specs. Block
    /// indices in terminators are *function-relative* and fixed up here.
    fn add_function(&mut self, blocks: Vec<(Vec<StaticInst>, Option<TermInst>)>) -> usize {
        // 16-byte alignment, like the synthetic generator.
        self.cursor = Addr::new((self.cursor.get() + 15) & !15);
        let first = self.blocks.len();
        for (i, (body, term)) in blocks.into_iter().enumerate() {
            let term = term.map(|mut t| {
                t.kind = match t.kind {
                    TermKind::CondForward {
                        target_block,
                        p_taken,
                        seed,
                    } => TermKind::CondForward {
                        target_block: first + target_block,
                        p_taken,
                        seed,
                    },
                    TermKind::CondLoop {
                        target_block,
                        trip_mean,
                        seed,
                    } => TermKind::CondLoop {
                        target_block: first + target_block,
                        trip_mean,
                        seed,
                    },
                    TermKind::Jump { target_block } => TermKind::Jump {
                        target_block: first + target_block,
                    },
                    TermKind::IndirectJump { targets, seed } => TermKind::IndirectJump {
                        targets: targets.into_iter().map(|t| first + t).collect(),
                        seed,
                    },
                    other => other,
                };
                t
            });
            let block = BasicBlock {
                id: first + i,
                start: self.cursor,
                body,
                terminator: term,
            };
            self.cursor = block.end();
            self.blocks.push(block);
        }
        let fid = self.funcs.len();
        let end = self.blocks.len();
        self.funcs.push(Function {
            id: fid,
            entry_block: first,
            end_block: end,
        });
        fid
    }

    /// Patches the dispatcher's callee table and validates.
    fn finish(mut self) -> Program {
        let callees: Vec<usize> = (1..self.funcs.len()).collect();
        assert!(!callees.is_empty(), "kernel needs at least one function");
        if let Some(TermInst {
            kind: TermKind::IndirectCall { callees: c, .. },
            ..
        }) = self.blocks[0].terminator.as_mut()
        {
            *c = callees;
        }
        let program = Program {
            funcs: self.funcs,
            blocks: self.blocks,
        };
        program.validate();
        program
    }
}

fn alu(len: u8) -> StaticInst {
    StaticInst::new(InstClass::IntAlu, len)
}

fn ret() -> TermInst {
    TermInst {
        inst: StaticInst::new(InstClass::Ret, 1).with_uops(2),
        kind: TermKind::Ret,
    }
}

/// A straight-line sled: one function of `n_insts` 4-byte single-uop ALU
/// instructions and a final return. No conditional branches at all.
///
/// Closed-form expectations: zero conditional MPKI; once warm, the whole
/// sled streams from the uop cache if its uops fit the capacity.
pub fn straight_line(n_insts: usize) -> Program {
    assert!(n_insts >= 1);
    let mut b = KernelBuilder::new().with_dispatcher();
    let body: Vec<StaticInst> = (0..n_insts).map(|_| alu(4)).collect();
    b.add_function(vec![(body, Some(ret()))]);
    b.finish()
}

/// A tight loop: `body_insts` ALU instructions and a backward conditional
/// with mean trip count `trip_mean`, then return.
///
/// Closed-form expectations: after the first iteration the body hits the
/// uop cache every time; with a loop cache ≥ body uops, iterations move to
/// the loop cache.
pub fn tight_loop(body_insts: usize, trip_mean: f64) -> Program {
    assert!(body_insts >= 1);
    let mut b = KernelBuilder::new().with_dispatcher();
    let body: Vec<StaticInst> = (0..body_insts).map(|_| alu(4)).collect();
    b.add_function(vec![
        (
            body,
            Some(TermInst {
                inst: StaticInst::new(InstClass::CondBranch, 2),
                kind: TermKind::CondLoop {
                    target_block: 0,
                    trip_mean,
                    seed: 0x100F,
                },
            }),
        ),
        (vec![alu(4)], Some(ret())),
    ]);
    b.finish()
}

/// A call chain `f1 → f2 → … → f_depth`, each function a few instructions,
/// returning all the way back up.
///
/// Closed-form expectations: every return is RAS-predicted (depth ≤ RAS),
/// so target MPKI ≈ 0; calls are BTB-trained after one lap.
pub fn call_chain(depth: usize) -> Program {
    assert!(depth >= 1);
    let mut b = KernelBuilder::new().with_dispatcher();
    // Build leaf-last so callee indices are known: function ids are
    // assigned in insertion order (1..=depth); function i calls i+1.
    for i in 0..depth {
        let is_leaf = i == depth - 1;
        let term = if is_leaf {
            ret()
        } else {
            TermInst {
                inst: StaticInst::new(InstClass::Call, 5).with_uops(2),
                kind: TermKind::Call {
                    callee_func: i + 2, // fid i+1 calls fid i+2
                },
            }
        };
        if is_leaf {
            b.add_function(vec![(vec![alu(4), alu(4)], Some(term))]);
        } else {
            b.add_function(vec![
                (vec![alu(4), alu(4)], Some(term)),
                (vec![alu(4)], Some(ret())),
            ]);
        }
    }
    b.finish()
}

/// A grid of conditional branches with the given taken-probability: the
/// classic coin-flip kernel. `p_taken = 0.5` is unpredictable by
/// construction; `p_taken` near 0 or 1 is nearly free.
pub fn coin_flip_grid(n_branches: usize, p_taken: f64) -> Program {
    assert!(n_branches >= 1);
    let mut b = KernelBuilder::new().with_dispatcher();
    let mut blocks = Vec::new();
    for i in 0..n_branches {
        blocks.push((
            vec![alu(4), alu(4)],
            Some(TermInst {
                inst: StaticInst::new(InstClass::CondBranch, 2),
                kind: TermKind::CondForward {
                    target_block: i + 1,
                    p_taken,
                    seed: 0xC01F ^ (i as u64) << 17,
                },
            }),
        ));
    }
    blocks.push((vec![alu(4)], Some(ret())));
    b.add_function(blocks);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_validate_and_walk() {
        let profile = kernel_profile(1);
        for prog in [
            straight_line(40),
            tight_loop(6, 10.0),
            call_chain(5),
            coin_flip_grid(8, 0.5),
        ] {
            let trace: Vec<_> = prog.walk(&profile).take(5_000).collect();
            assert_eq!(trace.len(), 5_000);
            for w in trace.windows(2) {
                assert_eq!(w[1].pc, w[0].next_pc(), "control-flow break");
            }
        }
    }

    #[test]
    fn straight_line_has_no_conditionals() {
        let profile = kernel_profile(2);
        let prog = straight_line(64);
        let conds = prog
            .walk(&profile)
            .take(10_000)
            .filter(|i| i.class.is_cond_branch())
            .count();
        assert_eq!(conds, 0);
    }

    #[test]
    fn tight_loop_iterates() {
        let profile = kernel_profile(3);
        let prog = tight_loop(4, 16.0);
        let trace: Vec<_> = prog.walk(&profile).take(10_000).collect();
        let backward_taken = trace
            .iter()
            .filter(|i| i.is_taken_branch() && i.branch.unwrap().target.get() < i.pc.get())
            .count();
        assert!(backward_taken > 1_200, "loop dominates: {backward_taken}");
    }

    #[test]
    fn call_chain_balances() {
        let profile = kernel_profile(4);
        let prog = call_chain(6);
        let trace: Vec<_> = prog.walk(&profile).take(10_000).collect();
        let calls = trace.iter().filter(|i| i.class == InstClass::Call).count();
        let rets = trace.iter().filter(|i| i.class == InstClass::Ret).count();
        assert!(calls > 500);
        assert!((calls as i64 - rets as i64).abs() < 20);
    }

    #[test]
    fn coin_flip_hits_requested_bias() {
        let profile = kernel_profile(5);
        let prog = coin_flip_grid(8, 0.5);
        let trace: Vec<_> = prog.walk(&profile).take(40_000).collect();
        let (taken, total) = trace
            .iter()
            .filter(|i| i.class.is_cond_branch())
            .fold((0u64, 0u64), |(t, n), i| {
                (t + u64::from(i.is_taken_branch()), n + 1)
            });
        let frac = taken as f64 / total as f64;
        assert!((0.45..0.55).contains(&frac), "taken frac {frac}");
    }
}

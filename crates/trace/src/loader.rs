//! Loads an assembled ucasm program into the [`Program`] arena layout.
//!
//! The loader is the bridge between `ucsim_isa::asm` (symbolic functions
//! and blocks) and the synthetic-workload [`Program`] the simulator
//! walks: it places functions at 16-byte-aligned addresses starting from
//! the same per-seed code base the generator uses, lays each function's
//! blocks out contiguously, rebases function-local branch targets into
//! the global block arena, and stamps every stochastic terminator
//! (conditional branches, indirect jumps/calls) with a seed derived from
//! the load seed — so a loaded program is exactly as deterministic, and
//! exactly as I-cache-line-sensitive, as a generated one.

use ucsim_isa::{AsmProgram, AsmTermKind};
use ucsim_model::{mix64, Addr};

use crate::program::{code_base_for, BasicBlock, Function, Program, TermInst, TermKind};

/// Per-terminator seed: deterministic in (load seed, arena block id).
fn term_seed(seed: u64, block_id: usize) -> u64 {
    mix64(seed ^ (block_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5CA5_E000_u64)
}

/// Lays `asm` out as a concrete [`Program`] for generation seed `seed`.
///
/// The seed picks the code base (so distinct uploads never alias under
/// SMT sharing) and feeds every stochastic terminator's outcome stream;
/// the same `(asm, seed)` pair always produces byte-for-byte the same
/// layout and walk. The result passes [`Program::validate`].
pub fn load_asm(asm: &AsmProgram, seed: u64) -> Program {
    // First pass: global block-index base of each function.
    let mut func_base = Vec::with_capacity(asm.funcs.len());
    let mut next = 0usize;
    for f in &asm.funcs {
        func_base.push(next);
        next += f.blocks.len();
    }

    let mut blocks: Vec<BasicBlock> = Vec::with_capacity(next);
    let mut funcs: Vec<Function> = Vec::with_capacity(asm.funcs.len());
    let mut cursor = Addr::new(code_base_for(seed));

    for (fi, f) in asm.funcs.iter().enumerate() {
        // 16-byte function alignment, like real linkers (and the
        // synthetic generator).
        cursor = Addr::new((cursor.get() + 15) & !15);
        let base = func_base[fi];
        for (bi, b) in f.blocks.iter().enumerate() {
            let id = base + bi;
            let terminator = b.term.as_ref().map(|t| TermInst {
                inst: t.inst,
                kind: match &t.kind {
                    AsmTermKind::CondForward { target, p_taken } => TermKind::CondForward {
                        target_block: base + target,
                        p_taken: *p_taken,
                        seed: term_seed(seed, id),
                    },
                    AsmTermKind::CondLoop { target, trip_mean } => TermKind::CondLoop {
                        target_block: base + target,
                        trip_mean: *trip_mean,
                        seed: term_seed(seed, id),
                    },
                    AsmTermKind::Jump { target } => TermKind::Jump {
                        target_block: base + target,
                    },
                    AsmTermKind::IndirectJump { targets } => TermKind::IndirectJump {
                        targets: targets.iter().map(|t| base + t).collect(),
                        seed: term_seed(seed, id),
                    },
                    AsmTermKind::Call { callee } => TermKind::Call {
                        callee_func: *callee,
                    },
                    AsmTermKind::IndirectCall { callees } => TermKind::IndirectCall {
                        callees: callees.clone(),
                        seed: term_seed(seed, id),
                    },
                    AsmTermKind::Ret => TermKind::Ret,
                },
            });
            let block = BasicBlock {
                id,
                start: cursor,
                body: b.body.clone(),
                terminator,
            };
            cursor = block.end();
            blocks.push(block);
        }
        funcs.push(Function {
            id: fi,
            entry_block: base,
            end_block: base + f.blocks.len(),
        });
    }

    let program = Program { funcs, blocks };
    program.validate();
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadProfile;
    use ucsim_isa::assemble;
    use ucsim_model::ICACHE_LINE_BYTES;

    const DISPATCH: &str = "\
.func main
top: alu 3
     calli f1,f2
     jmp top
.end
.func f1
     load 4 imm=1
     jcc f1done p=0.0
     alu 2
f1done: ret
.end
.func f2
     store 7 imm=2 uops=2
     ret 1
.end
";

    #[test]
    fn layout_is_contiguous_aligned_and_validates() {
        let asm = assemble(DISPATCH).unwrap();
        let p = load_asm(&asm, 42);
        assert_eq!(p.funcs.len(), 3);
        assert_eq!(p.blocks.len(), 2 + 3 + 1);
        for f in &p.funcs {
            assert_eq!(p.blocks[f.entry_block].start.get() % 16, 0);
        }
        assert_eq!(p.blocks[0].start.get(), code_base_for(42));
        // validate() ran inside load_asm; spot-check rebasing anyway.
        let TermKind::IndirectCall { ref callees, .. } =
            p.blocks[0].terminator.as_ref().unwrap().kind
        else {
            panic!("dispatcher terminator");
        };
        assert_eq!(callees, &[1, 2]);
    }

    #[test]
    fn loading_is_deterministic_and_seed_sensitive() {
        let asm = assemble(DISPATCH).unwrap();
        let a = load_asm(&asm, 7);
        let b = load_asm(&asm, 7);
        assert_eq!(a.blocks, b.blocks);
        let c = load_asm(&asm, 8);
        assert_ne!(
            a.blocks[0].start, c.blocks[0].start,
            "seed moves the code base"
        );
    }

    #[test]
    fn loaded_programs_walk_deterministically() {
        let asm = assemble(DISPATCH).unwrap();
        let p = load_asm(&asm, 3);
        let profile = WorkloadProfile::user_program(3);
        let a: Vec<_> = p.walk(&profile).take(2000).collect();
        let b: Vec<_> = p.walk(&profile).take(2000).collect();
        assert_eq!(a, b);
        // The stream visits every function (the dispatcher alternates).
        let f1_entry = p.blocks[p.funcs[1].entry_block].start;
        let f2_entry = p.blocks[p.funcs[2].entry_block].start;
        assert!(a.iter().any(|i| i.pc == f1_entry));
        assert!(a.iter().any(|i| i.pc == f2_entry));
    }

    #[test]
    fn a_line_straddling_block_really_straddles() {
        // 10 × 7-byte instructions: some must cross a 64-byte line.
        let asm = assemble(
            ".func main\n\
             top: alu 7\n alu 7\n alu 7\n alu 7\n alu 7\n\
             alu 7\n alu 7\n alu 7\n alu 7\n alu 7\n\
             jmp top\n\
             .end\n",
        )
        .unwrap();
        let p = load_asm(&asm, 0);
        let profile = WorkloadProfile::user_program(0);
        let stream: Vec<_> = p.walk(&profile).take(100).collect();
        let crossings = stream
            .iter()
            .filter(|i| {
                let first = i.pc.get() / ICACHE_LINE_BYTES;
                let last = (i.pc.get() + u64::from(i.len) - 1) / ICACHE_LINE_BYTES;
                first != last
            })
            .count();
        assert!(crossings > 0, "7-byte insts must straddle some line");
    }
}

//! Deterministic dynamic execution of a synthetic program.

use std::collections::HashMap;

use ucsim_model::{mix64, Addr, BranchExec, DynInst, SplitMix64};

use crate::{Program, TermKind, WorkloadProfile};

/// Executes a [`Program`], yielding the architecturally-correct dynamic
/// instruction stream (an infinite iterator — bound it with `take`).
///
/// All branch outcomes, loop trip counts, indirect targets and data
/// addresses derive from stateless hashes of (branch seed, execution
/// count), so the trace is a pure function of the profile.
///
/// # Example
///
/// ```
/// use ucsim_trace::{Program, WorkloadProfile};
///
/// let p = WorkloadProfile::quick_test();
/// let prog = Program::generate(&p);
/// let a: Vec<_> = prog.walk(&p).take(500).collect();
/// let b: Vec<_> = prog.walk(&p).take(500).collect();
/// assert_eq!(a, b); // deterministic replay
/// ```
#[derive(Debug)]
pub struct TraceWalker<'p> {
    prog: &'p Program,
    p_smc_store: f64,
    func_zipf_s: f64,
    phase_insts: Option<u64>,
    data_lines: usize,
    data_zipf_s: f64,
    data_seed: u64,
    /// Call stack of resume block indices.
    stack: Vec<usize>,
    cur_block: usize,
    inst_idx: usize,
    /// Per-loop-branch state: (remaining taken count, activations so far).
    loops: HashMap<usize, (u64, u64)>,
    /// Per-branch execution counts (outcome hashing).
    exec: HashMap<usize, u64>,
    mem_count: u64,
    emitted: u64,
}

impl Program {
    /// Creates a walker over this program using the profile's dynamic
    /// knobs (Zipf skew, phases, data footprint).
    pub fn walk<'p>(&'p self, profile: &WorkloadProfile) -> TraceWalker<'p> {
        TraceWalker {
            prog: self,
            p_smc_store: profile.p_smc_store,
            func_zipf_s: profile.func_zipf_s,
            phase_insts: profile.phase_insts,
            data_lines: profile.data_lines.max(1),
            data_zipf_s: profile.data_zipf_s,
            data_seed: mix64(profile.seed ^ 0xDA7A_5EED),
            stack: Vec::with_capacity(64),
            cur_block: self.funcs[0].entry_block,
            inst_idx: 0,
            loops: HashMap::new(),
            exec: HashMap::new(),
            mem_count: 0,
            emitted: 0,
        }
    }
}

/// Stateless unit-interval sample from a hash.
fn hash_unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Stateless geometric sample (mean `m`, min 1) from a hash.
fn hash_geometric(h: u64, m: f64) -> u64 {
    if m <= 1.0 {
        return 1;
    }
    let p = 1.0 / m;
    let u = hash_unit(h).max(f64::MIN_POSITIVE);
    ((u.ln() / (1.0 - p).ln()).floor() as u64 + 1).min(100_000)
}

impl TraceWalker<'_> {
    /// Number of instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Current call-stack depth (diagnostics).
    pub fn call_depth(&self) -> usize {
        self.stack.len()
    }

    fn data_addr(&mut self, is_store: bool) -> Addr {
        self.mem_count += 1;
        let mut r = SplitMix64::new(mix64(self.data_seed ^ self.mem_count));
        if is_store && self.p_smc_store > 0.0 && r.chance(self.p_smc_store) {
            // Self-modifying code: the store targets the entry of some
            // function (JIT patching). The front end must invalidate every
            // cached uop derived from that I-cache line.
            let f = 1 + r.index(self.prog.funcs.len() - 1);
            return self.prog.blocks[self.prog.funcs[f].entry_block].start;
        }
        let line = r.zipf(self.data_lines, self.data_zipf_s) as u64;
        // Data region sits far above code, seed-spaced like the code
        // region so SMT threads do not falsely share data lines.
        let base = 0x1_0000_0000 + (self.data_seed % 256) * 0x1000_0000;
        Addr::new(base + line * 64 + r.below(64))
    }

    fn current_phase(&self) -> u64 {
        match self.phase_insts {
            Some(p) if p > 0 => self.emitted / p,
            _ => 0,
        }
    }

    /// Emits the instruction at (cur_block, inst_idx) and advances control
    /// flow. Returns the emitted instruction.
    fn step(&mut self) -> DynInst {
        loop {
            let block = &self.prog.blocks[self.cur_block];
            if self.inst_idx < block.body.len() {
                // Body instruction.
                let offset: u64 = block.body[..self.inst_idx]
                    .iter()
                    .map(|i| i.len as u64)
                    .sum();
                let s = block.body[self.inst_idx];
                let pc = block.start.offset(offset);
                let mem = s
                    .class
                    .is_mem()
                    .then(|| self.data_addr(s.class == ucsim_model::InstClass::Store));
                self.inst_idx += 1;
                self.emitted += 1;
                return s.instantiate(pc, None, mem);
            }

            match &block.terminator {
                None => {
                    // Pure fall-through: next arena block.
                    self.cur_block += 1;
                    self.inst_idx = 0;
                    continue;
                }
                Some(term) => {
                    let pc = block.terminator_pc();
                    let fallthrough = block.id + 1;
                    let count = {
                        let c = self.exec.entry(block.id).or_insert(0);
                        *c += 1;
                        *c
                    };
                    let (taken, target_block, target_addr, push, pop) = match &term.kind {
                        TermKind::CondForward {
                            target_block,
                            p_taken,
                            seed,
                        } => {
                            let taken = hash_unit(mix64(seed ^ count.rotate_left(32))) < *p_taken;
                            let t_addr = self.prog.blocks[*target_block].start;
                            (taken, *target_block, t_addr, false, false)
                        }
                        TermKind::CondLoop {
                            target_block,
                            trip_mean,
                            seed,
                        } => {
                            let entry = self.loops.entry(block.id).or_insert((0, 0));
                            if entry.0 == 0 {
                                entry.1 += 1;
                                // Real loops have mostly-stable trip counts:
                                // 90% of activations use the loop's base
                                // trip (learnable by TAGE), the rest
                                // re-draw (data-dependent exits).
                                let base = hash_geometric(mix64(*seed), *trip_mean);
                                let h = mix64(seed ^ entry.1);
                                entry.0 = if h % 100 < 90 {
                                    base
                                } else {
                                    hash_geometric(h, *trip_mean)
                                };
                            }
                            entry.0 -= 1;
                            let taken = entry.0 > 0;
                            let t_addr = self.prog.blocks[*target_block].start;
                            (taken, *target_block, t_addr, false, false)
                        }
                        TermKind::Jump { target_block } => (
                            true,
                            *target_block,
                            self.prog.blocks[*target_block].start,
                            false,
                            false,
                        ),
                        TermKind::IndirectJump { targets, seed } => {
                            // Switch-like indirect jumps are sticky in real
                            // code: the hot case dominates for stretches,
                            // with occasional churn (re-pick every ~16
                            // executions plus 10% noise).
                            let stable = mix64(seed ^ (count / 16));
                            let noise = mix64(seed ^ count.rotate_left(41));
                            let pick = if noise.is_multiple_of(10) {
                                (noise as usize / 16) % targets.len()
                            } else {
                                (stable as usize) % targets.len()
                            };
                            let tb = targets[pick];
                            (true, tb, self.prog.blocks[tb].start, false, false)
                        }
                        TermKind::Call { callee_func } => {
                            let tb = self.prog.funcs[*callee_func].entry_block;
                            (true, tb, self.prog.blocks[tb].start, true, false)
                        }
                        TermKind::IndirectCall { callees, seed } => {
                            let mut r = SplitMix64::new(mix64(seed ^ count.rotate_left(17)));
                            // Zipf's inverse-power transform never yields
                            // rank 0, so a skew of 0 (user programs) means
                            // "uniform over the listed callees" instead.
                            let raw = if self.func_zipf_s <= 0.0 {
                                r.below(callees.len() as u64) as usize
                            } else {
                                r.zipf(callees.len(), self.func_zipf_s)
                            };
                            let stride = callees.len() / 7 + 1;
                            let idx =
                                (raw + (self.current_phase() as usize * stride)) % callees.len();
                            let tb = self.prog.funcs[callees[idx]].entry_block;
                            (true, tb, self.prog.blocks[tb].start, true, false)
                        }
                        TermKind::Ret => {
                            let resume = self
                                .stack
                                .last()
                                .copied()
                                .expect("ret with empty stack: dispatcher never rets");
                            (true, resume, self.prog.blocks[resume].start, false, true)
                        }
                    };

                    if push {
                        self.stack.push(fallthrough);
                    }
                    if pop {
                        self.stack.pop();
                    }

                    let inst = term.inst.instantiate(
                        pc,
                        Some(BranchExec {
                            taken,
                            target: target_addr,
                        }),
                        None,
                    );
                    self.cur_block = if taken { target_block } else { fallthrough };
                    self.inst_idx = 0;
                    self.emitted += 1;
                    return inst;
                }
            }
        }
    }
}

impl Iterator for TraceWalker<'_> {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        Some(self.step())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucsim_model::InstClass;

    fn quick() -> (WorkloadProfile, Program) {
        let p = WorkloadProfile::quick_test();
        let prog = Program::generate(&p);
        (p, prog)
    }

    #[test]
    fn control_flow_is_consistent() {
        let (p, prog) = quick();
        let trace: Vec<_> = prog.walk(&p).take(20_000).collect();
        for (i, w) in trace.windows(2).enumerate() {
            assert_eq!(
                w[1].pc,
                w[0].next_pc(),
                "discontinuity after inst {i}: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn deterministic_replay() {
        let (p, prog) = quick();
        let a: Vec<_> = prog.walk(&p).take(5_000).collect();
        let b: Vec<_> = prog.walk(&p).take(5_000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn branch_density_is_realistic() {
        let (p, prog) = quick();
        let trace: Vec<_> = prog.walk(&p).take(50_000).collect();
        let branches = trace.iter().filter(|i| i.class.is_branch()).count();
        let frac = branches as f64 / trace.len() as f64;
        // x86 integer code runs ~15-25% branches.
        assert!((0.08..0.35).contains(&frac), "branch frac {frac}");
    }

    #[test]
    fn calls_and_rets_balance() {
        let (p, prog) = quick();
        let trace: Vec<_> = prog.walk(&p).take(50_000).collect();
        let calls = trace.iter().filter(|i| i.class == InstClass::Call).count();
        let rets = trace.iter().filter(|i| i.class == InstClass::Ret).count();
        let diff = calls as i64 - rets as i64;
        // In-flight activations bound the imbalance.
        assert!(diff.unsigned_abs() < 200, "calls {calls} vs rets {rets}");
        assert!(calls > 10, "dispatcher must drive calls");
    }

    #[test]
    fn loads_have_data_addresses() {
        let (p, prog) = quick();
        let trace: Vec<_> = prog.walk(&p).take(20_000).collect();
        for i in &trace {
            assert_eq!(i.class.is_mem(), i.mem_addr.is_some());
            if let Some(a) = i.mem_addr {
                assert!(a.get() >= 0x1_0000_0000, "data separated from code");
            }
        }
        assert!(trace.iter().any(|i| i.class.is_mem()));
    }

    #[test]
    fn loop_back_edges_execute_multiple_trips() {
        let (p, prog) = quick();
        // Find a loop branch pc and count consecutive taken streaks.
        let trace: Vec<_> = prog.walk(&p).take(100_000).collect();
        let mut max_streak = 0u32;
        let mut cur: HashMap<Addr, u32> = HashMap::new();
        for i in &trace {
            if i.class == InstClass::CondBranch {
                if let Some(b) = i.branch {
                    if b.target.get() < i.pc.get() {
                        // back-edge
                        let e = cur.entry(i.pc).or_insert(0);
                        if b.taken {
                            *e += 1;
                            max_streak = max_streak.max(*e);
                        } else {
                            *e = 0;
                        }
                    }
                }
            }
        }
        assert!(
            max_streak >= 3,
            "loops should iterate, max streak {max_streak}"
        );
    }

    #[test]
    fn hot_code_reuse_is_skewed() {
        let (p, prog) = quick();
        let trace: Vec<_> = prog.walk(&p).take(100_000).collect();
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for i in &trace {
            *counts.entry(i.pc.get()).or_insert(0) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u64 = freqs.iter().take(freqs.len() / 10 + 1).sum();
        let total: u64 = freqs.iter().sum();
        assert!(
            top_decile as f64 / total as f64 > 0.3,
            "top-10% static insts should dominate execution"
        );
    }

    #[test]
    fn stateless_helpers_are_pure() {
        assert_eq!(hash_geometric(42, 8.0), hash_geometric(42, 8.0));
        assert!(hash_unit(7) >= 0.0 && hash_unit(7) < 1.0);
        assert_eq!(hash_geometric(9, 0.5), 1);
    }
}

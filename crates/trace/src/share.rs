//! Trace-once / replay-many sharing.
//!
//! The paper's evaluation is a workload × capacity × policy cross, and
//! every cell of the cross consumes the *same* dynamic instruction
//! stream — only the front-end configuration differs. Re-walking the
//! synthetic program for each cell re-pays the walker's hash-driven
//! branch/loop/data sampling C×P times per workload; recording the
//! stream once into a [`Trace`] and replaying it from memory pays it
//! once, and a replayed cell is bit-identical to a regenerated one (the
//! walker is deterministic, so the recorded stream *is* the stream).
//!
//! Three pieces:
//!
//! - [`SharedTrace`]: an `Arc<Trace>` alias — the unit handed to sweep
//!   cells, SMT threads and serve workers.
//! - [`ReplayIter`]: an iterator that *owns* its `SharedTrace`, so a
//!   replay can outlive the scope that looked the trace up (worker
//!   threads, `PwGenerator` pipelines).
//! - [`TraceStore`]: a keyed record-once cache. The first caller for a
//!   [`TraceKey`] records; concurrent callers for the same key block on
//!   the same [`TraceHandle`] and share the recorded `Arc` — no
//!   duplicate recording, no duplicate memory.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use ucsim_model::DynInst;

use crate::{Program, Trace, WorkloadProfile};

/// A trace shared across sweep cells / threads without copying.
pub type SharedTrace = Arc<Trace>;

/// Records the first `insts` instructions of a workload into a shareable
/// trace — the canonical record-once entry point for sweep runners.
pub fn record_workload(profile: &WorkloadProfile, program: &Program, insts: u64) -> SharedTrace {
    Arc::new(Trace::record(program.walk(profile).take(insts as usize)))
}

/// An owning replay cursor over a [`SharedTrace`].
///
/// Yields the recorded instructions by value in order, holding its own
/// reference to the trace — suitable for handing to `PwGenerator` or
/// across threads.
#[derive(Debug, Clone)]
pub struct ReplayIter {
    trace: SharedTrace,
    idx: usize,
}

impl ReplayIter {
    /// Creates a replay cursor at the start of `trace`.
    pub fn new(trace: SharedTrace) -> Self {
        ReplayIter { trace, idx: 0 }
    }

    /// Instructions not yet yielded.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.idx
    }
}

impl Iterator for ReplayIter {
    type Item = DynInst;

    fn next(&mut self) -> Option<DynInst> {
        let inst = self.trace.insts().get(self.idx).copied()?;
        self.idx += 1;
        Some(inst)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining();
        (n, Some(n))
    }
}

impl ExactSizeIterator for ReplayIter {}

/// Identity of a recorded stream: workload × generation seed × length.
///
/// Two sweep cells with the same key consume byte-for-byte the same
/// instruction stream, so they can share one recording. Run length is
/// part of the key because a recording is exact-length (a shorter
/// request could replay a prefix, but exact keys keep the equivalence
/// argument trivial — replay of key K *is* `walk().take(K.insts)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// Workload name.
    pub workload: String,
    /// Generation seed.
    pub seed: u64,
    /// Total instructions recorded (warmup + measured).
    pub insts: u64,
}

/// One record-once slot: resolved at most once, then shared.
#[derive(Debug, Default)]
pub struct TraceHandle {
    slot: OnceLock<SharedTrace>,
}

impl TraceHandle {
    /// Returns the recorded trace, recording it via `record` if this is
    /// the first caller. Concurrent callers block until the first
    /// recording finishes and then share its `Arc`.
    pub fn get_or_record<I, F>(&self, record: F) -> SharedTrace
    where
        I: Iterator<Item = DynInst>,
        F: FnOnce() -> I,
    {
        Arc::clone(self.slot.get_or_init(|| Arc::new(Trace::record(record()))))
    }

    /// The recorded trace, if recording already happened.
    pub fn get(&self) -> Option<SharedTrace> {
        self.slot.get().map(Arc::clone)
    }
}

struct StoreInner {
    slots: HashMap<TraceKey, Arc<TraceHandle>>,
    /// Insertion order for budget eviction (oldest first).
    order: Vec<TraceKey>,
}

/// A keyed record-once trace cache with an instruction budget.
///
/// `handle(key)` is cheap and lock-scoped: it never records. Recording
/// happens outside the map lock through [`TraceHandle::get_or_record`],
/// so a slow recording never blocks lookups of other keys.
///
/// The budget bounds *resident recorded instructions*; when exceeded the
/// oldest keys are dropped (in-flight replays keep their `Arc`s alive —
/// eviction only stops new sharing).
pub struct TraceStore {
    inner: Mutex<StoreInner>,
    budget_insts: u64,
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("budget_insts", &self.budget_insts)
            .field("keys", &self.inner.lock().expect("trace store").order.len())
            .finish()
    }
}

impl TraceStore {
    /// Creates a store bounded to roughly `budget_insts` resident
    /// recorded instructions.
    pub fn new(budget_insts: u64) -> Self {
        TraceStore {
            inner: Mutex::new(StoreInner {
                slots: HashMap::new(),
                order: Vec::new(),
            }),
            budget_insts: budget_insts.max(1),
        }
    }

    /// The record-once handle for `key`. All callers for the same key
    /// receive the same handle until it is evicted.
    pub fn handle(&self, key: &TraceKey) -> Arc<TraceHandle> {
        let mut inner = self.inner.lock().expect("trace store");
        if let Some(h) = inner.slots.get(key) {
            return Arc::clone(h);
        }
        self.evict_for(&mut inner, key.insts);
        let h = Arc::new(TraceHandle::default());
        inner.slots.insert(key.clone(), Arc::clone(&h));
        inner.order.push(key.clone());
        h
    }

    /// Convenience: resolve the handle and record/replay in one call.
    pub fn get_or_record<I, F>(&self, key: &TraceKey, record: F) -> SharedTrace
    where
        I: Iterator<Item = DynInst>,
        F: FnOnce() -> I,
    {
        self.handle(key).get_or_record(record)
    }

    /// Number of resident keys.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("trace store").order.len()
    }

    /// True when no traces are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops oldest keys until `incoming` more instructions fit the
    /// budget. Keys whose recording never happened count as empty.
    fn evict_for(&self, inner: &mut StoreInner, incoming: u64) {
        let resident = |inner: &StoreInner| -> u64 {
            inner
                .slots
                .values()
                .filter_map(|h| h.get())
                .map(|t| t.len() as u64)
                .sum()
        };
        while !inner.order.is_empty() && resident(inner) + incoming > self.budget_insts {
            let old = inner.order.remove(0);
            inner.slots.remove(&old);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Program, WorkloadProfile};

    fn key(name: &str, insts: u64) -> TraceKey {
        TraceKey {
            workload: name.to_owned(),
            seed: 7,
            insts,
        }
    }

    fn quick_stream(n: usize) -> Vec<DynInst> {
        let p = WorkloadProfile::quick_test();
        let prog = Program::generate(&p);
        prog.walk(&p).take(n).collect()
    }

    #[test]
    fn replay_iter_yields_recorded_stream() {
        let insts = quick_stream(300);
        let t: SharedTrace = Arc::new(Trace::record(insts.iter().copied()));
        let replayed: Vec<DynInst> = ReplayIter::new(Arc::clone(&t)).collect();
        assert_eq!(replayed, insts);
        let mut it = ReplayIter::new(t);
        assert_eq!(it.len(), 300);
        it.next();
        assert_eq!(it.remaining(), 299);
    }

    #[test]
    fn store_records_once_and_shares() {
        let store = TraceStore::new(1_000_000);
        let mut recordings = 0;
        let a = store.get_or_record(&key("q", 100), || {
            recordings += 1;
            quick_stream(100).into_iter()
        });
        let b = store.get_or_record(&key("q", 100), || {
            recordings += 1;
            quick_stream(100).into_iter()
        });
        assert_eq!(recordings, 1, "second call must replay, not record");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.len(), 1);
        // A different length is a different stream.
        let c = store.get_or_record(&key("q", 50), || quick_stream(50).into_iter());
        assert_eq!(c.len(), 50);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn budget_evicts_oldest() {
        let store = TraceStore::new(150);
        store.get_or_record(&key("a", 100), || quick_stream(100).into_iter());
        store.get_or_record(&key("b", 100), || quick_stream(100).into_iter());
        assert_eq!(store.len(), 1, "a must have been evicted for b");
        // `a` records again after eviction (correctness unaffected).
        let a2 = store.get_or_record(&key("a", 100), || quick_stream(100).into_iter());
        assert_eq!(a2.len(), 100);
    }

    #[test]
    fn concurrent_callers_share_one_recording() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let store = Arc::new(TraceStore::new(1_000_000));
        let recordings = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = Arc::clone(&store);
            let recordings = Arc::clone(&recordings);
            handles.push(std::thread::spawn(move || {
                store.get_or_record(&key("q", 500), || {
                    recordings.fetch_add(1, Ordering::SeqCst);
                    quick_stream(500).into_iter()
                })
            }));
        }
        let traces: Vec<SharedTrace> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(recordings.load(Ordering::SeqCst), 1);
        for t in &traces {
            assert!(Arc::ptr_eq(t, &traces[0]));
        }
    }
}

//! The front-end simulator: PW stream → uop supply (uop cache / decoder /
//! loop cache) → back end, with all the paper's metrics.

use ucsim_bpu::{PwBatchRef, PwGenerator, SlicePwGen};
use ucsim_isa::UopKindTable;
use ucsim_mem::{AccessKind, FetchDirectedPrefetcher, MemoryHierarchy};
use ucsim_model::{mix64, Addr, CancelToken, DynInst, PwId};
use ucsim_obs::Stage;
use ucsim_trace::{Program, WorkloadProfile};
use ucsim_uopcache::{AccumulationBuffer, UopCache, UopCacheEntry};

use crate::{Backend, BackendConfig, FrontEndEnergy, LoopCache, SimConfig, SimReport, UopSource};

/// Fixed front-end depth (predict → fetch → queue → rename) charged to
/// every branch's fetch-to-resolve latency, on top of the decode pipe for
/// decoder-path branches and the measured execution path.
const BASE_FRONT_DEPTH: u64 = 6;

/// How many PW batches the main loop processes between cancellation
/// checks. Polling an atomic every batch would be noise in the hot loop;
/// every 128 batches (a few thousand instructions) bounds the response
/// latency to well under a millisecond of simulated work.
const CANCEL_CHECK_BATCHES: u32 = 128;

/// A cancellable run was stopped before completion (see
/// [`Simulator::run_stream_cancellable`]). No partial report is produced:
/// a report over an arbitrary prefix would not be the deterministic
/// function of (workload, seed, config) that callers cache and persist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("simulation cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// Which supply path fed the back end last (switch-penalty tracking).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Path {
    OpCache,
    Icache,
    LoopCache,
}

/// Carry-over coverage when a uop cache entry extends past the current PW
/// into sequential successors.
#[derive(Debug, Clone, Copy)]
struct Carry {
    /// Coverage extends up to (exclusive) this address.
    until: Addr,
    /// Delivery cycle of the covering entry.
    time: u64,
    /// The next instruction must start exactly here.
    expect: Addr,
}

/// Per-hardware-thread front-end context: the accumulation buffer and
/// entry-coverage carry are private to a thread; the uop cache, memory
/// hierarchy, fetch clock and back end are shared (SMT sharing, paper
/// Section V-B1).
struct FrontThread {
    acc: AccumulationBuffer,
    carry: Option<Carry>,
}

/// The assembled simulator.
///
/// One `Simulator` value is a configuration; [`Simulator::run`] executes a
/// workload and produces a [`SimReport`] over the measurement window.
#[derive(Debug, Clone)]
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    pub fn new(cfg: SimConfig) -> Self {
        cfg.uop_cache.validate();
        Simulator { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs `warmup + measure` instructions of the workload and reports
    /// metrics over the measurement window.
    pub fn run(&self, profile: &WorkloadProfile, program: &Program) -> SimReport {
        let total = self.cfg.warmup_insts + self.cfg.measure_insts;
        let stream = program.walk(profile).take(total as usize);
        self.run_stream(profile.name, stream)
    }

    /// Replays a recorded trace: byte-identical to [`Simulator::run`] on
    /// the workload the trace was recorded from (the walker is
    /// deterministic, so the recording *is* the stream), without paying
    /// the walker's per-instruction synthesis again. This is how sweep
    /// runners share one recording across every cell of a capacity ×
    /// policy cross.
    ///
    /// The trace must hold at least `warmup + measure` instructions for
    /// the reports to match a fresh walk; a shorter trace simulates what
    /// is there (the measurement window degrades exactly as a short walk
    /// would).
    pub fn run_trace(&self, name: &str, trace: &ucsim_trace::Trace) -> SimReport {
        let never = CancelToken::new();
        match self.run_trace_cancellable(name, trace, &never) {
            Ok(report) => report,
            Err(Cancelled) => unreachable!("token is never cancelled"),
        }
    }

    /// [`Simulator::run_trace`] with cooperative cancellation: identical
    /// output when the token never fires, `Err(Cancelled)` otherwise.
    pub fn run_trace_cancellable(
        &self,
        name: &str,
        trace: &ucsim_trace::Trace,
        cancel: &CancelToken,
    ) -> Result<SimReport, Cancelled> {
        let total = (self.cfg.warmup_insts + self.cfg.measure_insts) as usize;
        let insts = trace.insts();
        self.run_slice_cancellable(name, &insts[..total.min(insts.len())], cancel)
    }

    /// Runs a borrowed instruction slice through the slice-driven hot
    /// path: [`SlicePwGen`] walks the slice by index and the pipeline
    /// consumes index-range batches, so no instruction is ever copied
    /// into per-window storage. Byte-identical to
    /// [`Simulator::run_stream`] over the same instructions (the
    /// iterator-driven path is kept as the reference implementation and
    /// the equivalence is asserted in the test suite).
    pub fn run_slice(&self, name: &str, insts: &[DynInst]) -> SimReport {
        let never = CancelToken::new();
        match self.run_slice_cancellable(name, insts, &never) {
            Ok(report) => report,
            Err(Cancelled) => unreachable!("token is never cancelled"),
        }
    }

    /// [`Simulator::run_slice`] with cooperative cancellation, polled at
    /// the same PW-batch cadence as [`Simulator::run_stream_cancellable`].
    pub fn run_slice_cancellable(
        &self,
        name: &str,
        insts: &[DynInst],
        cancel: &CancelToken,
    ) -> Result<SimReport, Cancelled> {
        let mut pwgen = SlicePwGen::new(self.cfg.bpu.clone(), insts);
        let mut st = RunState::new(&self.cfg);

        let mut insts_done: u64 = 0;
        let mut measured = false;
        let mut check_in: u32 = 0;
        loop {
            if check_in == 0 {
                if cancel.is_cancelled() {
                    return Err(Cancelled);
                }
                check_in = CANCEL_CHECK_BATCHES;
            }
            check_in -= 1;
            if !measured && insts_done >= self.cfg.warmup_insts {
                st.begin_measurement();
                pwgen.reset_stats();
                measured = true;
            }
            let timer = ucsim_obs::stage_start(Stage::Predict);
            let advanced = pwgen.advance();
            timer.stop();
            let Some(span) = advanced else { break };
            insts_done += (span.end - span.start) as u64;
            st.process_batch(&pwgen.batch_for(&span));
        }
        if !measured {
            insts_done = 0;
            st.measure_insts_base = 0;
        }
        let bpu = pwgen.stats();
        Ok(st.finish(name, insts_done, bpu, &self.cfg))
    }

    /// Runs an arbitrary architecturally-correct instruction stream (e.g.
    /// a recorded [`ucsim_trace::Trace`]) — the paper's own methodology:
    /// trace-driven simulation of pre-captured workloads.
    ///
    /// The stream must be control-flow consistent (each instruction starts
    /// at the previous one's `next_pc`); `warmup_insts` from the
    /// configuration are excluded from measurement as usual.
    pub fn run_stream<I>(&self, name: &str, stream: I) -> SimReport
    where
        I: Iterator<Item = DynInst>,
    {
        let never = CancelToken::new();
        match self.run_stream_cancellable(name, stream, &never) {
            Ok(report) => report,
            Err(Cancelled) => unreachable!("token is never cancelled"),
        }
    }

    /// [`Simulator::run_stream`] with cooperative cancellation. The token
    /// is polled every `CANCEL_CHECK_BATCHES` prediction-window batches
    /// — a PW boundary is the only safe stopping point in the decoupled
    /// front end, and checking every batch would tax the hot loop. When
    /// the token fires the run stops promptly and returns
    /// `Err(Cancelled)`; an un-cancelled run is byte-identical to
    /// [`Simulator::run_stream`].
    pub fn run_stream_cancellable<I>(
        &self,
        name: &str,
        stream: I,
        cancel: &CancelToken,
    ) -> Result<SimReport, Cancelled>
    where
        I: Iterator<Item = DynInst>,
    {
        let mut pwgen = PwGenerator::new(self.cfg.bpu.clone(), stream);
        let mut st = RunState::new(&self.cfg);

        let mut insts_done: u64 = 0;
        let mut measured = false;
        let mut check_in: u32 = 0;
        loop {
            if check_in == 0 {
                if cancel.is_cancelled() {
                    return Err(Cancelled);
                }
                check_in = CANCEL_CHECK_BATCHES;
            }
            check_in -= 1;
            if !measured && insts_done >= self.cfg.warmup_insts {
                st.begin_measurement();
                pwgen.reset_stats();
                measured = true;
            }
            // Stage timers feed the thread-local job profile (when one is
            // active); they read wall clocks only and never touch
            // simulated state, so reports stay byte-identical.
            let timer = ucsim_obs::stage_start(Stage::Predict);
            let advanced = pwgen.advance();
            timer.stop();
            let Some(batch) = advanced else { break };
            insts_done += batch.insts.len() as u64;
            st.process_batch(&batch);
        }
        if !measured {
            // Degenerate short runs: measure everything.
            insts_done = 0;
            st.measure_insts_base = 0;
        }
        let bpu = pwgen.stats();
        Ok(st.finish(name, insts_done, bpu, &self.cfg))
    }
}

pub(crate) struct RunState {
    // Substrates.
    oc: UopCache,
    threads: Vec<FrontThread>,
    cur: usize,
    mem: MemoryHierarchy,
    prefetcher: FetchDirectedPrefetcher,
    backend: Backend,
    loop_cache: LoopCache,
    // Front-end clock.
    fe_ready: u64,
    last_path: Option<Path>,
    // Sources.
    oc_uops: u64,
    decoder_uops: u64,
    loop_uops: u64,
    // Branch resolution bookkeeping.
    last_branch_resolve: u64,
    last_branch_fetch_to_resolve: u64,
    mispredicts: u64,
    mispredict_latency_sum: u64,
    // Energy.
    energy: FrontEndEnergy,
    // Self-modifying-code probes observed / entries invalidated.
    smc_probes: u64,
    smc_invalidated: u64,
    // Uop cache fill port occupancy (paper Section V-B fill-time model).
    fill_busy_until: u64,
    fill_stall_cycles: u64,
    // Global uop counter (config-independent identity for dep hashing).
    uop_seq: u64,
    // Precomputed class × uop-count → uop-kind templates: one table
    // lookup per instruction instead of re-deriving the kinds.
    kinds: &'static UopKindTable,
    // Identity hashes staged by a parallel pre-pass (see
    // `PwTrace::replay_parallel`). While `staged_pos <
    // staged_hashes.len()`, `deliver` consumes one staged hash per uop
    // instead of mixing it inline; empty outside parallel replay.
    staged_hashes: Vec<u64>,
    staged_pos: usize,
    // Measurement baselines.
    cycle_base: u64,
    uops_base: u64,
    busy_base: u64,
    measure_insts_base: u64,
    // Config extracts.
    decode_width: usize,
    decode_latency: u64,
    l1_latency: u32,
    redirect_penalty: u64,
    decode_redirect_penalty: u64,
    btb_promote_penalty: u64,
    path_switch_penalty: u64,
    fill_port_cost: u64,
    forced_move_cost: u64,
    acc_backlog: u64,
}

impl RunState {
    pub(crate) fn new(cfg: &SimConfig) -> Self {
        Self::with_threads(cfg, 1)
    }

    /// Creates state for an `n_threads`-way SMT core sharing one uop
    /// cache, memory hierarchy, fetch engine and back end.
    pub(crate) fn with_threads(cfg: &SimConfig, n_threads: usize) -> Self {
        assert!(n_threads >= 1);
        RunState {
            oc: UopCache::new(cfg.uop_cache.clone()),
            threads: (0..n_threads)
                .map(|_| FrontThread {
                    acc: AccumulationBuffer::new(cfg.uop_cache.clone()),
                    carry: None,
                })
                .collect(),
            cur: 0,
            mem: MemoryHierarchy::new(cfg.mem.clone()),
            prefetcher: FetchDirectedPrefetcher::new(1),
            backend: Backend::new(BackendConfig {
                dispatch_width: cfg.core.dispatch_width,
                retire_width: cfg.core.retire_width,
                rob_size: cfg.core.rob_size,
                uop_queue_size: cfg.core.uop_queue_size,
                dep_prob: cfg.core.dep_prob,
            }),
            loop_cache: LoopCache::new(cfg.core.loop_cache_uops),
            fe_ready: 0,
            last_path: None,
            oc_uops: 0,
            decoder_uops: 0,
            loop_uops: 0,
            last_branch_resolve: 0,
            last_branch_fetch_to_resolve: 0,
            mispredicts: 0,
            mispredict_latency_sum: 0,
            energy: FrontEndEnergy::default(),
            smc_probes: 0,
            smc_invalidated: 0,
            fill_busy_until: 0,
            fill_stall_cycles: 0,
            uop_seq: 0,
            kinds: UopKindTable::get(),
            staged_hashes: Vec::new(),
            staged_pos: 0,
            cycle_base: 0,
            uops_base: 0,
            busy_base: 0,
            measure_insts_base: 0,
            decode_width: cfg.core.decode_width as usize,
            decode_latency: cfg.core.decode_latency as u64,
            l1_latency: cfg.mem.l1_latency,
            redirect_penalty: cfg.core.redirect_penalty as u64,
            decode_redirect_penalty: cfg.core.decode_redirect_penalty as u64,
            btb_promote_penalty: cfg.core.btb_promote_penalty as u64,
            path_switch_penalty: cfg.core.path_switch_penalty as u64,
            fill_port_cost: cfg.core.fill_port_cost as u64,
            forced_move_cost: cfg.core.forced_move_cost as u64,
            acc_backlog: cfg.core.acc_backlog,
        }
    }

    pub(crate) fn begin_measurement(&mut self) {
        self.oc.stats_mut().reset();
        self.mem.reset_stats();
        self.prefetcher.reset_stats();
        self.loop_cache.reset_stats();
        self.oc_uops = 0;
        self.decoder_uops = 0;
        self.loop_uops = 0;
        self.mispredicts = 0;
        self.mispredict_latency_sum = 0;
        self.energy = FrontEndEnergy::default();
        self.smc_probes = 0;
        self.smc_invalidated = 0;
        self.fill_stall_cycles = 0;
        self.cycle_base = self.backend.last_retire_time();
        let (uops, busy) = self.backend.counters();
        self.uops_base = uops;
        self.busy_base = busy;
        self.measure_insts_base = 1; // marker: measurement began
    }

    /// Marks a degenerate run that never reached the warmup boundary
    /// (mirrors the short-stream path of [`Simulator::run_stream`]).
    pub(crate) fn mark_unmeasured(&mut self) {
        self.measure_insts_base = 0;
    }

    fn switch_to(&mut self, path: Path) {
        if let Some(prev) = self.last_path {
            if prev != path {
                self.fe_ready += self.path_switch_penalty;
                // Leaving the IC path closes any in-flight entry build.
                if prev == Path::Icache {
                    if let Some(e) = self.threads[self.cur].acc.flush() {
                        self.fill(e);
                    }
                }
            }
        }
        self.last_path = Some(path);
    }

    /// Writes a completed entry through the single uop cache fill port.
    /// Fill time matters (paper Section V-B): when fills back up beyond
    /// the accumulation-buffer depth, the decoder stalls. The F-PWAC
    /// forced move occupies the port longer (extra read + write).
    fn fill(&mut self, e: UopCacheEntry) {
        let timer = ucsim_obs::stage_start(Stage::UcFill);
        self.fill_inner(e);
        timer.stop();
    }

    fn fill_inner(&mut self, e: UopCacheEntry) {
        self.energy.oc_fills += 1;
        let outcome = self.oc.fill(e);
        let cost =
            if outcome.placement == ucsim_uopcache::PlacementKind::Fpwac && outcome.evicted > 0 {
                self.fill_port_cost + self.forced_move_cost
            } else {
                self.fill_port_cost
            };
        let start = self.fill_busy_until.max(self.fe_ready);
        self.fill_busy_until = start + cost;
        // Backlog beyond the accumulation buffer stalls the front end.
        let backlog = self.fill_busy_until.saturating_sub(self.fe_ready);
        let slack = self.acc_backlog * self.fill_port_cost.max(1);
        if backlog > slack {
            let stall = backlog - slack;
            self.fe_ready += stall;
            self.fill_stall_cycles += stall;
        }
    }

    /// Code region bound: store addresses below this are code writes
    /// (self-modifying code) and trigger invalidation probes.
    const CODE_CEILING: u64 = 0x1_0000_0000;

    /// Delivers all uops of one instruction to the back end, deferring
    /// the `fe_ready` back-pressure fold to the caller.
    ///
    /// `run_max` carries the largest queue-entry time seen so far in the
    /// current delivery run (0 at run start). Folding it into `fe_ready`
    /// once per *run* instead of once per instruction is what lets
    /// [`RunState::deliver_run`] batch whole uop-cache-entry and
    /// loop-cache runs; the fold is a monotone `max`, so deferring it is
    /// exact — except across a fill, which reads `fe_ready`. The one
    /// mid-run fill site is the SMC drain below, and it folds `run_max`
    /// in first, so a batched run and a per-instruction loop see
    /// byte-identical state everywhere it matters. Returns the uop count.
    #[inline]
    fn deliver_one(
        &mut self,
        inst: &DynInst,
        delivery: u64,
        source: UopSource,
        run_max: &mut u64,
    ) -> u32 {
        let tpl = self.kinds.template(inst.class, inst.uops);
        let n = tpl.len as usize;
        let mem_lat = inst
            .mem_addr
            .map(|a| self.mem.access(AccessKind::Data, a.line()))
            .unwrap_or(0);
        // Self-modifying code: a store into the code region invalidates
        // every uop cache entry and I-cache line it touches (paper Section
        // II-B4 — the design constraint motivating per-set SMC probes).
        if inst.class == ucsim_model::InstClass::Store {
            if let Some(a) = inst.mem_addr {
                if a.get() < Self::CODE_CEILING {
                    // The fill below reads `fe_ready`: settle the deferred
                    // back-pressure from earlier instructions in this run
                    // first (see the method comment).
                    self.fe_ready = self.fe_ready.max(*run_max);
                    self.smc_probes += 1;
                    self.smc_invalidated += self.oc.invalidate_icache_line(a.line()) as u64;
                    self.mem.invalidate_inst(a.line());
                    // Drain any in-flight entry build: its bytes may be stale.
                    if let Some(e) = self.threads[self.cur].acc.flush() {
                        self.fill(e);
                    }
                }
            }
        }
        let mut max_entered = delivery;
        for (slot, kind) in tpl.kinds[..n].iter().enumerate() {
            let identity = if self.staged_pos < self.staged_hashes.len() {
                let h = self.staged_hashes[self.staged_pos];
                self.staged_pos += 1;
                debug_assert_eq!(
                    h,
                    mix64(self.uop_seq ^ inst.pc.get().rotate_left(23) ^ (slot as u64) << 57),
                    "staged identity hash diverged from inline computation"
                );
                h
            } else {
                mix64(self.uop_seq ^ inst.pc.get().rotate_left(23) ^ (slot as u64) << 57)
            };
            self.uop_seq += 1;
            let lat = if kind.is_load() { mem_lat } else { 0 };
            let out = self.backend.admit(delivery, *kind, identity, lat);
            max_entered = max_entered.max(out.entered);
            if kind.is_branch() {
                self.last_branch_resolve = out.completed;
                // Misprediction latency (paper Section III-C): cycles from
                // branch fetch to detection, through the pipeline the
                // branch actually took. Front-end run-ahead queueing is
                // excluded (a decoupled fetch unit stalls when the queue
                // fills, so queue occupancy is not part of the branch's
                // own resolution path); the decoder path pays its decode
                // pipe on top — the uop cache's early-detection benefit.
                let exec_path = out.completed - out.dispatched;
                let front_depth = BASE_FRONT_DEPTH
                    + if source == UopSource::Decoder {
                        self.decode_latency
                    } else {
                        0
                    };
                self.last_branch_fetch_to_resolve = exec_path + front_depth;
            }
        }
        *run_max = (*run_max).max(max_entered);
        n as u32
    }

    /// Delivers all uops of one instruction to the back end.
    fn deliver(&mut self, inst: &DynInst, delivery: u64, source: UopSource) {
        let mut run_max = 0u64;
        let n = self.deliver_one(inst, delivery, source, &mut run_max);
        // Queue back-pressure stalls the front end.
        self.fe_ready = self.fe_ready.max(run_max);
        match source {
            UopSource::OpCache => self.oc_uops += n as u64,
            UopSource::Decoder => self.decoder_uops += n as u64,
            UopSource::LoopCache => self.loop_uops += n as u64,
        }
    }

    /// Delivers a run of instructions that share one delivery cycle (a
    /// uop-cache entry's coverage, a loop-cache window, a carry-over)
    /// with the per-instruction counter bumps and `fe_ready` folds
    /// batched into per-run deltas.
    fn deliver_run(&mut self, insts: &[DynInst], delivery: u64, source: UopSource) {
        let mut run_max = 0u64;
        let mut uops: u64 = 0;
        for inst in insts {
            uops += self.deliver_one(inst, delivery, source, &mut run_max) as u64;
        }
        self.fe_ready = self.fe_ready.max(run_max);
        match source {
            UopSource::OpCache => self.oc_uops += uops,
            UopSource::Decoder => self.decoder_uops += uops,
            UopSource::LoopCache => self.loop_uops += uops,
        }
    }

    /// Installs a chunk of precomputed uop identity hashes, reclaiming
    /// the previous (fully consumed) chunk's buffer through the swap.
    /// `deliver` consumes them in uop order; the hashes are a pure
    /// function of `(uop_seq, pc, slot)`, so a worker thread can compute
    /// a chunk ahead of the sequential consumer (debug builds assert
    /// each staged hash against the inline computation).
    pub(crate) fn stage_hashes(&mut self, chunk: &mut Vec<u64>) {
        debug_assert!(
            self.staged_fully_consumed(),
            "staged a new hash chunk while {} hashes were still pending",
            self.staged_hashes.len() - self.staged_pos
        );
        std::mem::swap(&mut self.staged_hashes, chunk);
        self.staged_pos = 0;
    }

    /// Whether every staged hash has been consumed (chunk-boundary
    /// invariant of the parallel replay).
    pub(crate) fn staged_fully_consumed(&self) -> bool {
        self.staged_pos == self.staged_hashes.len()
    }

    pub(crate) fn process_batch_on(&mut self, batch: &PwBatchRef<'_>, tid: usize) {
        debug_assert!(tid < self.threads.len());
        self.cur = tid;
        self.process_batch(batch);
    }

    fn process_batch(&mut self, batch: &PwBatchRef<'_>) {
        let insts = batch.insts;
        debug_assert!(!insts.is_empty());
        let pw_id = batch.pw.id;

        // Feed the fetch-directed prefetcher with the predicted PW line.
        self.prefetcher
            .observe_pw(batch.pw.start.line(), &mut self.mem);

        // --- Loop cache: serve a captured tight loop without touching the
        // OC or the decoder. The window summary (uop total, taken target)
        // is only computed when a loop cache exists — it feeds nothing
        // else, and summing uops per window is pure hot-loop tax when the
        // structure is configured off.
        if self.loop_cache.enabled() && batch.mispredict.is_none() {
            let taken_target = if batch.pw.ends_in_taken_branch {
                insts.last().and_then(|i| i.branch).map(|b| b.target)
            } else {
                None
            };
            let window_uops: u32 = insts.iter().map(|i| i.uops as u32).sum();
            if self.loop_cache.observe_window(
                batch.pw.start,
                batch.pw.end,
                window_uops,
                taken_target,
            ) {
                self.switch_to(Path::LoopCache);
                let t = self.fe_ready;
                self.fe_ready += 1;
                self.deliver_run(insts, t, UopSource::LoopCache);
                let timer = ucsim_obs::stage_start(Stage::Retire);
                self.end_of_batch(batch);
                timer.stop();
                return;
            }
        }

        // --- Main fetch walk.
        let mut idx = 0;

        // Carry-over: a previously dispatched entry covered the start of
        // this window (entry built across sequential PWs).
        if let Some(c) = self.threads[self.cur].carry {
            if insts[0].pc == c.expect {
                while idx < insts.len() && insts[idx].pc.get() < c.until.get() {
                    idx += 1;
                }
                self.deliver_run(&insts[..idx], c.time, UopSource::OpCache);
                if idx < insts.len() {
                    self.threads[self.cur].carry = None;
                } else {
                    // Whole window covered; extend expectation.
                    let last = insts[insts.len() - 1];
                    self.threads[self.cur].carry = Some(Carry {
                        until: c.until,
                        time: c.time,
                        expect: last.end(),
                    });
                }
            } else {
                self.threads[self.cur].carry = None;
            }
        }

        while idx < insts.len() {
            let cursor = insts[idx].pc;
            self.energy.oc_lookups += 1;
            let timer = ucsim_obs::stage_start(Stage::UcLookup);
            let looked_up = self.oc.lookup(cursor);
            if let Some(entry) = looked_up {
                self.switch_to(Path::OpCache);
                let t = self.fe_ready;
                self.fe_ready += 1; // one entry per cycle
                let mut j = idx;
                while j < insts.len() && insts[j].pc.get() < entry.end.get() {
                    j += 1;
                }
                self.deliver_run(&insts[idx..j], t, UopSource::OpCache);
                if j >= insts.len() {
                    let last = insts[insts.len() - 1];
                    if entry.end.get() > last.end().get()
                        && batch.mispredict.is_none()
                        && !batch.pw.ends_in_taken_branch
                    {
                        // Entry covers into the next sequential window.
                        self.threads[self.cur].carry = Some(Carry {
                            until: entry.end,
                            time: t,
                            expect: last.end(),
                        });
                    }
                }
                timer.stop();
                idx = j;
            } else {
                timer.stop();
                // IC path for the remainder of the window.
                let timer = ucsim_obs::stage_start(Stage::Decode);
                self.ic_path(&insts[idx..], batch, pw_id);
                timer.stop();
                idx = insts.len();
            }
        }

        let timer = ucsim_obs::stage_start(Stage::Retire);
        self.end_of_batch(batch);
        timer.stop();
    }

    fn ic_path(&mut self, insts: &[DynInst], batch: &PwBatchRef<'_>, pw_id: PwId) {
        self.switch_to(Path::Icache);
        let ends_taken = batch.pw.ends_in_taken_branch;
        let total = insts.len();
        let mut line_cursor = None;
        let mut i = 0;
        while i < total {
            let group_end = (i + self.decode_width).min(total);
            // Demand-fetch the I-cache lines of this group.
            for inst in &insts[i..group_end] {
                let l = inst.pc.line();
                if Some(l) != line_cursor {
                    let lat = self.mem.access(AccessKind::Fetch, l);
                    self.energy.icache_accesses += 1;
                    if lat > self.l1_latency {
                        // Miss: bubble for the beyond-L1 latency.
                        self.fe_ready += (lat - self.l1_latency) as u64;
                    }
                    line_cursor = Some(l);
                }
            }
            let base = self.fe_ready;
            self.fe_ready += 1; // one decode group per cycle
            self.energy.decoder_active_cycles += 1;
            let delivery = base + self.decode_latency;
            for (j, inst) in insts[i..group_end].iter().enumerate() {
                let is_last = i + j == total - 1;
                let pred_taken = is_last && ends_taken;
                self.deliver(inst, delivery, UopSource::Decoder);
                self.energy.decoded_insts += 1;
                for e in self.threads[self.cur].acc.push(inst, pw_id, pred_taken) {
                    self.fill(e);
                }
            }
            i = group_end;
        }
    }

    fn end_of_batch(&mut self, batch: &PwBatchRef<'_>) {
        if batch.mispredict.is_some() {
            let resolve = self.last_branch_resolve;
            self.mispredicts += 1;
            self.mispredict_latency_sum += self.last_branch_fetch_to_resolve;
            self.fe_ready = self.fe_ready.max(resolve + self.redirect_penalty);
            self.threads[self.cur].carry = None;
            if let Some(e) = self.threads[self.cur].acc.flush() {
                self.fill(e);
            }
        }
        if batch.decode_redirect {
            self.fe_ready += self.decode_redirect_penalty;
        }
        if batch.btb_promote {
            self.fe_ready += self.btb_promote_penalty;
        }
    }

    pub(crate) fn finish(
        mut self,
        workload: &str,
        insts_done: u64,
        bpu: ucsim_bpu::BpuStats,
        cfg: &SimConfig,
    ) -> SimReport {
        // Close any open entries so their stats are recorded.
        for t in 0..self.threads.len() {
            if let Some(e) = self.threads[t].acc.flush() {
                self.fill(e);
            }
        }
        let cycles = self
            .backend
            .last_retire_time()
            .saturating_sub(self.cycle_base)
            .max(1);
        let (uops_now, busy_now) = self.backend.counters();
        let uops = uops_now - self.uops_base;
        let busy = (busy_now - self.busy_base).max(1);
        let measured_insts = if self.measure_insts_base == 1 {
            bpu.insts
        } else {
            insts_done
        };
        let oc_stats = self.oc.stats().clone();
        // Structure-counter deltas for the active job profile, if any
        // (no-ops otherwise). Reads finished stats only.
        ucsim_obs::counter_add(ucsim_obs::Counter::OcHits, oc_stats.hits);
        ucsim_obs::counter_add(
            ucsim_obs::Counter::OcMisses,
            oc_stats.lookups - oc_stats.hits,
        );
        ucsim_obs::counter_add(ucsim_obs::Counter::OcEvictions, oc_stats.evicted_entries);
        ucsim_obs::counter_add(
            ucsim_obs::Counter::OcCompactions,
            oc_stats.placement_counts.compacted(),
        );
        ucsim_obs::counter_add(ucsim_obs::Counter::PwsDispatched, bpu.pws);
        let entries_per_pw = self.oc.stats_mut().entries_per_pw_dist();
        let supply = (self.oc_uops + self.decoder_uops).max(1);
        SimReport {
            workload: workload.to_owned(),
            insts: measured_insts,
            uops,
            cycles,
            upc: uops as f64 / cycles as f64,
            dispatch_bw: uops as f64 / busy as f64,
            oc_uops: self.oc_uops,
            decoder_uops: self.decoder_uops,
            loop_uops: self.loop_uops,
            oc_fetch_ratio: self.oc_uops as f64 / supply as f64,
            oc_hit_rate: oc_stats.hit_rate(),
            interior_misses: oc_stats.interior_misses,
            oc_lookup_misses: oc_stats.lookups - oc_stats.hits,
            mispredicts: self.mispredicts,
            direction_mispredicts: bpu.direction_mispredicts,
            target_mispredicts: bpu.target_mispredicts,
            decode_redirects: bpu.decode_redirects,
            mpki: bpu.mpki(),
            avg_mispredict_latency: if self.mispredicts == 0 {
                0.0
            } else {
                self.mispredict_latency_sum as f64 / self.mispredicts as f64
            },
            decoder_power: self.energy.decoder_power(&cfg.power, cycles),
            front_end_power: self.energy.front_end_power(&cfg.power, cycles),
            decoded_insts: self.energy.decoded_insts,
            energy: self.energy,
            entry_size_dist: oc_stats.entry_size_fractions(),
            taken_term_frac: oc_stats.taken_branch_term_frac(),
            term_fracs: {
                let mut t = [0.0; 8];
                for r in ucsim_model::EntryTermination::ALL {
                    t[r.index()] = oc_stats.term_frac(r);
                }
                t
            },
            mean_entry_uops: oc_stats.mean_entry_uops(),
            spanning_frac: oc_stats.spanning_frac(),
            entries_per_pw,
            compacted_fill_frac: oc_stats.compacted_fill_frac(),
            compaction_dist: oc_stats.compaction_technique_dist(),
            oc_fills: oc_stats.fills,
            mean_entry_bytes: oc_stats.mean_entry_bytes(),
            resident_uops_end: self.oc.resident_uops(),
            valid_lines_end: self.oc.valid_lines() as u64,
            resident_entries_end: self.oc.resident_entries() as u64,
            smc_probes: self.smc_probes,
            smc_invalidated_entries: self.smc_invalidated,
            fill_stall_cycles: self.fill_stall_cycles,
            coverage_total_bytes: self.oc.coverage().0,
            coverage_unique_bytes: self.oc.coverage().1,
            mem: self.mem.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucsim_uopcache::{CompactionPolicy, UopCacheConfig};

    fn run_with(oc: UopCacheConfig) -> SimReport {
        let profile = WorkloadProfile::quick_test();
        let program = Program::generate(&profile);
        let cfg = SimConfig::table1().with_uop_cache(oc).quick();
        Simulator::new(cfg).run(&profile, &program)
    }

    #[test]
    fn baseline_run_is_sane() {
        let r = run_with(UopCacheConfig::baseline_2k());
        assert!(r.upc > 0.3 && r.upc < 6.0, "UPC {}", r.upc);
        assert!(r.oc_fetch_ratio > 0.0 && r.oc_fetch_ratio <= 1.0);
        assert!(r.cycles > 0);
        assert!(r.uops >= r.insts);
        assert!(r.decoded_insts > 0);
        assert!(r.oc_fills > 0);
        assert!(r.mean_entry_bytes > 0.0);
    }

    #[test]
    fn trace_replay_matches_regeneration() {
        use ucsim_model::ToJson;
        let profile = WorkloadProfile::quick_test();
        let program = Program::generate(&profile);
        let cfg = SimConfig::table1().quick();
        let sim = Simulator::new(cfg.clone());
        let walked = sim.run(&profile, &program);
        let trace =
            ucsim_trace::record_workload(&profile, &program, cfg.warmup_insts + cfg.measure_insts);
        let replayed = sim.run_trace(profile.name, &trace);
        assert_eq!(
            walked.to_json_string(),
            replayed.to_json_string(),
            "replayed report must be byte-identical canonical JSON"
        );
    }

    #[test]
    fn cancellable_run_matches_plain_run_when_uncancelled() {
        use ucsim_model::{CancelToken, ToJson};
        let profile = WorkloadProfile::quick_test();
        let program = Program::generate(&profile);
        let cfg = SimConfig::table1().quick();
        let sim = Simulator::new(cfg.clone());
        let plain = sim.run(&profile, &program);
        let trace =
            ucsim_trace::record_workload(&profile, &program, cfg.warmup_insts + cfg.measure_insts);
        let cancellable = sim
            .run_trace_cancellable(profile.name, &trace, &CancelToken::new())
            .expect("un-cancelled run completes");
        assert_eq!(
            plain.to_json_string(),
            cancellable.to_json_string(),
            "cancellable path must be byte-identical when the token never fires"
        );
    }

    #[test]
    fn pre_cancelled_run_stops_immediately() {
        use ucsim_model::CancelToken;
        let profile = WorkloadProfile::quick_test();
        let program = Program::generate(&profile);
        let cfg = SimConfig::table1().quick();
        let token = CancelToken::new();
        token.cancel();
        let total = cfg.warmup_insts + cfg.measure_insts;
        let trace = ucsim_trace::record_workload(&profile, &program, total);
        let r = Simulator::new(cfg).run_trace_cancellable(profile.name, &trace, &token);
        assert_eq!(r.err(), Some(Cancelled));
    }

    #[test]
    fn determinism_across_runs() {
        let a = run_with(UopCacheConfig::baseline_2k());
        let b = run_with(UopCacheConfig::baseline_2k());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.uops, b.uops);
        assert_eq!(a.oc_uops, b.oc_uops);
        assert_eq!(a.mispredicts, b.mispredicts);
    }

    #[test]
    fn bigger_cache_fetches_more_from_oc() {
        let small = run_with(UopCacheConfig::baseline_2k());
        let big = run_with(UopCacheConfig::baseline_with_capacity(65536));
        assert!(
            big.oc_fetch_ratio >= small.oc_fetch_ratio,
            "64K ratio {} < 2K ratio {}",
            big.oc_fetch_ratio,
            small.oc_fetch_ratio
        );
        assert!(big.decoder_power <= small.decoder_power * 1.001);
    }

    #[test]
    fn clasp_does_not_regress() {
        let base = run_with(UopCacheConfig::baseline_2k());
        let clasp = run_with(UopCacheConfig::baseline_2k().with_clasp());
        // CLASP produces spanning entries; baseline cannot.
        assert_eq!(base.spanning_frac, 0.0);
        assert!(clasp.spanning_frac > 0.0);
    }

    #[test]
    fn compaction_compacts() {
        // quick-test's footprint fits the 2K cache (no steady-state
        // fills), so use a capacity-pressured Table II workload.
        let profile = WorkloadProfile::by_name("bm-lla").expect("table2 profile");
        let program = Program::generate(&profile);
        let cfg = SimConfig::table1()
            .with_uop_cache(
                UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Fpwac, 2),
            )
            .quick();
        let r = Simulator::new(cfg).run(&profile, &program);
        assert!(r.compacted_fill_frac > 0.0, "some fills must compact");
        let (rac, pwac, fpwac) = r.compaction_dist;
        assert!(rac + pwac + fpwac > 0.99);
    }

    #[test]
    fn loop_cache_serves_uops_when_enabled() {
        let profile = WorkloadProfile::quick_test();
        let program = Program::generate(&profile);
        let mut cfg = SimConfig::table1().quick();
        cfg.core.loop_cache_uops = 32;
        let r = Simulator::new(cfg).run(&profile, &program);
        // quick_test has loops; at least some should be captured.
        assert!(r.loop_uops > 0, "loop cache never engaged");
    }

    #[test]
    fn slow_fill_port_stalls_the_front_end() {
        let profile = WorkloadProfile::by_name("bm-lla").expect("table2");
        let program = Program::generate(&profile);
        let fast = SimConfig::table1().quick();
        let mut slow = SimConfig::table1().quick();
        slow.core.fill_port_cost = 12;
        slow.core.acc_backlog = 0;
        let rf = Simulator::new(fast).run(&profile, &program);
        let rs = Simulator::new(slow).run(&profile, &program);
        assert_eq!(rf.fill_stall_cycles, 0, "default backlog absorbs fills");
        assert!(
            rs.fill_stall_cycles > 0,
            "pathological fill port must stall"
        );
        assert!(rs.cycles > rf.cycles, "stalls cost cycles");
    }

    #[test]
    fn mispredict_latency_is_positive() {
        let r = run_with(UopCacheConfig::baseline_2k());
        assert!(r.mispredicts > 0, "quick_test has noisy branches");
        assert!(
            r.avg_mispredict_latency > 3.0,
            "{}",
            r.avg_mispredict_latency
        );
        assert!(r.mpki > 0.0);
    }
}

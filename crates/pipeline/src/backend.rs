//! Simplified out-of-order back end.
//!
//! The front end is the paper's subject; the back end only needs to turn
//! uop delivery times into realistic commit times. We model it as a set
//! of monotonic scalar recurrences per uop — queue back-pressure,
//! dispatch-width slots, ROB occupancy, synthetic dependences, execution
//! latency, and in-order retire-width-limited retirement — which costs a
//! few arithmetic operations per uop instead of a full scheduler, while
//! preserving the structural bottlenecks (Table I widths).

use ucsim_model::{mix64, UopKind};

/// Back-end geometry.
#[derive(Debug, Clone)]
pub struct BackendConfig {
    /// Dispatch width (uops/cycle queue → ROB).
    pub dispatch_width: u32,
    /// Retire width (uops/cycle).
    pub retire_width: u32,
    /// ROB entries.
    pub rob_size: usize,
    /// Uop queue entries (delivery back-pressure).
    pub uop_queue_size: usize,
    /// Probability a uop depends on a recent uop.
    pub dep_prob: f64,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            dispatch_width: 6,
            retire_width: 8,
            rob_size: 256,
            uop_queue_size: 120,
            dep_prob: 0.35,
        }
    }
}

/// Dependence window: a uop may depend on one of this many predecessors.
const DEP_WINDOW: usize = 16;

/// Timing outcome for one admitted uop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmitOutcome {
    /// Cycle the uop actually entered the uop queue (≥ delivery under
    /// back-pressure).
    pub entered: u64,
    /// Cycle the uop dispatched into the ROB.
    pub dispatched: u64,
    /// Cycle the uop finished executing (branch resolution time).
    pub completed: u64,
    /// Cycle the uop retired.
    pub retired: u64,
}

/// The back-end state machine.
///
/// # Example
///
/// ```
/// use ucsim_pipeline::{Backend, BackendConfig};
/// use ucsim_model::UopKind;
///
/// let mut be = Backend::new(BackendConfig::default());
/// let first = be.admit(0, UopKind::IntAlu, 1, 0);
/// let second = be.admit(0, UopKind::IntAlu, 2, 0);
/// assert!(second.retired >= first.retired); // in-order retirement
/// ```
#[derive(Debug)]
pub struct Backend {
    cfg: BackendConfig,
    /// Integer form of `cfg.dep_prob`: a uop with hash `h` depends on a
    /// predecessor iff `(h >> 32) < dep_threshold`. Computed by binary
    /// search over the exact per-uop float expression at construction, so
    /// the comparison is bit-identical to the historical
    /// `(h >> 32) as f64 / u32::MAX as f64 < dep_prob` — without paying a
    /// float divide on every admitted uop.
    dep_threshold: u64,
    seq: u64,
    dispatch_ring: Vec<u64>,
    retire_ring: Vec<u64>,
    /// `seq % uop_queue_size`, maintained incrementally — the ring sizes
    /// are runtime values, so a literal `%` here is a hardware divide per
    /// uop. Note `(seq - len) % len == seq % len`: the slot about to be
    /// overwritten is exactly the one freed `len` uops ago.
    disp_slot: usize,
    /// `seq % rob_size`, maintained incrementally (same reasoning).
    ret_slot: usize,
    complete_ring: [u64; DEP_WINDOW],
    disp_cycle: u64,
    disp_used: u32,
    ret_cycle: u64,
    ret_used: u32,
    last_retire: u64,
    busy_dispatch_cycles: u64,
    dispatched: u64,
}

impl Backend {
    /// Creates an idle back end.
    pub fn new(cfg: BackendConfig) -> Self {
        assert!(cfg.dispatch_width > 0 && cfg.retire_width > 0);
        assert!(cfg.rob_size > 0 && cfg.uop_queue_size > 0);
        Backend {
            dispatch_ring: vec![0; cfg.uop_queue_size],
            retire_ring: vec![0; cfg.rob_size],
            complete_ring: [0; DEP_WINDOW],
            dep_threshold: dep_threshold_for(cfg.dep_prob),
            cfg,
            seq: 0,
            disp_slot: 0,
            ret_slot: 0,
            disp_cycle: 0,
            disp_used: 0,
            ret_cycle: 0,
            ret_used: 0,
            last_retire: 0,
            busy_dispatch_cycles: 0,
            dispatched: 0,
        }
    }

    /// Admits one uop delivered to the uop queue at cycle `delivery`.
    ///
    /// `identity` seeds the synthetic dependence draw (stable across
    /// configurations); `mem_latency` overrides the execution latency for
    /// loads (data-cache access time), 0 means "use the class latency".
    #[inline]
    pub fn admit(
        &mut self,
        delivery: u64,
        kind: UopKind,
        identity: u64,
        mem_latency: u32,
    ) -> AdmitOutcome {
        let seq = self.seq;
        self.seq += 1;

        // Uop queue back-pressure: entry waits for the slot freed by the
        // uop that left the queue uop_queue_size ago.
        let q = self.cfg.uop_queue_size;
        let dslot = self.disp_slot;
        let queue_free = if seq >= q as u64 {
            self.dispatch_ring[dslot]
        } else {
            0
        };
        let entered = delivery.max(queue_free);

        // ROB occupancy: dispatch waits for the retirement of the uop
        // rob_size back.
        let r = self.cfg.rob_size;
        let rslot = self.ret_slot;
        let rob_free = if seq >= r as u64 {
            self.retire_ring[rslot]
        } else {
            0
        };

        // Dispatch slot (in-order, dispatch_width per cycle).
        let ready = (entered + 1).max(rob_free);
        let dtime = self.take_dispatch_slot(ready);
        self.dispatch_ring[dslot] = dtime;
        self.disp_slot = if dslot + 1 == q { 0 } else { dslot + 1 };
        self.dispatched += 1;

        // Execution: synthetic dataflow + class latency. The threshold
        // compare is the integer form of the historical
        // `(h >> 32) as f64 / u32::MAX as f64 < dep_prob` draw.
        let mut estart = dtime + 1;
        let h = mix64(identity);
        if (h >> 32) < self.dep_threshold {
            let back = 1 + (h as usize % (DEP_WINDOW - 1));
            if seq >= back as u64 {
                let dep_done = self.complete_ring[(seq as usize - back) % DEP_WINDOW];
                estart = estart.max(dep_done);
            }
        }
        let lat = if mem_latency > 0 {
            mem_latency
        } else {
            kind.latency()
        };
        let completed = estart + lat as u64;
        self.complete_ring[seq as usize % DEP_WINDOW] = completed;

        // In-order retirement, retire_width per cycle.
        let rready = completed.max(self.last_retire);
        let retired = self.take_retire_slot(rready);
        self.retire_ring[rslot] = retired;
        self.ret_slot = if rslot + 1 == r { 0 } else { rslot + 1 };
        self.last_retire = retired;

        AdmitOutcome {
            entered,
            dispatched: dtime,
            completed,
            retired,
        }
    }

    #[inline]
    fn take_dispatch_slot(&mut self, ready: u64) -> u64 {
        if ready > self.disp_cycle {
            self.disp_cycle = ready;
            self.disp_used = 1;
            self.busy_dispatch_cycles += 1;
            ready
        } else if self.disp_used < self.cfg.dispatch_width {
            self.disp_used += 1;
            self.disp_cycle
        } else {
            self.disp_cycle += 1;
            self.disp_used = 1;
            self.busy_dispatch_cycles += 1;
            self.disp_cycle
        }
    }

    #[inline]
    fn take_retire_slot(&mut self, ready: u64) -> u64 {
        if ready > self.ret_cycle {
            self.ret_cycle = ready;
            self.ret_used = 1;
            ready
        } else if self.ret_used < self.cfg.retire_width {
            self.ret_used += 1;
            self.ret_cycle
        } else {
            self.ret_cycle += 1;
            self.ret_used = 1;
            self.ret_cycle
        }
    }

    /// Retire time of the most recently admitted uop.
    pub fn last_retire_time(&self) -> u64 {
        self.last_retire
    }

    /// Total uops admitted.
    pub fn uops_admitted(&self) -> u64 {
        self.dispatched
    }

    /// Cycles in which at least one uop dispatched.
    pub fn busy_dispatch_cycles(&self) -> u64 {
        self.busy_dispatch_cycles
    }

    /// Snapshot used by the simulator's warmup boundary: returns
    /// `(uops, busy_dispatch_cycles)`.
    pub fn counters(&self) -> (u64, u64) {
        (self.dispatched, self.busy_dispatch_cycles)
    }
}

/// Smallest `v` in `[0, 2^32]` whose draw `v as f64 / u32::MAX as f64`
/// reaches `dep_prob`; the draw is monotone in `v`, so
/// `v < dep_threshold_for(p)` ⟺ `draw(v) < p` for every 32-bit `v`.
fn dep_threshold_for(dep_prob: f64) -> u64 {
    let draw = |v: u64| v as f64 / u32::MAX as f64;
    // Invariant: draws below `lo` are < dep_prob, draws at or above `hi`
    // are ≥ dep_prob. `mid` stays < 2^32, the domain of `h >> 32`.
    let (mut lo, mut hi) = (0u64, 1u64 << 32);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if draw(mid) >= dep_prob {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flood(be: &mut Backend, n: u64) -> AdmitOutcome {
        let mut last = AdmitOutcome {
            entered: 0,
            dispatched: 0,
            completed: 0,
            retired: 0,
        };
        for i in 0..n {
            last = be.admit(0, UopKind::IntAlu, i, 0);
        }
        last
    }

    #[test]
    fn throughput_bounded_by_dispatch_width() {
        let mut be = Backend::new(BackendConfig {
            dep_prob: 0.0,
            ..Default::default()
        });
        let n = 60_000;
        let last = flood(&mut be, n);
        let upc = n as f64 / last.retired as f64;
        assert!(upc <= 6.05, "UPC {upc} cannot exceed dispatch width 6");
        assert!(
            upc > 5.0,
            "independent uops should near dispatch width, got {upc}"
        );
    }

    #[test]
    fn dependences_reduce_throughput() {
        // 1-cycle ALU chains never bind at width 6; multiply chains
        // (latency 3) through the dependence window do.
        let mul_flood = |dep_prob: f64, n: u64| {
            let mut be = Backend::new(BackendConfig {
                dep_prob,
                ..Default::default()
            });
            let mut last = be.admit(0, UopKind::IntMul, 0, 0);
            for i in 1..n {
                last = be.admit(0, UopKind::IntMul, i, 0);
            }
            last
        };
        let n = 20_000;
        let free = mul_flood(0.0, n);
        let dep = mul_flood(1.0, n);
        assert!(
            dep.retired > free.retired,
            "dependences must slow commit: {} vs {}",
            dep.retired,
            free.retired
        );
    }

    #[test]
    fn delivery_gaps_propagate() {
        let mut be = Backend::new(BackendConfig::default());
        // A uop delivered at cycle 1000 into an idle machine retires
        // shortly after 1000, not at cycle ~2.
        let out = be.admit(1000, UopKind::IntAlu, 0, 0);
        assert!(out.retired >= 1002);
        assert_eq!(out.entered, 1000);
    }

    #[test]
    fn queue_backpressure_delays_entry() {
        let cfg = BackendConfig {
            uop_queue_size: 4,
            dispatch_width: 1,
            dep_prob: 0.0,
            ..Default::default()
        };
        let mut be = Backend::new(cfg);
        // Deliver 8 uops at cycle 0 into a 4-entry queue with 1-wide
        // dispatch: later uops cannot enter at 0.
        let mut entered = Vec::new();
        for i in 0..8 {
            entered.push(be.admit(0, UopKind::IntAlu, i, 0).entered);
        }
        assert_eq!(entered[0], 0);
        assert!(entered[7] > 0, "queue of 4 must back-pressure the 8th uop");
    }

    #[test]
    fn long_latency_blocks_retirement_order() {
        let mut be = Backend::new(BackendConfig {
            dep_prob: 0.0,
            ..Default::default()
        });
        let slow = be.admit(0, UopKind::IntDiv, 0, 0);
        let fast = be.admit(0, UopKind::IntAlu, 1, 0);
        assert!(fast.completed < slow.completed, "OoO completion");
        assert!(fast.retired >= slow.retired, "in-order retirement");
    }

    #[test]
    fn mem_latency_override() {
        let mut be = Backend::new(BackendConfig {
            dep_prob: 0.0,
            ..Default::default()
        });
        let hit = be.admit(0, UopKind::Load, 0, 4);
        let mut be2 = Backend::new(BackendConfig {
            dep_prob: 0.0,
            ..Default::default()
        });
        let miss = be2.admit(0, UopKind::Load, 0, 160);
        assert!(miss.completed > hit.completed + 100);
    }

    #[test]
    fn dep_threshold_matches_float_draw() {
        // The integer threshold must agree with the historical float draw
        // for every probability, including the exact draw values
        // themselves and the 0/1 endpoints.
        let probs = [0.0, 0.1, 0.35, 0.5, 0.999, 1.0, 1.5, -0.25];
        for &p in &probs {
            let thr = dep_threshold_for(p);
            for v in [
                0u64,
                1,
                (u32::MAX / 3) as u64,
                (u32::MAX / 2) as u64,
                u32::MAX as u64 - 1,
                u32::MAX as u64,
                thr.saturating_sub(1),
                thr.min(u32::MAX as u64),
            ] {
                let float_dep = (v as f64 / u32::MAX as f64) < p;
                assert_eq!(v < thr, float_dep, "p={p} v={v} thr={thr}");
            }
        }
    }

    #[test]
    fn rob_limits_inflight() {
        let cfg = BackendConfig {
            rob_size: 8,
            dep_prob: 0.0,
            ..Default::default()
        };
        let mut be = Backend::new(cfg);
        // First uop is a long-latency divide; the 9th uop's dispatch must
        // wait for its retirement (ROB of 8).
        let slow = be.admit(0, UopKind::IntDiv, 0, 0);
        let mut last = slow;
        for i in 1..9 {
            last = be.admit(0, UopKind::IntAlu, i, 0);
        }
        assert!(
            last.retired >= slow.retired,
            "9th uop ({}) must not retire before the divide ({})",
            last.retired,
            slow.retired
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Core timing invariants hold for arbitrary delivery schedules:
        /// entry ≥ delivery, dispatch > entry, completion > dispatch,
        /// retirement is monotonic and ≥ completion.
        #[test]
        fn timing_invariants(
            gaps in prop::collection::vec(0u64..20, 1..400),
            dep_prob in 0.0f64..1.0,
        ) {
            let mut be = Backend::new(BackendConfig { dep_prob, ..Default::default() });
            let mut t = 0u64;
            let mut last_retire = 0u64;
            for (i, g) in gaps.iter().enumerate() {
                t += g;
                let kind = match i % 4 {
                    0 => UopKind::IntAlu,
                    1 => UopKind::Load,
                    2 => UopKind::IntMul,
                    _ => UopKind::Branch,
                };
                let out = be.admit(t, kind, i as u64, 0);
                prop_assert!(out.entered >= t);
                prop_assert!(out.dispatched > out.entered);
                prop_assert!(out.completed > out.dispatched);
                prop_assert!(out.retired >= out.completed);
                prop_assert!(out.retired >= last_retire, "in-order retirement");
                last_retire = out.retired;
            }
            prop_assert_eq!(be.uops_admitted(), gaps.len() as u64);
        }

        /// Dispatch never exceeds its width in any cycle.
        #[test]
        fn dispatch_width_is_respected(
            n in 50usize..400,
            width in 1u32..8,
        ) {
            let mut be = Backend::new(BackendConfig {
                dispatch_width: width,
                dep_prob: 0.0,
                ..Default::default()
            });
            let mut per_cycle = std::collections::HashMap::new();
            for i in 0..n {
                let out = be.admit(0, UopKind::IntAlu, i as u64, 0);
                *per_cycle.entry(out.dispatched).or_insert(0u32) += 1;
            }
            for (&cycle, &count) in &per_cycle {
                prop_assert!(count <= width, "cycle {cycle} dispatched {count} > {width}");
            }
        }
    }
}

//! Sweep-aggregate reports: the result of a capacity × policy cross over
//! a workload set, as produced by the bench matrix runner and the serve
//! layer's `POST /v1/matrix` endpoint.
//!
//! A sweep is a grid of independent [`SimReport`]s; this module adds the
//! aggregation the paper's figures need on top of the raw cells — a
//! workload × configuration UPC table and per-configuration geomeans —
//! in a wire-encodable form (the workspace derive JSON, canonical member
//! order).

use ucsim_model::{FromJson, ToJson};
use ucsim_trace::SharedTrace;

use crate::{PwTrace, SimConfig, SimReport, Simulator};

/// A named simulator configuration (one bar/line of a figure, one column
/// of a sweep).
#[derive(Debug, Clone)]
pub struct LabeledConfig {
    /// Legend label ("baseline", "CLASP", "OC_8K", ...).
    pub label: String,
    /// The configuration.
    pub config: SimConfig,
}

impl LabeledConfig {
    /// Creates a labeled configuration.
    pub fn new(label: &str, config: SimConfig) -> Self {
        LabeledConfig {
            label: label.to_owned(),
            config,
        }
    }
}

/// Runs every configuration against one shared recorded trace — the
/// record-once/replay-many inner loop of a sweep. Each cell's report is
/// byte-identical to regenerating the workload stream for that cell
/// (see [`Simulator::run_trace`]); the walker's synthesis cost is paid
/// once by whoever recorded `trace`, not `configs.len()` times.
///
/// On top of the shared instruction stream, prediction-window generation
/// is recorded once (see [`PwTrace`]) and replayed into every cell whose
/// front-end configuration and run length match the first cell's — in a
/// capacity × policy sweep that is every cell, so the TAGE/BTB/RAS work
/// is also paid once. Cells with a different front end fall back to a
/// full per-cell run and remain byte-identical.
///
/// Configurations carry their own run lengths; `trace` must hold at
/// least the largest `warmup + measure` among them for full-length
/// measurement windows.
pub fn run_configs_on_trace(
    name: &str,
    trace: &SharedTrace,
    configs: &[LabeledConfig],
) -> Vec<SimReport> {
    let Some(first) = configs.first() else {
        return Vec::new();
    };
    let pwt = PwTrace::record(trace, &first.config);
    configs
        .iter()
        .map(|lc| {
            if pwt.matches(&lc.config) {
                pwt.replay(name, &lc.config)
            } else {
                Simulator::new(lc.config.clone()).run_trace(name, trace)
            }
        })
        .collect()
}

/// One completed cell of a sweep: a workload simulated under one labeled
/// configuration.
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct SweepCellReport {
    /// Workload name.
    pub workload: String,
    /// Configuration label (e.g. `"OC_2K"`, `"F-PWAC"`).
    pub label: String,
    /// Generation seed the cell ran with.
    pub seed: u64,
    /// The full simulation report.
    pub report: SimReport,
}

/// An aggregated sweep: every cell plus the derived UPC grid.
///
/// `upc[w][c]` is the UPC of workload `workloads[w]` under configuration
/// `labels[c]`; `geomean_upc[c]` is the geometric mean of column `c`
/// across workloads (the paper's cross-workload summary statistic).
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct SweepReport {
    /// Workloads, in first-appearance (submission) order.
    pub workloads: Vec<String>,
    /// Configuration labels, in first-appearance order.
    pub labels: Vec<String>,
    /// UPC grid, rows = workloads, columns = labels.
    pub upc: Vec<Vec<f64>>,
    /// Per-configuration geometric-mean UPC across workloads.
    pub geomean_upc: Vec<f64>,
    /// The raw cells, in submission order.
    pub cells: Vec<SweepCellReport>,
}

impl SweepReport {
    /// Builds the aggregate view from completed cells.
    ///
    /// Cells may arrive in any order; the grid is keyed by the distinct
    /// workloads/labels in first-appearance order. A missing cell (a
    /// workload × label pair never submitted) leaves `0.0` in the grid
    /// and is excluded from the geomean.
    pub fn from_cells(cells: Vec<SweepCellReport>) -> SweepReport {
        let mut workloads: Vec<String> = Vec::new();
        let mut labels: Vec<String> = Vec::new();
        for c in &cells {
            if !workloads.contains(&c.workload) {
                workloads.push(c.workload.clone());
            }
            if !labels.contains(&c.label) {
                labels.push(c.label.clone());
            }
        }
        let mut upc = vec![vec![0.0; labels.len()]; workloads.len()];
        for c in &cells {
            let w = workloads.iter().position(|n| *n == c.workload).expect("w");
            let l = labels.iter().position(|n| *n == c.label).expect("l");
            upc[w][l] = c.report.upc;
        }
        let geomean_upc = (0..labels.len())
            .map(|l| {
                let col: Vec<f64> = (0..workloads.len())
                    .map(|w| upc[w][l])
                    .filter(|&v| v > 0.0)
                    .collect();
                if col.is_empty() {
                    0.0
                } else {
                    let log_sum: f64 = col.iter().map(|v| v.ln()).sum();
                    (log_sum / col.len() as f64).exp()
                }
            })
            .collect();
        SweepReport {
            workloads,
            labels,
            upc,
            geomean_upc,
            cells,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the sweep holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(workload: &str, label: &str, upc: f64) -> SweepCellReport {
        let report = SimReport {
            workload: workload.to_owned(),
            upc,
            ..SimReport::default()
        };
        SweepCellReport {
            workload: workload.to_owned(),
            label: label.to_owned(),
            seed: 1,
            report,
        }
    }

    #[test]
    fn grid_and_geomean_follow_first_appearance_order() {
        let r = SweepReport::from_cells(vec![
            cell("a", "OC_2K", 2.0),
            cell("a", "OC_4K", 4.0),
            cell("b", "OC_2K", 8.0),
            cell("b", "OC_4K", 16.0),
        ]);
        assert_eq!(r.workloads, ["a", "b"]);
        assert_eq!(r.labels, ["OC_2K", "OC_4K"]);
        assert_eq!(r.upc, vec![vec![2.0, 4.0], vec![8.0, 16.0]]);
        assert!((r.geomean_upc[0] - 4.0).abs() < 1e-12); // √(2·8)
        assert!((r.geomean_upc[1] - 8.0).abs() < 1e-12); // √(4·16)
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn missing_cells_do_not_poison_the_geomean() {
        let r = SweepReport::from_cells(vec![cell("a", "x", 2.0), cell("b", "y", 3.0)]);
        assert_eq!(r.upc, vec![vec![2.0, 0.0], vec![0.0, 3.0]]);
        assert!((r.geomean_upc[0] - 2.0).abs() < 1e-12);
        assert!((r.geomean_upc[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_report_round_trips_through_json() {
        let r = SweepReport::from_cells(vec![cell("a", "x", 1.5)]);
        let text = r.to_json_string();
        let back = SweepReport::from_json_str(&text).unwrap();
        assert_eq!(back.to_json_string(), text);
        assert_eq!(back.cells[0].report.upc, 1.5);
    }
}

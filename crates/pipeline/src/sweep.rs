//! Sweep-aggregate reports: the result of a capacity × policy cross over
//! a workload set, as produced by the bench matrix runner and the serve
//! layer's `POST /v1/matrix` endpoint.
//!
//! A sweep is a grid of independent [`SimReport`]s; this module adds the
//! aggregation the paper's figures need on top of the raw cells — a
//! workload × configuration UPC table and per-configuration geomeans —
//! in a wire-encodable form (the workspace derive JSON, canonical member
//! order).

use ucsim_model::{FromJson, ToJson};
use ucsim_trace::SharedTrace;

use crate::{PwTrace, SimConfig, SimReport, Simulator};

/// A named simulator configuration (one bar/line of a figure, one column
/// of a sweep).
#[derive(Debug, Clone)]
pub struct LabeledConfig {
    /// Legend label ("baseline", "CLASP", "OC_8K", ...).
    pub label: String,
    /// The configuration.
    pub config: SimConfig,
}

impl LabeledConfig {
    /// Creates a labeled configuration.
    pub fn new(label: &str, config: SimConfig) -> Self {
        LabeledConfig {
            label: label.to_owned(),
            config,
        }
    }
}

/// Runs every configuration against one shared recorded trace — the
/// record-once/replay-many inner loop of a sweep. Each cell's report is
/// byte-identical to regenerating the workload stream for that cell
/// (see [`Simulator::run_trace`]); the walker's synthesis cost is paid
/// once by whoever recorded `trace`, not `configs.len()` times.
///
/// On top of the shared instruction stream, prediction-window generation
/// is recorded once (see [`PwTrace`]) and replayed into every cell whose
/// front-end configuration and run length match the first cell's — in a
/// capacity × policy sweep that is every cell, so the TAGE/BTB/RAS work
/// is also paid once. Cells with a different front end fall back to a
/// full per-cell run and remain byte-identical.
///
/// Configurations carry their own run lengths; `trace` must hold at
/// least the largest `warmup + measure` among them for full-length
/// measurement windows.
pub fn run_configs_on_trace(
    name: &str,
    trace: &SharedTrace,
    configs: &[LabeledConfig],
) -> Vec<SimReport> {
    run_configs_on_trace_threads(name, trace, configs, 1)
}

/// [`run_configs_on_trace`] with PW-granular intra-cell parallelism:
/// each matching cell replays via [`PwTrace::replay_parallel`] with
/// `cell_threads` hash-precompute workers. Byte-identical to the
/// sequential sweep for any `cell_threads` (1 means plain sequential
/// replay).
pub fn run_configs_on_trace_threads(
    name: &str,
    trace: &SharedTrace,
    configs: &[LabeledConfig],
    cell_threads: usize,
) -> Vec<SimReport> {
    let Some(first) = configs.first() else {
        return Vec::new();
    };
    let pwt = PwTrace::record(trace, &first.config);
    configs
        .iter()
        .map(|lc| {
            if pwt.matches(&lc.config) {
                pwt.replay_parallel(name, &lc.config, cell_threads)
            } else {
                Simulator::new(lc.config.clone()).run_trace(name, trace)
            }
        })
        .collect()
}

/// One completed cell of a sweep: a workload simulated under one labeled
/// configuration.
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct SweepCellReport {
    /// Workload name.
    pub workload: String,
    /// Configuration label (e.g. `"OC_2K"`, `"F-PWAC"`).
    pub label: String,
    /// Generation seed the cell ran with.
    pub seed: u64,
    /// The full simulation report.
    pub report: SimReport,
}

/// An aggregated sweep: every cell plus the derived UPC grid.
///
/// `upc[w][c]` is the UPC of workload `workloads[w]` under configuration
/// `labels[c]`; `geomean_upc[c]` is the geometric mean of column `c`
/// across workloads (the paper's cross-workload summary statistic).
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct SweepReport {
    /// Workloads, in first-appearance (submission) order.
    pub workloads: Vec<String>,
    /// Configuration labels, in first-appearance order.
    pub labels: Vec<String>,
    /// UPC grid, rows = workloads, columns = labels.
    pub upc: Vec<Vec<f64>>,
    /// Per-configuration geometric-mean UPC across workloads.
    pub geomean_upc: Vec<f64>,
    /// The raw cells, in submission order.
    pub cells: Vec<SweepCellReport>,
}

impl SweepReport {
    /// Builds the aggregate view from completed cells.
    ///
    /// Cells may arrive in any order; the grid is keyed by the distinct
    /// workloads/labels in first-appearance order. A missing cell (a
    /// workload × label pair never submitted) leaves `0.0` in the grid
    /// and is excluded from the geomean.
    pub fn from_cells(cells: Vec<SweepCellReport>) -> SweepReport {
        let mut workloads: Vec<String> = Vec::new();
        let mut labels: Vec<String> = Vec::new();
        for c in &cells {
            if !workloads.contains(&c.workload) {
                workloads.push(c.workload.clone());
            }
            if !labels.contains(&c.label) {
                labels.push(c.label.clone());
            }
        }
        let mut upc = vec![vec![0.0; labels.len()]; workloads.len()];
        for c in &cells {
            let w = workloads.iter().position(|n| *n == c.workload).expect("w");
            let l = labels.iter().position(|n| *n == c.label).expect("l");
            upc[w][l] = c.report.upc;
        }
        let geomean_upc = (0..labels.len())
            .map(|l| {
                let col: Vec<f64> = (0..workloads.len())
                    .map(|w| upc[w][l])
                    .filter(|&v| v > 0.0)
                    .collect();
                if col.is_empty() {
                    0.0
                } else {
                    let log_sum: f64 = col.iter().map(|v| v.ln()).sum();
                    (log_sum / col.len() as f64).exp()
                }
            })
            .collect();
        SweepReport {
            workloads,
            labels,
            upc,
            geomean_upc,
            cells,
        }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the sweep holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

/// Adaptive bisection of a sweep's capacity axis toward the UPC *knee*.
///
/// The paper's capacity sweeps (Fig. 9 shape) spend most of their cells
/// confirming the flat tail of the curve: past some capacity, UPC has
/// already converged to within measurement noise of the maximum. The knee
/// is where that happens — the smallest axis index `i` whose metric
/// satisfies `metric(i) >= (1 - tolerance) * metric(n-1)`.
///
/// Because UPC is (weakly) monotone in µop-cache capacity, that predicate
/// is monotone along the axis and the knee can be found by bisection:
/// probe the two endpoints to fix the threshold, then repeatedly probe
/// the midpoint of the open bracket. The driver owns simulation; this
/// type only decides *which* indices to probe next:
///
/// ```text
/// let mut b = KneeBisector::new(axis.len(), 0.05);
/// while b.knee().is_none() {
///     for i in b.next_probes() { b.record(i, simulate(axis[i])); }
/// }
/// ```
///
/// Worst case it probes `2 + ceil(log2(n-1))` of `n` points — 6 of 12 for
/// the standard power-of-two capacity axis — while bracketing the same
/// knee a full sweep would find by linear scan.
#[derive(Debug)]
pub struct KneeBisector {
    n: usize,
    tolerance: f64,
    /// Recorded metrics by axis index.
    metrics: Vec<Option<f64>>,
    /// Open bracket: `lo` fails the threshold, `hi` satisfies it.
    lo: Option<usize>,
    hi: Option<usize>,
    knee: Option<usize>,
}

impl KneeBisector {
    /// A bisector over an axis of `n` ascending points, with relative
    /// `tolerance` in `[0, 1)` (0.05 ⇒ the knee is where the metric first
    /// reaches 95 % of its value at the largest point).
    ///
    /// # Panics
    ///
    /// If `n == 0` or `tolerance` is outside `[0, 1)`.
    pub fn new(n: usize, tolerance: f64) -> Self {
        assert!(n > 0, "axis must be non-empty");
        assert!(
            (0.0..1.0).contains(&tolerance),
            "tolerance must be in [0, 1)"
        );
        KneeBisector {
            n,
            tolerance,
            metrics: vec![None; n],
            lo: None,
            hi: None,
            knee: None,
        }
    }

    /// The axis indices to simulate next: the two endpoints first, then
    /// one midpoint per round. Empty once [`knee`](Self::knee) is some.
    pub fn next_probes(&self) -> Vec<usize> {
        if self.knee.is_some() {
            return Vec::new();
        }
        let mut probes = Vec::new();
        if self.metrics[self.n - 1].is_none() {
            probes.push(self.n - 1);
        }
        if self.n > 1 && self.metrics[0].is_none() {
            probes.insert(0, 0);
        }
        if !probes.is_empty() {
            return probes;
        }
        match (self.lo, self.hi) {
            (Some(lo), Some(hi)) if hi - lo > 1 => vec![lo + (hi - lo) / 2],
            _ => Vec::new(),
        }
    }

    /// Records the metric simulated at axis index `idx` and advances the
    /// bracket. Indices not suggested by [`next_probes`](Self::next_probes)
    /// are accepted too (a full sweep can drive the same type).
    ///
    /// # Panics
    ///
    /// If `idx` is out of range.
    pub fn record(&mut self, idx: usize, metric: f64) {
        assert!(idx < self.n, "axis index {idx} out of range");
        self.metrics[idx] = Some(metric);
        self.advance();
    }

    fn threshold(&self) -> Option<f64> {
        self.metrics[self.n - 1].map(|last| (1.0 - self.tolerance) * last)
    }

    fn advance(&mut self) {
        if self.knee.is_some() {
            return;
        }
        let Some(threshold) = self.threshold() else {
            return;
        };
        if self.n == 1 {
            self.knee = Some(0);
            return;
        }
        let Some(first) = self.metrics[0] else {
            return;
        };
        if first >= threshold {
            self.knee = Some(0);
            return;
        }
        let (mut lo, mut hi) = (self.lo.unwrap_or(0), self.hi.unwrap_or(self.n - 1));
        // Fold in every recorded interior point (bisection only ever
        // probes the bracket midpoint, but a full grid can feed us all).
        for (i, m) in self.metrics.iter().enumerate() {
            let Some(m) = *m else { continue };
            if i > lo && i < hi {
                if m >= threshold {
                    hi = i;
                } else {
                    lo = i;
                }
            }
        }
        self.lo = Some(lo);
        self.hi = Some(hi);
        if hi - lo == 1 {
            self.knee = Some(hi);
        }
    }

    /// The knee's axis index once bracketed to adjacent points.
    pub fn knee(&self) -> Option<usize> {
        self.knee
    }

    /// The current open bracket `(lo, hi)`: the metric at `lo` is below
    /// the threshold, at `hi` above. `None` until both endpoints are
    /// recorded (or once the knee collapsed to index 0).
    pub fn bracket(&self) -> Option<(usize, usize)> {
        match (self.lo, self.hi) {
            (Some(lo), Some(hi)) => Some((lo, hi)),
            _ => None,
        }
    }

    /// Number of axis points recorded so far.
    pub fn probed(&self) -> usize {
        self.metrics.iter().filter(|m| m.is_some()).count()
    }

    /// The axis indices recorded so far, ascending.
    pub fn probed_indices(&self) -> Vec<usize> {
        (0..self.n).filter(|&i| self.metrics[i].is_some()).collect()
    }

    /// The knee a full linear scan of `metrics` would report under the
    /// same rule: the smallest index within `tolerance` of the last
    /// value. The adaptive bisection must agree with this on monotone
    /// data — the equivalence the serve-layer tests assert.
    pub fn linear_knee(metrics: &[f64], tolerance: f64) -> Option<usize> {
        let last = *metrics.last()?;
        let threshold = (1.0 - tolerance) * last;
        metrics.iter().position(|&m| m >= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(workload: &str, label: &str, upc: f64) -> SweepCellReport {
        let report = SimReport {
            workload: workload.to_owned(),
            upc,
            ..SimReport::default()
        };
        SweepCellReport {
            workload: workload.to_owned(),
            label: label.to_owned(),
            seed: 1,
            report,
        }
    }

    #[test]
    fn grid_and_geomean_follow_first_appearance_order() {
        let r = SweepReport::from_cells(vec![
            cell("a", "OC_2K", 2.0),
            cell("a", "OC_4K", 4.0),
            cell("b", "OC_2K", 8.0),
            cell("b", "OC_4K", 16.0),
        ]);
        assert_eq!(r.workloads, ["a", "b"]);
        assert_eq!(r.labels, ["OC_2K", "OC_4K"]);
        assert_eq!(r.upc, vec![vec![2.0, 4.0], vec![8.0, 16.0]]);
        assert!((r.geomean_upc[0] - 4.0).abs() < 1e-12); // √(2·8)
        assert!((r.geomean_upc[1] - 8.0).abs() < 1e-12); // √(4·16)
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn missing_cells_do_not_poison_the_geomean() {
        let r = SweepReport::from_cells(vec![cell("a", "x", 2.0), cell("b", "y", 3.0)]);
        assert_eq!(r.upc, vec![vec![2.0, 0.0], vec![0.0, 3.0]]);
        assert!((r.geomean_upc[0] - 2.0).abs() < 1e-12);
        assert!((r.geomean_upc[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_report_round_trips_through_json() {
        let r = SweepReport::from_cells(vec![cell("a", "x", 1.5)]);
        let text = r.to_json_string();
        let back = SweepReport::from_json_str(&text).unwrap();
        assert_eq!(back.to_json_string(), text);
        assert_eq!(back.cells[0].report.upc, 1.5);
    }

    /// Drives a bisector to completion over a fixed metric curve,
    /// returning (knee, probes used).
    fn bisect(metrics: &[f64], tolerance: f64) -> (usize, usize) {
        let mut b = KneeBisector::new(metrics.len(), tolerance);
        let mut guard = 0;
        while b.knee().is_none() {
            let probes = b.next_probes();
            assert!(!probes.is_empty(), "stalled without a knee");
            for i in probes {
                b.record(i, metrics[i]);
            }
            guard += 1;
            assert!(guard <= metrics.len(), "bisection failed to converge");
        }
        (b.knee().unwrap(), b.probed())
    }

    #[test]
    fn bisection_matches_linear_scan_on_monotone_curves() {
        // A saturating curve: knee sits where 95 % of the plateau is hit.
        let curve = [0.5, 0.9, 1.3, 1.7, 1.9, 1.97, 1.99, 2.0];
        let (knee, probes) = bisect(&curve, 0.05);
        assert_eq!(
            Some(knee),
            KneeBisector::linear_knee(&curve, 0.05),
            "bisection disagrees with full scan"
        );
        assert_eq!(knee, 4); // 1.9 >= 0.95 * 2.0 = 1.9
        assert!(probes <= 2 + 3, "used {probes} probes for n=8");
    }

    #[test]
    fn bisection_probe_budget_is_logarithmic() {
        for n in [2usize, 3, 5, 12, 33, 100] {
            for knee_at in [0, 1, n / 2, n - 1] {
                let curve: Vec<f64> = (0..n)
                    .map(|i| if i >= knee_at { 2.0 } else { 0.1 })
                    .collect();
                let (knee, probes) = bisect(&curve, 0.05);
                assert_eq!(knee, knee_at, "n={n}");
                let budget = 2 + (usize::BITS - (n - 1).leading_zeros()) as usize;
                assert!(
                    probes <= budget,
                    "n={n} knee={knee_at}: {probes} > {budget}"
                );
            }
        }
    }

    #[test]
    fn knee_at_first_point_needs_only_endpoints() {
        let mut b = KneeBisector::new(12, 0.05);
        assert_eq!(b.next_probes(), vec![0, 11]);
        b.record(0, 1.99);
        b.record(11, 2.0);
        assert_eq!(b.knee(), Some(0));
        assert_eq!(b.probed(), 2);
        assert!(b.next_probes().is_empty());
    }

    #[test]
    fn bracket_narrows_to_adjacent_indices() {
        let mut b = KneeBisector::new(12, 0.05);
        b.record(0, 0.1);
        b.record(11, 2.0);
        assert_eq!(b.bracket(), Some((0, 11)));
        let mut rounds = 0;
        while b.knee().is_none() {
            for i in b.next_probes() {
                b.record(i, if i >= 7 { 2.0 } else { 0.1 });
            }
            rounds += 1;
            assert!(rounds < 12);
        }
        assert_eq!(b.knee(), Some(7));
        let (lo, hi) = b.bracket().unwrap();
        assert_eq!((lo, hi), (6, 7));
    }

    #[test]
    fn single_point_axis_is_its_own_knee() {
        let mut b = KneeBisector::new(1, 0.1);
        assert_eq!(b.next_probes(), vec![0]);
        b.record(0, 1.0);
        assert_eq!(b.knee(), Some(0));
    }

    #[test]
    fn full_grid_recordings_also_converge() {
        // A full sweep feeding every point in order still lands the knee.
        let curve = [0.2, 0.4, 1.92, 1.96, 2.0];
        let mut b = KneeBisector::new(curve.len(), 0.05);
        for (i, &m) in curve.iter().enumerate() {
            b.record(i, m);
        }
        assert_eq!(b.knee(), Some(2));
        assert_eq!(Some(2), KneeBisector::linear_knee(&curve, 0.05));
    }
}

//! Run reports: every number the paper's figures plot.

use ucsim_mem::HierarchyStats;
use ucsim_model::{FromJson, ToJson};

use crate::FrontEndEnergy;

/// Which structure supplied a uop to the back end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopSource {
    /// Uop cache hit.
    OpCache,
    /// x86 decoder (I-cache path).
    Decoder,
    /// Loop cache.
    LoopCache,
}

/// Results of one simulation run (measurement window only).
#[derive(Debug, Clone, Default, ToJson, FromJson)]
pub struct SimReport {
    /// Workload name.
    pub workload: String,
    /// Instructions measured.
    pub insts: u64,
    /// Uops committed.
    pub uops: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Uops committed per cycle (the paper's performance metric).
    pub upc: f64,
    /// Average dispatched uops per cycle over busy dispatch cycles
    /// (paper Section III-B).
    pub dispatch_bw: f64,
    /// Uops supplied by the uop cache.
    pub oc_uops: u64,
    /// Uops supplied by the decoder.
    pub decoder_uops: u64,
    /// Uops supplied by the loop cache.
    pub loop_uops: u64,
    /// OC fetch ratio: OC uops / (OC + decoder uops) (paper Section III-A).
    pub oc_fetch_ratio: f64,
    /// Uop cache hit rate over lookups.
    pub oc_hit_rate: f64,
    /// Lookup misses where a resident entry covered the address without
    /// starting there (alignment diagnostic).
    pub interior_misses: u64,
    /// Total lookup misses.
    pub oc_lookup_misses: u64,
    /// Conditional + indirect branch mispredictions.
    pub mispredicts: u64,
    /// Conditional-direction mispredictions.
    pub direction_mispredicts: u64,
    /// Indirect/return target mispredictions.
    pub target_mispredicts: u64,
    /// Taken branches discovered only at decode (BTB misses).
    pub decode_redirects: u64,
    /// Branch MPKI (Table II metric).
    pub mpki: f64,
    /// Mean branch misprediction latency, fetch → resolve (Section III-C).
    pub avg_mispredict_latency: f64,
    /// Normalized-unit decoder power (normalize across runs yourself).
    pub decoder_power: f64,
    /// Whole front-end power (extension metric).
    pub front_end_power: f64,
    /// Instructions decoded by the x86 decoder.
    pub decoded_insts: u64,
    /// Energy activity counters.
    pub energy: FrontEndEnergy,
    /// Entry-size distribution fractions ([1-19],[20-39],[40-64],>64 B).
    pub entry_size_dist: Vec<f64>,
    /// Fraction of entries terminated by a predicted-taken branch (Fig 6).
    pub taken_term_frac: f64,
    /// Fraction of entries by termination reason, indexed by
    /// [`ucsim_model::EntryTermination::index`].
    pub term_fracs: [f64; 8],
    /// Mean uops per filled entry.
    pub mean_entry_uops: f64,
    /// Fraction of entries spanning an I-cache boundary (Fig 9).
    pub spanning_frac: f64,
    /// Entries-per-PW distribution (1, 2, 3, ≥4) (Fig 12).
    pub entries_per_pw: [f64; 4],
    /// Fraction of fills compacted into an existing line (Fig 18).
    pub compacted_fill_frac: f64,
    /// Compacted-fill technique split (RAC, PWAC, F-PWAC) (Fig 19).
    pub compaction_dist: (f64, f64, f64),
    /// Uop cache fills during measurement.
    pub oc_fills: u64,
    /// Mean bytes per filled entry.
    pub mean_entry_bytes: f64,
    /// Resident uops at end of run (occupancy diagnostic).
    pub resident_uops_end: u64,
    /// Valid physical lines at end of run.
    pub valid_lines_end: u64,
    /// Resident entries at end of run.
    pub resident_entries_end: u64,
    /// Self-modifying-code store probes observed.
    pub smc_probes: u64,
    /// Uop cache entries invalidated by SMC probes.
    pub smc_invalidated_entries: u64,
    /// Front-end stall cycles caused by uop cache fill-port backlog
    /// (paper Section V-B's fill-time concern).
    pub fill_stall_cycles: u64,
    /// Total cached code bytes at end of run (with duplication).
    pub coverage_total_bytes: u64,
    /// Unique cached code bytes at end of run.
    pub coverage_unique_bytes: u64,
    /// Memory hierarchy counters.
    pub mem: HierarchyStats,
}

impl SimReport {
    /// Uops per instruction observed.
    pub fn uops_per_inst(&self) -> f64 {
        if self.insts == 0 {
            0.0
        } else {
            self.uops as f64 / self.insts as f64
        }
    }

    /// Compact single-line summary for console output.
    pub fn summary(&self) -> String {
        format!(
            "{:<14} insts={:<9} UPC={:.3} disp={:.3} ocr={:.3} hit={:.3} mpki={:.2} mlat={:.1} dpow={:.3}",
            self.workload,
            self.insts,
            self.upc,
            self.dispatch_bw,
            self.oc_fetch_ratio,
            self.oc_hit_rate,
            self.mpki,
            self.avg_mispredict_latency,
            self.decoder_power,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> SimReport {
        SimReport {
            workload: "t".into(),
            insts: 100,
            uops: 130,
            cycles: 50,
            upc: 2.6,
            dispatch_bw: 3.0,
            oc_uops: 80,
            decoder_uops: 50,
            loop_uops: 0,
            oc_fetch_ratio: 80.0 / 130.0,
            oc_hit_rate: 0.7,
            interior_misses: 0,
            oc_lookup_misses: 3,
            mispredicts: 2,
            direction_mispredicts: 2,
            target_mispredicts: 0,
            decode_redirects: 1,
            mpki: 20.0,
            avg_mispredict_latency: 15.0,
            decoder_power: 0.5,
            front_end_power: 0.8,
            decoded_insts: 40,
            energy: FrontEndEnergy::default(),
            entry_size_dist: vec![0.5, 0.3, 0.2, 0.0],
            taken_term_frac: 0.5,
            term_fracs: [0.0; 8],
            mean_entry_uops: 4.0,
            spanning_frac: 0.0,
            entries_per_pw: [0.6, 0.3, 0.1, 0.0],
            compacted_fill_frac: 0.0,
            compaction_dist: (0.0, 0.0, 0.0),
            oc_fills: 10,
            mean_entry_bytes: 30.0,
            resident_uops_end: 0,
            valid_lines_end: 0,
            resident_entries_end: 0,
            smc_probes: 0,
            smc_invalidated_entries: 0,
            fill_stall_cycles: 0,
            coverage_total_bytes: 0,
            coverage_unique_bytes: 0,
            mem: ucsim_mem::MemoryHierarchy::new(Default::default()).stats(),
        }
    }

    #[test]
    fn uops_per_inst_derived() {
        assert!((blank().uops_per_inst() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn summary_contains_key_metrics() {
        let s = blank().summary();
        assert!(s.contains("UPC=2.600"));
        assert!(s.contains("mpki=20.00"));
    }
}

//! Record-once/replay-many at the prediction-window level.
//!
//! The front end is decoupled: [`ucsim_bpu::PwGenerator`] consumes only
//! the architectural instruction stream and its own predictor state —
//! nothing downstream (uop cache, decoder, back end) ever feeds back into
//! it. Every cell of a sweep that shares the BPU configuration and run
//! length therefore sees the *same* sequence of prediction windows,
//! branch events, and BPU statistics. A [`PwTrace`] records that sequence
//! once per workload and replays it into each cell, so the per-cell cost
//! is the uop-cache/decode/back-end simulation alone: the TAGE, BTB and
//! RAS work is paid once instead of `cells` times, on top of the
//! instruction stream itself already being shared via
//! [`ucsim_trace::SharedTrace`].
//!
//! Replayed reports are byte-identical to [`crate::Simulator::run_trace`]
//! for any configuration whose front end [`PwTrace::matches`] the
//! recording; mismatched configurations must fall back to a full run.

use ucsim_bpu::{BpuStats, Mispredict, PwBatchRef, SlicePwGen};
use ucsim_isa::UopKindTable;
use ucsim_model::{mix64, PredictionWindow, ToJson};
use ucsim_trace::SharedTrace;

use crate::sim::RunState;
use crate::{SimConfig, SimReport};

/// One recorded prediction window: the descriptor, its (exclusive) end
/// index into the shared trace, and the branch events the pipeline
/// charges for.
#[derive(Debug, Clone)]
struct RecordedBatch {
    pw: PredictionWindow,
    end: usize,
    mispredict: Option<Mispredict>,
    decode_redirect: bool,
    btb_promote: bool,
}

/// A recorded prediction-window stream over a shared instruction trace.
#[derive(Debug, Clone)]
pub struct PwTrace {
    trace: SharedTrace,
    batches: Vec<RecordedBatch>,
    /// BPU counters over the measurement window (over everything when the
    /// run never reached the warmup boundary — exactly what
    /// [`crate::Simulator::run_stream`] reports in that degenerate case).
    bpu: BpuStats,
    warmup: u64,
    total: u64,
    /// Canonical JSON of the recorded BPU configuration, for
    /// [`Self::matches`].
    bpu_json: String,
}

impl PwTrace {
    /// Runs PW generation once over `trace` under `cfg`'s front end and
    /// run length, recording every window and the measurement-window BPU
    /// statistics.
    pub fn record(trace: &SharedTrace, cfg: &SimConfig) -> PwTrace {
        let total = cfg.warmup_insts + cfg.measure_insts;
        let insts = trace.insts();
        let insts = &insts[..(total as usize).min(insts.len())];
        let mut pwgen = SlicePwGen::new(cfg.bpu.clone(), insts);
        let mut batches = Vec::new();
        let mut insts_done: u64 = 0;
        let mut measured = false;
        loop {
            if !measured && insts_done >= cfg.warmup_insts {
                pwgen.reset_stats();
                measured = true;
            }
            let Some(span) = pwgen.advance() else { break };
            insts_done += (span.end - span.start) as u64;
            batches.push(RecordedBatch {
                pw: span.pw,
                end: span.end,
                mispredict: span.mispredict,
                decode_redirect: span.decode_redirect,
                btb_promote: span.btb_promote,
            });
        }
        PwTrace {
            trace: SharedTrace::clone(trace),
            batches,
            bpu: pwgen.stats(),
            warmup: cfg.warmup_insts,
            total,
            bpu_json: cfg.bpu.to_json_string(),
        }
    }

    /// Whether `cfg` would produce exactly this PW stream: same front-end
    /// configuration and same warmup/total instruction budget.
    pub fn matches(&self, cfg: &SimConfig) -> bool {
        cfg.warmup_insts == self.warmup
            && cfg.warmup_insts + cfg.measure_insts == self.total
            && cfg.bpu.to_json_string() == self.bpu_json
    }

    /// Number of recorded prediction windows.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// True when the recording holds no windows.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Replays the recorded windows through a fresh pipeline under `cfg`,
    /// producing a report byte-identical to
    /// [`crate::Simulator::run_trace`] with the same configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` does not [`Self::matches`] the recording, or on an
    /// invalid uop-cache configuration.
    pub fn replay(&self, name: &str, cfg: &SimConfig) -> SimReport {
        assert!(
            self.matches(cfg),
            "config front end or run length differs from the recording"
        );
        cfg.uop_cache.validate();
        let insts = self.trace.insts();
        let mut st = RunState::new(cfg);
        let mut insts_done: u64 = 0;
        let mut measured = false;
        let mut start = 0usize;
        for rb in &self.batches {
            if !measured && insts_done >= cfg.warmup_insts {
                st.begin_measurement();
                measured = true;
            }
            let batch = PwBatchRef {
                pw: rb.pw,
                insts: &insts[start..rb.end],
                mispredict: rb.mispredict,
                decode_redirect: rb.decode_redirect,
                btb_promote: rb.btb_promote,
            };
            insts_done += (rb.end - start) as u64;
            st.process_batch_on(&batch, 0);
            start = rb.end;
        }
        if !measured {
            insts_done = 0;
            st.mark_unmeasured();
        }
        st.finish(name, insts_done, self.bpu, cfg)
    }

    /// [`Self::replay`] with PW-granular intra-cell parallelism:
    /// byte-identical output, with `threads` workers offloading the
    /// parallelizable share of the hot loop.
    ///
    /// The pipeline itself is a sequential dependency chain (every batch
    /// reads the uop cache, memory hierarchy and back end state its
    /// predecessor left behind), so it cannot be split without changing
    /// results. What *is* pure is the per-uop identity hash: a function
    /// of `(uop_seq, pc, slot)` only, and `uop_seq` is a prefix sum of
    /// per-instruction template lengths over the recorded trace. Workers
    /// therefore precompute the hash stream in batch-aligned chunks
    /// (two parallel passes: per-chunk uop counts, then the hashes from
    /// each chunk's prefix-sum base), and the sequential consumer stages
    /// each chunk into the pipeline, which consumes one staged hash per
    /// uop instead of mixing inline. Debug builds assert every staged
    /// hash against the inline computation.
    ///
    /// `threads <= 1` (or a recording too small to chunk) falls back to
    /// the plain sequential [`Self::replay`].
    ///
    /// # Panics
    ///
    /// Panics if `cfg` does not [`Self::matches`] the recording, or on an
    /// invalid uop-cache configuration.
    pub fn replay_parallel(&self, name: &str, cfg: &SimConfig, threads: usize) -> SimReport {
        let n_chunks = (threads * 4).min(self.batches.len());
        if threads <= 1 || n_chunks < 2 {
            return self.replay(name, cfg);
        }
        assert!(
            self.matches(cfg),
            "config front end or run length differs from the recording"
        );
        cfg.uop_cache.validate();
        let insts = self.trace.insts();

        // Batch-aligned chunk bounds as instruction indices: chunk `k`
        // covers `insts[bounds[k]..bounds[k + 1]]`. Batch ends strictly
        // increase, so the bounds do too.
        let mut bounds = Vec::with_capacity(n_chunks + 1);
        bounds.push(0usize);
        for k in 1..=n_chunks {
            let b_end = k * self.batches.len() / n_chunks;
            bounds.push(self.batches[b_end - 1].end);
        }

        let kinds = UopKindTable::get();
        // Pass 1: per-chunk uop counts, prefix-summed into per-chunk
        // `uop_seq` bases.
        let counts = ucsim_pool::run_indexed(n_chunks, threads, |k| {
            insts[bounds[k]..bounds[k + 1]]
                .iter()
                .map(|i| kinds.template(i.class, i.uops).len as u64)
                .sum::<u64>()
        });
        let mut bases = Vec::with_capacity(n_chunks);
        let mut acc = 0u64;
        for c in &counts {
            bases.push(acc);
            acc += c;
        }
        // Pass 2: the identity-hash stream of each chunk.
        let mut chunks = ucsim_pool::run_indexed(n_chunks, threads, |k| {
            let mut seq = bases[k];
            let mut v = Vec::with_capacity(counts[k] as usize);
            for inst in &insts[bounds[k]..bounds[k + 1]] {
                let tpl = kinds.template(inst.class, inst.uops);
                for slot in 0..tpl.len as u64 {
                    v.push(mix64(seq ^ inst.pc.get().rotate_left(23) ^ (slot << 57)));
                    seq += 1;
                }
            }
            v
        });

        // Sequential consume — the `replay` loop plus chunk staging at
        // each chunk's first batch.
        let mut st = RunState::new(cfg);
        let mut insts_done: u64 = 0;
        let mut measured = false;
        let mut start = 0usize;
        let mut chunk = 0usize;
        for rb in &self.batches {
            if !measured && insts_done >= cfg.warmup_insts {
                st.begin_measurement();
                measured = true;
            }
            if chunk < n_chunks && start == bounds[chunk] {
                st.stage_hashes(&mut chunks[chunk]);
                chunk += 1;
            }
            let batch = PwBatchRef {
                pw: rb.pw,
                insts: &insts[start..rb.end],
                mispredict: rb.mispredict,
                decode_redirect: rb.decode_redirect,
                btb_promote: rb.btb_promote,
            };
            insts_done += (rb.end - start) as u64;
            st.process_batch_on(&batch, 0);
            start = rb.end;
        }
        debug_assert!(st.staged_fully_consumed(), "hash chunks misaligned");
        if !measured {
            insts_done = 0;
            st.mark_unmeasured();
        }
        st.finish(name, insts_done, self.bpu, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use ucsim_trace::{record_workload, Program, WorkloadProfile};

    fn quick_trace(total: u64) -> SharedTrace {
        let p = WorkloadProfile::quick_test();
        let prog = Program::generate(&p);
        record_workload(&p, &prog, total)
    }

    #[test]
    fn pw_replay_is_byte_identical_to_run_trace() {
        let cfg = SimConfig::table1().with_insts(2_000, 10_000);
        let trace = quick_trace(12_000);
        let pwt = PwTrace::record(&trace, &cfg);
        assert!(!pwt.is_empty());

        // Same config, and a different uop-cache config sharing the front
        // end — both must replay byte-identically.
        let mut clasp = cfg.clone();
        clasp.uop_cache.clasp = true;
        for c in [&cfg, &clasp] {
            let direct = Simulator::new((*c).clone()).run_trace("quick-test", &trace);
            let replayed = pwt.replay("quick-test", c);
            assert_eq!(replayed.to_json_string(), direct.to_json_string());
        }
    }

    #[test]
    fn parallel_replay_is_byte_identical() {
        let cfg = SimConfig::table1().with_insts(2_000, 10_000);
        let trace = quick_trace(12_000);
        let pwt = PwTrace::record(&trace, &cfg);
        let sequential = pwt.replay("quick-test", &cfg);
        for threads in [1, 2, 4] {
            let parallel = pwt.replay_parallel("quick-test", &cfg, threads);
            assert_eq!(
                parallel.to_json_string(),
                sequential.to_json_string(),
                "cell-threads={threads} must not change the report"
            );
        }
    }

    #[test]
    fn mismatched_front_end_is_rejected() {
        let cfg = SimConfig::table1().with_insts(1_000, 4_000);
        let trace = quick_trace(5_000);
        let pwt = PwTrace::record(&trace, &cfg);
        let longer = SimConfig::table1().with_insts(1_000, 4_500);
        assert!(!pwt.matches(&longer));
        let mut other_bpu = cfg.clone();
        other_bpu.bpu.ras_depth += 8;
        assert!(!pwt.matches(&other_bpu));
        assert!(pwt.matches(&cfg));
    }

    #[test]
    fn degenerate_short_trace_still_matches_run_trace() {
        // Trace shorter than warmup: the measurement window never opens.
        let cfg = SimConfig::table1().with_insts(10_000, 10_000);
        let trace = quick_trace(3_000);
        let pwt = PwTrace::record(&trace, &cfg);
        let direct = Simulator::new(cfg.clone()).run_trace("quick-test", &trace);
        let replayed = pwt.replay("quick-test", &cfg);
        assert_eq!(replayed.to_json_string(), direct.to_json_string());
    }
}

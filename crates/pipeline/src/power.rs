//! Activity-based front-end energy model.
//!
//! The paper measured decoder power with Synopsys PTPX on synthesized RTL
//! and reported it *normalized*. We substitute an activity-based proxy:
//! decode energy scales with decoded instructions and decoder-active
//! cycles; the decoder clock-gates (cheap residual) when the uop cache or
//! loop cache feeds the back end. Because every figure normalizes to a
//! baseline run of the same model, only relative activity matters — the
//! same property the paper's normalized plots rely on.

use ucsim_model::{FromJson, ToJson};

/// Energy/power coefficients (arbitrary units; only ratios matter).
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct PowerConfig {
    /// Dynamic energy per decoded x86 instruction.
    pub decode_energy_per_inst: f64,
    /// Decoder overhead per cycle in which it is active.
    pub decoder_active_power: f64,
    /// Clock-gated decoder residual per idle cycle.
    pub decoder_gated_power: f64,
    /// Energy per uop cache lookup.
    pub oc_lookup_energy: f64,
    /// Energy per uop cache entry fill.
    pub oc_fill_energy: f64,
    /// Energy per I-cache access.
    pub icache_access_energy: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            decode_energy_per_inst: 1.0,
            decoder_active_power: 1.0,
            decoder_gated_power: 0.05,
            oc_lookup_energy: 0.08,
            oc_fill_energy: 0.25,
            icache_access_energy: 0.4,
        }
    }
}

/// Activity counters and derived energy numbers for one run.
#[derive(Debug, Clone, Copy, Default, ToJson, FromJson)]
pub struct FrontEndEnergy {
    /// Instructions that went through the x86 decoder.
    pub decoded_insts: u64,
    /// Cycles with at least one decode slot active.
    pub decoder_active_cycles: u64,
    /// Uop cache lookups.
    pub oc_lookups: u64,
    /// Uop cache fills.
    pub oc_fills: u64,
    /// I-cache accesses.
    pub icache_accesses: u64,
}

impl FrontEndEnergy {
    /// Average decoder power over `cycles` (energy units / cycle).
    ///
    /// # Panics
    ///
    /// Panics if `cycles == 0`.
    pub fn decoder_power(&self, cfg: &PowerConfig, cycles: u64) -> f64 {
        assert!(cycles > 0, "power over zero cycles");
        let gated = cycles.saturating_sub(self.decoder_active_cycles);
        (self.decoded_insts as f64 * cfg.decode_energy_per_inst
            + self.decoder_active_cycles as f64 * cfg.decoder_active_power
            + gated as f64 * cfg.decoder_gated_power)
            / cycles as f64
    }

    /// Average whole-front-end power (decoder + OC + I-cache), an
    /// extension beyond the paper's decoder-only number.
    pub fn front_end_power(&self, cfg: &PowerConfig, cycles: u64) -> f64 {
        self.decoder_power(cfg, cycles)
            + (self.oc_lookups as f64 * cfg.oc_lookup_energy
                + self.oc_fills as f64 * cfg.oc_fill_energy
                + self.icache_accesses as f64 * cfg.icache_access_energy)
                / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_decoding_costs_more() {
        let cfg = PowerConfig::default();
        let low = FrontEndEnergy {
            decoded_insts: 100,
            decoder_active_cycles: 50,
            ..Default::default()
        };
        let high = FrontEndEnergy {
            decoded_insts: 1000,
            decoder_active_cycles: 400,
            ..Default::default()
        };
        assert!(high.decoder_power(&cfg, 1000) > low.decoder_power(&cfg, 1000));
    }

    #[test]
    fn gated_cycles_are_cheap() {
        let cfg = PowerConfig::default();
        let idle = FrontEndEnergy::default();
        let p = idle.decoder_power(&cfg, 1000);
        assert!((p - cfg.decoder_gated_power).abs() < 1e-12);
    }

    #[test]
    fn front_end_includes_oc() {
        let cfg = PowerConfig::default();
        let e = FrontEndEnergy {
            oc_lookups: 100,
            ..Default::default()
        };
        assert!(e.front_end_power(&cfg, 100) > e.decoder_power(&cfg, 100));
    }

    #[test]
    #[should_panic(expected = "zero cycles")]
    fn zero_cycles_rejected() {
        let cfg = PowerConfig::default();
        FrontEndEnergy::default().decoder_power(&cfg, 0);
    }
}

//! Loop cache (loop buffer) substrate — the third uop source in the
//! paper's Figure 1.
//!
//! A small structure that captures tight loops: when the same prediction
//! window (a backward-taken-branch body) repeats consecutively and its
//! uops fit the buffer, subsequent iterations are served from the loop
//! cache, bypassing both the decoder *and* the uop cache. The paper keeps
//! its accounting OC-centric, so the default configuration disables the
//! loop cache (capacity 0); a sensitivity example enables it.

use ucsim_model::Addr;

/// Counters for the loop cache.
#[derive(Debug, Clone, Copy, Default)]
pub struct LoopCacheStats {
    /// Uops served from the loop cache.
    pub uops_served: u64,
    /// Times a loop was captured.
    pub captures: u64,
    /// Times an active loop was exited.
    pub exits: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LoopBody {
    start: Addr,
    end: Addr,
    uops: u32,
}

/// Loop capture state machine.
///
/// Detection: a candidate body is a PW that ends in a taken branch whose
/// target equals the PW start (a one-window loop). Seeing the same body
/// twice in a row with a uop count within capacity arms the loop cache;
/// it serves every following iteration until the pattern breaks.
///
/// # Example
///
/// ```
/// use ucsim_pipeline::LoopCache;
/// use ucsim_model::Addr;
///
/// let mut lc = LoopCache::new(32);
/// let (s, e) = (Addr::new(0x100), Addr::new(0x120));
/// assert!(!lc.observe_window(s, e, 8, Some(s))); // first sighting
/// assert!(!lc.observe_window(s, e, 8, Some(s))); // learning
/// assert!(lc.observe_window(s, e, 8, Some(s)));  // armed: served
/// ```
#[derive(Debug, Clone)]
pub struct LoopCache {
    capacity_uops: u32,
    candidate: Option<LoopBody>,
    active: Option<LoopBody>,
    stats: LoopCacheStats,
}

impl LoopCache {
    /// Creates a loop cache holding up to `capacity_uops` uops
    /// (0 disables it).
    pub fn new(capacity_uops: u32) -> Self {
        LoopCache {
            capacity_uops,
            candidate: None,
            active: None,
            stats: LoopCacheStats::default(),
        }
    }

    /// True if the loop cache is enabled.
    pub fn enabled(&self) -> bool {
        self.capacity_uops > 0
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> LoopCacheStats {
        self.stats
    }

    /// Resets counters (not capture state).
    pub fn reset_stats(&mut self) {
        self.stats = LoopCacheStats::default();
    }

    /// Observes one fetched window `[start, end)` with `uops` uops whose
    /// terminating branch (if any) targets `taken_target`. Returns `true`
    /// if this window was served from the loop cache (decoder and uop
    /// cache bypassed).
    pub fn observe_window(
        &mut self,
        start: Addr,
        end: Addr,
        uops: u32,
        taken_target: Option<Addr>,
    ) -> bool {
        if !self.enabled() {
            return false;
        }
        let body = LoopBody { start, end, uops };
        let is_self_loop = taken_target == Some(start) && uops <= self.capacity_uops;

        if let Some(active) = self.active {
            if active == body && is_self_loop {
                self.stats.uops_served += uops as u64;
                return true;
            }
            // Pattern broke.
            self.active = None;
            self.candidate = None;
            self.stats.exits += 1;
            // Fall through to (maybe) start learning this new window.
        }

        if is_self_loop {
            if self.candidate == Some(body) {
                self.active = Some(body);
                self.candidate = None;
                self.stats.captures += 1;
            } else {
                self.candidate = Some(body);
            }
        } else {
            self.candidate = None;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body() -> (Addr, Addr, u32, Option<Addr>) {
        (
            Addr::new(0x100),
            Addr::new(0x120),
            8,
            Some(Addr::new(0x100)),
        )
    }

    #[test]
    fn disabled_never_serves() {
        let mut lc = LoopCache::new(0);
        let (s, e, u, t) = body();
        for _ in 0..10 {
            assert!(!lc.observe_window(s, e, u, t));
        }
        assert_eq!(lc.stats().uops_served, 0);
    }

    #[test]
    fn captures_after_two_sightings() {
        let mut lc = LoopCache::new(32);
        let (s, e, u, t) = body();
        assert!(!lc.observe_window(s, e, u, t));
        assert!(!lc.observe_window(s, e, u, t));
        for _ in 0..5 {
            assert!(lc.observe_window(s, e, u, t));
        }
        let st = lc.stats();
        assert_eq!(st.captures, 1);
        assert_eq!(st.uops_served, 5 * 8);
    }

    #[test]
    fn oversized_loop_rejected() {
        let mut lc = LoopCache::new(4);
        let (s, e, _, t) = body();
        for _ in 0..5 {
            assert!(!lc.observe_window(s, e, 8, t));
        }
        assert_eq!(lc.stats().captures, 0);
    }

    #[test]
    fn exit_on_different_window() {
        let mut lc = LoopCache::new(32);
        let (s, e, u, t) = body();
        lc.observe_window(s, e, u, t);
        lc.observe_window(s, e, u, t);
        assert!(lc.observe_window(s, e, u, t));
        // Different window breaks the loop.
        assert!(!lc.observe_window(Addr::new(0x200), Addr::new(0x210), 4, None));
        assert_eq!(lc.stats().exits, 1);
        // Needs re-learning afterwards.
        assert!(!lc.observe_window(s, e, u, t));
        assert!(!lc.observe_window(s, e, u, t));
        assert!(lc.observe_window(s, e, u, t));
    }

    #[test]
    fn non_loop_windows_never_capture() {
        let mut lc = LoopCache::new(32);
        for _ in 0..10 {
            assert!(!lc.observe_window(
                Addr::new(0x300),
                Addr::new(0x320),
                6,
                Some(Addr::new(0x400)) // forward target: not a self-loop
            ));
        }
        assert_eq!(lc.stats().captures, 0);
    }
}

//! # ucsim-pipeline
//!
//! The cycle-level timing model tying all substrates together: decoupled
//! fetch driven by the PW generator, uop cache / decoder / loop cache uop
//! supply paths, uop queue with back-pressure, and a simplified
//! out-of-order back end (dispatch / ROB / issue / retire) with the
//! widths and latencies of the paper's Table I.
//!
//! The model is *structurally* faithful rather than RTL-exact: every
//! metric the paper reports is computed the way the paper defines it —
//! UPC, uop cache fetch ratio, average dispatched uops per cycle, average
//! branch misprediction latency (branch fetch → resolve), and an
//! activity-based decoder power proxy. All results are meant to be read
//! *relative to a baseline configuration*, exactly as the paper presents
//! them.
//!
//! # Example
//!
//! ```
//! use ucsim_pipeline::{SimConfig, Simulator};
//! use ucsim_trace::{Program, WorkloadProfile};
//!
//! let profile = WorkloadProfile::quick_test();
//! let program = Program::generate(&profile);
//! let cfg = SimConfig::table1().quick();
//! let report = Simulator::new(cfg).run(&profile, &program);
//! assert!(report.upc > 0.0);
//! assert!(report.oc_fetch_ratio >= 0.0 && report.oc_fetch_ratio <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod config;
mod loopcache;
mod metrics;
mod power;
mod pwtrace;
mod sim;
mod smt;
mod sweep;

pub use backend::{Backend, BackendConfig};
pub use config::{CoreConfig, SimConfig};
pub use loopcache::{LoopCache, LoopCacheStats};
pub use metrics::{SimReport, UopSource};
pub use power::{FrontEndEnergy, PowerConfig};
pub use pwtrace::PwTrace;
pub use sim::{Cancelled, Simulator};
pub use smt::SmtSimulator;
pub use sweep::{
    run_configs_on_trace, run_configs_on_trace_threads, KneeBisector, LabeledConfig,
    SweepCellReport, SweepReport,
};

//! Two-way SMT sharing of the front end.
//!
//! The paper motivates PWAC with multithreading (Section V-B1): "the
//! replacement state can be updated by another thread because the uop
//! cache is shared across all threads in a multithreaded core. Hence, RAC
//! cannot guarantee compacting OC entries of the same thread together."
//! This module reproduces that setting: two hardware threads with private
//! accumulation buffers and branch predictors, sharing one uop cache,
//! I-cache hierarchy, fetch engine and back end, fetching alternate
//! prediction windows round-robin.

use ucsim_bpu::{BpuStats, PwGenerator, SlicePwGen};
use ucsim_trace::{record_workload, Program, ReplayIter, SharedTrace, WorkloadProfile};

use crate::sim::RunState;
use crate::{SimConfig, SimReport};

/// A two-thread SMT simulator sharing one front end.
///
/// # Example
///
/// ```
/// use ucsim_pipeline::{SimConfig, SmtSimulator};
/// use ucsim_trace::{Program, WorkloadProfile};
///
/// let p = WorkloadProfile::quick_test();
/// let prog = Program::generate(&p);
/// let sim = SmtSimulator::new(SimConfig::table1().with_insts(2_000, 20_000));
/// let r = sim.run((&p, &prog), (&p, &prog));
/// assert!(r.upc > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SmtSimulator {
    cfg: SimConfig,
}

impl SmtSimulator {
    /// Creates an SMT simulator for the given configuration. The
    /// instruction budgets (`warmup_insts`, `measure_insts`) apply *per
    /// thread*.
    pub fn new(cfg: SimConfig) -> Self {
        cfg.uop_cache.validate();
        SmtSimulator { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Runs two workloads on the shared front end, alternating prediction
    /// windows round-robin, and reports combined metrics.
    ///
    /// Records each workload's stream once and replays it — callers
    /// sweeping several configurations over the same pair should record
    /// with [`ucsim_trace::record_workload`] themselves and call
    /// [`SmtSimulator::run_traces`] so the recording is shared across
    /// the whole sweep, not just across the two threads of one run.
    pub fn run(
        &self,
        a: (&WorkloadProfile, &Program),
        b: (&WorkloadProfile, &Program),
    ) -> SimReport {
        let per_thread = self.cfg.warmup_insts + self.cfg.measure_insts;
        let ta = record_workload(a.0, a.1, per_thread);
        let tb = record_workload(b.0, b.1, per_thread);
        self.run_traces((a.0.name, &ta), (b.0.name, &tb))
    }

    /// One per-thread front-end feed: the branch-predictor + replay
    /// pipeline both threads are built from (the single place the BPU
    /// configuration is cloned into a stream).
    fn thread_feed(&self, trace: &SharedTrace) -> PwGenerator<std::iter::Take<ReplayIter>> {
        let per_thread = (self.cfg.warmup_insts + self.cfg.measure_insts) as usize;
        PwGenerator::new(
            self.cfg.bpu.clone(),
            ReplayIter::new(SharedTrace::clone(trace)).take(per_thread),
        )
    }

    /// Runs two recorded workload traces on the shared front end —
    /// byte-identical to [`SmtSimulator::run`] on the workloads the
    /// traces were recorded from.
    ///
    /// Hot path: both threads are driven by the slice-based
    /// [`SlicePwGen`] over the recordings, so no instruction is copied
    /// into per-window storage (the iterator-driven reference
    /// implementation survives as [`SmtSimulator::run_traces_streamed`]
    /// and the equivalence is asserted in the test suite).
    pub fn run_traces(&self, a: (&str, &SharedTrace), b: (&str, &SharedTrace)) -> SimReport {
        let per_thread = (self.cfg.warmup_insts + self.cfg.measure_insts) as usize;
        let insts_a = a.1.insts();
        let insts_a = &insts_a[..per_thread.min(insts_a.len())];
        let insts_b = b.1.insts();
        let insts_b = &insts_b[..per_thread.min(insts_b.len())];
        let mut gen_a = SlicePwGen::new(self.cfg.bpu.clone(), insts_a);
        let mut gen_b = SlicePwGen::new(self.cfg.bpu.clone(), insts_b);
        let mut st = RunState::with_threads(&self.cfg, 2);

        let mut insts_done: u64 = 0;
        let warmup_total = 2 * self.cfg.warmup_insts;
        let mut measured = false;
        let (mut done_a, mut done_b) = (false, false);
        while !(done_a && done_b) {
            if !measured && insts_done >= warmup_total {
                st.begin_measurement();
                gen_a.reset_stats();
                gen_b.reset_stats();
                measured = true;
            }
            if !done_a {
                match gen_a.advance() {
                    Some(span) => {
                        insts_done += (span.end - span.start) as u64;
                        st.process_batch_on(&gen_a.batch_for(&span), 0);
                    }
                    None => done_a = true,
                }
            }
            if !done_b {
                match gen_b.advance() {
                    Some(span) => {
                        insts_done += (span.end - span.start) as u64;
                        st.process_batch_on(&gen_b.batch_for(&span), 1);
                    }
                    None => done_b = true,
                }
            }
        }

        let bpu = combine(gen_a.stats(), gen_b.stats());
        let name = format!("smt:{}+{}", a.0, b.0);
        st.finish(&name, insts_done, bpu, &self.cfg)
    }

    /// The iterator-driven reference implementation of
    /// [`SmtSimulator::run_traces`]. Kept (hidden) so the equivalence
    /// tests can pin the slice-based hot path to it byte-for-byte.
    #[doc(hidden)]
    pub fn run_traces_streamed(
        &self,
        a: (&str, &SharedTrace),
        b: (&str, &SharedTrace),
    ) -> SimReport {
        let mut gen_a = self.thread_feed(a.1);
        let mut gen_b = self.thread_feed(b.1);
        let mut st = RunState::with_threads(&self.cfg, 2);

        let mut insts_done: u64 = 0;
        let warmup_total = 2 * self.cfg.warmup_insts;
        let mut measured = false;
        let (mut done_a, mut done_b) = (false, false);
        while !(done_a && done_b) {
            if !measured && insts_done >= warmup_total {
                st.begin_measurement();
                gen_a.reset_stats();
                gen_b.reset_stats();
                measured = true;
            }
            if !done_a {
                match gen_a.advance() {
                    Some(batch) => {
                        insts_done += batch.insts.len() as u64;
                        st.process_batch_on(&batch, 0);
                    }
                    None => done_a = true,
                }
            }
            if !done_b {
                match gen_b.advance() {
                    Some(batch) => {
                        insts_done += batch.insts.len() as u64;
                        st.process_batch_on(&batch, 1);
                    }
                    None => done_b = true,
                }
            }
        }

        let bpu = combine(gen_a.stats(), gen_b.stats());
        let name = format!("smt:{}+{}", a.0, b.0);
        st.finish(&name, insts_done, bpu, &self.cfg)
    }
}

/// Sums the per-thread branch statistics for the combined report.
fn combine(a: BpuStats, b: BpuStats) -> BpuStats {
    BpuStats {
        insts: a.insts + b.insts,
        pws: a.pws + b.pws,
        cond_branches: a.cond_branches + b.cond_branches,
        taken_branches: a.taken_branches + b.taken_branches,
        direction_mispredicts: a.direction_mispredicts + b.direction_mispredicts,
        target_mispredicts: a.target_mispredicts + b.target_mispredicts,
        decode_redirects: a.decode_redirects + b.decode_redirects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucsim_uopcache::{CompactionPolicy, UopCacheConfig};

    fn pair() -> (WorkloadProfile, Program, WorkloadProfile, Program) {
        let a = WorkloadProfile::by_name("bm-lla").unwrap();
        let pa = Program::generate(&a);
        let b = WorkloadProfile::by_name("bm-ds").unwrap();
        let pb = Program::generate(&b);
        (a, pa, b, pb)
    }

    fn run_smt(oc: UopCacheConfig) -> SimReport {
        let (a, pa, b, pb) = pair();
        let sim = SmtSimulator::new(
            SimConfig::table1()
                .with_uop_cache(oc)
                .with_insts(5_000, 50_000),
        );
        sim.run((&a, &pa), (&b, &pb))
    }

    #[test]
    fn smt_runs_and_conserves_uops() {
        let r = run_smt(UopCacheConfig::baseline_2k());
        assert!(r.insts >= 95_000, "both threads measured: {}", r.insts);
        assert_eq!(r.oc_uops + r.decoder_uops + r.loop_uops, r.uops);
        assert!(r.upc > 0.3);
    }

    #[test]
    fn smt_slice_path_matches_streamed_reference() {
        use ucsim_model::ToJson;
        let (a, pa, b, pb) = pair();
        let cfg = SimConfig::table1().with_insts(5_000, 50_000);
        let per_thread = cfg.warmup_insts + cfg.measure_insts;
        let ta = record_workload(&a, &pa, per_thread);
        let tb = record_workload(&b, &pb, per_thread);
        let sim = SmtSimulator::new(cfg);
        let fast = sim.run_traces((a.name, &ta), (b.name, &tb));
        let reference = sim.run_traces_streamed((a.name, &ta), (b.name, &tb));
        assert_eq!(fast.to_json_string(), reference.to_json_string());
    }

    #[test]
    fn smt_is_deterministic() {
        let a = run_smt(UopCacheConfig::baseline_2k());
        let b = run_smt(UopCacheConfig::baseline_2k());
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.uops, b.uops);
        assert_eq!(a.oc_fills, b.oc_fills);
    }

    #[test]
    fn smt_sharing_hurts_hit_ratio_vs_solo() {
        // Two threads competing for 2K uops must see a lower fetch ratio
        // than either thread running alone.
        let (a, pa, _, _) = pair();
        let solo =
            crate::Simulator::new(SimConfig::table1().with_insts(5_000, 50_000)).run(&a, &pa);
        let smt = run_smt(UopCacheConfig::baseline_2k());
        assert!(
            smt.oc_fetch_ratio < solo.oc_fetch_ratio,
            "smt {} !< solo {}",
            smt.oc_fetch_ratio,
            solo.oc_fetch_ratio
        );
    }

    #[test]
    fn pwac_at_least_matches_rac_under_smt() {
        // The paper's SMT argument: PW-aware compaction is immune to the
        // other thread scrambling recency. PWAC must never do worse than
        // RAC here (and often does slightly better).
        let rac = run_smt(UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Rac, 2));
        let pwac =
            run_smt(UopCacheConfig::baseline_2k().with_compaction(CompactionPolicy::Pwac, 2));
        assert!(
            pwac.oc_fetch_ratio >= rac.oc_fetch_ratio * 0.995,
            "pwac {} well below rac {}",
            pwac.oc_fetch_ratio,
            rac.oc_fetch_ratio
        );
    }
}

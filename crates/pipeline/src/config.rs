//! Whole-simulator configuration (paper Table I).

use ucsim_bpu::BpuConfig;
use ucsim_mem::HierarchyConfig;
use ucsim_model::{FromJson, ToJson};
use ucsim_uopcache::UopCacheConfig;

use crate::PowerConfig;

/// Core pipeline widths and latencies (Table I).
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct CoreConfig {
    /// Uops dispatched to the back-end per cycle (Table I: 6).
    pub dispatch_width: u32,
    /// Uops retired per cycle (Table I: 8).
    pub retire_width: u32,
    /// Reorder-buffer entries (Table I: 256).
    pub rob_size: usize,
    /// Uop queue entries (Table I: 120).
    pub uop_queue_size: usize,
    /// Issue width of the simplified back-end (issue queue: 160 entries;
    /// we model width, not occupancy).
    pub issue_width: u32,
    /// x86 decoder throughput in instructions/cycle (Table I: 4).
    pub decode_width: u32,
    /// x86 decoder pipeline latency in cycles (Table I: 3).
    pub decode_latency: u32,
    /// Uop cache read bandwidth in uops/cycle (Table I: 8). One entry is
    /// dispatched per cycle; entries never exceed 8 uops.
    pub oc_dispatch_bw: u32,
    /// I-cache fetch bandwidth in bytes/cycle (Table I: 32).
    pub fetch_bytes_per_cycle: u32,
    /// Front-end refill bubble after a resolved misprediction redirect.
    pub redirect_penalty: u32,
    /// Bubble when a taken branch is discovered at decode (BTB miss).
    pub decode_redirect_penalty: u32,
    /// Bubble when a BTB entry is promoted from the second level.
    pub btb_promote_penalty: u32,
    /// Bubble when fetch switches between the OC and IC paths.
    pub path_switch_penalty: u32,
    /// Loop cache capacity in uops (0 disables the loop cache, matching
    /// the paper's OC-centric accounting).
    pub loop_cache_uops: u32,
    /// Probability a uop depends on a recent uop (synthetic dataflow).
    pub dep_prob: f64,
    /// Uop cache fill-port occupancy per entry write, in cycles (paper
    /// Section V-B: fill time is critical because the accumulation buffer
    /// backs up into the decoder).
    pub fill_port_cost: u32,
    /// Extra fill-port cycles for an F-PWAC forced move (one additional
    /// read + write of the previously compacted entry).
    pub forced_move_cost: u32,
    /// Fill backlog (entries) the accumulation buffer absorbs before the
    /// decoder stalls.
    pub acc_backlog: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            dispatch_width: 6,
            retire_width: 8,
            rob_size: 256,
            uop_queue_size: 120,
            issue_width: 8,
            decode_width: 4,
            decode_latency: 3,
            oc_dispatch_bw: 8,
            fetch_bytes_per_cycle: 32,
            redirect_penalty: 5,
            decode_redirect_penalty: 2,
            btb_promote_penalty: 1,
            path_switch_penalty: 1,
            loop_cache_uops: 0,
            dep_prob: 0.35,
            fill_port_cost: 1,
            forced_move_cost: 2,
            acc_backlog: 8,
        }
    }
}

/// Complete simulation configuration.
///
/// This type is part of the `ucsim-serve` wire contract: it round-trips
/// through `ucsim_model::json` exactly, and its canonical encoding feeds
/// the service's content-addressed result cache.
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct SimConfig {
    /// Uop cache geometry and policies.
    pub uop_cache: UopCacheConfig,
    /// Branch prediction unit.
    pub bpu: BpuConfig,
    /// Memory hierarchy.
    pub mem: HierarchyConfig,
    /// Core widths/latencies.
    pub core: CoreConfig,
    /// Power model parameters.
    pub power: PowerConfig,
    /// Instructions to run before statistics are reset.
    pub warmup_insts: u64,
    /// Instructions measured after warmup.
    pub measure_insts: u64,
}

impl SimConfig {
    /// The paper's Table I configuration with the 2K-uop baseline cache.
    pub fn table1() -> Self {
        SimConfig {
            uop_cache: UopCacheConfig::baseline_2k(),
            bpu: BpuConfig::default(),
            mem: HierarchyConfig::default(),
            core: CoreConfig::default(),
            power: PowerConfig::default(),
            warmup_insts: 200_000,
            measure_insts: 2_000_000,
        }
    }

    /// Builder-style: swap the uop cache configuration.
    pub fn with_uop_cache(mut self, oc: UopCacheConfig) -> Self {
        self.uop_cache = oc;
        self
    }

    /// Builder-style: set run length.
    pub fn with_insts(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup_insts = warmup;
        self.measure_insts = measure;
        self
    }

    /// Shrinks run length for unit tests and examples.
    pub fn quick(self) -> Self {
        self.with_insts(20_000, 120_000)
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let c = SimConfig::table1();
        assert_eq!(c.core.dispatch_width, 6);
        assert_eq!(c.core.retire_width, 8);
        assert_eq!(c.core.rob_size, 256);
        assert_eq!(c.core.uop_queue_size, 120);
        assert_eq!(c.core.decode_width, 4);
        assert_eq!(c.core.decode_latency, 3);
        assert_eq!(c.core.oc_dispatch_bw, 8);
        assert_eq!(c.uop_cache.sets, 32);
        assert_eq!(c.uop_cache.ways, 8);
        assert_eq!(c.uop_cache.capacity_uops(), 2048);
    }

    #[test]
    fn builders_compose() {
        let c = SimConfig::table1()
            .with_uop_cache(UopCacheConfig::baseline_with_capacity(8192))
            .with_insts(10, 20);
        assert_eq!(c.uop_cache.capacity_uops(), 8192);
        assert_eq!(c.warmup_insts, 10);
        assert_eq!(c.measure_insts, 20);
    }
}

//! Byte-identity of every hot-path variant against the legacy
//! per-instruction streamed reference.
//!
//! The slice-driven `run_trace`, the recorded `PwTrace::replay`, and the
//! PW-parallel `replay_parallel` all restructure the decode→dispatch hot
//! loop (SoA batches, deferred stat folds, staged hash precompute). None
//! of that is allowed to change a single reported byte: each path must
//! produce canonical JSON identical to `Simulator::run`, which still
//! walks the program one instruction at a time.

use ucsim_model::ToJson;
use ucsim_pipeline::{
    run_configs_on_trace_threads, LabeledConfig, PwTrace, SimConfig, Simulator, SmtSimulator,
};
use ucsim_trace::{record_workload, Program, WorkloadProfile};

/// Short but non-trivial budget: long enough to cross the warmup
/// boundary, fill the uop cache, and exercise evictions.
fn cfg() -> SimConfig {
    SimConfig::table1().with_insts(2_000, 10_000)
}

/// All synthetic workloads: every slice/batched/parallel path must match
/// the streamed per-instruction reference byte for byte.
#[test]
fn all_workloads_all_paths_byte_identical() {
    let cfg = cfg();
    let total = cfg.warmup_insts + cfg.measure_insts;
    for profile in WorkloadProfile::table2() {
        let program = Program::generate(&profile);
        let trace = record_workload(&profile, &program, total);

        let sim = Simulator::new(cfg.clone());
        let legacy = sim.run(&profile, &program).to_json_string();
        let sliced = sim.run_trace(profile.name, &trace).to_json_string();
        assert_eq!(legacy, sliced, "{}: slice path diverged", profile.name);

        let pwt = PwTrace::record(&trace, &cfg);
        let replayed = pwt.replay(profile.name, &cfg).to_json_string();
        assert_eq!(legacy, replayed, "{}: replay diverged", profile.name);

        for threads in [1usize, 4] {
            let par = pwt
                .replay_parallel(profile.name, &cfg, threads)
                .to_json_string();
            assert_eq!(
                legacy, par,
                "{}: parallel replay ({threads} threads) diverged",
                profile.name
            );
        }
    }
}

/// The SMT slice-driven scheduler must match the streamed legacy
/// round-robin on a dual-stream run of two different workloads.
#[test]
fn smt_dual_stream_byte_identical() {
    let cfg = cfg();
    let total = cfg.warmup_insts + cfg.measure_insts;
    let per_thread = total / 2;
    let pa = WorkloadProfile::by_name("redis").expect("known workload");
    let pb = WorkloadProfile::by_name("bm-pb").expect("known workload");
    let ta = record_workload(&pa, &Program::generate(&pa), per_thread);
    let tb = record_workload(&pb, &Program::generate(&pb), per_thread);

    let smt = SmtSimulator::new(cfg);
    let sliced = smt.run_traces((pa.name, &ta), (pb.name, &tb));
    let streamed = smt.run_traces_streamed((pa.name, &ta), (pb.name, &tb));
    assert_eq!(sliced.to_json_string(), streamed.to_json_string());
}

/// The sweep entry point with intra-cell parallelism enabled must report
/// exactly what the sequential sweep reports, cell for cell.
#[test]
fn sweep_cell_threads_byte_identical() {
    let cfg = cfg();
    let total = cfg.warmup_insts + cfg.measure_insts;
    let profile = WorkloadProfile::by_name("jvm").expect("known workload");
    let trace = record_workload(&profile, &Program::generate(&profile), total);
    let configs = vec![
        LabeledConfig::new("table1", cfg.clone()),
        LabeledConfig::new("8-wide", {
            let mut wide = cfg.clone();
            wide.core.dispatch_width = 8;
            wide
        }),
    ];

    let seq = run_configs_on_trace_threads(profile.name, &trace, &configs, 1);
    let par = run_configs_on_trace_threads(profile.name, &trace, &configs, 4);
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(par.iter()) {
        assert_eq!(a.to_json_string(), b.to_json_string());
    }
}

//! # ucsim-derive
//!
//! Derive macros for the workspace's own JSON wire format
//! (`ucsim_model::json`): `#[derive(ToJson)]` and `#[derive(FromJson)]`.
//!
//! The workspace builds in a fully offline environment, so these macros are
//! written against the bare [`proc_macro`] API — no `syn`/`quote`. They
//! support exactly the shapes the simulator's config/report types use:
//!
//! * structs with named fields — encoded as a JSON object, one member per
//!   field, in declaration order (this makes encodings canonical, which the
//!   serve layer relies on for content-addressed cache keys);
//! * single-field tuple structs (newtypes) — encoded as the inner value;
//! * enums whose variants all carry no data — encoded as the variant name
//!   string.
//!
//! Anything else (generics, data-carrying enums, multi-field tuple structs)
//! produces a compile error naming the limitation.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of a deriving type.
enum Shape {
    /// `struct Name { a: A, b: B }`
    Named { name: String, fields: Vec<String> },
    /// `struct Name(Inner);`
    Newtype { name: String },
    /// `enum Name { A, B, C }`
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derives `ucsim_model::json::ToJson`.
///
/// Named structs serialize to an object with fields in declaration order;
/// newtypes serialize as their inner value; fieldless enums serialize as
/// the variant-name string.
#[proc_macro_derive(ToJson)]
pub fn derive_to_json(input: TokenStream) -> TokenStream {
    expand(input, gen_to_json)
}

/// Derives `ucsim_model::json::FromJson`, the inverse of
/// [`macro@ToJson`]. Missing object members are an error unless the field
/// type reports an absent-value default (`Option<T>` does).
#[proc_macro_derive(FromJson)]
pub fn derive_from_json(input: TokenStream) -> TokenStream {
    expand(input, gen_from_json)
}

fn expand(input: TokenStream, gen: fn(&Shape) -> String) -> TokenStream {
    match parse_shape(input) {
        Ok(shape) => gen(&shape).parse().expect("generated impl must parse"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error must parse"),
    }
}

/// Walks the item's tokens and classifies it as one of the supported
/// shapes. Only top-level structure is inspected; field types are never
/// parsed (generated code defers to trait impls).
fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let kind = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    if matches!(&toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "ucsim-derive does not support generic type `{name}`"
        ));
    }
    match (kind.as_str(), toks.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Named {
                name,
                fields: parse_named_fields(g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let n = count_top_level_fields(g.stream());
            if n == 1 {
                Ok(Shape::Newtype { name })
            } else {
                Err(format!(
                    "tuple struct `{name}` must have exactly one field, has {n}"
                ))
            }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            let variants = parse_unit_variants(&name, g.stream())?;
            Ok(Shape::UnitEnum { name, variants })
        }
        (k, t) => Err(format!("unsupported item shape: {k} followed by {t:?}")),
    }
}

/// Skips leading `#[...]` attributes, doc comments, and a `pub` /
/// `pub(...)` visibility qualifier.
fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if matches!(toks.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    toks.next(); // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Extracts field names from the body of a braced struct. Splits on
/// commas outside `<...>` so generic field types don't confuse the scan.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let Some(tt) = toks.next() else { break };
        let TokenTree::Ident(field) = tt else {
            return Err(format!("expected field name, found {tt:?}"));
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{field}`, found {other:?}")),
        }
        fields.push(field.to_string());
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        for tt in toks.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    if fields.is_empty() {
        return Err("struct has no fields".to_owned());
    }
    Ok(fields)
}

/// Counts the comma-separated fields of a tuple-struct body.
fn count_top_level_fields(body: TokenStream) -> usize {
    let mut n = 0usize;
    let mut saw_tokens = false;
    let mut angle = 0i32;
    for tt in body {
        saw_tokens = true;
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => n += 1,
            _ => {}
        }
    }
    if saw_tokens {
        n + 1
    } else {
        0
    }
}

/// Extracts variant names from an enum body, rejecting variants that carry
/// data (they have no canonical string form).
fn parse_unit_variants(name: &str, body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let Some(tt) = toks.next() else { break };
        let TokenTree::Ident(var) = tt else {
            return Err(format!("expected variant name in `{name}`, found {tt:?}"));
        };
        match toks.peek() {
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "enum `{name}` variant `{var}` carries data; only fieldless enums derive Json"
                ));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip to the comma.
                for tt in toks.by_ref() {
                    if matches!(&tt, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                }
            }
            _ => {
                toks.next(); // the trailing comma, if any
            }
        }
        variants.push(var.to_string());
    }
    if variants.is_empty() {
        return Err(format!("enum `{name}` has no variants"));
    }
    Ok(variants)
}

fn gen_to_json(shape: &Shape) -> String {
    match shape {
        Shape::Named { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "obj.push((::std::string::String::from({f:?}), \
                         ucsim_model::json::ToJson::to_json(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ucsim_model::json::ToJson for {name} {{\n\
                     fn to_json(&self) -> ucsim_model::json::Json {{\n\
                         let mut obj = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ucsim_model::json::Json::Obj(obj)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Newtype { name } => format!(
            "impl ucsim_model::json::ToJson for {name} {{\n\
                 fn to_json(&self) -> ucsim_model::json::Json {{\n\
                     ucsim_model::json::ToJson::to_json(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ucsim_model::json::ToJson for {name} {{\n\
                     fn to_json(&self) -> ucsim_model::json::Json {{\n\
                         ucsim_model::json::Json::Str(::std::string::String::from(\
                             match self {{ {arms} }}))\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_from_json(shape: &Shape) -> String {
    match shape {
        Shape::Named { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ucsim_model::json::obj_field(v, {f:?})?,\n"))
                .collect();
            format!(
                "impl ucsim_model::json::FromJson for {name} {{\n\
                     fn from_json(v: &ucsim_model::json::Json) \
                         -> ::std::result::Result<Self, ucsim_model::json::JsonError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Newtype { name } => format!(
            "impl ucsim_model::json::FromJson for {name} {{\n\
                 fn from_json(v: &ucsim_model::json::Json) \
                     -> ::std::result::Result<Self, ucsim_model::json::JsonError> {{\n\
                     ::std::result::Result::Ok({name}(ucsim_model::json::FromJson::from_json(v)?))\n\
                 }}\n\
             }}"
        ),
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ucsim_model::json::FromJson for {name} {{\n\
                     fn from_json(v: &ucsim_model::json::Json) \
                         -> ::std::result::Result<Self, ucsim_model::json::JsonError> {{\n\
                         match ucsim_model::json::expect_str(v, {name:?})? {{\n\
                             {arms}\
                             other => ::std::result::Result::Err(\
                                 ucsim_model::json::JsonError::new(::std::format!(\
                                     \"unknown {name} variant: {{other}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

//! Chaos suite: the deterministic fault-injection harness driven end to
//! end through the `ucsim-serve` service. Compiled only under
//! `--features fault-injection`.
//!
//! The injection harness is process-global state, so every test holds a
//! local serialization gate for its whole body; CI additionally runs
//! this suite with `--test-threads=1`.
#![cfg(feature = "fault-injection")]

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, Once, PoisonError};
use std::time::{Duration, Instant};

use ucsim_bench::{MatrixCross, SweepPolicy};
use ucsim_model::json::Json;
use ucsim_model::ToJson;
use ucsim_pipeline::run_configs_on_trace;
use ucsim_pool::faults::{self, FaultAction, FaultRule, FireMode};
use ucsim_serve::{request, Client, ResultStore, Server, ServerConfig};
use ucsim_trace::{record_workload, Program, WorkloadProfile};

/// Serializes tests that arm the process-global fault harness.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Suppresses panic backtraces from supervised `sim-worker-*` threads —
/// injected panics are the point of these tests, not noise. Panics on
/// any other thread (a real test failure) still print normally.
fn quiet_worker_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let supervised = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("sim-worker"));
            if !supervised {
                default_hook(info);
            }
        }));
    });
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucsim-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn parse_json(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON from server: {e}\n{body}"))
}

/// Polls `GET /v1/matrix/:id` until the sweep settles (`done`, `partial`,
/// or `failed`), returning the final document.
fn poll_settled(client: &mut Client, id: u64) -> Json {
    let path = format!("/v1/matrix/{id}");
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let r = client.request("GET", &path, b"").unwrap();
        assert_eq!(r.status, 200, "body: {}", r.body_str());
        let v = parse_json(&r.body_str());
        if v.get("state").unwrap().as_str() != Some("running") {
            return v;
        }
        assert!(Instant::now() < deadline, "sweep never settled");
        std::thread::sleep(Duration::from_millis(50));
    }
}

// The 120-cell sweep: 4 workloads × 6 Table I capacities × 5 policies.
const WORKLOADS: [&str; 4] = ["redis", "jvm", "bm-cc", "bm-pb"];
const WARMUP: u64 = 200;
const INSTS: u64 = 2000;
const SEED: u64 = 7;
const SWEEP_BODY: &[u8] = br#"{"workloads":["redis","jvm","bm-cc","bm-pb"],"capacities":[2048,4096,8192,16384,32768,65536],"policies":["baseline","clasp","rac","pwac","fpwac"],"seed":7,"warmup":200,"insts":2000}"#;
const TOTAL_CELLS: u64 = 120;

/// The offline oracle: every (workload, label) cell simulated directly
/// through `run_configs_on_trace` over the same recorded stream the
/// server replays. Surviving served cells must match these byte for byte.
fn reference_reports() -> HashMap<(String, String), String> {
    let cross = MatrixCross {
        capacities: MatrixCross::table1_capacities(),
        policies: vec![
            SweepPolicy::Baseline,
            SweepPolicy::Clasp,
            SweepPolicy::Rac,
            SweepPolicy::Pwac,
            SweepPolicy::Fpwac,
        ],
        max_entries: 2,
    };
    let mut configs = cross.expand();
    for lc in &mut configs {
        lc.config.warmup_insts = WARMUP;
        lc.config.measure_insts = INSTS;
    }
    let mut expected = HashMap::new();
    for wl in WORKLOADS {
        let mut profile = WorkloadProfile::by_name(wl).unwrap();
        profile.seed = SEED;
        let program = Program::generate(&profile);
        let trace = record_workload(&profile, &program, WARMUP + INSTS);
        let reports = run_configs_on_trace(profile.name, &trace, &configs);
        for (lc, report) in configs.iter().zip(reports) {
            expected.insert((wl.to_owned(), lc.label.clone()), report.to_json_string());
        }
    }
    expected
}

/// The acceptance-criteria chaos test: a 120-cell sweep rides out seeded
/// worker panics and injected deadline hangs — the sweep still settles
/// with a complete report, every failed cell carries a stable error
/// code, surviving cells are byte-identical to direct simulator runs,
/// and the worker pool ends the storm at full strength. Then a restart
/// proves the failure envelopes replay: completed cells and persisted
/// panic failures re-simulate nothing; only the (environmental, never
/// persisted) deadline cells run again.
#[test]
fn chaos_sweep_settles_partial_with_stable_codes_and_replays() {
    let _gate = serial();
    quiet_worker_panics();
    let dir = temp_dir("sweep");
    let workers = 4;
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_capacity: 32,
        data_dir: Some(dir.clone()),
        job_deadline: Some(Duration::from_millis(500)),
        ..ServerConfig::default()
    };
    let reference = reference_reports();

    // ~15% of simulations panic; the first two jobs any worker picks up
    // stall 1.5 s at the pre-sim site, sailing past the 500 ms deadline.
    faults::install(
        0xCAFE,
        vec![
            FaultRule {
                site: "worker.simulate",
                action: FaultAction::Panic,
                mode: FireMode::Prob(0.15),
                target: None,
            },
            FaultRule {
                site: "worker.pre_sim",
                action: FaultAction::DelayMs(1500),
                mode: FireMode::First(2),
                target: None,
            },
        ],
    );

    let server = Server::start(cfg.clone()).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::new(&addr);
    let r = client.request("POST", "/v1/matrix", SWEEP_BODY).unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    let accepted = parse_json(&r.body_str());
    assert_eq!(accepted.get("planned").unwrap().as_u64(), Some(TOTAL_CELLS));
    let id = accepted.get("id").unwrap().as_u64().unwrap();

    let doc = poll_settled(&mut client, id);

    // The sweep settles at the deadline, while the two stalled workers
    // are still sleeping; wait for them to drain before reading counts.
    let drain = Instant::now() + Duration::from_secs(10);
    while faults::hits("worker.simulate") < TOTAL_CELLS && Instant::now() < drain {
        std::thread::sleep(Duration::from_millis(20));
    }

    // Every cell executed exactly once (distinct content keys, no
    // coalescing), so the per-rule fire counts are pure functions of the
    // installed seed.
    assert_eq!(faults::hits("worker.simulate"), TOTAL_CELLS);
    assert_eq!(faults::hits("worker.pre_sim"), TOTAL_CELLS);
    assert_eq!(faults::fired("worker.pre_sim"), 2);
    let panics = faults::fired("worker.simulate");
    assert!(
        (10..=45).contains(&panics),
        "seeded panic storm out of range: {panics}"
    );

    // The sweep settled partial — it never hangs — with exact accounting.
    assert_eq!(doc.get("state").unwrap().as_str(), Some("partial"));
    let done_n = doc.get("done").unwrap().as_u64().unwrap();
    let failed_n = doc.get("failed").unwrap().as_u64().unwrap();
    assert_eq!(done_n + failed_n, TOTAL_CELLS);

    // Every failed cell carries a stable code and a message; a delayed
    // job that *also* drew a panic stays deadline_exceeded (first-wins).
    let cells = doc.get("cells").unwrap().as_arr().unwrap();
    let mut deadline_cells = 0u64;
    let mut panic_cells = 0u64;
    for cell in cells {
        match cell.get("state").unwrap().as_str().unwrap() {
            "done" => assert!(cell.get("error").is_none()),
            "failed" => {
                let err = cell.get("error").unwrap();
                let code = err.get("code").unwrap().as_str().unwrap();
                let msg = err.get("message").unwrap().as_str().unwrap();
                assert!(!msg.is_empty());
                match code {
                    "deadline_exceeded" => deadline_cells += 1,
                    "simulation_failed" => {
                        assert!(
                            msg.contains("injected fault at worker.simulate"),
                            "unexpected panic message: {msg}"
                        );
                        panic_cells += 1;
                    }
                    other => panic!("unstable error code: {other}"),
                }
            }
            other => panic!("cell left unsettled: {other}"),
        }
    }
    assert_eq!(deadline_cells, 2, "both stalled jobs hit the deadline");
    assert_eq!(panic_cells + deadline_cells, failed_n);
    assert!(
        panic_cells >= panics - 2 && panic_cells <= panics,
        "panic cells {panic_cells} vs fired {panics}"
    );

    // Surviving cells are byte-identical (canonical JSON) to the direct
    // `run_configs_on_trace` oracle.
    let agg = doc.get("report").expect("partial sweep still aggregates");
    let agg_cells = agg.get("cells").unwrap().as_arr().unwrap();
    assert_eq!(agg_cells.len() as u64, done_n);
    for cell in agg_cells {
        let wl = cell.get("workload").unwrap().as_str().unwrap();
        let label = cell.get("label").unwrap().as_str().unwrap();
        let expected = &reference[&(wl.to_owned(), label.to_owned())];
        assert_eq!(
            &cell.get("report").unwrap().to_string(),
            expected,
            "cell {wl}/{label} diverges from the direct run"
        );
    }

    // The pool ended the storm at full strength: one respawn per panic,
    // nominal worker count restored (the last replacement may lag the
    // sweep's settling by a beat).
    assert_eq!(server.workers_respawned(), panics);
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.workers_alive() < workers && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.workers_alive(), workers, "pool strength restored");

    // Metrics agree with the storm.
    let m = parse_json(
        &client
            .request("GET", "/v1/metrics", b"")
            .unwrap()
            .body_str(),
    );
    let w = m.get("workers").unwrap();
    assert_eq!(w.get("jobs_executed").unwrap().as_u64(), Some(TOTAL_CELLS));
    assert_eq!(w.get("jobs_failed").unwrap().as_u64(), Some(failed_n));
    assert_eq!(w.get("jobs_deadline_exceeded").unwrap().as_u64(), Some(2));
    assert_eq!(w.get("workers_respawned").unwrap().as_u64(), Some(panics));
    assert_eq!(w.get("alive").unwrap().as_u64(), Some(workers as u64));

    drop(client);
    server.shutdown();
    faults::clear();

    // Restart against the same data dir with the faults disarmed. The
    // completed cells replay from RESULT records, the panicked cells
    // fail instantly from replayed FAILED records (panics are
    // deterministic), and only the two deadline cells — environmental,
    // never persisted — re-simulate, successfully this time.
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr().to_string();
    let mut client = Client::new(&addr);
    let r = client.request("POST", "/v1/matrix", SWEEP_BODY).unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    let id = parse_json(&r.body_str())
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();
    let doc = poll_settled(&mut client, id);

    assert_eq!(
        server.simulations_executed(),
        2,
        "only the deadline cells re-simulate after a restart"
    );
    assert_eq!(doc.get("state").unwrap().as_str(), Some("partial"));
    assert_eq!(doc.get("done").unwrap().as_u64(), Some(done_n + 2));
    assert_eq!(doc.get("failed").unwrap().as_u64(), Some(panic_cells));
    for cell in doc.get("cells").unwrap().as_arr().unwrap() {
        if cell.get("state").unwrap().as_str() == Some("failed") {
            let err = cell.get("error").unwrap();
            assert_eq!(err.get("code").unwrap().as_str(), Some("simulation_failed"));
        }
    }
    assert_eq!(server.workers_respawned(), 0, "no panics this life");
    assert_eq!(server.workers_alive(), workers);

    drop(client);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A torn (partial) store append costs that one record, never the log:
/// the job's response is still served, the write error is counted, and a
/// restart truncates the torn tail, replays the valid prefix, and keeps
/// appending where it left off.
#[test]
fn torn_store_write_costs_one_record_never_the_log() {
    let _gate = serial();
    let dir = temp_dir("torn");
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        data_dir: Some(dir.clone()),
        durable_store: true,
        ..ServerConfig::default()
    };
    let job_a = br#"{"workload":"bm-cc","seed":7,"warmup":100,"insts":2000}"#;
    let job_b = br#"{"workload":"redis","seed":7,"warmup":100,"insts":2000}"#;

    // Life 1: job A persists cleanly (shutdown joins the worker, so the
    // append is on disk before the process "dies").
    {
        let server = Server::start(cfg.clone()).unwrap();
        let addr = server.local_addr().to_string();
        let r = request(&addr, "POST", "/v1/sim", job_a).unwrap();
        assert_eq!(r.status, 200, "body: {}", r.body_str());
        server.shutdown();
    }

    // Life 2: job B's append tears 10 bytes in — mid-record-header, like
    // a crash between write and flush. The response is still a 200 (a
    // failed append costs durability, not the result) and the error is
    // counted.
    {
        faults::install(
            1,
            vec![FaultRule {
                site: "store.append",
                action: FaultAction::TornWrite { keep: 10 },
                mode: FireMode::First(1),
                target: None,
            }],
        );
        let server = Server::start(cfg.clone()).unwrap();
        let addr = server.local_addr().to_string();
        let r = request(&addr, "POST", "/v1/sim", job_b).unwrap();
        assert_eq!(r.status, 200, "body: {}", r.body_str());
        // The append happens just after the response waker; poll the
        // counter rather than racing it.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let m = parse_json(
                &request(&addr, "GET", "/v1/metrics", b"")
                    .unwrap()
                    .body_str(),
            );
            let errors = m
                .get("store")
                .unwrap()
                .get("write_errors")
                .unwrap()
                .as_u64()
                .unwrap();
            if errors == 1 {
                break;
            }
            assert!(Instant::now() < deadline, "write error never surfaced");
            std::thread::sleep(Duration::from_millis(20));
        }
        faults::clear();
        server.shutdown();
    }

    // Life 3: replay truncates the torn tail. A survives (cache hit,
    // zero simulations); B is gone, re-simulates once, and its fresh
    // append extends the recovered log.
    {
        let server = Server::start(cfg).unwrap();
        let addr = server.local_addr().to_string();
        let ra = request(&addr, "POST", "/v1/sim", job_a).unwrap();
        assert_eq!(ra.status, 200, "body: {}", ra.body_str());
        assert_eq!(
            parse_json(&ra.body_str()).get("cached").unwrap().as_bool(),
            Some(true)
        );
        assert_eq!(server.simulations_executed(), 0);
        let rb = request(&addr, "POST", "/v1/sim", job_b).unwrap();
        assert_eq!(rb.status, 200, "body: {}", rb.body_str());
        assert_eq!(
            parse_json(&rb.body_str()).get("cached").unwrap().as_bool(),
            Some(false)
        );
        assert_eq!(server.simulations_executed(), 1, "B re-simulates once");
        server.shutdown();
    }

    // Both records are on disk again — the torn write cost one record
    // for one process lifetime, nothing more.
    let (_store, records) = ResultStore::open(&dir, false).unwrap();
    assert_eq!(records.len(), 2, "recovered log holds A and re-run B");
    let _ = std::fs::remove_dir_all(&dir);
}

//! Federation integration suite: multi-node clusters assembled
//! in-process — rendezvous job routing, scatter-gather sweeps,
//! anti-entropy store replication, and the peers sections of the
//! introspection endpoints. Fault-free paths only; the kill/partition
//! scenarios live in `cluster_chaos.rs` (feature-gated).

use std::io::Write;
use std::net::TcpListener;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use ucsim_model::json::Json;
use ucsim_serve::{Client, Server, ServerConfig};

/// Reserves `n` distinct loopback addresses by binding ephemeral
/// listeners, then releasing them for the servers to rebind.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("reserved addr").to_string())
        .collect()
}

/// A cluster member's configuration: every node gets the identical
/// membership list; its own advertised address is filtered out.
fn member_cfg(addr: &str, members: &[String]) -> ServerConfig {
    ServerConfig {
        addr: addr.to_owned(),
        advertise: Some(addr.to_owned()),
        peers: members.to_vec(),
        workers: 2,
        anti_entropy_interval: Duration::from_millis(150),
        ..ServerConfig::default()
    }
}

/// Starts one node, retrying briefly if the reserved port is still in
/// TIME_WAIT from the reservation probe.
fn start_node(cfg: ServerConfig) -> Server {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match Server::start(cfg.clone()) {
            Ok(s) => return s,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("node failed to start on {}: {e}", cfg.addr),
        }
    }
}

fn parse_json(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON from server: {e}\n{body}"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ucsim-fed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Polls `GET /v1/matrix/:id` until the sweep settles, returning the
/// final document.
fn poll_settled(client: &mut Client, id: u64) -> Json {
    let path = format!("/v1/matrix/{id}");
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let r = client.request("GET", &path, b"").unwrap();
        assert_eq!(r.status, 200, "body: {}", r.body_str());
        let v = parse_json(&r.body_str());
        if v.get("state").unwrap().as_str() != Some("running") {
            return v;
        }
        assert!(Instant::now() < deadline, "sweep never settled");
        std::thread::sleep(Duration::from_millis(50));
    }
}

const SIM_BODY: &[u8] = br#"{"workload":"bm-cc","seed":11,"warmup":100,"insts":500}"#;

#[test]
fn routed_job_executes_once_and_both_nodes_answer_it() {
    let addrs = reserve_addrs(2);
    let a = start_node(member_cfg(&addrs[0], &addrs));
    let b = start_node(member_cfg(&addrs[1], &addrs));

    let mut client = Client::new(&addrs[0]);
    client.set_request_id(Some("fed-route-1".to_owned()));
    let first = client.request("POST", "/v1/sim", SIM_BODY).unwrap();
    assert_eq!(first.status, 200, "body: {}", first.body_str());
    // The request id survives the hop to the owner and back.
    assert_eq!(first.header("x-request-id"), Some("fed-route-1"));
    let first_doc = parse_json(&first.body_str());
    assert_eq!(first_doc.get("cached").unwrap().as_bool(), Some(false));

    // Exactly one node simulated, regardless of which one owns the key.
    assert_eq!(a.simulations_executed() + b.simulations_executed(), 1);

    // The other node answers the same spec without re-simulating, with a
    // byte-identical report.
    let mut client_b = Client::new(&addrs[1]);
    let second = client_b.request("POST", "/v1/sim", SIM_BODY).unwrap();
    assert_eq!(second.status, 200, "body: {}", second.body_str());
    let second_doc = parse_json(&second.body_str());
    assert_eq!(second_doc.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(
        first_doc.get("report").unwrap().to_string(),
        second_doc.get("report").unwrap().to_string(),
        "reports must be byte-identical across nodes"
    );
    assert_eq!(a.simulations_executed() + b.simulations_executed(), 1);

    a.shutdown();
    b.shutdown();
}

const SWEEP_BODY: &[u8] = br#"{"workloads":["redis","jvm","bm-cc"],"capacities":[2048,4096,8192,16384],"policies":["baseline","clasp","rac","pwac","fpwac"],"seed":7,"warmup":200,"insts":2000}"#;
const SWEEP_CELLS: u64 = 60;

#[test]
fn scatter_gather_sweep_is_byte_identical_to_single_node() {
    // The single-node oracle first: same cross, no peers.
    let reference = start_node(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        ..ServerConfig::default()
    });
    let ref_addr = reference.local_addr().to_string();
    let mut ref_client = Client::new(&ref_addr);
    let r = ref_client
        .request("POST", "/v1/matrix", SWEEP_BODY)
        .unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    let id = parse_json(&r.body_str())
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();
    let ref_doc = poll_settled(&mut ref_client, id);
    assert_eq!(ref_doc.get("state").unwrap().as_str(), Some("done"));
    let ref_report = ref_doc.get("report").unwrap().to_string();
    reference.shutdown();

    let addrs = reserve_addrs(2);
    let a = start_node(member_cfg(&addrs[0], &addrs));
    let b = start_node(member_cfg(&addrs[1], &addrs));

    let mut client = Client::new(&addrs[0]);
    let r = client.request("POST", "/v1/matrix", SWEEP_BODY).unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    let accepted = parse_json(&r.body_str());
    assert_eq!(accepted.get("planned").unwrap().as_u64(), Some(SWEEP_CELLS));
    let id = accepted.get("id").unwrap().as_u64().unwrap();
    let doc = poll_settled(&mut client, id);

    assert_eq!(doc.get("state").unwrap().as_str(), Some("done"));
    assert_eq!(doc.get("failed").unwrap().as_u64(), Some(0));
    // Fresh cluster: every planned cell simulated exactly once, spread
    // across the members by ownership.
    assert_eq!(doc.get("simulated").unwrap().as_u64(), Some(SWEEP_CELLS));
    assert_eq!(doc.get("skipped_from_store").unwrap().as_u64(), Some(0));
    let exec_a = a.simulations_executed();
    let exec_b = b.simulations_executed();
    assert_eq!(exec_a + exec_b, SWEEP_CELLS, "no cell simulated twice");
    assert!(exec_a > 0, "coordinator kept its owned cells");
    assert!(exec_b > 0, "peer received its owned cells");
    let remote = doc.get("remote_done").unwrap().as_u64().unwrap();
    assert_eq!(remote, exec_b, "every peer-owned cell gathered remotely");

    // The merged aggregate is byte-identical to the single-node run.
    assert_eq!(
        doc.get("report").unwrap().to_string(),
        ref_report,
        "scatter-gather must merge to the single-node report bytes"
    );

    a.shutdown();
    b.shutdown();
}

/// Polls a node's `GET /v1/store` until it holds `want` verified
/// records, returning the final document.
fn poll_store_records(addr: &str, want: usize) -> Json {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let r = ucsim_serve::request(addr, "GET", "/v1/store?since=0&max=64", b"").unwrap();
        assert_eq!(r.status, 200, "body: {}", r.body_str());
        let v = parse_json(&r.body_str());
        let n = v.get("records").unwrap().as_arr().unwrap().len();
        if n >= want {
            return v;
        }
        assert!(
            Instant::now() < deadline,
            "store never reached {want} records (at {n})"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn anti_entropy_replicates_results_and_survives_restart() {
    let dirs = [temp_dir("ae-a"), temp_dir("ae-b")];
    let addrs = reserve_addrs(2);
    let mk = |i: usize| ServerConfig {
        data_dir: Some(dirs[i].clone()),
        ..member_cfg(&addrs[i], &addrs)
    };
    let a = start_node(mk(0));
    let b = start_node(mk(1));

    // Two distinct jobs, submitted to different nodes: each executes on
    // its owner, and anti-entropy pulls carry the records to the other
    // member — including records appended while the pull loop is already
    // cycling.
    let mut client_a = Client::new(&addrs[0]);
    let mut client_b = Client::new(&addrs[1]);
    let r = client_a.request("POST", "/v1/sim", SIM_BODY).unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body_str());
    let second_body: &[u8] = br#"{"workload":"bm-cc","seed":12,"warmup":100,"insts":500}"#;
    let r = client_b.request("POST", "/v1/sim", second_body).unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body_str());
    assert_eq!(a.simulations_executed() + b.simulations_executed(), 2);

    let doc_a = poll_store_records(&addrs[0], 2);
    let doc_b = poll_store_records(&addrs[1], 2);
    let keys = |doc: &Json| -> Vec<String> {
        let mut ks: Vec<String> = doc
            .get("records")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|r| r.get("key").unwrap().as_str().unwrap().to_owned())
            .collect();
        ks.sort();
        ks
    };
    assert_eq!(keys(&doc_a), keys(&doc_b), "stores converged on both keys");

    // Crash mid-append on both nodes: torn garbage at each log tail. The
    // delta endpoint stops at the checksum mismatch, so the garbage is
    // never served — and never replicated.
    for dir in &dirs {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("results.log"))
            .unwrap();
        f.write_all(&[0x01, 0xde, 0xad, 0xbe]).unwrap();
    }
    std::thread::sleep(Duration::from_millis(500)); // a few pull cycles
    for addr in &addrs {
        let r = ucsim_serve::request(addr, "GET", "/v1/store?since=0&max=64", b"").unwrap();
        let v = parse_json(&r.body_str());
        assert_eq!(
            v.get("records").unwrap().as_arr().unwrap().len(),
            2,
            "torn tail must not be served or replicated"
        );
        assert_eq!(v.get("eof").unwrap().as_bool(), Some(true));
    }

    a.shutdown();
    b.shutdown();

    // Restart one member standalone on its pulled store: both jobs —
    // including the one its peer executed — answer from replay with zero
    // re-simulation, torn tail notwithstanding.
    let restarted = start_node(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        data_dir: Some(dirs[1].clone()),
        ..ServerConfig::default()
    });
    let mut client = Client::new(&restarted.local_addr().to_string());
    for body in [SIM_BODY, second_body] {
        let r = client.request("POST", "/v1/sim", body).unwrap();
        assert_eq!(r.status, 200, "body: {}", r.body_str());
        let v = parse_json(&r.body_str());
        assert_eq!(v.get("cached").unwrap().as_bool(), Some(true));
    }
    assert_eq!(restarted.simulations_executed(), 0, "zero re-sims");
    restarted.shutdown();

    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn introspection_endpoints_expose_cluster_state() {
    let addrs = reserve_addrs(2);
    let a = start_node(member_cfg(&addrs[0], &addrs));
    let b = start_node(member_cfg(&addrs[1], &addrs));

    let r = ucsim_serve::request(&addrs[0], "GET", "/v1/healthz", b"").unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body_str());
    let health = parse_json(&r.body_str());
    let peers = health.get("peers").expect("peers section in healthz");
    assert_eq!(
        peers.get("advertise").unwrap().as_str(),
        Some(addrs[0].as_str())
    );
    let members = peers.get("members").unwrap().as_arr().unwrap();
    assert_eq!(members.len(), 1, "self filtered from the member list");
    assert_eq!(
        members[0].get("addr").unwrap().as_str(),
        Some(addrs[1].as_str())
    );

    // Give the probe loop a beat: a live peer must be reported up and
    // the cluster state ok.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let r = ucsim_serve::request(&addrs[0], "GET", "/v1/healthz", b"").unwrap();
        let peers = parse_json(&r.body_str()).get("peers").unwrap().clone();
        let state = peers.get("state").unwrap().as_str().unwrap().to_owned();
        if state == "ok" {
            break;
        }
        assert!(Instant::now() < deadline, "cluster never converged to ok");
        std::thread::sleep(Duration::from_millis(50));
    }

    let r = ucsim_serve::request(&addrs[0], "GET", "/v1/metrics", b"").unwrap();
    let metrics = parse_json(&r.body_str());
    let peers = metrics.get("peers").expect("peers section in metrics");
    assert_eq!(peers.get("configured").unwrap().as_u64(), Some(1));
    for leaf in ["forwarded", "failed_over", "probes", "pull_rounds"] {
        assert!(peers.get(leaf).is_some(), "missing peers.{leaf}");
    }
    // The Prometheus exposition flattens the same section mechanically.
    let prom = ucsim_serve::render_prometheus(&metrics);
    assert!(prom.contains("ucsim_peers_probes"), "{prom}");
    assert!(prom.contains("# TYPE ucsim_peers_probes counter"), "{prom}");
    assert!(
        prom.contains("# TYPE ucsim_peers_configured gauge"),
        "{prom}"
    );

    let r = ucsim_serve::request(&addrs[0], "GET", "/v1/version", b"").unwrap();
    let version = parse_json(&r.body_str());
    assert_eq!(
        version
            .get("features")
            .unwrap()
            .get("cluster")
            .unwrap()
            .as_bool(),
        Some(true)
    );

    a.shutdown();
    b.shutdown();
}

//! Cluster chaos suite: multi-node federation driven through the
//! deterministic fault-injection harness. Compiled only under
//! `--features fault-injection`.
//!
//! The acceptance scenario: a three-node cluster runs a 60-cell sweep
//! while one owner is killed outright and another is partitioned away
//! and later healed — the sweep must still settle complete, simulate
//! every planned cell exactly once (by the coordinator's ledger), and
//! merge to a report byte-identical to a single-node run.
//!
//! The injection harness is process-global state, so every test holds a
//! local serialization gate for its whole body; CI additionally runs
//! this suite with `--test-threads=1`.
#![cfg(feature = "fault-injection")]

use std::net::TcpListener;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use ucsim_model::json::Json;
use ucsim_pool::faults::{self, FaultAction, FaultRule, FireMode};
use ucsim_serve::{request, Client, Server, ServerConfig};

/// Serializes tests that arm the process-global fault harness.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Reserves `n` distinct loopback addresses by binding ephemeral
/// listeners, then releasing them for the servers to rebind.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("reserved addr").to_string())
        .collect()
}

fn member_cfg(addr: &str, members: &[String]) -> ServerConfig {
    ServerConfig {
        addr: addr.to_owned(),
        advertise: Some(addr.to_owned()),
        peers: members.to_vec(),
        workers: 2,
        ..ServerConfig::default()
    }
}

fn start_node(cfg: ServerConfig) -> Server {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match Server::start(cfg.clone()) {
            Ok(s) => return s,
            Err(e) if Instant::now() < deadline => {
                let _ = e;
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("node failed to start on {}: {e}", cfg.addr),
        }
    }
}

fn parse_json(body: &str) -> Json {
    Json::parse(body).unwrap_or_else(|e| panic!("bad JSON from server: {e}\n{body}"))
}

/// Polls `GET /v1/matrix/:id` until the sweep settles, returning the
/// final document.
fn poll_settled(client: &mut Client, id: u64) -> Json {
    let path = format!("/v1/matrix/{id}");
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        let r = client.request("GET", &path, b"").unwrap();
        assert_eq!(r.status, 200, "body: {}", r.body_str());
        let v = parse_json(&r.body_str());
        if v.get("state").unwrap().as_str() != Some("running") {
            return v;
        }
        assert!(Instant::now() < deadline, "sweep never settled");
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn sweep_state(client: &mut Client, id: u64) -> String {
    let r = client
        .request("GET", &format!("/v1/matrix/{id}"), b"")
        .unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body_str());
    parse_json(&r.body_str())
        .get("state")
        .unwrap()
        .as_str()
        .unwrap()
        .to_owned()
}

/// A partition of `victim`: every connect to it — forwards, pulls, and
/// health probes alike — is refused at the transport fault site.
fn partition(victim: &str) {
    faults::install(
        0xC1A0,
        vec![FaultRule {
            site: "peer.connect",
            action: FaultAction::IoError,
            mode: FireMode::EveryNth(1),
            target: Some(victim.to_owned()),
        }],
    );
}

// 60 cells (3 workloads × 4 capacities × 5 policies), sized so the
// sweep runs for several seconds — long enough to kill and partition
// nodes while it is demonstrably still in flight.
const SWEEP_BODY: &[u8] = br#"{"workloads":["redis","jvm","bm-cc"],"capacities":[2048,4096,8192,16384],"policies":["baseline","clasp","rac","pwac","fpwac"],"seed":7,"warmup":500,"insts":20000}"#;
const SWEEP_CELLS: u64 = 60;

/// The acceptance-criteria chaos test: kill one owner mid-sweep,
/// partition another and heal it, and the scatter-gather sweep still
/// settles with every cell simulated exactly once and a merged report
/// byte-identical to a single-node run.
#[test]
fn sweep_survives_a_killed_owner_and_a_healed_partition() {
    let _gate = serial();
    faults::clear();

    // Single-node oracle for the report bytes.
    let reference = start_node(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 4,
        ..ServerConfig::default()
    });
    let mut ref_client = Client::new(&reference.local_addr().to_string());
    let r = ref_client
        .request("POST", "/v1/matrix", SWEEP_BODY)
        .unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    let id = parse_json(&r.body_str())
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();
    let ref_doc = poll_settled(&mut ref_client, id);
    assert_eq!(ref_doc.get("state").unwrap().as_str(), Some("done"));
    let ref_report = ref_doc.get("report").unwrap().to_string();
    reference.shutdown();

    let addrs = reserve_addrs(3);
    let a = start_node(member_cfg(&addrs[0], &addrs));
    let b = start_node(member_cfg(&addrs[1], &addrs));
    let c = start_node(member_cfg(&addrs[2], &addrs));

    let mut client = Client::new(&addrs[0]);
    let r = client.request("POST", "/v1/matrix", SWEEP_BODY).unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    let accepted = parse_json(&r.body_str());
    assert_eq!(accepted.get("planned").unwrap().as_u64(), Some(SWEEP_CELLS));
    let id = accepted.get("id").unwrap().as_u64().unwrap();

    // Mid-sweep: partition node C away from everyone, then kill node B
    // outright. The coordinator keeps only itself.
    std::thread::sleep(Duration::from_millis(400));
    assert_eq!(
        sweep_state(&mut client, id),
        "running",
        "chaos must land mid-sweep"
    );
    partition(&addrs[2]);
    b.shutdown();

    // Let the sweep grind against the degraded cluster, then heal the
    // partition while cells are still outstanding.
    std::thread::sleep(Duration::from_millis(1200));
    assert_eq!(
        sweep_state(&mut client, id),
        "running",
        "heal must land mid-sweep"
    );
    faults::clear();

    let doc = poll_settled(&mut client, id);
    assert_eq!(
        doc.get("state").unwrap().as_str(),
        Some("done"),
        "doc: {doc}"
    );
    assert_eq!(doc.get("failed").unwrap().as_u64(), Some(0));
    // The coordinator's ledger: every planned cell simulated exactly
    // once — failovers re-route cells, they never double-count them.
    assert_eq!(doc.get("simulated").unwrap().as_u64(), Some(SWEEP_CELLS));
    assert_eq!(doc.get("done").unwrap().as_u64(), Some(SWEEP_CELLS));

    // And the merged report is byte-identical to the single-node run.
    assert_eq!(
        doc.get("report").unwrap().to_string(),
        ref_report,
        "degraded-cluster report must match the single-node bytes"
    );

    // The coordinator recorded the failovers it performed around the
    // dead and partitioned members.
    let r = request(&addrs[0], "GET", "/v1/metrics", b"").unwrap();
    let peers = parse_json(&r.body_str()).get("peers").unwrap().clone();
    assert!(
        peers.get("failed_over").unwrap().as_u64().unwrap() > 0,
        "metrics: {peers}"
    );

    a.shutdown();
    c.shutdown();
    faults::clear();
}

/// Torn peer responses and injected request delays: the gather path
/// treats a response that dies mid-body as a failed hop and re-routes
/// the cell, so the sweep still completes every cell.
#[test]
fn torn_peer_responses_and_delays_fail_over_without_losing_cells() {
    let _gate = serial();
    faults::clear();

    let addrs = reserve_addrs(2);
    let a = start_node(member_cfg(&addrs[0], &addrs));
    let b = start_node(member_cfg(&addrs[1], &addrs));

    faults::install(
        0xFEED,
        vec![
            // Responses from node B die 12 bytes in, four times.
            FaultRule {
                site: "peer.recv",
                action: FaultAction::TornWrite { keep: 12 },
                mode: FireMode::First(4),
                target: Some(addrs[1].clone()),
            },
            // And a couple of transport stalls for good measure.
            FaultRule {
                site: "peer.request",
                action: FaultAction::DelayMs(150),
                mode: FireMode::First(2),
                target: None,
            },
        ],
    );

    let body: &[u8] = br#"{"workloads":["bm-cc"],"capacities":[2048,4096,8192,16384],"policies":["baseline","clasp","rac","pwac","fpwac"],"seed":7,"warmup":200,"insts":2000}"#;
    let mut client = Client::new(&addrs[0]);
    let r = client.request("POST", "/v1/matrix", body).unwrap();
    assert_eq!(r.status, 202, "body: {}", r.body_str());
    let id = parse_json(&r.body_str())
        .get("id")
        .unwrap()
        .as_u64()
        .unwrap();
    let doc = poll_settled(&mut client, id);

    assert_eq!(
        doc.get("state").unwrap().as_str(),
        Some("done"),
        "doc: {doc}"
    );
    assert_eq!(doc.get("failed").unwrap().as_u64(), Some(0));
    assert_eq!(doc.get("done").unwrap().as_u64(), Some(20));
    // A torn response can arrive *after* the peer executed the cell;
    // the retried hop then answers from the peer's cache, so the cell
    // lands as skipped-from-store rather than simulated. Either way,
    // every cell is accounted for exactly once.
    let simulated = doc.get("simulated").unwrap().as_u64().unwrap();
    let skipped = doc.get("skipped_from_store").unwrap().as_u64().unwrap();
    assert_eq!(simulated + skipped, 20, "doc: {doc}");
    assert!(
        faults::fired("peer.recv") >= 1,
        "the torn-response site never fired"
    );

    a.shutdown();
    b.shutdown();
    faults::clear();
}

/// A fully partitioned peer is marked down by the breaker, the cluster
/// reports degraded while still serving what it owns, and a healed
/// partition closes the breaker again.
#[test]
fn partitioned_peer_reports_degraded_and_recovers() {
    let _gate = serial();
    faults::clear();

    let addrs = reserve_addrs(2);
    let a = start_node(member_cfg(&addrs[0], &addrs));
    let b = start_node(member_cfg(&addrs[1], &addrs));
    partition(&addrs[1]);

    // Probe failures trip the breaker: node A reports the cluster
    // degraded with the victim down.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let r = request(&addrs[0], "GET", "/v1/healthz", b"").unwrap();
        let peers = parse_json(&r.body_str()).get("peers").unwrap().clone();
        let member = peers.get("members").unwrap().as_arr().unwrap()[0].clone();
        if peers.get("state").unwrap().as_str() == Some("degraded")
            && member.get("state").unwrap().as_str() == Some("down")
        {
            break;
        }
        assert!(Instant::now() < deadline, "breaker never opened: {peers}");
        std::thread::sleep(Duration::from_millis(100));
    }

    // Degraded mode still serves: a job whose owner may well be the
    // unreachable peer is simulated locally instead of erroring.
    let mut client = Client::new(&addrs[0]);
    let r = client
        .request(
            "POST",
            "/v1/sim",
            br#"{"workload":"bm-cc","seed":3,"warmup":100,"insts":500}"#,
        )
        .unwrap();
    assert_eq!(r.status, 200, "body: {}", r.body_str());
    assert_eq!(
        a.simulations_executed(),
        1,
        "served locally despite the partition"
    );

    // Heal: the next successful probe closes the breaker.
    faults::clear();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let r = request(&addrs[0], "GET", "/v1/healthz", b"").unwrap();
        let peers = parse_json(&r.body_str()).get("peers").unwrap().clone();
        if peers.get("state").unwrap().as_str() == Some("ok") {
            break;
        }
        assert!(Instant::now() < deadline, "breaker never closed: {peers}");
        std::thread::sleep(Duration::from_millis(100));
    }

    a.shutdown();
    b.shutdown();
    faults::clear();
}

//! Server-side observability: queue depth, worker utilization, cache
//! counters, and per-endpoint latency histograms.
//!
//! Latency histograms reuse [`ucsim_model::Histogram`] — the same
//! bucketed counter every stats module in the simulator uses — with
//! microsecond bounds spanning sub-millisecond metric reads to
//! multi-second simulations.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use ucsim_model::json::Json;
use ucsim_model::Histogram;
use ucsim_pool::SchedStats;

use crate::cache::CacheStats;
use crate::router::LabelId;

/// Histogram bucket upper bounds, in microseconds.
const LATENCY_BOUNDS_US: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 5_000_000,
];

/// Shared server counters. All methods take `&self`.
///
/// Latency histograms are keyed by the router's interned [`LabelId`]s:
/// the label table is handed over once at construction, so the
/// per-request [`observe`](Metrics::observe) path is a direct array
/// index, not a string search.
pub struct Metrics {
    started: Instant,
    workers: usize,
    /// Endpoint labels, indexed by `LabelId` (owned copy of the
    /// router's table).
    labels: Vec<&'static str>,
    /// Workers currently simulating.
    busy_workers: AtomicUsize,
    /// Total microseconds workers spent simulating.
    busy_us: AtomicU64,
    /// Simulations actually executed (cache misses that ran).
    jobs_executed: AtomicU64,
    /// Jobs that failed.
    jobs_failed: AtomicU64,
    /// Jobs failed specifically by the deadline watchdog.
    jobs_deadline_exceeded: AtomicU64,
    /// Failed appends to the persistent result store.
    store_write_errors: AtomicU64,
    /// Requests rejected with 429.
    rejected_429: AtomicU64,
    /// Jobs cancelled by explicit client `DELETE` (cells of cancelled
    /// sweeps included).
    jobs_cancelled: AtomicU64,
    /// HTTP requests served, any endpoint/status.
    requests: AtomicU64,
    latency: Mutex<Vec<Histogram>>,
}

impl Metrics {
    /// Creates counters for a pool of `workers` workers, with one
    /// latency histogram per label in `labels` (the router's interned
    /// label table, including the reserved `404`/`405` entries).
    pub fn new(workers: usize, labels: Vec<&'static str>) -> Self {
        let latency = Mutex::new(
            labels
                .iter()
                .map(|_| Histogram::new(LATENCY_BOUNDS_US))
                .collect(),
        );
        Metrics {
            started: Instant::now(),
            workers,
            labels,
            busy_workers: AtomicUsize::new(0),
            busy_us: AtomicU64::new(0),
            jobs_executed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_deadline_exceeded: AtomicU64::new(0),
            store_write_errors: AtomicU64::new(0),
            rejected_429: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            latency,
        }
    }

    /// Marks a worker busy; call before simulating.
    pub fn worker_started(&self) {
        self.busy_workers.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks a worker idle again, accounting `us` microseconds of work.
    pub fn worker_finished(&self, us: u64, failed: bool) {
        self.busy_workers.fetch_sub(1, Ordering::Relaxed);
        self.busy_us.fetch_add(us, Ordering::Relaxed);
        self.jobs_executed.fetch_add(1, Ordering::Relaxed);
        if failed {
            self.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Accounts a worker that died mid-job (panic caught by the
    /// supervisor): balances [`worker_started`](Self::worker_started) and
    /// counts the job as executed-and-failed.
    pub fn worker_panicked(&self, us: u64) {
        self.worker_finished(us, true);
    }

    /// Counts a job failed by the deadline watchdog. The executed/failed
    /// accounting still flows through
    /// [`worker_finished`](Self::worker_finished) when the cancelled
    /// worker unwinds; this tracks the deadline-specific count.
    pub fn deadline_exceeded(&self) {
        self.jobs_deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a job failed without ever executing (drained at shutdown).
    pub fn job_failed_unexecuted(&self) {
        self.jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a failed append to the persistent result store.
    pub fn store_write_error(&self) {
        self.store_write_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a 429 rejection.
    pub fn rejected(&self) {
        self.rejected_429.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts `n` jobs cancelled by explicit client `DELETE`.
    pub fn record_cancelled(&self, n: u64) {
        self.jobs_cancelled.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one served request on the endpoint named by the interned
    /// `label`, taking `us` microseconds. Direct index — no per-request
    /// label search.
    pub fn observe(&self, label: LabelId, us: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if let Some(h) = self.latency.lock().expect("latency lock").get_mut(label.0) {
            h.record(us);
        }
    }

    /// Simulations executed so far.
    pub fn executed(&self) -> u64 {
        self.jobs_executed.load(Ordering::Relaxed)
    }

    /// Builds the `GET /v1/metrics` document. `sched` is the fair-share
    /// scheduler's point-in-time statistics, `workers_alive` and
    /// `workers_respawned` come from the supervised pool's monitor (the
    /// pool and scheduler own those counters; metrics only reports them).
    /// `peers` is the peer-mode counter section ([`crate::PeerSet`]
    /// owns those counters); `None` on a standalone node omits it.
    pub fn to_json(
        &self,
        sched: &SchedStats,
        queue_capacity: usize,
        cache: &CacheStats,
        workers_alive: usize,
        workers_respawned: u64,
        peers: Option<Json>,
    ) -> Json {
        let uptime_us = self.started.elapsed().as_micros() as u64;
        let busy_us = self.busy_us.load(Ordering::Relaxed);
        let utilization = if uptime_us == 0 {
            0.0
        } else {
            busy_us as f64 / (uptime_us as f64 * self.workers as f64)
        };
        let hits = cache.hits;
        let lookups = hits + cache.misses;
        let hit_rate = if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        };

        let queue = Json::Obj(vec![
            ("depth".to_owned(), Json::Uint(sched.depth as u64)),
            ("capacity".to_owned(), Json::Uint(queue_capacity as u64)),
            (
                "rejected_429".to_owned(),
                Json::Uint(self.rejected_429.load(Ordering::Relaxed)),
            ),
        ]);
        // Scalar scheduler counters plus a *bounded* queue-wait breakdown:
        // the Prometheus exposition renders every numeric leaf generically,
        // so per-tenant breakdowns (unbounded label cardinality) stay out
        // of this document, and the per-priority wait series is capped at
        // the eight busiest priorities.
        let mut waits: Vec<(u64, u64, u64)> = sched.wait_by_priority.clone();
        waits.sort_by_key(|&(_, pops, _)| std::cmp::Reverse(pops));
        waits.truncate(8);
        waits.sort_by_key(|&(priority, ..)| priority);
        let wait_by_priority = Json::Obj(
            waits
                .into_iter()
                .map(|(priority, pops, wait_us)| {
                    (
                        format!("p{priority}"),
                        Json::Obj(vec![
                            ("pops".to_owned(), Json::Uint(pops)),
                            ("wait_us".to_owned(), Json::Uint(wait_us)),
                        ]),
                    )
                })
                .collect(),
        );
        let scheduler = Json::Obj(vec![
            ("served".to_owned(), Json::Uint(sched.served)),
            ("preempted".to_owned(), Json::Uint(sched.preempted)),
            (
                "tenants_active".to_owned(),
                Json::Uint(sched.tenants.len() as u64),
            ),
            (
                "jobs_cancelled".to_owned(),
                Json::Uint(self.jobs_cancelled.load(Ordering::Relaxed)),
            ),
            ("wait_by_priority".to_owned(), wait_by_priority),
        ]);
        let workers = Json::Obj(vec![
            ("count".to_owned(), Json::Uint(self.workers as u64)),
            ("alive".to_owned(), Json::Uint(workers_alive as u64)),
            (
                "busy".to_owned(),
                Json::Uint(self.busy_workers.load(Ordering::Relaxed) as u64),
            ),
            ("utilization".to_owned(), Json::Float(utilization)),
            (
                "jobs_executed".to_owned(),
                Json::Uint(self.jobs_executed.load(Ordering::Relaxed)),
            ),
            (
                "jobs_failed".to_owned(),
                Json::Uint(self.jobs_failed.load(Ordering::Relaxed)),
            ),
            (
                "jobs_deadline_exceeded".to_owned(),
                Json::Uint(self.jobs_deadline_exceeded.load(Ordering::Relaxed)),
            ),
            (
                "workers_respawned".to_owned(),
                Json::Uint(workers_respawned),
            ),
        ]);
        let store = Json::Obj(vec![(
            "write_errors".to_owned(),
            Json::Uint(self.store_write_errors.load(Ordering::Relaxed)),
        )]);
        let cache_json = Json::Obj(vec![
            ("entries".to_owned(), Json::Uint(cache.entries as u64)),
            ("bytes".to_owned(), Json::Uint(cache.bytes as u64)),
            ("budget_bytes".to_owned(), Json::Uint(cache.budget as u64)),
            ("hits".to_owned(), Json::Uint(cache.hits)),
            ("coalesced".to_owned(), Json::Uint(cache.coalesced)),
            ("misses".to_owned(), Json::Uint(cache.misses)),
            ("insertions".to_owned(), Json::Uint(cache.insertions)),
            ("evictions".to_owned(), Json::Uint(cache.evictions)),
            ("hit_rate".to_owned(), Json::Float(hit_rate)),
        ]);
        let latency = {
            let hists = self.latency.lock().expect("latency lock");
            Json::Obj(
                self.labels
                    .iter()
                    .zip(hists.iter())
                    .map(|(name, h)| ((*name).to_owned(), histogram_json(h)))
                    .collect(),
            )
        };
        let mut fields = vec![
            ("uptime_us".to_owned(), Json::Uint(uptime_us)),
            (
                "requests".to_owned(),
                Json::Uint(self.requests.load(Ordering::Relaxed)),
            ),
            ("queue".to_owned(), queue),
            ("scheduler".to_owned(), scheduler),
            ("workers".to_owned(), workers),
            ("store".to_owned(), store),
            ("cache".to_owned(), cache_json),
            ("latency_us".to_owned(), latency),
        ];
        if let Some(peers) = peers {
            fields.push(("peers".to_owned(), peers));
        }
        Json::Obj(fields)
    }
}

fn histogram_json(h: &Histogram) -> Json {
    Json::Obj(vec![
        (
            "bounds".to_owned(),
            Json::Arr(h.bounds().iter().map(|&b| Json::Uint(b)).collect()),
        ),
        (
            "counts".to_owned(),
            Json::Arr(h.counts().iter().map(|&c| Json::Uint(c)).collect()),
        ),
        ("total".to_owned(), Json::Uint(h.total())),
        ("sum".to_owned(), Json::Uint(h.sum() as u64)),
        ("mean".to_owned(), Json::Float(h.mean())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    const TEST_LABELS: &[&str] = &["POST /v1/sim", "GET /v1/metrics", "404", "405"];

    fn sched(depth: usize) -> SchedStats {
        SchedStats {
            depth,
            served: 0,
            preempted: 0,
            tenants: Vec::new(),
            wait_by_priority: Vec::new(),
        }
    }

    fn metrics(workers: usize) -> Metrics {
        Metrics::new(workers, TEST_LABELS.to_vec())
    }

    fn label(name: &str) -> LabelId {
        LabelId(TEST_LABELS.iter().position(|l| *l == name).unwrap())
    }

    #[test]
    fn wait_by_priority_is_bounded_and_keyed() {
        let m = metrics(1);
        let mut s = sched(0);
        // Ten distinct priorities; the busiest eight survive the cap.
        s.wait_by_priority = (0..10u64).map(|p| (p, p + 1, p * 100)).collect();
        let j = m.to_json(&s, 1, &CacheStats::default(), 1, 0, None);
        let waits = j.get("scheduler").unwrap().get("wait_by_priority").unwrap();
        assert!(waits.get("p0").is_none(), "fewest pops, capped out");
        assert!(waits.get("p1").is_none());
        let p9 = waits.get("p9").unwrap();
        assert_eq!(p9.get("pops").unwrap().as_u64(), Some(10));
        assert_eq!(p9.get("wait_us").unwrap().as_u64(), Some(900));
    }

    #[test]
    fn worker_accounting_balances() {
        let m = metrics(2);
        m.worker_started();
        m.worker_finished(1000, false);
        m.worker_started();
        m.worker_finished(500, true);
        m.worker_started();
        m.worker_panicked(200);
        assert_eq!(m.executed(), 3);
        let j = m.to_json(&sched(0), 4, &CacheStats::default(), 2, 1, None);
        let workers = j.get("workers").unwrap();
        assert_eq!(workers.get("busy").unwrap().as_u64(), Some(0));
        assert_eq!(workers.get("alive").unwrap().as_u64(), Some(2));
        assert_eq!(workers.get("jobs_executed").unwrap().as_u64(), Some(3));
        assert_eq!(workers.get("jobs_failed").unwrap().as_u64(), Some(2));
        assert_eq!(workers.get("workers_respawned").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn failure_counters_land_in_the_document() {
        let m = metrics(1);
        m.deadline_exceeded();
        m.deadline_exceeded();
        m.job_failed_unexecuted();
        m.store_write_error();
        let j = m.to_json(&sched(0), 1, &CacheStats::default(), 1, 0, None);
        let workers = j.get("workers").unwrap();
        assert_eq!(
            workers.get("jobs_deadline_exceeded").unwrap().as_u64(),
            Some(2)
        );
        assert_eq!(workers.get("jobs_failed").unwrap().as_u64(), Some(1));
        assert_eq!(
            j.get("store")
                .unwrap()
                .get("write_errors")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    fn latency_lands_in_the_right_endpoint() {
        let m = metrics(1);
        m.observe(label("POST /v1/sim"), 700);
        m.observe(label("POST /v1/sim"), 700);
        m.observe(label("GET /v1/metrics"), 10);
        // Out-of-range id: counted as a request, no histogram.
        m.observe(LabelId(usize::MAX), 10);
        let j = m.to_json(&sched(0), 1, &CacheStats::default(), 1, 0, None);
        assert_eq!(j.get("requests").unwrap().as_u64(), Some(4));
        let lat = j.get("latency_us").unwrap();
        let sim = lat.get("POST /v1/sim").unwrap();
        assert_eq!(sim.get("total").unwrap().as_u64(), Some(2));
        assert_eq!(sim.get("sum").unwrap().as_u64(), Some(1400));
        let met = lat.get("GET /v1/metrics").unwrap();
        assert_eq!(met.get("total").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn metrics_document_shape() {
        let m = metrics(3);
        m.rejected();
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            ..CacheStats::default()
        };
        let j = m.to_json(&sched(2), 8, &stats, 3, 0, None);
        let q = j.get("queue").unwrap();
        assert_eq!(q.get("depth").unwrap().as_u64(), Some(2));
        assert_eq!(q.get("capacity").unwrap().as_u64(), Some(8));
        assert_eq!(q.get("rejected_429").unwrap().as_u64(), Some(1));
        let rate = j.get("cache").unwrap().get("hit_rate").unwrap().as_f64();
        assert_eq!(rate, Some(0.75));
        // Whole document survives the wire format.
        let text = j.to_string();
        assert_eq!(ucsim_model::Json::parse(&text).unwrap(), j);
    }
}

//! The server proper: accept loop, routing, the bounded job queue, the
//! worker pool, and graceful shutdown.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ucsim_model::json::Json;
use ucsim_pipeline::{SimReport, Simulator};
use ucsim_pool::{BoundedQueue, PushError, WorkerPool};
use ucsim_trace::{Program, WorkloadProfile};

use crate::api::{self, JobSpec, SimRequest};
use crate::cache::ResultCache;
use crate::http::{respond, Request};
use crate::jobs::{JobState, JobTable, Submit};
use crate::metrics::Metrics;
use crate::{jobs, signal};

/// Poll interval of the accept loop (checks the shutdown flag between
/// non-blocking accepts).
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Fixed worker-pool size.
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue answers 429.
    pub queue_capacity: usize,
    /// Result-cache byte budget.
    pub cache_budget_bytes: usize,
    /// `Retry-After` seconds advertised on 429.
    pub retry_after_secs: u32,
    /// Finished jobs retained for `GET /v1/jobs/:id`.
    pub retain_jobs: usize,
    /// Accept `test-sleep:<ms>` pseudo-workloads (integration tests use
    /// them to hold workers busy deterministically).
    pub enable_test_workloads: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7199".to_owned(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            queue_capacity: 64,
            cache_budget_bytes: 64 * 1024 * 1024,
            retry_after_secs: 1,
            retain_jobs: 1024,
            enable_test_workloads: false,
        }
    }
}

/// One queued unit of work.
struct Work {
    cell: Arc<jobs::JobCell>,
    spec: JobSpec,
    canonical: String,
}

/// Shared state every connection handler and worker sees.
struct Inner {
    cfg: ServerConfig,
    queue: Arc<BoundedQueue<Work>>,
    jobs: JobTable,
    cache: ResultCache,
    metrics: Metrics,
    stopping: AtomicBool,
    open_conns: AtomicUsize,
}

/// A running server. Dropping it does **not** stop the threads; call
/// [`Server::shutdown`] (or let [`Server::run_until_shutdown`] return).
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

impl Server {
    /// Binds, spawns the worker pool and accept loop, and returns.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let queue = Arc::new(BoundedQueue::new(cfg.queue_capacity));
        let inner = Arc::new(Inner {
            queue: Arc::clone(&queue),
            jobs: JobTable::new(cfg.retain_jobs),
            cache: ResultCache::new(cfg.cache_budget_bytes),
            metrics: Metrics::new(cfg.workers.max(1)),
            stopping: AtomicBool::new(false),
            open_conns: AtomicUsize::new(0),
            cfg,
        });

        let worker_inner = Arc::clone(&inner);
        let pool = WorkerPool::spawn(
            "sim-worker",
            inner.cfg.workers,
            queue,
            Arc::new(move |work: Work| execute(&worker_inner, work)),
        );

        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::Builder::new()
            .name("http-accept".to_owned())
            .spawn(move || accept_loop(listener, accept_inner))
            .expect("spawn accept thread");

        Ok(Server {
            inner,
            local_addr,
            accept_thread: Some(accept_thread),
            pool: Some(pool),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Simulations executed so far (for tests).
    pub fn simulations_executed(&self) -> u64 {
        self.inner.metrics.executed()
    }

    /// Blocks until a shutdown signal (SIGTERM/ctrl-c via
    /// [`crate::install_signal_handlers`], or
    /// [`crate::signal::request_shutdown`]), then drains gracefully.
    pub fn run_until_shutdown(self) {
        while !signal::signalled() && !self.inner.stopping.load(Ordering::SeqCst) {
            std::thread::sleep(ACCEPT_POLL);
        }
        self.shutdown();
    }

    /// Graceful shutdown: stop accepting, let queued and in-flight jobs
    /// finish, wake their waiters, then join all threads.
    pub fn shutdown(mut self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // No new connections now. Existing handlers may still enqueue;
        // wait for them to finish before closing the queue so their jobs
        // are either queued (and will drain) or rejected consistently.
        let deadline = Instant::now() + Duration::from_secs(30);
        while self.inner.open_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        self.inner.queue.close();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
    }
}

/// Runs one job on a worker thread: simulate, encode, cache, wake.
fn execute(inner: &Inner, work: Work) {
    work.cell.set_running();
    inner.metrics.worker_started();
    let t0 = Instant::now();
    let result = run_spec(&work.spec, inner.cfg.enable_test_workloads);
    let us = t0.elapsed().as_micros() as u64;
    match result {
        Ok(report) => {
            let payload = Arc::new(api::encode_report(&report));
            inner
                .cache
                .put(work.cell.key_hash, work.canonical, Arc::clone(&payload));
            let body = api::envelope(work.cell.key_hash, false, &payload);
            inner.metrics.worker_finished(us, false);
            work.cell.complete(Arc::new(body));
        }
        Err(msg) => {
            inner.metrics.worker_finished(us, true);
            work.cell.fail(msg);
        }
    }
    inner.jobs.finish(&work.cell);
}

/// Runs the simulation described by `spec`.
///
/// With test workloads enabled, `test-sleep:<ms>` sleeps that long and
/// then simulates the quick-test profile — a deterministic way for tests
/// to keep workers busy.
fn run_spec(spec: &JobSpec, test_workloads: bool) -> Result<SimReport, String> {
    let mut profile = if let Some(ms) = test_sleep_ms(&spec.workload) {
        if !test_workloads {
            return Err(format!("unknown workload: {}", spec.workload));
        }
        std::thread::sleep(Duration::from_millis(ms));
        WorkloadProfile::quick_test()
    } else {
        WorkloadProfile::by_name(&spec.workload)
            .ok_or_else(|| format!("unknown workload: {}", spec.workload))?
    };
    profile.seed = spec.seed;
    let program = Program::generate(&profile);
    Ok(Simulator::new(spec.config.clone()).run(&profile, &program))
}

fn test_sleep_ms(workload: &str) -> Option<u64> {
    workload.strip_prefix("test-sleep:")?.parse().ok()
}

/// True when `workload` names something the server can run.
fn workload_known(workload: &str, test_workloads: bool) -> bool {
    (test_workloads && test_sleep_ms(workload).is_some())
        || WorkloadProfile::by_name(workload).is_some()
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    while !inner.stopping.load(Ordering::SeqCst) && !signal::signalled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                inner.open_conns.fetch_add(1, Ordering::SeqCst);
                let inner = Arc::clone(&inner);
                let _ = std::thread::Builder::new()
                    .name("http-conn".to_owned())
                    .spawn(move || {
                        handle_connection(stream, &inner);
                        inner.open_conns.fetch_sub(1, Ordering::SeqCst);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

fn handle_connection(mut stream: TcpStream, inner: &Inner) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let req = match Request::read(&mut stream) {
        Ok(Some(Ok(req))) => req,
        Ok(Some(Err(msg))) => {
            let _ = respond(&mut stream, 400, &[], &api::error_body(&msg));
            return;
        }
        _ => return,
    };
    // Writes can take as long as a blocking simulation; clear the timeout.
    let _ = stream.set_read_timeout(None);
    let t0 = Instant::now();
    let endpoint = match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/sim") => {
            handle_sim(&mut stream, inner, &req);
            "POST /v1/sim"
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            handle_job_get(&mut stream, inner, path);
            "GET /v1/jobs"
        }
        ("GET", "/v1/metrics") => {
            let stats = inner.cache.stats();
            let body = inner
                .metrics
                .to_json(inner.queue.len(), inner.queue.capacity(), &stats)
                .to_string()
                .into_bytes();
            let _ = respond(&mut stream, 200, &[], &body);
            "GET /v1/metrics"
        }
        ("GET", "/healthz") => {
            let _ = respond(&mut stream, 200, &[], b"{\"ok\":true}");
            "GET /healthz"
        }
        (_, "/v1/sim" | "/v1/metrics") => {
            let _ = respond(
                &mut stream,
                405,
                &[],
                &api::error_body("method not allowed"),
            );
            "405"
        }
        _ => {
            let _ = respond(&mut stream, 404, &[], &api::error_body("not found"));
            "404"
        }
    };
    inner
        .metrics
        .observe(endpoint, t0.elapsed().as_micros() as u64);
}

fn handle_sim(stream: &mut TcpStream, inner: &Inner, req: &Request) {
    let body = match req.body_utf8() {
        Ok(b) => b,
        Err(msg) => {
            let _ = respond(stream, 400, &[], &api::error_body(&msg));
            return;
        }
    };
    let sim_req = match SimRequest::parse(body) {
        Ok(r) => r,
        Err(e) => {
            let _ = respond(
                stream,
                400,
                &[],
                &api::error_body(&format!("bad request: {e}")),
            );
            return;
        }
    };
    if !workload_known(&sim_req.workload, inner.cfg.enable_test_workloads) {
        let _ = respond(
            stream,
            400,
            &[],
            &api::error_body(&format!("unknown workload: {}", sim_req.workload)),
        );
        return;
    }
    let default_seed = WorkloadProfile::by_name(&sim_req.workload)
        .map(|p| p.seed)
        .unwrap_or(0);
    let spec = sim_req.resolve(default_seed);
    let canonical = spec.canonical();
    let hash = api::content_hash(&canonical);
    let background = sim_req.background.unwrap_or(false);

    // 1. Resident cache entry: answer without touching the queue.
    if let Some(payload) = inner.cache.get(hash, &canonical) {
        let _ = respond(stream, 200, &[], &api::envelope(hash, true, &payload));
        return;
    }

    // 2. Coalesce onto an in-flight job for the same key, or create one.
    let cell = match inner.jobs.submit(hash) {
        Submit::Joined(cell) => {
            inner.cache.record_coalesced();
            cell
        }
        Submit::New(cell) => {
            let work = Work {
                cell: Arc::clone(&cell),
                spec,
                canonical,
            };
            match inner.queue.try_push(work) {
                Ok(()) => cell,
                Err(PushError::Full(_)) => {
                    inner.jobs.abandon(&cell);
                    inner.metrics.rejected();
                    let retry = inner.cfg.retry_after_secs.to_string();
                    let _ = respond(
                        stream,
                        429,
                        &[("retry-after", retry)],
                        &api::error_body("job queue full; retry later"),
                    );
                    return;
                }
                Err(PushError::Closed(_)) => {
                    inner.jobs.abandon(&cell);
                    let _ = respond(stream, 503, &[], &api::error_body("server shutting down"));
                    return;
                }
            }
        }
    };

    if background {
        let body = Json::Obj(vec![
            ("id".to_owned(), Json::Uint(cell.id)),
            ("key".to_owned(), Json::Str(api::format_key(hash))),
            (
                "poll".to_owned(),
                Json::Str(format!("/v1/jobs/{}", cell.id)),
            ),
        ])
        .to_string()
        .into_bytes();
        let _ = respond(stream, 202, &[], &body);
        return;
    }

    match cell.wait() {
        Ok(body) => {
            let _ = respond(stream, 200, &[], &body);
        }
        Err(msg) => {
            let _ = respond(stream, 500, &[], &api::error_body(&msg));
        }
    }
}

fn handle_job_get(stream: &mut TcpStream, inner: &Inner, path: &str) {
    let id_str = path.trim_start_matches("/v1/jobs/");
    let Ok(id) = id_str.parse::<u64>() else {
        let _ = respond(stream, 400, &[], &api::error_body("bad job id"));
        return;
    };
    let Some(cell) = inner.jobs.get(id) else {
        let _ = respond(stream, 404, &[], &api::error_body("no such job"));
        return;
    };
    let state = cell.state();
    let mut obj = vec![
        ("id".to_owned(), Json::Uint(id)),
        ("key".to_owned(), Json::Str(api::format_key(cell.key_hash))),
        ("status".to_owned(), Json::Str(state.name().to_owned())),
    ];
    match state {
        JobState::Done(body) => {
            // Splice the finished envelope in verbatim.
            let mut out = Json::Obj(obj).to_string();
            out.pop(); // trailing '}'
            out.push_str(",\"response\":");
            out.push_str(std::str::from_utf8(&body).expect("envelope is utf-8"));
            out.push('}');
            let _ = respond(stream, 200, &[], out.as_bytes());
            return;
        }
        JobState::Failed(msg) => obj.push(("error".to_owned(), Json::Str(msg))),
        _ => {}
    }
    let _ = respond(stream, 200, &[], Json::Obj(obj).to_string().as_bytes());
}

//! The server proper: accept loop, the typed route table, keep-alive
//! connection handling, the fair-share scheduler feeding the supervised
//! worker pool, per-job deadlines, sweep *plans* (store-aware full
//! expansion and adaptive knee refinement), uniform cancellation, the
//! persistent result store, and graceful shutdown.

use std::collections::{HashMap, HashSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ucsim_model::json::Json;
use ucsim_model::{CancelToken, FailureKind, FromJson, WorkloadRef};
use ucsim_pipeline::{Cancelled, KneeBisector, SimReport, Simulator};
use ucsim_pool::{faults, PoolMonitor, PushError, Scheduler, SupervisedPool, Watchdog};
use ucsim_trace::{load_asm, Program, TraceStore, WorkloadProfile};

use crate::api::{self, ErrorCode, JobSpec, MatrixRequest, SimRequest, SweepMode};
use crate::cache::ResultCache;
use crate::http::{HttpConn, ReadOutcome, Request, Response};
use crate::jobs::{JobFailure, JobState, JobTable, Submit};
use crate::metrics::Metrics;
use crate::peer::PeerSet;
use crate::programs::{self, ProgramKind, ProgramRegistry, StoredProgram};
use crate::router::{Params, Route, Router};
use crate::store::{RecordKind, ResultStore};
use crate::sweep::{self, Frontier, PlanAxes, PlanOptions, Sweep, SweepTable};
use crate::{jobs, signal};

/// Poll interval of the accept loop (checks the shutdown flag between
/// non-blocking accepts).
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// Tunables for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Fixed worker-pool size.
    pub workers: usize,
    /// Bounded job-queue capacity; a full queue answers 429.
    pub queue_capacity: usize,
    /// Result-cache byte budget.
    pub cache_budget_bytes: usize,
    /// `Retry-After` seconds advertised on 429.
    pub retry_after_secs: u32,
    /// Finished jobs retained for `GET /v1/jobs/:id`.
    pub retain_jobs: usize,
    /// Sweeps retained for `GET /v1/matrix/:id`.
    pub retain_sweeps: usize,
    /// How long a kept-alive connection may sit idle between requests
    /// before the server closes it.
    pub keep_alive_idle: Duration,
    /// When set, completed results are appended to
    /// `<data_dir>/results.log` and replayed into the cache on startup,
    /// so a restarted server re-simulates nothing it already computed.
    pub data_dir: Option<PathBuf>,
    /// Accept `test-sleep:<ms>` pseudo-workloads (integration tests use
    /// them to hold workers busy deterministically).
    pub enable_test_workloads: bool,
    /// Budget (in recorded instructions) of the shared trace store:
    /// jobs with the same workload × seed × run length replay one
    /// recording instead of re-walking the generator per cell.
    pub trace_budget_insts: u64,
    /// Per-job wall-clock deadline. When a job exceeds it, the watchdog
    /// cancels the simulation cooperatively and fails the job with
    /// `deadline_exceeded`; `None` disables deadlines.
    pub job_deadline: Option<Duration>,
    /// How long [`Server::shutdown`] waits for open connections before
    /// failing still-queued jobs with `shutting_down`.
    pub drain_timeout: Duration,
    /// Fsync the persistent store after every appended record (slower,
    /// but survives power loss, not just process death).
    pub durable_store: bool,
    /// Fair-share weights per tenant (`(name, weight)`); tenants not
    /// listed here are created on first use with weight 1.
    pub tenant_weights: Vec<(String, u64)>,
    /// Intra-cell parallelism: with `cell_threads > 1`, each job records
    /// its prediction-window stream and replays it with that many
    /// hash-precompute workers (`PwTrace::replay_parallel`). Served
    /// reports are byte-identical either way; the trade-off is coarser
    /// cancellation (the deadline token is checked between phases, not
    /// every few batches), so late jobs may run to completion — their
    /// results are still correct and still cached.
    pub cell_threads: usize,
    /// Cluster members (`host:port`, repeatable `--peer`). Non-empty
    /// turns on peer mode: rendezvous routing of jobs, scatter-gather
    /// sweeps, health probing, and (with a store) anti-entropy. Every
    /// node can be given the identical list — its own advertised address
    /// is filtered out.
    pub peers: Vec<String>,
    /// The address other members reach *this* node at (`--advertise`).
    /// Defaults to the resolved bind address, which is only right when
    /// binding a concrete host and port.
    pub advertise: Option<String>,
    /// How often the anti-entropy loop pulls each peer's store delta.
    pub anti_entropy_interval: Duration,
    /// Max records per anti-entropy pull request.
    pub anti_entropy_batch: usize,
    /// Connect/read/write deadline for forwarded peer requests. Must
    /// comfortably exceed the longest simulation a forwarded job can
    /// run, or the coordinator fails over and re-simulates elsewhere.
    pub peer_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7199".to_owned(),
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            queue_capacity: 64,
            cache_budget_bytes: 64 * 1024 * 1024,
            retry_after_secs: 1,
            retain_jobs: 1024,
            retain_sweeps: 64,
            keep_alive_idle: Duration::from_secs(30),
            data_dir: None,
            enable_test_workloads: false,
            trace_budget_insts: 8_000_000,
            job_deadline: None,
            drain_timeout: Duration::from_secs(30),
            durable_store: false,
            tenant_weights: Vec::new(),
            cell_threads: 1,
            peers: Vec::new(),
            advertise: None,
            anti_entropy_interval: Duration::from_secs(5),
            anti_entropy_batch: 256,
            peer_deadline: Duration::from_secs(30),
        }
    }
}

/// One queued unit of work.
struct Work {
    cell: Arc<jobs::JobCell>,
    spec: JobSpec,
    canonical: String,
    /// Correlation id of the request that submitted this job; carried
    /// into every failure envelope the job can produce.
    request_id: String,
    /// The job's shared cancel token (the same one the scheduler entry
    /// holds): flipped by the watchdog on deadline expiry or by a client
    /// `DELETE`; the simulation loop polls it at PW-batch boundaries and
    /// bails out, and the scheduler preempts still-queued entries.
    cancel: CancelToken,
}

/// Shared state every connection handler, worker, and plan driver sees.
struct Inner {
    cfg: ServerConfig,
    router: Router<Arc<Inner>>,
    queue: Arc<Scheduler<Work>>,
    jobs: JobTable,
    sweeps: SweepTable,
    cache: ResultCache,
    /// Negative cache: content keys whose simulation failed
    /// *deterministically* (a panic is a pure function of the spec, like
    /// a result). Deadline and shutdown failures are environmental and
    /// never land here.
    failed: Mutex<HashMap<u64, (String, JobFailure)>>,
    store: Option<ResultStore>,
    traces: TraceStore,
    /// Uploaded user programs (`POST /v1/programs`), content-addressed;
    /// replayed from the store on startup and replicated by anti-entropy.
    programs: ProgramRegistry,
    metrics: Metrics,
    watchdog: Watchdog,
    /// Health view of the supervised pool (set once at startup).
    pool_monitor: OnceLock<PoolMonitor>,
    /// Cluster view in peer mode (`--peer`); `None` on a standalone node.
    peers: Option<PeerSet>,
    /// Content keys with a terminal record in the local store, so the
    /// anti-entropy loop skips records it already holds instead of
    /// appending duplicates. Seeded from replay, maintained on append.
    known_keys: Mutex<HashSet<u64>>,
    stopping: AtomicBool,
    open_conns: AtomicUsize,
}

impl Inner {
    /// Looks up a deterministic failure for this exact canonical spec.
    fn failed_for(&self, hash: u64, canonical: &str) -> Option<JobFailure> {
        let map = self.failed.lock().expect("failed cache lock");
        map.get(&hash)
            .and_then(|(c, f)| (c == canonical).then(|| f.clone()))
    }
}

/// A running server. Dropping it does **not** stop the threads; call
/// [`Server::shutdown`] (or let [`Server::run_until_shutdown`] return).
pub struct Server {
    inner: Arc<Inner>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    pool: Option<SupervisedPool>,
}

impl Server {
    /// Binds, opens the persistent store (replaying it into the cache),
    /// spawns the worker pool and accept loop, and returns.
    ///
    /// # Errors
    ///
    /// Propagates bind errors and store open/replay errors.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let (store, replayed) = match &cfg.data_dir {
            Some(dir) => {
                let (store, records) = ResultStore::open(dir, cfg.durable_store)?;
                (Some(store), records)
            }
            None => (None, Vec::new()),
        };

        let queue = Arc::new(Scheduler::new(cfg.queue_capacity));
        for (tenant, weight) in &cfg.tenant_weights {
            queue.set_weight(tenant, *weight);
        }
        // Peer mode: the advertised address defaults to the resolved bind
        // address (which has the real port even when binding port 0).
        let peers = if cfg.peers.is_empty() {
            None
        } else {
            let advertise = cfg
                .advertise
                .clone()
                .unwrap_or_else(|| local_addr.to_string());
            Some(PeerSet::new(
                advertise,
                cfg.peers.clone(),
                cfg.peer_deadline,
            ))
        };

        // The router is built first so its interned label table seeds the
        // metrics histograms — observe() is then a direct array index.
        let router = routes();
        let metrics = Metrics::new(cfg.workers.max(1), router.labels().to_vec());
        let inner = Arc::new(Inner {
            router,
            queue: Arc::clone(&queue),
            jobs: JobTable::new(cfg.retain_jobs),
            sweeps: SweepTable::new(cfg.retain_sweeps),
            cache: ResultCache::new(cfg.cache_budget_bytes),
            failed: Mutex::new(HashMap::new()),
            store,
            traces: TraceStore::new(cfg.trace_budget_insts),
            programs: ProgramRegistry::new(),
            metrics,
            watchdog: Watchdog::new(),
            pool_monitor: OnceLock::new(),
            peers,
            known_keys: Mutex::new(HashSet::new()),
            stopping: AtomicBool::new(false),
            open_conns: AtomicUsize::new(0),
            cfg,
        });

        // Warm the caches from the store: a restarted server answers every
        // previously computed job (and whole sweeps) without simulating,
        // and every deterministic failure without re-panicking a worker.
        {
            let mut known = inner.known_keys.lock().expect("known keys lock");
            known.extend(replayed.iter().map(|r| r.key_hash));
        }
        for rec in replayed {
            match rec.kind {
                RecordKind::Result => {
                    inner
                        .cache
                        .put(rec.key_hash, rec.canonical, Arc::new(rec.payload));
                }
                RecordKind::Failed => {
                    if let Some(failure) = rec.failure() {
                        if failure.kind.is_deterministic() {
                            inner
                                .failed
                                .lock()
                                .expect("failed cache lock")
                                .insert(rec.key_hash, (rec.canonical, failure));
                        }
                    }
                }
                RecordKind::Program => match programs::decode_program_payload(&rec.payload) {
                    Ok(program) => {
                        let _ = inner.programs.insert(program);
                    }
                    Err(e) => eprintln!(
                        "ucsim-serve: dropping undecodable program record {}: {e}",
                        api::format_key(rec.key_hash)
                    ),
                },
            }
        }

        let worker_inner = Arc::clone(&inner);
        let panic_inner = Arc::clone(&inner);
        let pool = SupervisedPool::spawn(
            "sim-worker",
            inner.cfg.workers,
            queue,
            Arc::new(move |work: &Work| execute(&worker_inner, work)),
            Arc::new(move |work: &Work, payload: &str| job_panicked(&panic_inner, work, payload)),
        );
        inner
            .pool_monitor
            .set(pool.monitor())
            .unwrap_or_else(|_| unreachable!("pool monitor set once"));

        let accept_inner = Arc::clone(&inner);
        let accept_thread = std::thread::Builder::new()
            .name("http-accept".to_owned())
            .spawn(move || accept_loop(listener, accept_inner))
            .expect("spawn accept thread");

        if inner.peers.is_some() {
            // Health probes: a fast tick; the per-peer schedule inside
            // probe_due() keeps the real probe rate low. Detached — exits
            // within one tick of the stopping flag.
            let probe_inner = Arc::clone(&inner);
            let _ = std::thread::Builder::new()
                .name("peer-probe".to_owned())
                .spawn(move || {
                    while !probe_inner.stopping.load(Ordering::SeqCst) {
                        if let Some(ps) = &probe_inner.peers {
                            ps.probe_due();
                        }
                        std::thread::sleep(Duration::from_millis(100));
                    }
                });
            if inner.store.is_some() {
                let pull_inner = Arc::clone(&inner);
                let _ = std::thread::Builder::new()
                    .name("anti-entropy".to_owned())
                    .spawn(move || anti_entropy_loop(&pull_inner));
            }
        }

        Ok(Server {
            inner,
            local_addr,
            accept_thread: Some(accept_thread),
            pool: Some(pool),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Simulations executed so far (for tests).
    pub fn simulations_executed(&self) -> u64 {
        self.inner.metrics.executed()
    }

    /// Blocks until a shutdown signal (SIGTERM/ctrl-c via
    /// [`crate::install_signal_handlers`], or
    /// [`crate::signal::request_shutdown`]), then drains gracefully.
    pub fn run_until_shutdown(self) {
        while !signal::signalled() && !self.inner.stopping.load(Ordering::SeqCst) {
            std::thread::sleep(ACCEPT_POLL);
        }
        self.shutdown();
    }

    /// Number of workers currently alive (for tests).
    pub fn workers_alive(&self) -> usize {
        self.inner
            .pool_monitor
            .get()
            .map_or(0, ucsim_pool::PoolMonitor::alive)
    }

    /// Replacement workers spawned after panics so far (for tests).
    pub fn workers_respawned(&self) -> u64 {
        self.inner
            .pool_monitor
            .get()
            .map_or(0, ucsim_pool::PoolMonitor::respawned)
    }

    /// Graceful shutdown: stop accepting, wait up to the configured drain
    /// timeout for open connections, fail whatever is still queued with
    /// `shutting_down` (waiters get an explicit envelope instead of a
    /// hang), then join all threads.
    pub fn shutdown(mut self) {
        self.inner.stopping.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        // No new connections now; kept-alive handlers notice the stopping
        // flag at their next idle poll (≤ 200 ms). Existing handlers may
        // still enqueue; wait for them to finish before closing the
        // scheduler so their jobs are either queued (and will drain) or
        // rejected consistently. Adaptive drivers check the stopping flag
        // between waves, and waves in flight fail below, so their waits
        // return.
        let deadline = Instant::now() + self.inner.cfg.drain_timeout;
        while self.inner.open_conns.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Sweep out jobs that never reached a worker: fail them now so
        // pollers and joined waiters observe a terminal state. These are
        // environmental failures — never persisted or negatively cached.
        while let Some(work) = self.inner.queue.try_pop() {
            let failure = JobFailure::new(
                FailureKind::ShuttingDown,
                "server shut down before the job ran",
            )
            .with_request_id(work.request_id.clone());
            if work.cell.fail(failure) {
                self.inner.metrics.job_failed_unexecuted();
                self.inner.jobs.finish(&work.cell);
            }
        }
        self.inner.queue.close();
        if let Some(pool) = self.pool.take() {
            pool.join();
        }
        // The watchdog stops when the last `Inner` reference drops;
        // deadlines only arm once a worker picks a job up, so the swept
        // jobs never had one.
    }
}

/// The v1 route table. Adding an endpoint is one entry here: dispatch,
/// 404/405 handling, and the metrics label all follow from it.
fn routes() -> Router<Arc<Inner>> {
    Router::new(vec![
        Route {
            method: "POST",
            pattern: "/v1/sim",
            label: "POST /v1/sim",
            handler: handle_sim,
        },
        Route {
            method: "POST",
            pattern: "/v1/matrix",
            label: "POST /v1/matrix",
            handler: handle_matrix_post,
        },
        Route {
            method: "GET",
            pattern: "/v1/matrix",
            label: "GET /v1/matrix",
            handler: handle_matrix_list,
        },
        Route {
            method: "GET",
            pattern: "/v1/matrix/:id",
            label: "GET /v1/matrix/:id",
            handler: handle_matrix_get,
        },
        Route {
            method: "DELETE",
            pattern: "/v1/matrix/:id",
            label: "DELETE /v1/matrix/:id",
            handler: handle_matrix_delete,
        },
        Route {
            method: "POST",
            pattern: "/v1/programs",
            label: "POST /v1/programs",
            handler: handle_program_post,
        },
        Route {
            method: "GET",
            pattern: "/v1/programs",
            label: "GET /v1/programs",
            handler: handle_program_list,
        },
        Route {
            method: "GET",
            pattern: "/v1/programs/:id",
            label: "GET /v1/programs/:id",
            handler: handle_program_get,
        },
        Route {
            method: "GET",
            pattern: "/v1/programs/:id/raw",
            label: "GET /v1/programs/raw",
            handler: handle_program_raw,
        },
        Route {
            method: "GET",
            pattern: "/v1/jobs",
            label: "GET /v1/jobs",
            handler: handle_jobs_list,
        },
        Route {
            method: "GET",
            pattern: "/v1/jobs/:id",
            label: "GET /v1/jobs/:id",
            handler: handle_job_get,
        },
        Route {
            method: "DELETE",
            pattern: "/v1/jobs/:id",
            label: "DELETE /v1/jobs/:id",
            handler: handle_job_delete,
        },
        Route {
            method: "GET",
            pattern: "/v1/jobs/:id/profile",
            label: "GET /v1/jobs/profile",
            handler: handle_job_profile,
        },
        Route {
            method: "GET",
            pattern: "/v1/metrics",
            label: "GET /v1/metrics",
            handler: handle_metrics,
        },
        Route {
            method: "GET",
            pattern: "/v1/trace",
            label: "GET /v1/trace",
            handler: handle_trace,
        },
        Route {
            method: "GET",
            pattern: "/v1/store",
            label: "GET /v1/store",
            handler: handle_store,
        },
        Route {
            method: "GET",
            pattern: "/v1/healthz",
            label: "GET /v1/healthz",
            handler: handle_healthz,
        },
        Route {
            method: "GET",
            pattern: "/v1/version",
            label: "GET /v1/version",
            handler: handle_version,
        },
        // The bare `/healthz` alias was deprecated in v1.0 and removed in
        // v1.1 (DESIGN.md §4.1); only `/v1/healthz` answers now.
    ])
}

/// Runs one job on a worker thread: arm the deadline, simulate (with
/// cooperative cancellation), encode, persist, cache, wake.
///
/// Runs under `catch_unwind` in the supervised pool; a panic anywhere in
/// here lands in [`job_panicked`] on the same thread, then the supervisor
/// respawns the worker.
fn execute(inner: &Arc<Inner>, work: &Work) {
    work.cell.set_running();
    inner.metrics.worker_started();
    let t0 = Instant::now();

    // Arm the per-job deadline. The guard disarms on every exit from this
    // function — including a panic's unwind — so the watchdog only fires
    // for jobs still genuinely in flight.
    let _guard = inner.cfg.job_deadline.map(|limit| {
        let cell = Arc::clone(&work.cell);
        let cancel = work.cancel.clone();
        let wd_inner = Arc::clone(inner);
        let request_id = work.request_id.clone();
        let ms = limit.as_millis();
        inner.watchdog.watch(Instant::now() + limit, move || {
            cancel.cancel();
            let failure = JobFailure::new(
                FailureKind::DeadlineExceeded,
                format!("job exceeded the {ms}ms deadline"),
            )
            .with_request_id(request_id.clone());
            if cell.fail(failure) {
                wd_inner.metrics.deadline_exceeded();
            }
        })
    });

    faults::check("worker.pre_sim");
    // Profile this job: the pipeline's stage timers and counter deltas
    // accumulate into a thread-local profile between begin and end.
    ucsim_obs::profile_begin();
    let result = run_spec(
        &work.spec,
        inner.cfg.enable_test_workloads,
        &inner.traces,
        &inner.programs,
        &work.cancel,
        inner.cfg.cell_threads,
    );
    if let Some(profile) = ucsim_obs::profile_end() {
        work.cell.set_profile(Arc::new(profile));
    }
    let us = t0.elapsed().as_micros() as u64;
    match result {
        Ok(report) => {
            let payload = Arc::new(api::encode_report(&report));
            inner.metrics.worker_finished(us, false);
            // First-wins: if the deadline already failed this job, keep
            // the failure — but still cache the result (it is correct and
            // deterministic; the *job* was late, the *value* is fine).
            inner.cache.put(
                work.cell.key_hash,
                work.canonical.clone(),
                Arc::clone(&payload),
            );
            // Publish the bare payload *before* completing: complete()
            // wakes waiters (including sweep cells), and they must find
            // the payload already in place.
            work.cell.set_payload(Arc::clone(&payload));
            if work
                .cell
                .complete(Arc::new(api::envelope(work.cell.key_hash, false, &payload)))
            {
                if let Some(store) = &inner.store {
                    // A failed append costs durability, not the response:
                    // the in-memory cache still holds the result.
                    let span = ucsim_obs::span(ucsim_obs::SpanKind::StoreIo);
                    let appended = store.append(work.cell.key_hash, &work.canonical, &payload);
                    span.finish(u32::from(appended.is_err()));
                    match appended {
                        Ok(()) => {
                            inner
                                .known_keys
                                .lock()
                                .expect("known keys lock")
                                .insert(work.cell.key_hash);
                        }
                        Err(e) => {
                            inner.metrics.store_write_error();
                            eprintln!(
                                "ucsim-serve: appending to {} failed: {e}",
                                store.path().display()
                            );
                        }
                    }
                }
            }
        }
        Err(RunError::Cancelled) => {
            // The watchdog already failed the cell and counted the
            // deadline; account the worker time as a failed execution.
            inner.metrics.worker_finished(us, true);
        }
        Err(RunError::Rejected(msg)) => {
            inner.metrics.worker_finished(us, true);
            work.cell.fail(
                JobFailure::new(FailureKind::SimulationFailed, msg)
                    .with_request_id(work.request_id.clone()),
            );
        }
    }
    inner.jobs.finish(&work.cell);
}

/// Runs on the dying worker thread after a caught panic: fail the job
/// with the captured payload, persist + negatively cache the failure
/// (panics are deterministic — a pure function of the spec), and release
/// the job's key.
fn job_panicked(inner: &Arc<Inner>, work: &Work, payload: &str) {
    let failure = JobFailure::new(
        FailureKind::SimulationFailed,
        format!("worker panicked: {payload}"),
    )
    .with_request_id(work.request_id.clone());
    inner.metrics.worker_panicked(0);
    if work.cell.fail(failure.clone()) {
        if let Some(store) = &inner.store {
            let span = ucsim_obs::span(ucsim_obs::SpanKind::StoreIo);
            let appended = store.append_failed(work.cell.key_hash, &work.canonical, &failure);
            span.finish(u32::from(appended.is_err()));
            match appended {
                Ok(()) => {
                    inner
                        .known_keys
                        .lock()
                        .expect("known keys lock")
                        .insert(work.cell.key_hash);
                }
                Err(e) => {
                    inner.metrics.store_write_error();
                    eprintln!(
                        "ucsim-serve: appending failure to {} failed: {e}",
                        store.path().display()
                    );
                }
            }
        }
        inner
            .failed
            .lock()
            .expect("failed cache lock")
            .insert(work.cell.key_hash, (work.canonical.clone(), failure));
    }
    inner.jobs.finish(&work.cell);
}

/// Why [`run_spec`] didn't produce a report.
enum RunError {
    /// The cancel token flipped (deadline expired) mid-simulation.
    Cancelled,
    /// The spec itself is unrunnable (unknown workload).
    Rejected(String),
}

/// Runs the simulation described by `spec`, replaying the workload's
/// recorded instruction stream from the shared [`TraceStore`]: the first
/// job for a workload × seed × run length records, every later cell of
/// any sweep replays the same `Arc`'d trace (byte-identical reports —
/// the walker is deterministic, so the recording *is* the stream).
///
/// The spec's workload may be a Table II profile name or an
/// uploaded-program ref: `program:<id>` lays the ucasm out per-seed with
/// [`load_asm`] and walks it under the fixed user-program profile;
/// `trace:<id>` replays the uploaded recording verbatim. Ref reports are
/// named after the ref string itself, so responses stay self-describing.
///
/// With test workloads enabled, `test-sleep:<ms>` sleeps that long and
/// then simulates the quick-test profile — a deterministic way for tests
/// to keep workers busy.
fn run_spec(
    spec: &JobSpec,
    test_workloads: bool,
    traces: &TraceStore,
    programs: &ProgramRegistry,
    cancel: &CancelToken,
    cell_threads: usize,
) -> Result<SimReport, RunError> {
    let total = spec.config.warmup_insts + spec.config.measure_insts;
    let wref = WorkloadRef::parse(&spec.workload)
        .map_err(|e| RunError::Rejected(format!("bad workload ref {:?}: {e}", spec.workload)))?;
    let (name, trace) = match &wref {
        WorkloadRef::Program(_) | WorkloadRef::Trace(_) => {
            let Some(stored) = programs.resolve(&wref) else {
                return Err(RunError::Rejected(format!(
                    "unknown program: {}",
                    spec.workload
                )));
            };
            faults::check("worker.simulate");
            let profile = WorkloadProfile::user_program(spec.seed);
            let trace = traces.get_or_record(&spec.trace_key(), || {
                let insts: Vec<_> = match stored.asm() {
                    // ucasm: lay the arena out for this seed and walk it.
                    Some(asm) => load_asm(asm, spec.seed)
                        .walk(&profile)
                        .take(total as usize)
                        .collect(),
                    // Recorded trace: the upload *is* the stream.
                    None => stored
                        .trace()
                        .expect("resolve() kind-checks the ref")
                        .insts()
                        .iter()
                        .copied()
                        .take(total as usize)
                        .collect(),
                };
                insts.into_iter()
            });
            (spec.workload.as_str(), trace)
        }
        WorkloadRef::Profile(_) => {
            let mut profile = if let Some(ms) = api::test_sleep_ms(&spec.workload) {
                if !test_workloads {
                    return Err(RunError::Rejected(format!(
                        "unknown workload: {}",
                        spec.workload
                    )));
                }
                std::thread::sleep(Duration::from_millis(ms));
                WorkloadProfile::quick_test()
            } else if api::test_panic(&spec.workload) {
                if !test_workloads {
                    return Err(RunError::Rejected(format!(
                        "unknown workload: {}",
                        spec.workload
                    )));
                }
                // Deterministic worker panic: integration tests exercise the
                // panic → supervise → failure-envelope path with this.
                panic!("test-panic workload requested a worker panic");
            } else {
                WorkloadProfile::by_name(&spec.workload).ok_or_else(|| {
                    RunError::Rejected(format!("unknown workload: {}", spec.workload))
                })?
            };
            profile.seed = spec.seed;
            faults::check("worker.simulate");
            let trace = traces.get_or_record(&spec.trace_key(), || {
                let program = Program::generate(&profile);
                let insts: Vec<_> = program.walk(&profile).take(total as usize).collect();
                insts.into_iter()
            });
            (profile.name, trace)
        }
    };
    if cell_threads > 1 {
        // PW-parallel path: record the prediction-window stream, then
        // replay it with intra-cell hash-precompute workers. Reports are
        // byte-identical to the sequential path; cancellation is checked
        // between the two phases only (see `ServerConfig::cell_threads`).
        let pwt = ucsim_pipeline::PwTrace::record(&trace, &spec.config);
        if cancel.is_cancelled() {
            return Err(RunError::Cancelled);
        }
        return Ok(pwt.replay_parallel(name, &spec.config, cell_threads));
    }
    Simulator::new(spec.config.clone())
        .run_trace_cancellable(name, &trace, cancel)
        .map_err(|Cancelled| RunError::Cancelled)
}

/// Generates a server-side request id: process-start micros plus a
/// monotone counter, both in hex. Unique per process and cheap — no
/// dependency on a random source.
fn next_request_id() -> String {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    static EPOCH_US: OnceLock<u64> = OnceLock::new();
    let epoch = *EPOCH_US.get_or_init(|| {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_micros() as u64)
    });
    format!(
        "req-{epoch:x}-{:x}",
        COUNTER.fetch_add(1, Ordering::Relaxed)
    )
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    while !inner.stopping.load(Ordering::SeqCst) && !signal::signalled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                ucsim_obs::emit(ucsim_obs::SpanKind::Accept, ucsim_obs::now_us(), 0, 0);
                inner.open_conns.fetch_add(1, Ordering::SeqCst);
                let inner = Arc::clone(&inner);
                let _ = std::thread::Builder::new()
                    .name("http-conn".to_owned())
                    .spawn(move || {
                        handle_connection(stream, &inner);
                        inner.open_conns.fetch_sub(1, Ordering::SeqCst);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

/// Serves one connection for its whole keep-alive lifetime: read a
/// request, dispatch through the route table, respond, repeat — until the
/// peer closes, asks `Connection: close`, goes idle past the limit, or
/// the server starts draining.
fn handle_connection(stream: TcpStream, inner: &Arc<Inner>) {
    let mut conn = HttpConn::new(stream);
    let stop = || inner.stopping.load(Ordering::SeqCst) || signal::signalled();
    loop {
        let mut req = match conn.read_request(inner.cfg.keep_alive_idle, &stop) {
            Ok(ReadOutcome::Request(req)) => req,
            Ok(ReadOutcome::Malformed(msg)) => {
                let resp = api::error_response(ErrorCode::BadRequest, &msg, None);
                let _ = conn.respond(&resp, true);
                return;
            }
            Ok(ReadOutcome::Closed | ReadOutcome::Stopped) | Err(_) => return,
        };
        // Request-id edge: honor the client's `X-Request-Id` or mint one,
        // scope this thread's trace events to it, and echo it back.
        let request_id = req
            .header("x-request-id")
            .map(str::to_owned)
            .filter(|id| !id.is_empty())
            .unwrap_or_else(next_request_id);
        req.request_id.clone_from(&request_id);
        let _scope = ucsim_obs::request_scope(ucsim_obs::hash_id(&request_id));
        let t0 = Instant::now();
        let span = ucsim_obs::span(ucsim_obs::SpanKind::Handle);
        let (label, resp) = inner.router.dispatch(inner, &req);
        span.finish(u32::from(resp.status));
        inner
            .metrics
            .observe(label, t0.elapsed().as_micros() as u64);
        let resp = resp.with_header("x-request-id", request_id);
        let close = req.wants_close() || stop();
        if conn.respond(&resp, close).is_err() || close {
            return;
        }
    }
}

fn handle_sim(inner: &Arc<Inner>, req: &Request, _params: &Params) -> Response {
    if inner.stopping.load(Ordering::SeqCst) {
        return api::error_response(ErrorCode::Draining, "server shutting down", None);
    }
    let body = match req.body_utf8() {
        Ok(b) => b,
        Err(msg) => return api::error_response(ErrorCode::BadRequest, &msg, None),
    };
    // Forwarded peer traffic (`x-ucsim-forwarded`) carries the sender's
    // fully-resolved canonical spec; parse it verbatim so this node's
    // content hash matches the sender's exactly — and never re-route it
    // (no forwarding loops: the owner executes locally).
    let forwarded = req.header("x-ucsim-forwarded").is_some();
    let (spec, background, tenant, priority) = if forwarded {
        match JobSpec::from_json_str(body) {
            Ok(spec) => (spec, false, None, None),
            Err(e) => {
                return api::error_response(
                    ErrorCode::BadRequest,
                    &format!("bad forwarded spec: {e}"),
                    None,
                )
            }
        }
    } else {
        let sim_req = match SimRequest::parse(body) {
            Ok(r) => r,
            Err(e) => {
                return api::error_response(
                    ErrorCode::BadRequest,
                    &format!("bad request: {e}"),
                    None,
                )
            }
        };
        let spec = sim_req.resolve(api::default_seed(&sim_req.workload));
        (
            spec,
            sim_req.background.unwrap_or(false),
            sim_req.tenant,
            sim_req.priority,
        )
    };
    if let Err(resp) = workload_available(inner, &spec.workload) {
        return resp;
    }
    let canonical = spec.canonical();
    let hash = api::content_hash(&canonical);

    // 1. Resident cache entry: answer without touching the queue.
    if let Some(payload) = inner.cache.get(hash, &canonical) {
        return Response::json(200, api::envelope(hash, true, &payload));
    }

    // 1b. Known-deterministic failure: answer with the stable code
    // instead of panicking another worker on the same spec.
    if let Some(failure) = inner.failed_for(hash, &canonical) {
        return api::error_response(
            ErrorCode::from_failure(failure.kind),
            &failure.message,
            None,
        );
    }

    // 1c. Peer mode: route the job to its rendezvous owner. Foreground
    // requests we don't own are forwarded down the owner chain (with
    // failover); if every remote owner is unreachable, graceful
    // degradation executes the job right here. Background jobs stay
    // local so their `/v1/jobs/:id` poll URL stays valid.
    if !forwarded && !background {
        if let Some(ps) = &inner.peers {
            if let Some(resp) = route_sim(inner, ps, hash, &canonical, &req.request_id) {
                return resp;
            }
        }
    }

    // 2. Coalesce onto an in-flight job for the same key, or create one.
    let cell = match inner.jobs.submit(hash) {
        Submit::Joined(cell) => {
            inner.cache.record_coalesced();
            cell
        }
        Submit::New(cell) => {
            let cancel = cell.cancel_token();
            let work = Work {
                cell: Arc::clone(&cell),
                spec,
                canonical,
                request_id: req.request_id.clone(),
                cancel: cancel.clone(),
            };
            // Direct jobs ride the *bounded* path of the scheduler (the
            // tenant defaults to "default"): admission control for
            // interactive clients stays a 429 + Retry-After, while plan
            // cells use the unbounded path and never push jobs past
            // capacity into a rejection.
            match inner.queue.try_submit(
                tenant.as_deref().unwrap_or("default"),
                priority.unwrap_or(0),
                cancel,
                work,
            ) {
                Ok(()) => cell,
                Err(PushError::Full(_)) => {
                    inner.jobs.abandon(&cell);
                    inner.metrics.rejected();
                    return api::error_response(
                        ErrorCode::QueueFull,
                        "job queue full; retry later",
                        Some(inner.cfg.retry_after_secs),
                    );
                }
                Err(PushError::Closed(_)) => {
                    inner.jobs.abandon(&cell);
                    return api::error_response(ErrorCode::Draining, "server shutting down", None);
                }
            }
        }
    };

    if background {
        let body = Json::Obj(vec![
            ("id".to_owned(), Json::Uint(cell.id)),
            ("key".to_owned(), Json::Str(api::format_key(hash))),
            (
                "poll".to_owned(),
                Json::Str(format!("/v1/jobs/{}", cell.id)),
            ),
        ])
        .to_string()
        .into_bytes();
        return Response::json(202, body);
    }

    match cell.wait() {
        Ok(body) => Response::json(200, body.to_vec()),
        Err(failure) => api::error_response(
            ErrorCode::from_failure(failure.kind),
            &failure.message,
            None,
        ),
    }
}

/// Validates a job's workload ref against what this node can actually
/// run: profile names must be Table II (or enabled test workloads);
/// `program:`/`trace:` refs must resolve in the registry — falling back
/// to an on-demand fetch from cluster peers when the upload landed on a
/// different node than rendezvous routing sent the job to.
fn workload_available(inner: &Arc<Inner>, workload: &str) -> Result<(), Response> {
    match WorkloadRef::parse(workload) {
        Ok(WorkloadRef::Profile(_)) => {
            if api::workload_known(workload, inner.cfg.enable_test_workloads) {
                Ok(())
            } else {
                Err(api::error_response(
                    ErrorCode::UnknownWorkload,
                    &format!("unknown workload: {workload}"),
                    None,
                ))
            }
        }
        Ok(wref) => {
            if inner.programs.resolve(&wref).is_some() || fetch_program_from_peers(inner, &wref) {
                Ok(())
            } else {
                Err(api::error_response(
                    ErrorCode::InvalidProgram,
                    &format!(
                        "no uploaded program matches {workload}; POST it to /v1/programs first"
                    ),
                    None,
                ))
            }
        }
        Err(e) => Err(api::error_response(
            ErrorCode::BadRequest,
            &format!("bad workload ref {workload:?}: {e}"),
            None,
        )),
    }
}

/// Pulls a missing program from cluster peers (`GET /v1/programs/:id/raw`)
/// and registers it locally. The fetched bytes are re-validated and
/// re-hashed here, so a peer cannot plant a program whose content address
/// lies — a mismatch is simply treated as not-found.
fn fetch_program_from_peers(inner: &Arc<Inner>, wref: &WorkloadRef) -> bool {
    let (Some(ps), Some(hash)) = (&inner.peers, wref.resource_hash()) else {
        return false;
    };
    let path = format!("/v1/programs/{}/raw", api::format_key(hash));
    for peer in ps.peers() {
        if !peer.available() {
            continue;
        }
        let Ok(resp) = ps.fetch(peer, &path) else {
            continue;
        };
        if resp.status != 200 {
            continue;
        }
        let Ok(program) = programs::validate_program_bytes(&resp.body) else {
            continue;
        };
        if program.workload_ref() != *wref {
            continue;
        }
        register_program(inner, program);
        return true;
    }
    false
}

/// Registers a validated program: inserts it into the registry and — on
/// first sight — persists it to the store so restarts replay it and
/// anti-entropy replicates it. Mirrors the result-append bookkeeping
/// (known-keys set, store-error metric).
fn register_program(inner: &Inner, program: StoredProgram) -> (Arc<StoredProgram>, bool) {
    let hash = program.hash();
    let canonical = program.ref_string();
    let payload = program.payload_json();
    let (entry, created) = inner.programs.insert(program);
    if created {
        if let Some(store) = &inner.store {
            let span = ucsim_obs::span(ucsim_obs::SpanKind::StoreIo);
            let appended = store.append_program(hash, &canonical, &payload);
            span.finish(u32::from(appended.is_err()));
            match appended {
                Ok(()) => {
                    inner
                        .known_keys
                        .lock()
                        .expect("known keys lock")
                        .insert(hash);
                }
                Err(e) => {
                    inner.metrics.store_write_error();
                    eprintln!(
                        "ucsim-serve: appending program to {} failed: {e}",
                        store.path().display()
                    );
                }
            }
        }
    }
    (entry, created)
}

/// Walks the rendezvous owner chain for `hash` and forwards the job to
/// the first reachable remote owner. Returns `None` when this node
/// should execute locally: it is the primary owner, or every remote
/// owner is down/unreachable (graceful degradation — a partitioned node
/// still answers what it can). A successful forward caches the peer's
/// report locally so repeat requests stay node-local.
fn route_sim(
    inner: &Inner,
    ps: &PeerSet,
    hash: u64,
    canonical: &str,
    request_id: &str,
) -> Option<Response> {
    for owner in ps.owner_chain(hash) {
        // `None` in the chain is this node: execute locally.
        let peer = owner?;
        if !peer.available() {
            peer.note_failed_over();
            continue;
        }
        let headers = [("x-ucsim-forwarded", "1"), ("x-request-id", request_id)];
        match ps.forward(peer, "POST", "/v1/sim", &headers, canonical.as_bytes()) {
            Ok(resp) if resp.status == 200 => {
                // Cache the owner's report so the next hit for this key
                // is answered here without another network round trip.
                if let Ok(body) = std::str::from_utf8(&resp.body) {
                    if let Ok(env) = Json::parse(body) {
                        if let Some(report) = env.get("report") {
                            inner.cache.put(
                                hash,
                                canonical.to_owned(),
                                Arc::new(report.to_string()),
                            );
                        }
                    }
                }
                return Some(Response::json(200, resp.body));
            }
            Ok(resp) if resp.status == 503 => {
                // The owner is draining; fail over to the next owner.
                peer.note_failed_over();
            }
            Ok(resp) => {
                // Any other definitive answer (4xx, deterministic 5xx)
                // is relayed verbatim — retrying elsewhere would just
                // recompute the same deterministic failure.
                return Some(Response::json(resp.status, resp.body));
            }
            Err(_) => peer.note_failed_over(),
        }
    }
    None
}

fn handle_matrix_post(inner: &Arc<Inner>, req: &Request, _params: &Params) -> Response {
    if inner.stopping.load(Ordering::SeqCst) {
        return api::error_response(ErrorCode::Draining, "server shutting down", None);
    }
    let body = match req.body_utf8() {
        Ok(b) => b,
        Err(msg) => return api::error_response(ErrorCode::BadRequest, &msg, None),
    };
    let matrix_req = match MatrixRequest::parse(body) {
        Ok(r) => r,
        Err(e) => {
            return api::error_response(ErrorCode::BadRequest, &format!("bad request: {e}"), None)
        }
    };
    let mode = match SweepMode::parse(matrix_req.mode.as_ref()) {
        Ok(m) => m,
        Err(msg) => return api::error_response(ErrorCode::BadRequest, &msg, None),
    };
    let axes = match PlanAxes::resolve(&matrix_req, inner.cfg.enable_test_workloads) {
        Ok(a) => a,
        Err((code, msg)) => return api::error_response(code, &msg, None),
    };
    // Every uploaded-program ref must resolve (locally, or fetched from
    // its upload node) before the plan is accepted — a plan never
    // enqueues cells it cannot run.
    for w in &matrix_req.workloads {
        if let Err(resp) = workload_available(inner, w) {
            return resp;
        }
    }
    let opts = PlanOptions {
        tenant: matrix_req
            .tenant
            .clone()
            .unwrap_or_else(|| "default".to_owned()),
        priority: matrix_req.priority.unwrap_or(0),
        adaptive: matches!(mode, SweepMode::Adaptive { .. }),
    };
    let sweep = inner.sweeps.create(opts);
    let id = sweep.id;
    let request_id = req.request_id.clone();

    match mode {
        SweepMode::Full => {
            // Materialize the whole cross up front and resolve every cell
            // against the store right here — cheap (no simulation), so the
            // 202 still returns promptly and `planned` is exact from the
            // first poll.
            let metas = axes.full_metas();
            let start = sweep.push_cells(metas.clone());
            match &inner.peers {
                // Peer mode: scatter cells to their rendezvous owners
                // and gather the partial results; adaptive plans below
                // stay coordinator-local (the bisector is sequential).
                Some(ps) if !ps.peers().is_empty() => {
                    scatter_cells(inner, &sweep, &metas, start, &request_id);
                }
                _ => resolve_cells(inner, &sweep, &metas, start, &request_id),
            }
            sweep.mark_materialized();
        }
        SweepMode::Adaptive { tolerance, .. } => {
            // Adaptive plans materialize capacity waves as the bisector
            // asks for them; a detached driver owns that loop.
            let driver_inner = Arc::clone(inner);
            let driver_sweep = Arc::clone(&sweep);
            let _ = std::thread::Builder::new()
                .name("plan-driver".to_owned())
                .spawn(move || {
                    // The driver inherits the submitting request's trace
                    // scope so wave enqueues correlate to the POST.
                    let _scope = ucsim_obs::request_scope(ucsim_obs::hash_id(&request_id));
                    drive_adaptive(&driver_inner, &driver_sweep, &axes, tolerance, &request_id);
                });
        }
    }

    let body = Json::Obj(vec![
        ("id".to_owned(), Json::Uint(id)),
        ("planned".to_owned(), Json::Uint(sweep.total() as u64)),
        ("poll".to_owned(), Json::Str(format!("/v1/matrix/{id}"))),
    ])
    .to_string()
    .into_bytes();
    Response::json(202, body)
}

/// Resolves the plan cells `start..start + metas.len()` exactly once
/// each: a store/cache hit fulfills the cell without simulating (counted
/// in `skipped_from_store`), a known-deterministic failure settles it
/// immediately, and anything else joins or creates a job — fresh jobs go
/// to the scheduler's *unbounded* path under the plan's tenant and
/// priority, so an overcommitted sweep queues instead of erroring.
fn resolve_cells(
    inner: &Inner,
    sweep: &Sweep,
    metas: &[sweep::CellMeta],
    start: usize,
    request_id: &str,
) {
    for (offset, meta) in metas.iter().enumerate() {
        resolve_cell(inner, sweep, start + offset, meta, request_id);
    }
}

/// Resolves one plan cell locally (the per-cell body of
/// [`resolve_cells`], shared with the scatter-gather fallback path).
fn resolve_cell(
    inner: &Inner,
    sweep: &Sweep,
    idx: usize,
    meta: &sweep::CellMeta,
    request_id: &str,
) {
    if let Some(payload) = inner.cache.get(meta.key_hash, &meta.canonical) {
        sweep.fulfill_from_store(idx, payload);
        return;
    }
    if let Some(failure) = inner.failed_for(meta.key_hash, &meta.canonical) {
        sweep.fail(idx, failure);
        return;
    }
    match inner.jobs.submit(meta.key_hash) {
        Submit::Joined(job) => {
            inner.cache.record_coalesced();
            sweep.attach(idx, job);
        }
        Submit::New(job) => {
            sweep.attach(idx, Arc::clone(&job));
            let cancel = job.cancel_token();
            let work = Work {
                cell: Arc::clone(&job),
                spec: meta.spec.clone(),
                canonical: meta.canonical.clone(),
                request_id: request_id.to_owned(),
                cancel: cancel.clone(),
            };
            if let Err(PushError::Closed(w) | PushError::Full(w)) =
                inner
                    .queue
                    .enqueue(&sweep.tenant, sweep.priority, cancel, work)
            {
                let failure = JobFailure::new(FailureKind::ShuttingDown, "server shutting down")
                    .with_request_id(request_id);
                w.cell.fail(failure.clone());
                inner.jobs.abandon(&w.cell);
                inner.metrics.job_failed_unexecuted();
                sweep.fail(idx, failure);
            }
        }
    }
}

/// Per-gather-group fan-out width: how many cells a single peer is asked
/// to simulate concurrently during a scatter-gather sweep.
const GATHER_WORKERS: usize = 4;

/// Scatter-gather resolution of a full-cross plan in peer mode: cells
/// are partitioned by their rendezvous primary owner; locally-owned
/// cells resolve exactly as in [`resolve_cells`], and each remote
/// group is driven by a detached gather thread that forwards cells down
/// the owner chain with bounded per-peer concurrency, failing over to
/// secondary owners and finally to local execution, so a dead or
/// partitioned peer can delay a sweep but never wedge it. First-wins
/// resolution in [`Sweep`] guarantees no cell is counted twice even if
/// a retried forward races a local fallback.
fn scatter_cells(
    inner: &Arc<Inner>,
    sweep: &Arc<Sweep>,
    metas: &[sweep::CellMeta],
    start: usize,
    request_id: &str,
) {
    let ps = inner.peers.as_ref().expect("scatter_cells requires peers");
    let mut local = Vec::new();
    let mut remote: HashMap<String, Vec<usize>> = HashMap::new();
    for (offset, meta) in metas.iter().enumerate() {
        let idx = start + offset;
        match ps.owner_chain(meta.key_hash).first() {
            Some(Some(peer)) => remote.entry(peer.addr().to_owned()).or_default().push(idx),
            _ => local.push(idx),
        }
    }
    for idx in local {
        resolve_cell(inner, sweep, idx, &metas[idx - start], request_id);
    }
    for (addr, indices) in remote {
        let queue = Arc::new(Mutex::new(indices.into_iter().collect::<VecDeque<_>>()));
        let workers = GATHER_WORKERS.min(queue.lock().expect("gather queue").len());
        for _ in 0..workers {
            let inner = Arc::clone(inner);
            let sweep = Arc::clone(sweep);
            let metas = metas.to_vec();
            let queue = Arc::clone(&queue);
            let request_id = request_id.to_owned();
            let addr = addr.clone();
            let _ = std::thread::Builder::new()
                .name(format!("sweep-gather-{addr}"))
                .spawn(move || {
                    let _scope = ucsim_obs::request_scope(ucsim_obs::hash_id(&request_id));
                    loop {
                        let idx = match queue.lock().expect("gather queue").pop_front() {
                            Some(i) => i,
                            None => break,
                        };
                        gather_cell(&inner, &sweep, idx, &metas[idx - start], &request_id);
                    }
                });
        }
    }
}

/// Resolves one remotely-owned sweep cell: forward it down the owner
/// chain, fall back to local execution when every owner is unreachable.
fn gather_cell(
    inner: &Arc<Inner>,
    sweep: &Arc<Sweep>,
    idx: usize,
    meta: &sweep::CellMeta,
    request_id: &str,
) {
    if sweep.is_cancelled() {
        // cancel() already failed every Planned cell; nothing to do.
        return;
    }
    // A result may have landed since partitioning (anti-entropy pull,
    // a direct request for the same key): settle from cache first.
    if let Some(payload) = inner.cache.get(meta.key_hash, &meta.canonical) {
        sweep.fulfill_from_store(idx, payload);
        return;
    }
    if let Some(failure) = inner.failed_for(meta.key_hash, &meta.canonical) {
        sweep.fail(idx, failure);
        return;
    }
    let ps = inner.peers.as_ref().expect("gather_cell requires peers");
    let headers = [("x-ucsim-forwarded", "1"), ("x-request-id", request_id)];
    for owner in ps.owner_chain(meta.key_hash) {
        let peer = match owner {
            None => break, // self in the chain: execute locally below
            Some(p) => p,
        };
        if !peer.available() {
            peer.note_failed_over();
            continue;
        }
        match ps.forward(peer, "POST", "/v1/sim", &headers, meta.canonical.as_bytes()) {
            Ok(resp) if resp.status == 200 => {
                let Ok(body) = std::str::from_utf8(&resp.body) else {
                    peer.note_failed_over();
                    continue;
                };
                let Ok(env) = Json::parse(body) else {
                    peer.note_failed_over();
                    continue;
                };
                let Some(report) = env.get("report") else {
                    peer.note_failed_over();
                    continue;
                };
                let peer_cached = env.get("cached").and_then(Json::as_bool).unwrap_or(false);
                let payload = Arc::new(report.to_string());
                inner
                    .cache
                    .put(meta.key_hash, meta.canonical.clone(), Arc::clone(&payload));
                sweep.fulfill_remote(idx, payload, peer_cached);
                return;
            }
            Ok(resp) if resp.status == 429 || resp.status == 503 => {
                // Transient overload or drain: try the next owner.
                peer.note_failed_over();
            }
            Ok(resp) => {
                // Definitive failure (bad spec, deterministic sim
                // failure): settle the cell with the peer's error.
                let failure = peer_error_failure(&resp, request_id);
                sweep.fail(idx, failure);
                return;
            }
            Err(_) => peer.note_failed_over(),
        }
    }
    // Graceful degradation: every remote owner refused or is down.
    resolve_cell(inner, sweep, idx, meta, request_id);
}

/// Maps a peer's definitive error response back to a [`JobFailure`],
/// preserving the stable failure code when the envelope carries one.
fn peer_error_failure(resp: &crate::client::HttpResponse, request_id: &str) -> JobFailure {
    let parsed = std::str::from_utf8(&resp.body)
        .ok()
        .and_then(|b| Json::parse(b).ok());
    let error = parsed.as_ref().and_then(|env| env.get("error").cloned());
    let kind = error
        .as_ref()
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .and_then(FailureKind::parse)
        .unwrap_or(FailureKind::SimulationFailed);
    let message = error
        .as_ref()
        .and_then(|e| e.get("message"))
        .and_then(Json::as_str)
        .map_or_else(
            || format!("peer answered status {}", resp.status),
            str::to_owned,
        );
    JobFailure::new(kind, &message).with_request_id(request_id)
}

/// The anti-entropy pull loop (peer mode with a store): periodically
/// pulls each live peer's store delta via `GET /v1/store?since=…` and
/// replays unknown records through the local append path — results land
/// in the store *and* the cache, deterministic failures in the store
/// and the negative cache — so any node can answer any known job after
/// a crash, not just the keys it owns. Cursors are per-peer byte
/// offsets into the remote log; the remote's `read_since` stops before
/// a corrupt tail, so torn records are truncated there and never
/// replicate.
fn anti_entropy_loop(inner: &Arc<Inner>) {
    let (Some(ps), Some(store)) = (&inner.peers, &inner.store) else {
        return;
    };
    while !inner.stopping.load(Ordering::SeqCst) {
        for peer in ps.peers() {
            if inner.stopping.load(Ordering::SeqCst) {
                return;
            }
            if !peer.available() {
                continue;
            }
            let mut pulled = 0u64;
            loop {
                let path = format!(
                    "/v1/store?since={}&max={}",
                    peer.pull_cursor(),
                    inner.cfg.anti_entropy_batch
                );
                let Ok(resp) = ps.fetch(peer, &path) else {
                    break;
                };
                if resp.status != 200 {
                    break;
                }
                let Some(doc) = std::str::from_utf8(&resp.body)
                    .ok()
                    .and_then(|b| Json::parse(b).ok())
                else {
                    break;
                };
                let records = doc.get("records").and_then(Json::as_arr).unwrap_or(&[]);
                for rec in records {
                    apply_pull_record(inner, store, rec);
                }
                pulled += records.len() as u64;
                let next = doc.get("next").and_then(Json::as_u64).unwrap_or(0);
                if next > peer.pull_cursor() {
                    peer.set_pull_cursor(next);
                } else if !records.is_empty() {
                    break; // no cursor progress despite records: bail out
                }
                if doc.get("eof").and_then(Json::as_bool).unwrap_or(true) {
                    break;
                }
            }
            ps.note_pull_round(pulled);
        }
        // Interruptible sleep so shutdown isn't held up by the interval.
        let deadline = Instant::now() + inner.cfg.anti_entropy_interval;
        while Instant::now() < deadline && !inner.stopping.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(100));
        }
    }
}

/// Replays one record pulled from a peer into the local store, cache,
/// and negative caches. Keys already terminal locally are skipped, so
/// repeated pulls and overlapping peers stay idempotent; malformed
/// records are dropped (the source log is checksummed, so these only
/// arise from a peer speaking a different wire version).
fn apply_pull_record(inner: &Inner, store: &ResultStore, rec: &Json) {
    let Some(key) = rec
        .get("key")
        .and_then(Json::as_str)
        .and_then(|k| u64::from_str_radix(k, 16).ok())
    else {
        return;
    };
    let (Some(kind), Some(canonical), Some(payload)) = (
        rec.get("kind").and_then(Json::as_str),
        rec.get("canonical").and_then(Json::as_str),
        rec.get("payload").and_then(Json::as_str),
    ) else {
        return;
    };
    if inner
        .known_keys
        .lock()
        .expect("known keys lock")
        .contains(&key)
    {
        return;
    }
    match kind {
        "result" => {
            if store.append(key, canonical, payload).is_err() {
                return;
            }
            inner
                .cache
                .put(key, canonical.to_owned(), Arc::new(payload.to_owned()));
        }
        "failed" => {
            // Route the payload through the same decoder replay uses;
            // non-deterministic kinds never replicate (same rule as the
            // local append path).
            let record = crate::store::StoreRecord {
                kind: RecordKind::Failed,
                key_hash: key,
                canonical: canonical.to_owned(),
                payload: payload.to_owned(),
            };
            let Some(failure) = record.failure() else {
                return;
            };
            if !failure.kind.is_deterministic() {
                return;
            }
            if store.append_failed(key, canonical, &failure).is_err() {
                return;
            }
            inner
                .failed
                .lock()
                .expect("failed cache lock")
                .insert(key, (canonical.to_owned(), failure));
        }
        "program" => {
            // Re-validate the payload locally; the content address must
            // agree or the record is dropped (a peer cannot plant a
            // program under someone else's id).
            let Ok(program) = programs::decode_program_payload(payload) else {
                return;
            };
            if program.hash() != key || program.ref_string() != canonical {
                return;
            }
            if store.append_program(key, canonical, payload).is_err() {
                return;
            }
            let _ = inner.programs.insert(program);
        }
        _ => return,
    }
    inner
        .known_keys
        .lock()
        .expect("known keys lock")
        .insert(key);
}

/// The adaptive-plan driver: bisects the capacity axis until the UPC
/// knee is bracketed to adjacent axis points, materializing one wave of
/// cells (every workload × policy at one capacity) per probe. Runs
/// detached; terminates when the bisector converges, the plan is
/// cancelled, a whole wave fails, or the server drains (shutdown fails
/// queued cells, so waits always return).
fn drive_adaptive(
    inner: &Arc<Inner>,
    sweep: &Arc<Sweep>,
    axes: &PlanAxes,
    tolerance: f64,
    request_id: &str,
) {
    let capacities: Vec<u64> = axes.capacities().iter().map(|&c| c as u64).collect();
    let mut bisector = KneeBisector::new(capacities.len(), tolerance);
    let publish = |b: &KneeBisector| {
        sweep.set_frontier(Frontier {
            axis: "capacity".to_owned(),
            tolerance,
            capacities: capacities.clone(),
            probed: b.probed_indices().iter().map(|&i| capacities[i]).collect(),
            bracket: b.bracket().map(|(lo, hi)| (capacities[lo], capacities[hi])),
            knee: b.knee().map(|i| capacities[i]),
        });
    };
    publish(&bisector);
    loop {
        let probes = bisector.next_probes();
        if probes.is_empty() {
            break;
        }
        if sweep.is_cancelled() || inner.stopping.load(Ordering::SeqCst) {
            break;
        }
        for cap_idx in probes {
            let metas = axes.capacity_metas(cap_idx);
            let start = sweep.push_cells(metas.clone());
            resolve_cells(inner, sweep, &metas, start, request_id);
            // Wait the wave out, then fold its UPCs into one knee metric.
            let cells = sweep.cells();
            let mut upcs = Vec::with_capacity(metas.len());
            for cell in &cells[start..start + metas.len()] {
                let (payload, _failure) = cell.wait_settled();
                if let Some(payload) = payload {
                    if let Ok(report) = SimReport::from_json_str(&payload) {
                        if report.upc > 0.0 {
                            upcs.push(report.upc);
                        }
                    }
                }
            }
            if upcs.is_empty() {
                // The whole wave failed: no metric to steer by. Leave the
                // failed cells in place and stop refining.
                sweep.mark_materialized();
                publish(&bisector);
                return;
            }
            let geomean = (upcs.iter().map(|u| u.ln()).sum::<f64>() / upcs.len() as f64).exp();
            bisector.record(cap_idx, geomean);
            publish(&bisector);
        }
    }
    sweep.mark_materialized();
    publish(&bisector);
}

fn handle_matrix_list(inner: &Arc<Inner>, req: &Request, _params: &Params) -> Response {
    let filter = state_filter(req);
    let sweeps: Vec<Json> = inner
        .sweeps
        .list()
        .into_iter()
        .filter_map(|s| {
            let state = s.state_name();
            if filter.as_deref().is_some_and(|f| f != state) {
                return None;
            }
            Some(Json::Obj(vec![
                ("id".to_owned(), Json::Uint(s.id)),
                ("state".to_owned(), Json::Str(state.to_owned())),
                ("created_at".to_owned(), Json::Uint(s.created_at)),
                ("tenant".to_owned(), Json::Str(s.tenant.clone())),
                ("priority".to_owned(), Json::Uint(s.priority)),
                (
                    "mode".to_owned(),
                    Json::Str(if s.adaptive { "adaptive" } else { "full" }.to_owned()),
                ),
                ("planned".to_owned(), Json::Uint(s.total() as u64)),
            ]))
        })
        .collect();
    let body = Json::Obj(vec![("sweeps".to_owned(), Json::Arr(sweeps))]);
    Response::json(200, body.to_string().into_bytes())
}

fn handle_matrix_delete(inner: &Arc<Inner>, _req: &Request, params: &Params) -> Response {
    let Some(id) = params.get("id").and_then(|s| s.parse::<u64>().ok()) else {
        return api::error_response(ErrorCode::BadRequest, "bad sweep id", None);
    };
    let Some(sweep) = inner.sweeps.get(id) else {
        return api::error_response(ErrorCode::NotFound, "no such sweep", None);
    };
    if sweep.state_name() != "running" {
        return api::error_response(
            ErrorCode::BadRequest,
            &format!("sweep {id} already settled; nothing to cancel"),
            None,
        );
    }
    // Fail every unsettled cell (first-wins) and flip the cancel tokens:
    // the scheduler preempts still-queued entries before they reach a
    // worker, running simulations bail at the next cancellation check,
    // and the adaptive driver stops materializing waves.
    let flipped = sweep.cancel();
    for job in &flipped {
        inner.jobs.finish(job);
    }
    inner.metrics.record_cancelled(flipped.len() as u64);
    api::error_response(
        ErrorCode::Cancelled,
        &format!("sweep {id} cancelled; {} cells preempted", flipped.len()),
        None,
    )
}

/// `POST /v1/programs` — upload a user program: ucasm text or a binary
/// `UCT1` trace (sniffed by content), or the JSON envelope
/// `{"kind":"asm","source":…}` / `{"kind":"trace","hex":…}` for clients
/// that prefer a pure-JSON wire. The id is the FNV-1a hash of the
/// program bytes, so uploads are idempotent and agree across nodes:
/// 201 on first upload, 200 on re-upload, 422 `invalid_program` when
/// validation fails.
fn handle_program_post(inner: &Arc<Inner>, req: &Request, _params: &Params) -> Response {
    if inner.stopping.load(Ordering::SeqCst) {
        return api::error_response(ErrorCode::Draining, "server shutting down", None);
    }
    let first = req.body.iter().find(|b| !b.is_ascii_whitespace());
    let validated = if first == Some(&b'{') {
        // ucasm can't start with '{', so this is the JSON envelope form.
        match req.body_utf8() {
            Ok(text) => programs::decode_program_payload(text),
            Err(msg) => Err(msg),
        }
    } else {
        programs::validate_program_bytes(&req.body)
    };
    let program = match validated {
        Ok(p) => p,
        Err(msg) => return api::error_response(ErrorCode::InvalidProgram, &msg, None),
    };
    let (entry, created) = register_program(inner, program);
    let Json::Obj(mut fields) = entry.meta_json() else {
        unreachable!("meta_json is an object")
    };
    fields.push(("created".to_owned(), Json::Bool(created)));
    Response::json(
        if created { 201 } else { 200 },
        Json::Obj(fields).to_string().into_bytes(),
    )
}

/// Resolves the `:id` route param (the 16-hex content address) against
/// the program registry.
fn lookup_program(inner: &Inner, params: &Params) -> Result<Arc<StoredProgram>, Response> {
    let Some(hash) = params
        .get("id")
        .filter(|s| !s.is_empty() && s.len() <= 16)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
    else {
        return Err(api::error_response(
            ErrorCode::BadRequest,
            "bad program id",
            None,
        ));
    };
    inner
        .programs
        .get(hash)
        .ok_or_else(|| api::error_response(ErrorCode::NotFound, "no such program", None))
}

fn handle_program_list(inner: &Arc<Inner>, req: &Request, _params: &Params) -> Response {
    let mut kind = None;
    if let Some(q) = &req.query {
        for pair in q.split('&') {
            let Some((k, v)) = pair.split_once('=') else {
                continue;
            };
            if k == "kind" {
                match ProgramKind::parse(v) {
                    Some(pk) => kind = Some(pk),
                    None => {
                        return api::error_response(
                            ErrorCode::BadRequest,
                            &format!("unknown kind filter {v:?} (want asm or trace)"),
                            None,
                        )
                    }
                }
            }
        }
    }
    let listed: Vec<Json> = inner
        .programs
        .list(kind)
        .iter()
        .map(|p| p.meta_json())
        .collect();
    let body = Json::Obj(vec![("programs".to_owned(), Json::Arr(listed))]);
    Response::json(200, body.to_string().into_bytes())
}

fn handle_program_get(inner: &Arc<Inner>, _req: &Request, params: &Params) -> Response {
    match lookup_program(inner, params) {
        Ok(p) => Response::json(200, p.meta_json().to_string().into_bytes()),
        Err(resp) => resp,
    }
}

/// `GET /v1/programs/:id/raw` — the exact uploaded bytes. Peers use this
/// for on-demand fetch (re-uploading the body anywhere reproduces the
/// id); humans use it to recover a source file.
fn handle_program_raw(inner: &Arc<Inner>, _req: &Request, params: &Params) -> Response {
    match lookup_program(inner, params) {
        Ok(p) => Response {
            status: 200,
            headers: Vec::new(),
            body: p.raw().to_vec(),
            content_type: match p.kind() {
                ProgramKind::Asm => "text/plain; charset=utf-8",
                ProgramKind::Trace => "application/octet-stream",
            },
        },
        Err(resp) => resp,
    }
}

fn handle_jobs_list(inner: &Arc<Inner>, req: &Request, _params: &Params) -> Response {
    let filter = state_filter(req);
    let jobs: Vec<Json> = inner
        .jobs
        .snapshot()
        .into_iter()
        .filter_map(|cell| {
            let state = cell.state();
            if filter.as_deref().is_some_and(|f| f != state.name()) {
                return None;
            }
            Some(Json::Obj(vec![
                ("id".to_owned(), Json::Uint(cell.id)),
                ("key".to_owned(), Json::Str(api::format_key(cell.key_hash))),
                ("state".to_owned(), Json::Str(state.name().to_owned())),
                ("created_at".to_owned(), Json::Uint(cell.created_at)),
            ]))
        })
        .collect();
    let body = Json::Obj(vec![("jobs".to_owned(), Json::Arr(jobs))]);
    Response::json(200, body.to_string().into_bytes())
}

fn handle_job_delete(inner: &Arc<Inner>, req: &Request, params: &Params) -> Response {
    let Some(id) = params.get("id").and_then(|s| s.parse::<u64>().ok()) else {
        return api::error_response(ErrorCode::BadRequest, "bad job id", None);
    };
    let Some(cell) = inner.jobs.get(id) else {
        return api::error_response(ErrorCode::NotFound, "no such job", None);
    };
    let failure = JobFailure::new(FailureKind::Cancelled, format!("job {id} cancelled"))
        .with_request_id(&req.request_id);
    if !cell.fail(failure) {
        return api::error_response(
            ErrorCode::BadRequest,
            &format!("job {id} already settled; nothing to cancel"),
            None,
        );
    }
    cell.cancel_token().cancel();
    inner.jobs.finish(&cell);
    inner.metrics.record_cancelled(1);
    api::error_response(ErrorCode::Cancelled, &format!("job {id} cancelled"), None)
}

/// Extracts the optional `?state=` filter of the listing endpoints.
fn state_filter(req: &Request) -> Option<String> {
    let q = req.query.as_ref()?;
    q.split('&').find_map(|pair| {
        pair.split_once('=')
            .filter(|(k, _)| *k == "state")
            .map(|(_, v)| v.to_owned())
    })
}

fn handle_matrix_get(inner: &Arc<Inner>, _req: &Request, params: &Params) -> Response {
    let Some(id) = params.get("id").and_then(|s| s.parse::<u64>().ok()) else {
        return api::error_response(ErrorCode::BadRequest, "bad sweep id", None);
    };
    let Some(sweep) = inner.sweeps.get(id) else {
        return api::error_response(ErrorCode::NotFound, "no such sweep", None);
    };
    Response::json(200, sweep.status_body().to_vec())
}

fn handle_job_get(inner: &Arc<Inner>, _req: &Request, params: &Params) -> Response {
    let Some(id) = params.get("id").and_then(|s| s.parse::<u64>().ok()) else {
        return api::error_response(ErrorCode::BadRequest, "bad job id", None);
    };
    let Some(cell) = inner.jobs.get(id) else {
        return api::error_response(ErrorCode::NotFound, "no such job", None);
    };
    let state = cell.state();
    // Unified v1.1 envelope (DESIGN.md §4.1): `state` and `result` are
    // canonical; the one-release `status`/`response` aliases are gone.
    let mut obj = vec![
        ("id".to_owned(), Json::Uint(id)),
        ("key".to_owned(), Json::Str(api::format_key(cell.key_hash))),
        ("state".to_owned(), Json::Str(state.name().to_owned())),
        ("created_at".to_owned(), Json::Uint(cell.created_at)),
    ];
    match state {
        JobState::Done(body) => {
            // Splice the finished envelope in verbatim.
            let envelope = std::str::from_utf8(&body).expect("envelope is utf-8");
            let mut out = Json::Obj(obj).to_string();
            out.pop(); // trailing '}'
            out.push_str(",\"result\":");
            out.push_str(envelope);
            out.push('}');
            Response::json(200, out.into_bytes())
        }
        JobState::Failed(failure) => {
            let mut err = vec![
                ("code".to_owned(), Json::Str(failure.kind.to_string())),
                ("message".to_owned(), Json::Str(failure.message)),
            ];
            if let Some(rid) = failure.request_id {
                err.push(("request_id".to_owned(), Json::Str(rid)));
            }
            obj.push(("error".to_owned(), Json::Obj(err)));
            Response::json(200, Json::Obj(obj).to_string().into_bytes())
        }
        _ => Response::json(200, Json::Obj(obj).to_string().into_bytes()),
    }
}

fn handle_job_profile(inner: &Arc<Inner>, _req: &Request, params: &Params) -> Response {
    let Some(id) = params.get("id").and_then(|s| s.parse::<u64>().ok()) else {
        return api::error_response(ErrorCode::BadRequest, "bad job id", None);
    };
    let Some(cell) = inner.jobs.get(id) else {
        return api::error_response(ErrorCode::NotFound, "no such job", None);
    };
    let state = cell.state();
    let profile = cell.profile().map_or(Json::Null, |p| p.to_json());
    let body = Json::Obj(vec![
        ("id".to_owned(), Json::Uint(id)),
        ("state".to_owned(), Json::Str(state.name().to_owned())),
        ("profile".to_owned(), profile),
    ]);
    Response::json(200, body.to_string().into_bytes())
}

fn handle_metrics(inner: &Arc<Inner>, req: &Request, _params: &Params) -> Response {
    let stats = inner.cache.stats();
    let (alive, respawned) = inner
        .pool_monitor
        .get()
        .map_or((0, 0), |m| (m.alive(), m.respawned()));
    let doc = inner.metrics.to_json(
        &inner.queue.stats(),
        inner.queue.capacity(),
        &stats,
        alive,
        respawned,
        inner.peers.as_ref().map(PeerSet::metrics_json),
    );
    // Content negotiation: Prometheus scrapers ask for text/plain; the
    // exposition covers the same counters as the JSON document by
    // construction (see `prom`).
    if req
        .header("accept")
        .is_some_and(|a| a.contains("text/plain"))
    {
        Response::text(200, crate::prom::render_prometheus(&doc).into_bytes())
    } else {
        Response::json(200, doc.to_string().into_bytes())
    }
}

fn handle_trace(_inner: &Arc<Inner>, req: &Request, _params: &Params) -> Response {
    let mut since = 0u64;
    let mut max = 4096usize;
    if let Some(q) = &req.query {
        for pair in q.split('&') {
            let Some((k, v)) = pair.split_once('=') else {
                continue;
            };
            match k {
                "since" => since = v.parse().unwrap_or(0),
                "max" => max = v.parse().unwrap_or(max),
                _ => {}
            }
        }
    }
    let (events, next_since) = ucsim_obs::drain_since(since, max.min(65_536));
    let events = events
        .iter()
        .map(|e| {
            Json::Obj(vec![
                ("seq".to_owned(), Json::Uint(e.seq)),
                ("kind".to_owned(), Json::Str(e.kind.name().to_owned())),
                ("start_us".to_owned(), Json::Uint(e.start_us)),
                ("dur_us".to_owned(), Json::Uint(e.dur_us)),
                (
                    "request_id".to_owned(),
                    Json::Str(format!("{:016x}", e.request_id)),
                ),
                ("detail".to_owned(), Json::Uint(u64::from(e.detail))),
            ])
        })
        .collect();
    let body = Json::Obj(vec![
        ("enabled".to_owned(), Json::Bool(ucsim_obs::ENABLED)),
        ("events".to_owned(), Json::Arr(events)),
        ("next_since".to_owned(), Json::Uint(next_since)),
    ]);
    Response::json(200, body.to_string().into_bytes())
}

/// `GET /v1/store?since=N&max=M` — a page of verified store records
/// starting at byte offset `since`, for peer anti-entropy pulls (and
/// offline log inspection). `next` is the cursor for the following
/// page; `eof` is true when the page reaches the end of the verified
/// log, so pollers know to back off. Torn tail records are excluded —
/// the reader stops at the first checksum mismatch, exactly like
/// startup replay.
fn handle_store(inner: &Arc<Inner>, req: &Request, _params: &Params) -> Response {
    let Some(store) = &inner.store else {
        return api::error_response(
            ErrorCode::NotFound,
            "no persistent store (start with --data-dir)",
            None,
        );
    };
    let mut since = 0u64;
    let mut max = 1024usize;
    if let Some(q) = &req.query {
        for pair in q.split('&') {
            let Some((k, v)) = pair.split_once('=') else {
                continue;
            };
            match k {
                "since" => since = v.parse().unwrap_or(0),
                "max" => max = v.parse().unwrap_or(max),
                _ => {}
            }
        }
    }
    match store.read_since(since, max.min(4096)) {
        Ok((records, next, eof)) => {
            let records = records
                .into_iter()
                .map(|r| {
                    Json::Obj(vec![
                        (
                            "kind".to_owned(),
                            Json::Str(
                                match r.kind {
                                    RecordKind::Result => "result",
                                    RecordKind::Failed => "failed",
                                    RecordKind::Program => "program",
                                }
                                .to_owned(),
                            ),
                        ),
                        ("key".to_owned(), Json::Str(api::format_key(r.key_hash))),
                        ("canonical".to_owned(), Json::Str(r.canonical)),
                        ("payload".to_owned(), Json::Str(r.payload)),
                    ])
                })
                .collect();
            let body = Json::Obj(vec![
                ("format".to_owned(), Json::Str("UCSTOR03".to_owned())),
                ("since".to_owned(), Json::Uint(since)),
                ("next".to_owned(), Json::Uint(next)),
                ("eof".to_owned(), Json::Bool(eof)),
                ("records".to_owned(), Json::Arr(records)),
            ]);
            Response::json(200, body.to_string().into_bytes())
        }
        Err(e) => api::error_response(
            ErrorCode::Internal,
            &format!("store read failed: {e}"),
            None,
        ),
    }
}

fn handle_healthz(inner: &Arc<Inner>, _req: &Request, _params: &Params) -> Response {
    let alive = inner
        .pool_monitor
        .get()
        .map_or(0, ucsim_pool::PoolMonitor::alive);
    let (store_present, store_writable) = match &inner.store {
        Some(s) => (true, s.writable()),
        None => (false, true),
    };
    let ok = alive > 0 && store_writable && !inner.stopping.load(Ordering::SeqCst);
    let mut fields = vec![
        ("ok".to_owned(), Json::Bool(ok)),
        (
            "queue".to_owned(),
            Json::Obj(vec![
                ("depth".to_owned(), Json::Uint(inner.queue.len() as u64)),
                (
                    "capacity".to_owned(),
                    Json::Uint(inner.queue.capacity() as u64),
                ),
            ]),
        ),
        (
            "workers".to_owned(),
            Json::Obj(vec![
                ("alive".to_owned(), Json::Uint(alive as u64)),
                ("count".to_owned(), Json::Uint(inner.cfg.workers as u64)),
            ]),
        ),
        (
            "store".to_owned(),
            Json::Obj(vec![
                ("present".to_owned(), Json::Bool(store_present)),
                ("writable".to_owned(), Json::Bool(store_writable)),
            ]),
        ),
    ];
    // Peer mode: per-member breaker state plus the cluster-level
    // "ok"/"degraded" signal. Local `ok` is deliberately unaffected — a
    // node that can serve what it owns stays healthy even when the
    // cluster around it is partitioned.
    if let Some(ps) = &inner.peers {
        fields.push(("peers".to_owned(), ps.healthz_json()));
    }
    let body = Json::Obj(fields);
    Response::json(if ok { 200 } else { 503 }, body.to_string().into_bytes())
}

fn handle_version(inner: &Arc<Inner>, _req: &Request, _params: &Params) -> Response {
    let body = Json::Obj(vec![
        (
            "version".to_owned(),
            Json::Str(env!("CARGO_PKG_VERSION").to_owned()),
        ),
        // Wire-contract version: v1.2 added user programs (`/v1/programs`,
        // the tagged workload-ref object in sim/matrix requests — the
        // plain ref string stays as a one-release alias) on top of the
        // v1.1 plans/cancellation/listing surface.
        ("api".to_owned(), Json::Str("v1.2".to_owned())),
        ("store_format".to_owned(), Json::Str("UCSTOR03".to_owned())),
        (
            "features".to_owned(),
            Json::Obj(vec![
                ("observability".to_owned(), Json::Bool(ucsim_obs::ENABLED)),
                (
                    "fault_injection".to_owned(),
                    Json::Bool(cfg!(feature = "fault-injection")),
                ),
                (
                    "test_workloads".to_owned(),
                    Json::Bool(inner.cfg.enable_test_workloads),
                ),
                (
                    "durable_store".to_owned(),
                    Json::Bool(inner.cfg.durable_store),
                ),
                ("cluster".to_owned(), Json::Bool(inner.peers.is_some())),
                ("programs".to_owned(), Json::Bool(true)),
            ]),
        ),
    ]);
    Response::json(200, body.to_string().into_bytes())
}

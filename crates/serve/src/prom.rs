//! Prometheus text exposition (version 0.0.4) for the metrics document.
//!
//! [`render_prometheus`] mechanically flattens the same JSON document
//! that `GET /v1/metrics` serves — every numeric leaf at path
//! `a.b.c` becomes a `ucsim_a_b_c` series — so the JSON and Prometheus
//! forms cover the same counters *by construction*; there is no second
//! list of metrics to drift out of sync. The `latency_us` subtree is the
//! one special case: it renders as a native Prometheus histogram
//! (`ucsim_request_latency_us`) with an `endpoint` label, cumulative
//! `_bucket{le=...}` series, `+Inf`, `_sum`, and `_count`.

use std::fmt::Write as _;

use ucsim_model::json::Json;

/// Metric name prefix for every exported series.
const PREFIX: &str = "ucsim";

/// Leaf names whose series are monotonically non-decreasing over the
/// process lifetime (`# TYPE ... counter`); everything else is a gauge.
const COUNTER_LEAVES: &[&str] = &[
    "requests",
    "rejected_429",
    "jobs_executed",
    "jobs_failed",
    "jobs_deadline_exceeded",
    "workers_respawned",
    "write_errors",
    "hits",
    "misses",
    "coalesced",
    "insertions",
    "evictions",
    "uptime_us",
    // Peer-mode (federation) counters; configured/up/degraded/down in
    // the same section are point-in-time gauges and stay off this list.
    "forwarded",
    "failed_over",
    "probes",
    "pull_rounds",
    "pull_records",
];

/// Renders the metrics JSON document in Prometheus text format.
///
/// Non-numeric leaves (strings, booleans, nulls, arrays outside the
/// histogram subtree) are skipped; the metrics document has none today.
pub fn render_prometheus(doc: &Json) -> String {
    let mut out = String::new();
    let mut path: Vec<&str> = Vec::new();
    walk(doc, &mut path, &mut out);
    out
}

fn walk<'a>(node: &'a Json, path: &mut Vec<&'a str>, out: &mut String) {
    match node {
        Json::Obj(members) => {
            for (key, value) in members {
                if path.is_empty() && key == "latency_us" {
                    render_latency(value, out);
                    continue;
                }
                path.push(key.as_str());
                walk(value, path, out);
                path.pop();
            }
        }
        Json::Uint(v) => emit_scalar(path, &format_u64(*v), out),
        Json::Int(v) => emit_scalar(path, &v.to_string(), out),
        Json::Float(v) => emit_scalar(path, &format_f64(*v), out),
        // No strings/bools/arrays appear as numeric series.
        _ => {}
    }
}

fn metric_name(path: &[&str]) -> String {
    let mut name = String::from(PREFIX);
    for seg in path {
        name.push('_');
        name.push_str(seg);
    }
    name
}

fn emit_scalar(path: &[&str], value: &str, out: &mut String) {
    let name = metric_name(path);
    let kind = if path
        .last()
        .is_some_and(|leaf| COUNTER_LEAVES.contains(leaf))
    {
        "counter"
    } else {
        "gauge"
    };
    let _ = writeln!(out, "# TYPE {name} {kind}");
    let _ = writeln!(out, "{name} {value}");
}

/// Renders the `latency_us` subtree — one histogram per endpoint label.
fn render_latency(subtree: &Json, out: &mut String) {
    let Json::Obj(endpoints) = subtree else {
        return;
    };
    let name = format!("{PREFIX}_request_latency_us");
    let _ = writeln!(out, "# TYPE {name} histogram");
    for (endpoint, hist) in endpoints {
        let label = escape_label_value(endpoint);
        let bounds: Vec<u64> = match hist.get("bounds") {
            Some(Json::Arr(items)) => items.iter().filter_map(Json::as_u64).collect(),
            _ => continue,
        };
        let counts: Vec<u64> = match hist.get("counts") {
            Some(Json::Arr(items)) => items.iter().filter_map(Json::as_u64).collect(),
            _ => continue,
        };
        let total = hist.get("total").and_then(Json::as_u64).unwrap_or(0);
        let sum = hist.get("sum").and_then(Json::as_u64).unwrap_or(0);
        let mut cumulative = 0u64;
        for (bound, count) in bounds.iter().zip(&counts) {
            cumulative += count;
            let _ = writeln!(
                out,
                "{name}_bucket{{endpoint=\"{label}\",le=\"{bound}\"}} {cumulative}"
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{endpoint=\"{label}\",le=\"+Inf\"}} {total}"
        );
        let _ = writeln!(out, "{name}_sum{{endpoint=\"{label}\"}} {sum}");
        let _ = writeln!(out, "{name}_count{{endpoint=\"{label}\"}} {total}");
    }
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline.
fn escape_label_value(raw: &str) -> String {
    let mut esc = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => esc.push_str("\\\\"),
            '"' => esc.push_str("\\\""),
            '\n' => esc.push_str("\\n"),
            other => esc.push(other),
        }
    }
    esc
}

fn format_u64(v: u64) -> String {
    v.to_string()
}

/// Prometheus floats: plain decimal; make integral floats explicit so
/// `1` and `1.0` don't flip-flop between scrapes.
fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.is_finite() {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> Json {
        Json::parse(
            r#"{
              "uptime_us": 123,
              "requests": 4,
              "queue": {"depth": 1, "capacity": 8, "rejected_429": 0},
              "workers": {"count": 2, "utilization": 0.25},
              "latency_us": {
                "GET /v1/metrics": {
                  "bounds": [100, 500],
                  "counts": [2, 1, 1],
                  "total": 4,
                  "sum": 900,
                  "mean": 225.0
                }
              }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn scalars_flatten_with_types() {
        let text = render_prometheus(&sample_doc());
        assert!(text.contains("# TYPE ucsim_uptime_us counter"), "{text}");
        assert!(text.contains("ucsim_uptime_us 123\n"), "{text}");
        assert!(text.contains("# TYPE ucsim_queue_depth gauge"), "{text}");
        assert!(text.contains("ucsim_queue_depth 1\n"), "{text}");
        assert!(text.contains("ucsim_queue_rejected_429 0\n"), "{text}");
        assert!(text.contains("ucsim_workers_utilization 0.25\n"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let text = render_prometheus(&sample_doc());
        let label = "endpoint=\"GET /v1/metrics\"";
        assert!(
            text.contains(&format!(
                "ucsim_request_latency_us_bucket{{{label},le=\"100\"}} 2"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "ucsim_request_latency_us_bucket{{{label},le=\"500\"}} 3"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "ucsim_request_latency_us_bucket{{{label},le=\"+Inf\"}} 4"
            )),
            "{text}"
        );
        assert!(
            text.contains(&format!("ucsim_request_latency_us_sum{{{label}}} 900")),
            "{text}"
        );
        assert!(
            text.contains(&format!("ucsim_request_latency_us_count{{{label}}} 4")),
            "{text}"
        );
        assert!(
            text.contains("# TYPE ucsim_request_latency_us histogram"),
            "{text}"
        );
    }

    #[test]
    fn every_numeric_leaf_is_exported() {
        let doc = sample_doc();
        let text = render_prometheus(&doc);
        fn check(node: &Json, path: &mut Vec<String>, text: &str) {
            match node {
                Json::Obj(members) => {
                    for (k, v) in members {
                        if path.is_empty() && k == "latency_us" {
                            continue; // histogram special case, checked above
                        }
                        path.push(k.clone());
                        check(v, path, text);
                        path.pop();
                    }
                }
                Json::Uint(_) | Json::Int(_) | Json::Float(_) => {
                    let name = format!("ucsim_{}", path.join("_"));
                    assert!(
                        text.contains(&format!("\n{name} "))
                            || text.starts_with(&format!("{name} ")),
                        "missing series {name} in:\n{text}"
                    );
                }
                _ => {}
            }
        }
        check(&doc, &mut Vec::new(), &text);
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn float_formatting_is_stable() {
        assert_eq!(format_f64(1.0), "1.0");
        assert_eq!(format_f64(0.25), "0.25");
        assert_eq!(format_f64(0.0), "0.0");
    }
}

//! A deliberately small HTTP/1.1 layer over blocking TCP streams.
//!
//! Persistent connections with `Content-Length` framing: a
//! [`HttpConn`] reads any number of requests off one socket (keep-alive)
//! until the peer closes, asks for `Connection: close`, or the idle
//! timeout passes. Bounded header and body sizes, and only what the job
//! API needs — not a general web server, a wire format for the job
//! service.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Read timeout once a request has started arriving (slow peers are cut
/// off rather than pinning a handler thread).
const REQUEST_READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Poll granularity while waiting for the next request on an idle
/// kept-alive connection (each wake checks the caller's stop condition).
const IDLE_POLL: Duration = Duration::from_millis(200);

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string (`/v1/sim`).
    pub path: String,
    /// Raw query string, if any (without the `?`).
    pub query: Option<String>,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Request correlation id: the client's `X-Request-Id` header, or a
    /// server-generated id. Assigned at the connection edge (empty until
    /// then) and echoed on every response.
    pub request_id: String,
}

impl Request {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the client asked for the connection to be closed after
    /// this response (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// The body as UTF-8, or an error suitable for a 400.
    ///
    /// # Errors
    ///
    /// Returns a message when the body is not valid UTF-8.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not valid UTF-8".to_owned())
    }
}

/// A complete response ready to write: status, extra headers, JSON body.
///
/// Handlers build one of these and return it; the connection layer owns
/// the wire framing (`Content-Length`, `Connection`), so every endpoint
/// is keep-alive-correct by construction.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the standard framing set.
    pub headers: Vec<(&'static str, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` header value for the body.
    pub content_type: &'static str,
}

impl Response {
    /// A JSON response with no extra headers.
    pub fn json(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body,
            content_type: "application/json",
        }
    }

    /// A plain-text response (Prometheus exposition format).
    pub fn text(status: u16, body: Vec<u8>) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body,
            content_type: "text/plain; version=0.0.4",
        }
    }

    /// Adds an extra header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: String) -> Response {
        self.headers.push((name, value));
        self
    }
}

/// What [`HttpConn::read_request`] produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A syntactically complete request.
    Request(Request),
    /// The peer closed (or went idle past the deadline) between requests;
    /// close quietly.
    Closed,
    /// The caller's stop condition fired while idle; close quietly.
    Stopped,
    /// A malformed or oversized request; answer 400 and close.
    Malformed(String),
}

/// One server-side connection: a buffered reader for request parsing plus
/// the raw stream for response writes. Lives for the whole keep-alive
/// exchange.
pub struct HttpConn {
    reader: BufReader<TcpStream>,
}

impl HttpConn {
    /// Wraps an accepted stream.
    pub fn new(stream: TcpStream) -> HttpConn {
        HttpConn {
            reader: BufReader::new(stream),
        }
    }

    /// Waits up to `idle` for the next request to start arriving, polling
    /// `stop` between short waits, then reads and parses it.
    ///
    /// # Errors
    ///
    /// Propagates unexpected socket errors; expected end-of-connection
    /// conditions come back as [`ReadOutcome`] variants instead.
    pub fn read_request(
        &mut self,
        idle: Duration,
        stop: &dyn Fn() -> bool,
    ) -> io::Result<ReadOutcome> {
        // Phase 1: idle-wait for the first byte without consuming it, so
        // a timeout here never tears a partially-read request.
        let deadline = Instant::now() + idle;
        loop {
            if stop() {
                return Ok(ReadOutcome::Stopped);
            }
            self.reader.get_ref().set_read_timeout(Some(IDLE_POLL))?;
            match self.reader.fill_buf() {
                Ok([]) => return Ok(ReadOutcome::Closed),
                Ok(_) => break,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if Instant::now() >= deadline {
                        return Ok(ReadOutcome::Closed);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionReset => {
                    return Ok(ReadOutcome::Closed)
                }
                Err(e) => return Err(e),
            }
        }
        // Phase 2: the request is arriving; parse it under a hard
        // per-request timeout. The parse span starts here (after the
        // first byte) so idle keep-alive waits are not counted.
        let parse_span = ucsim_obs::span(ucsim_obs::SpanKind::Parse);
        self.reader
            .get_ref()
            .set_read_timeout(Some(REQUEST_READ_TIMEOUT))?;
        match self.parse_request() {
            Ok(out) => {
                if matches!(out, ReadOutcome::Request(_)) {
                    parse_span.finish(0);
                }
                Ok(out)
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                Ok(ReadOutcome::Malformed("request read timed out".to_owned()))
            }
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => Ok(ReadOutcome::Closed),
            Err(e) => Err(e),
        }
    }

    fn parse_request(&mut self) -> io::Result<ReadOutcome> {
        let r = &mut self.reader;
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Ok(ReadOutcome::Closed);
        }
        let mut parts = line.split_whitespace();
        let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
            return Ok(ReadOutcome::Malformed("malformed request line".to_owned()));
        };
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
            None => (target.to_owned(), None),
        };
        let method = method.to_uppercase();

        let mut headers = Vec::new();
        let mut head_bytes = line.len();
        loop {
            let mut h = String::new();
            if r.read_line(&mut h)? == 0 {
                return Ok(ReadOutcome::Malformed(
                    "connection closed mid-headers".to_owned(),
                ));
            }
            head_bytes += h.len();
            if head_bytes > MAX_HEAD_BYTES {
                return Ok(ReadOutcome::Malformed("request head too large".to_owned()));
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                headers.push((k.trim().to_lowercase(), v.trim().to_owned()));
            }
        }

        let len = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        if len > MAX_BODY_BYTES {
            return Ok(ReadOutcome::Malformed("request body too large".to_owned()));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        Ok(ReadOutcome::Request(Request {
            method,
            path,
            query,
            headers,
            body,
            request_id: String::new(),
        }))
    }

    /// Writes a complete response and flushes. `close` controls the
    /// `Connection` header — the caller decides keep-alive vs close and
    /// must actually drop the connection when it said it would.
    ///
    /// # Errors
    ///
    /// Propagates stream I/O errors.
    pub fn respond(&mut self, resp: &Response, close: bool) -> io::Result<()> {
        let reason = reason_phrase(resp.status);
        let connection = if close { "close" } else { "keep-alive" };
        let mut head = format!(
            "HTTP/1.1 {} {reason}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: {connection}\r\n",
            resp.status,
            resp.content_type,
            resp.body.len()
        );
        for (k, v) in &resp.headers {
            head.push_str(k);
            head.push_str(": ");
            head.push_str(v);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(&resp.body)?;
        stream.flush()
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn never() -> bool {
        false
    }

    fn roundtrip(raw: &str) -> ReadOutcome {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_owned();
        let h = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(raw.as_bytes()).unwrap();
        });
        let (s, _) = listener.accept().unwrap();
        let mut conn = HttpConn::new(s);
        let out = conn.read_request(Duration::from_secs(2), &never).unwrap();
        h.join().unwrap();
        out
    }

    fn expect_request(out: ReadOutcome) -> Request {
        match out {
            ReadOutcome::Request(r) => r,
            other => panic!("expected a request, got {other:?}"),
        }
    }

    #[test]
    fn parses_post_with_body() {
        let req = expect_request(roundtrip(
            "POST /v1/sim?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody",
        ));
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sim");
        assert_eq!(req.query.as_deref(), Some("x=1"));
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body_utf8().unwrap(), "body");
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_get_without_body() {
        let req = expect_request(roundtrip(
            "GET /v1/metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
        ));
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/metrics");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn rejects_malformed_request_line() {
        assert!(matches!(
            roundtrip("NONSENSE\r\n\r\n"),
            ReadOutcome::Malformed(_)
        ));
    }

    #[test]
    fn empty_connection_yields_closed() {
        assert!(matches!(roundtrip(""), ReadOutcome::Closed));
    }

    #[test]
    fn two_requests_arrive_over_one_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap();
            c
        });
        let (s, _) = listener.accept().unwrap();
        let mut conn = HttpConn::new(s);
        let a = expect_request(conn.read_request(Duration::from_secs(2), &never).unwrap());
        assert_eq!(a.path, "/a");
        conn.respond(&Response::json(200, b"{}".to_vec()), false)
            .unwrap();
        let b = expect_request(conn.read_request(Duration::from_secs(2), &never).unwrap());
        assert_eq!(b.path, "/b");
        assert!(b.wants_close());
        let _ = h.join().unwrap();
    }

    #[test]
    fn stop_condition_ends_an_idle_wait() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let c = TcpStream::connect(addr).unwrap();
            std::thread::sleep(Duration::from_millis(800));
            drop(c);
        });
        let (s, _) = listener.accept().unwrap();
        let mut conn = HttpConn::new(s);
        let out = conn
            .read_request(Duration::from_secs(30), &|| true)
            .unwrap();
        assert!(matches!(out, ReadOutcome::Stopped));
        h.join().unwrap();
    }
}

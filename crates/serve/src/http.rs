//! A deliberately small HTTP/1.1 layer over blocking TCP streams.
//!
//! One request per connection (`Connection: close`), bounded header and
//! body sizes, and only what the job API needs: request line, headers,
//! `Content-Length` bodies, and a response writer. Not a general web
//! server — a wire format for the job service.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a request body.
const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without the query string (`/v1/sim`).
    pub path: String,
    /// Raw query string, if any (without the `?`).
    pub query: Option<String>,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or an error suitable for a 400.
    ///
    /// # Errors
    ///
    /// Returns a message when the body is not valid UTF-8.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not valid UTF-8".to_owned())
    }

    /// Reads and parses one request from a stream.
    ///
    /// # Errors
    ///
    /// `Ok(None)` when the peer closed without sending anything;
    /// `Err(msg)` for malformed or oversized requests (respond 400).
    pub fn read(stream: &mut TcpStream) -> io::Result<Option<Result<Request, String>>> {
        let mut r = BufReader::new(stream);
        let mut line = String::new();
        if r.read_line(&mut line)? == 0 {
            return Ok(None);
        }
        let mut parts = line.split_whitespace();
        let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
            return Ok(Some(Err("malformed request line".to_owned())));
        };
        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_owned(), Some(q.to_owned())),
            None => (target.to_owned(), None),
        };
        let method = method.to_uppercase();

        let mut headers = Vec::new();
        let mut head_bytes = line.len();
        loop {
            let mut h = String::new();
            if r.read_line(&mut h)? == 0 {
                return Ok(Some(Err("connection closed mid-headers".to_owned())));
            }
            head_bytes += h.len();
            if head_bytes > MAX_HEAD_BYTES {
                return Ok(Some(Err("request head too large".to_owned())));
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                headers.push((k.trim().to_lowercase(), v.trim().to_owned()));
            }
        }

        let len = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        if len > MAX_BODY_BYTES {
            return Ok(Some(Err("request body too large".to_owned())));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        Ok(Some(Ok(Request {
            method,
            path,
            query,
            headers,
            body,
        })))
    }
}

/// Writes a complete JSON response and flushes.
///
/// # Errors
///
/// Propagates stream I/O errors.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
) -> io::Result<()> {
    let reason = reason_phrase(status);
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &str) -> Option<Result<Request, String>> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_owned();
        let h = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(raw.as_bytes()).unwrap();
        });
        let (mut s, _) = listener.accept().unwrap();
        let req = Request::read(&mut s).unwrap();
        h.join().unwrap();
        req
    }

    #[test]
    fn parses_post_with_body() {
        let req =
            roundtrip("POST /v1/sim?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nbody")
                .unwrap()
                .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/sim");
        assert_eq!(req.query.as_deref(), Some("x=1"));
        assert_eq!(req.header("host"), Some("h"));
        assert_eq!(req.body_utf8().unwrap(), "body");
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip("GET /v1/metrics HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/metrics");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_request_line() {
        assert!(roundtrip("NONSENSE\r\n\r\n").unwrap().is_err());
    }

    #[test]
    fn empty_connection_yields_none() {
        assert!(roundtrip("").is_none());
    }
}

//! Content-addressed in-memory result cache with an LRU byte budget.
//!
//! Keys are FNV-1a hashes of a job's canonical JSON encoding
//! ([`crate::api::JobSpec::canonical`]); the full canonical string is
//! stored alongside each entry and compared on lookup, so a (vanishingly
//! unlikely) 64-bit hash collision degrades to a miss instead of serving
//! the wrong report. Values are the pre-encoded report JSON payloads.
//!
//! Simulations are deterministic (DESIGN.md §6), so entries never expire —
//! they are only evicted when the byte budget forces it, least recently
//! used first.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::sync::Mutex;

/// Cache counters, as exposed by `GET /v1/metrics`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Resident entries.
    pub entries: usize,
    /// Bytes held by resident payloads (+ canonical keys).
    pub bytes: usize,
    /// The configured byte budget.
    pub budget: usize,
    /// Lookups served from the cache, *including* requests coalesced onto
    /// an in-flight job for the same key — either way, no new simulation
    /// ran.
    pub hits: u64,
    /// Of the hits, how many were coalesced joins rather than resident
    /// entries.
    pub coalesced: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
}

struct Entry {
    canonical: String,
    payload: Arc<String>,
    tick: u64,
}

struct Inner {
    map: HashMap<u64, Entry>,
    /// LRU order: access tick → key hash. Ticks are unique (monotonic
    /// counter), so this is a total order.
    lru: BTreeMap<u64, u64>,
    tick: u64,
    bytes: usize,
    stats: CacheStats,
}

/// The content-addressed result cache. All methods take `&self`; a single
/// internal mutex serializes access.
pub struct ResultCache {
    inner: Mutex<Inner>,
    budget: usize,
}

impl ResultCache {
    /// Creates a cache bounded to roughly `budget` bytes of payload.
    pub fn new(budget: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                lru: BTreeMap::new(),
                tick: 0,
                bytes: 0,
                stats: CacheStats {
                    budget,
                    ..CacheStats::default()
                },
            }),
            budget,
        }
    }

    /// Looks up `hash`, verifying `canonical` matches. Counts a hit or
    /// miss and refreshes recency on hit.
    pub fn get(&self, hash: u64, canonical: &str) -> Option<Arc<String>> {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(&hash) {
            Some(e) if e.canonical == canonical => {
                let old = std::mem::replace(&mut e.tick, tick);
                let payload = Arc::clone(&e.payload);
                inner.lru.remove(&old);
                inner.lru.insert(tick, hash);
                inner.stats.hits += 1;
                Some(payload)
            }
            _ => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a payload, evicting least-recently-used entries until the
    /// byte budget holds. A payload larger than the whole budget is not
    /// cached at all.
    pub fn put(&self, hash: u64, canonical: String, payload: Arc<String>) {
        let cost = payload.len() + canonical.len();
        if cost > self.budget {
            return;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(prev) = inner.map.remove(&hash) {
            inner.lru.remove(&prev.tick);
            inner.bytes -= prev.payload.len() + prev.canonical.len();
        }
        while inner.bytes + cost > self.budget {
            let Some((&tick, &victim)) = inner.lru.iter().next() else {
                break;
            };
            inner.lru.remove(&tick);
            let e = inner.map.remove(&victim).expect("lru entry resident");
            inner.bytes -= e.payload.len() + e.canonical.len();
            inner.stats.evictions += 1;
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.lru.insert(tick, hash);
        inner.map.insert(
            hash,
            Entry {
                canonical,
                payload,
                tick,
            },
        );
        inner.bytes += cost;
        inner.stats.insertions += 1;
    }

    /// Records a request that attached to an in-flight job for the same
    /// key: no resident entry, but no new simulation either. Counted as a
    /// hit (and separately as `coalesced`).
    pub fn record_coalesced(&self) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.stats.hits += 1;
        inner.stats.coalesced += 1;
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache lock");
        CacheStats {
            entries: inner.map.len(),
            bytes: inner.bytes,
            ..inner.stats
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(s: &str) -> Arc<String> {
        Arc::new(s.to_owned())
    }

    #[test]
    fn get_after_put_hits() {
        let c = ResultCache::new(1024);
        assert!(c.get(1, "k1").is_none());
        c.put(1, "k1".into(), payload("v1"));
        assert_eq!(c.get(1, "k1").unwrap().as_str(), "v1");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn hash_collision_with_different_canonical_is_a_miss() {
        let c = ResultCache::new(1024);
        c.put(1, "k1".into(), payload("v1"));
        assert!(c.get(1, "other-canonical").is_none());
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn byte_budget_evicts_lru_first() {
        // Each entry costs payload + canonical = 4 bytes; budget fits two.
        let c = ResultCache::new(9);
        c.put(1, "k1".into(), payload("v1"));
        c.put(2, "k2".into(), payload("v2"));
        assert!(c.get(1, "k1").is_some()); // 1 is now most recent
        c.put(3, "k3".into(), payload("v3")); // evicts 2
        assert!(c.get(2, "k2").is_none());
        assert!(c.get(1, "k1").is_some());
        assert!(c.get(3, "k3").is_some());
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        assert!(s.bytes <= s.budget);
    }

    #[test]
    fn oversized_payload_is_not_cached() {
        let c = ResultCache::new(4);
        c.put(1, "k1".into(), payload("way too large"));
        assert!(c.get(1, "k1").is_none());
        assert_eq!(c.stats().insertions, 0);
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let c = ResultCache::new(64);
        c.put(1, "k1".into(), payload("aa"));
        c.put(1, "k1".into(), payload("bbbb"));
        let s = c.stats();
        assert_eq!(s.entries, 1);
        assert_eq!(s.bytes, "k1".len() + "bbbb".len());
        assert_eq!(c.get(1, "k1").unwrap().as_str(), "bbbb");
    }

    #[test]
    fn coalesced_counts_as_hit() {
        let c = ResultCache::new(64);
        c.record_coalesced();
        c.record_coalesced();
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.coalesced, 2);
        assert_eq!(s.misses, 0);
    }
}

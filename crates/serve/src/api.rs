//! The typed job API: request parsing, canonicalization, and response
//! envelopes.
//!
//! A `POST /v1/sim` body is a [`SimRequest`]. The server normalizes it
//! into a [`JobSpec`] — workload name, effective seed, and the complete
//! [`SimConfig`] with run lengths folded in — whose canonical JSON
//! encoding is the identity of the job: equal specs hash to the same
//! content address and are simulated at most once.

use ucsim_model::json::{Json, JsonError};
use ucsim_model::{FromJson, ToJson};
use ucsim_pipeline::{SimConfig, SimReport};

/// A `POST /v1/sim` request body.
///
/// Everything except `workload` is optional; omitted fields fall back to
/// the paper's Table I configuration and the workload's default seed.
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct SimRequest {
    /// Table II workload name (e.g. `"redis"`, `"bm-lla"`).
    pub workload: String,
    /// Full simulator configuration; defaults to `SimConfig::table1()`.
    pub config: Option<SimConfig>,
    /// Workload generation seed; defaults to the profile's own seed.
    pub seed: Option<u64>,
    /// Warmup instructions; overrides `config.warmup_insts` when present.
    pub warmup: Option<u64>,
    /// Measured instructions; overrides `config.measure_insts` when
    /// present.
    pub insts: Option<u64>,
    /// When `true` the server replies `202 Accepted` with a job id for
    /// `GET /v1/jobs/:id` polling instead of blocking until completion.
    pub background: Option<bool>,
}

/// The canonical, fully-resolved identity of a simulation job.
///
/// Field order matters: derived `ToJson` encodes members in declaration
/// order, making [`JobSpec::canonical`] a stable content address.
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct JobSpec {
    /// Workload name.
    pub workload: String,
    /// Effective generation seed.
    pub seed: u64,
    /// Complete configuration, run lengths included.
    pub config: SimConfig,
}

impl SimRequest {
    /// Parses a request body.
    ///
    /// # Errors
    ///
    /// Returns the JSON parse/decode error for malformed bodies.
    pub fn parse(body: &str) -> Result<Self, JsonError> {
        SimRequest::from_json_str(body)
    }

    /// Resolves defaults into the canonical [`JobSpec`].
    pub fn resolve(&self, default_seed: u64) -> JobSpec {
        let mut config = self.config.clone().unwrap_or_default();
        if let Some(w) = self.warmup {
            config.warmup_insts = w;
        }
        if let Some(n) = self.insts {
            config.measure_insts = n;
        }
        JobSpec {
            workload: self.workload.clone(),
            seed: self.seed.unwrap_or(default_seed),
            config,
        }
    }
}

impl JobSpec {
    /// The canonical encoding — the string whose hash content-addresses
    /// the job.
    pub fn canonical(&self) -> String {
        self.to_json_string()
    }
}

/// FNV-1a 64-bit hash of the canonical encoding.
pub fn content_hash(canonical: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canonical.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Formats a content hash as the wire-visible cache key.
pub fn format_key(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Builds the response envelope `{"key":…,"cached":…,"report":…}` around
/// a pre-encoded report payload.
///
/// The report payload is stored once (in the cache / job result) and
/// spliced in verbatim, so every response carrying the same report is
/// byte-identical modulo the `cached` flag.
pub fn envelope(hash: u64, cached: bool, report_json: &str) -> Vec<u8> {
    let mut out = String::with_capacity(report_json.len() + 64);
    out.push_str("{\"key\":\"");
    out.push_str(&format_key(hash));
    out.push_str("\",\"cached\":");
    out.push_str(if cached { "true" } else { "false" });
    out.push_str(",\"report\":");
    out.push_str(report_json);
    out.push('}');
    out.into_bytes()
}

/// Encodes a report as its canonical JSON payload.
pub fn encode_report(report: &SimReport) -> String {
    report.to_json_string()
}

/// Builds an error body `{"error": …}`.
pub fn error_body(msg: &str) -> Vec<u8> {
    Json::Obj(vec![("error".to_owned(), Json::Str(msg.to_owned()))])
        .to_string()
        .into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_parses_and_resolves() {
        let r = SimRequest::parse(r#"{"workload":"redis"}"#).unwrap();
        assert_eq!(r.workload, "redis");
        assert!(r.config.is_none());
        let spec = r.resolve(7);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.config.warmup_insts, SimConfig::table1().warmup_insts);
    }

    #[test]
    fn overrides_fold_into_spec() {
        let r =
            SimRequest::parse(r#"{"workload":"redis","seed":9,"warmup":100,"insts":200}"#).unwrap();
        let spec = r.resolve(7);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.config.warmup_insts, 100);
        assert_eq!(spec.config.measure_insts, 200);
    }

    #[test]
    fn canonical_encoding_is_stable() {
        let r = SimRequest::parse(r#"{"workload":"redis","seed":1}"#).unwrap();
        let a = r.resolve(0).canonical();
        let b = r.resolve(0).canonical();
        assert_eq!(a, b);
        // Round-trips through the wire format to the same canonical form.
        let back = JobSpec::from_json_str(&a).unwrap();
        assert_eq!(back.canonical(), a);
    }

    #[test]
    fn distinct_specs_hash_distinctly() {
        let base = SimRequest::parse(r#"{"workload":"redis"}"#).unwrap();
        let a = base.resolve(1).canonical();
        let b = base.resolve(2).canonical();
        assert_ne!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn envelope_splices_verbatim() {
        let body = envelope(0xabc, true, "{\"upc\":1.5}");
        let text = String::from_utf8(body).unwrap();
        assert_eq!(
            text,
            "{\"key\":\"0000000000000abc\",\"cached\":true,\"report\":{\"upc\":1.5}}"
        );
    }

    #[test]
    fn malformed_body_is_an_error() {
        assert!(SimRequest::parse("{\"workload\":").is_err());
        assert!(SimRequest::parse("{}").is_err()); // workload required
    }
}

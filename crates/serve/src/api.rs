//! The typed job API: request parsing, canonicalization, and response
//! envelopes.
//!
//! A `POST /v1/sim` body is a [`SimRequest`]. The server normalizes it
//! into a [`JobSpec`] — workload name, effective seed, and the complete
//! [`SimConfig`] with run lengths folded in — whose canonical JSON
//! encoding is the identity of the job: equal specs hash to the same
//! content address and are simulated at most once.

use ucsim_model::json::{Json, JsonError};
use ucsim_model::{FailureKind, FromJson, ToJson, WorkloadRef};
use ucsim_pipeline::{SimConfig, SimReport};
use ucsim_trace::{TraceKey, WorkloadProfile};

use crate::http::Response;

/// A `POST /v1/sim` request body.
///
/// Everything except `workload` is optional; omitted fields fall back to
/// the paper's Table I configuration and the workload's default seed.
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct SimRequest {
    /// Workload reference, normalized at parse: a Table II profile name
    /// (e.g. `"redis"`), an uploaded-program ref (`program:<id>` /
    /// `trace:<id>`), or — since v1.2 — the tagged-object form
    /// `{"profile":…}` / `{"program":…}` / `{"trace":…}`.
    pub workload: String,
    /// Full simulator configuration; defaults to `SimConfig::table1()`.
    pub config: Option<SimConfig>,
    /// Workload generation seed; defaults to the profile's own seed.
    pub seed: Option<u64>,
    /// Warmup instructions; overrides `config.warmup_insts` when present.
    pub warmup: Option<u64>,
    /// Measured instructions; overrides `config.measure_insts` when
    /// present.
    pub insts: Option<u64>,
    /// When `true` the server replies `202 Accepted` with a job id for
    /// `GET /v1/jobs/:id` polling instead of blocking until completion.
    pub background: Option<bool>,
    /// Fair-share tenant the job is charged to; defaults to `"default"`.
    /// Scheduling identity only — never part of the content address.
    pub tenant: Option<String>,
    /// Scheduling priority within the tenant (higher first; default 0).
    pub priority: Option<u64>,
}

/// The canonical, fully-resolved identity of a simulation job.
///
/// Field order matters: derived `ToJson` encodes members in declaration
/// order, making [`JobSpec::canonical`] a stable content address.
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct JobSpec {
    /// Workload name.
    pub workload: String,
    /// Effective generation seed.
    pub seed: u64,
    /// Complete configuration, run lengths included.
    pub config: SimConfig,
}

/// Normalizes one wire `workload` member — a ref string or the v1.2
/// tagged object — into the canonical ref-string spelling, so both
/// spellings produce the same [`JobSpec::canonical`] content address.
fn normalize_workload_member(v: &Json) -> Result<Json, JsonError> {
    let wref = WorkloadRef::from_json(v).map_err(JsonError::new)?;
    Ok(Json::Str(wref.to_ref_string()))
}

impl SimRequest {
    /// Parses a request body, normalizing the `workload` member (string
    /// or tagged object) to its canonical ref-string form.
    ///
    /// # Errors
    ///
    /// Returns the JSON parse/decode error for malformed bodies.
    pub fn parse(body: &str) -> Result<Self, JsonError> {
        let mut doc = Json::parse(body)?;
        if let Json::Obj(members) = &mut doc {
            for (k, v) in members.iter_mut() {
                if k == "workload" {
                    *v = normalize_workload_member(v)?;
                }
            }
        }
        SimRequest::from_json(&doc)
    }

    /// Resolves defaults into the canonical [`JobSpec`].
    pub fn resolve(&self, default_seed: u64) -> JobSpec {
        let mut config = self.config.clone().unwrap_or_default();
        if let Some(w) = self.warmup {
            config.warmup_insts = w;
        }
        if let Some(n) = self.insts {
            config.measure_insts = n;
        }
        JobSpec {
            workload: self.workload.clone(),
            seed: self.seed.unwrap_or(default_seed),
            config,
        }
    }
}

impl JobSpec {
    /// The canonical encoding — the string whose hash content-addresses
    /// the job.
    pub fn canonical(&self) -> String {
        self.to_json_string()
    }

    /// The recorded-stream identity this job consumes: every spec with
    /// the same workload, seed and run length replays one shared trace,
    /// however its front-end configuration differs.
    pub fn trace_key(&self) -> TraceKey {
        TraceKey {
            workload: self.workload.clone(),
            seed: self.seed,
            insts: self.config.warmup_insts + self.config.measure_insts,
        }
    }
}

/// A `POST /v1/matrix` request body: a workload set crossed with
/// uop-cache capacities × entry-construction policies — the axes of the
/// paper's headline sweeps (Figs. 9–13) and of `run_matrix` offline.
///
/// Omitted axes fall back to the paper's defaults: the full Table I
/// capacity sweep and the baseline policy.
#[derive(Debug, Clone, ToJson, FromJson)]
pub struct MatrixRequest {
    /// Workload refs (profile names, `program:<id>` / `trace:<id>`, or
    /// v1.2 tagged objects — normalized at parse); each cell simulates
    /// one of these.
    pub workloads: Vec<String>,
    /// Capacity axis in uops; defaults to Table I (2048 … 65536).
    pub capacities: Option<Vec<u64>>,
    /// Policy axis (`"baseline"`, `"clasp"`, `"rac"`, `"pwac"`,
    /// `"fpwac"`); defaults to `["baseline"]`.
    pub policies: Option<Vec<String>>,
    /// Compacted entries per line for RAC/PWAC/F-PWAC (default 2).
    pub max_entries: Option<u32>,
    /// Generation seed applied to every cell; defaults to each
    /// workload's own profile seed.
    pub seed: Option<u64>,
    /// Warmup instructions per cell.
    pub warmup: Option<u64>,
    /// Measured instructions per cell.
    pub insts: Option<u64>,
    /// Fair-share tenant the plan's cells are charged to; defaults to
    /// `"default"`. Tenant weights are server configuration.
    pub tenant: Option<String>,
    /// Scheduling priority within the tenant (higher first); default 0.
    pub priority: Option<u64>,
    /// Plan mode: `"full"` (default — simulate the whole cross) or
    /// `{"adaptive":{"axis":"capacity","tolerance":0.05}}` (bisect the
    /// capacity axis to the UPC knee). Parsed by [`SweepMode::parse`].
    pub mode: Option<Json>,
}

impl MatrixRequest {
    /// Parses a request body, normalizing each `workloads` entry (string
    /// or tagged object) to its canonical ref-string form.
    ///
    /// # Errors
    ///
    /// Returns the JSON parse/decode error for malformed bodies.
    pub fn parse(body: &str) -> Result<Self, JsonError> {
        let mut doc = Json::parse(body)?;
        if let Json::Obj(members) = &mut doc {
            for (k, v) in members.iter_mut() {
                if k != "workloads" {
                    continue;
                }
                if let Json::Arr(items) = v {
                    for item in items.iter_mut() {
                        *item = normalize_workload_member(item)?;
                    }
                }
            }
        }
        MatrixRequest::from_json(&doc)
    }
}

/// How a sweep plan covers its grid.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepMode {
    /// Simulate every cell of the capacity × policy cross.
    Full,
    /// Bisect the capacity axis until the UPC knee is bracketed within
    /// `tolerance`, simulating only the probed capacities.
    Adaptive {
        /// The refined axis; only `"capacity"` is supported.
        axis: String,
        /// Relative knee tolerance in `[0, 1)` (0.05 ⇒ knee at 95 % of
        /// the largest capacity's geomean UPC).
        tolerance: f64,
    },
}

impl SweepMode {
    /// The default adaptive tolerance when the request omits it.
    pub const DEFAULT_TOLERANCE: f64 = 0.05;

    /// Parses the wire `mode` member: absent or `"full"` →
    /// [`SweepMode::Full`]; `{"adaptive":{"axis"?,"tolerance"?}}` →
    /// [`SweepMode::Adaptive`] with defaults `axis:"capacity"`,
    /// `tolerance:0.05`.
    ///
    /// # Errors
    ///
    /// A human-readable message for the `bad_request` envelope.
    pub fn parse(mode: Option<&Json>) -> Result<SweepMode, String> {
        let Some(mode) = mode else {
            return Ok(SweepMode::Full);
        };
        if mode.as_str() == Some("full") {
            return Ok(SweepMode::Full);
        }
        if let Some(adaptive) = mode.get("adaptive") {
            let axis = match adaptive.get("axis") {
                None => "capacity".to_owned(),
                Some(a) => a
                    .as_str()
                    .ok_or("mode.adaptive.axis must be a string")?
                    .to_owned(),
            };
            if axis != "capacity" {
                return Err(format!(
                    "mode.adaptive.axis {axis:?} unsupported; only \"capacity\" can be refined"
                ));
            }
            let tolerance = match adaptive.get("tolerance") {
                None => Self::DEFAULT_TOLERANCE,
                Some(t) => t
                    .as_f64()
                    .ok_or("mode.adaptive.tolerance must be a number")?,
            };
            if !(0.0..1.0).contains(&tolerance) {
                return Err(format!(
                    "mode.adaptive.tolerance {tolerance} out of range [0, 1)"
                ));
            }
            return Ok(SweepMode::Adaptive { axis, tolerance });
        }
        if mode.get("full").is_some() {
            return Ok(SweepMode::Full);
        }
        Err("mode must be \"full\" or {\"adaptive\":{…}}".to_owned())
    }
}

/// Parses the `test-sleep:<ms>` pseudo-workload name (integration tests
/// use it to hold workers busy deterministically).
pub fn test_sleep_ms(workload: &str) -> Option<u64> {
    workload.strip_prefix("test-sleep:")?.parse().ok()
}

/// True for the `test-panic` pseudo-workload (integration tests use it
/// to exercise the worker-panic failure path deterministically).
pub fn test_panic(workload: &str) -> bool {
    workload == "test-panic"
}

/// True when `workload` names something the server can run.
pub fn workload_known(workload: &str, test_workloads: bool) -> bool {
    (test_workloads && (test_sleep_ms(workload).is_some() || test_panic(workload)))
        || WorkloadProfile::by_name(workload).is_some()
}

/// The seed a request for `workload` defaults to: the profile's own seed
/// (0 for test pseudo-workloads). Uploaded-program refs default to the
/// program's content hash — every program gets its own layout without
/// the client choosing anything — and trace refs to 0 (a recorded trace
/// replays verbatim; the seed never reaches it).
pub fn default_seed(workload: &str) -> u64 {
    match WorkloadRef::parse(workload) {
        Ok(WorkloadRef::Program(h)) => h,
        Ok(WorkloadRef::Trace(_)) => 0,
        _ => WorkloadProfile::by_name(workload).map_or(0, |p| p.seed),
    }
}

/// FNV-1a 64-bit hash over raw bytes (also the store's record checksum).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit hash of the canonical encoding.
pub fn content_hash(canonical: &str) -> u64 {
    fnv1a(canonical.as_bytes())
}

/// Formats a content hash as the wire-visible cache key.
pub fn format_key(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Builds the response envelope `{"key":…,"cached":…,"report":…}` around
/// a pre-encoded report payload.
///
/// The report payload is stored once (in the cache / job result) and
/// spliced in verbatim, so every response carrying the same report is
/// byte-identical modulo the `cached` flag.
pub fn envelope(hash: u64, cached: bool, report_json: &str) -> Vec<u8> {
    let mut out = String::with_capacity(report_json.len() + 64);
    out.push_str("{\"key\":\"");
    out.push_str(&format_key(hash));
    out.push_str("\",\"cached\":");
    out.push_str(if cached { "true" } else { "false" });
    out.push_str(",\"report\":");
    out.push_str(report_json);
    out.push('}');
    out.into_bytes()
}

/// Encodes a report as its canonical JSON payload.
pub fn encode_report(report: &SimReport) -> String {
    report.to_json_string()
}

/// Machine-readable error codes of the uniform `/v1/*` error envelope.
///
/// Every non-2xx response body is
/// `{"error":{"code":"…","message":"…","retry_after":…?}}`; these are the
/// stable `code` values clients dispatch on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed request (bad JSON, bad id, missing fields).
    BadRequest,
    /// A named workload is not in Table II (nor an enabled test workload).
    UnknownWorkload,
    /// The bounded job queue is full; retry after the advertised delay.
    QueueFull,
    /// No such resource (unknown path, unknown job/sweep id).
    NotFound,
    /// The path exists but not under this method.
    MethodNotAllowed,
    /// The server is draining for shutdown and accepts no new work.
    Draining,
    /// The simulation itself failed (worker panic, captured payload).
    SimulationFailed,
    /// The job exceeded its wall-clock deadline and was cancelled.
    DeadlineExceeded,
    /// The job was still queued when the server began shutting down; it
    /// was failed rather than silently dropped.
    ShuttingDown,
    /// The job or sweep was cancelled by an explicit `DELETE` request.
    Cancelled,
    /// An uploaded program failed validation (ucasm that does not
    /// assemble, a trace that does not decode) — or a job referenced a
    /// program id no cluster node has.
    InvalidProgram,
    /// An unexpected server-side error.
    Internal,
}

impl ErrorCode {
    /// The wire `code` string.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownWorkload => "unknown_workload",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::NotFound => "not_found",
            ErrorCode::MethodNotAllowed => "method_not_allowed",
            ErrorCode::Draining => "draining",
            ErrorCode::SimulationFailed => FailureKind::SimulationFailed.as_str(),
            ErrorCode::DeadlineExceeded => FailureKind::DeadlineExceeded.as_str(),
            ErrorCode::ShuttingDown => FailureKind::ShuttingDown.as_str(),
            ErrorCode::Cancelled => FailureKind::Cancelled.as_str(),
            ErrorCode::InvalidProgram => "invalid_program",
            ErrorCode::Internal => "internal",
        }
    }

    /// The HTTP status the code maps to.
    pub fn status(self) -> u16 {
        match self {
            ErrorCode::BadRequest | ErrorCode::UnknownWorkload => 400,
            ErrorCode::QueueFull => 429,
            ErrorCode::NotFound => 404,
            ErrorCode::MethodNotAllowed => 405,
            ErrorCode::Draining | ErrorCode::ShuttingDown => 503,
            ErrorCode::Cancelled => 409,
            ErrorCode::InvalidProgram => 422,
            ErrorCode::DeadlineExceeded => 504,
            ErrorCode::SimulationFailed | ErrorCode::Internal => 500,
        }
    }

    /// The error code a terminal [`FailureKind`] surfaces as.
    pub fn from_failure(kind: FailureKind) -> ErrorCode {
        match kind {
            FailureKind::SimulationFailed => ErrorCode::SimulationFailed,
            FailureKind::DeadlineExceeded => ErrorCode::DeadlineExceeded,
            FailureKind::ShuttingDown => ErrorCode::ShuttingDown,
            FailureKind::StoreIo => ErrorCode::Internal,
            FailureKind::Cancelled => ErrorCode::Cancelled,
        }
    }
}

/// Builds the uniform error envelope body.
pub fn error_envelope(code: ErrorCode, message: &str, retry_after: Option<u32>) -> Vec<u8> {
    error_envelope_with_request(code, message, retry_after, None)
}

/// [`error_envelope`] with the originating request's correlation id, so
/// failures can be tied back to the request that submitted the work.
pub fn error_envelope_with_request(
    code: ErrorCode,
    message: &str,
    retry_after: Option<u32>,
    request_id: Option<&str>,
) -> Vec<u8> {
    let mut fields = vec![
        ("code".to_owned(), Json::Str(code.as_str().to_owned())),
        ("message".to_owned(), Json::Str(message.to_owned())),
    ];
    if let Some(secs) = retry_after {
        fields.push(("retry_after".to_owned(), Json::Uint(u64::from(secs))));
    }
    if let Some(id) = request_id {
        fields.push(("request_id".to_owned(), Json::Str(id.to_owned())));
    }
    Json::Obj(vec![("error".to_owned(), Json::Obj(fields))])
        .to_string()
        .into_bytes()
}

/// Builds a complete error [`Response`]: envelope body, mapped status,
/// and — for [`ErrorCode::QueueFull`] — the `Retry-After` header mirrored
/// into the body.
pub fn error_response(code: ErrorCode, message: &str, retry_after: Option<u32>) -> Response {
    let resp = Response::json(code.status(), error_envelope(code, message, retry_after));
    match retry_after {
        Some(secs) => resp.with_header("retry-after", secs.to_string()),
        None => resp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_parses_and_resolves() {
        let r = SimRequest::parse(r#"{"workload":"redis"}"#).unwrap();
        assert_eq!(r.workload, "redis");
        assert!(r.config.is_none());
        let spec = r.resolve(7);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.config.warmup_insts, SimConfig::table1().warmup_insts);
    }

    #[test]
    fn overrides_fold_into_spec() {
        let r =
            SimRequest::parse(r#"{"workload":"redis","seed":9,"warmup":100,"insts":200}"#).unwrap();
        let spec = r.resolve(7);
        assert_eq!(spec.seed, 9);
        assert_eq!(spec.config.warmup_insts, 100);
        assert_eq!(spec.config.measure_insts, 200);
    }

    #[test]
    fn canonical_encoding_is_stable() {
        let r = SimRequest::parse(r#"{"workload":"redis","seed":1}"#).unwrap();
        let a = r.resolve(0).canonical();
        let b = r.resolve(0).canonical();
        assert_eq!(a, b);
        // Round-trips through the wire format to the same canonical form.
        let back = JobSpec::from_json_str(&a).unwrap();
        assert_eq!(back.canonical(), a);
    }

    #[test]
    fn distinct_specs_hash_distinctly() {
        let base = SimRequest::parse(r#"{"workload":"redis"}"#).unwrap();
        let a = base.resolve(1).canonical();
        let b = base.resolve(2).canonical();
        assert_ne!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn envelope_splices_verbatim() {
        let body = envelope(0xabc, true, "{\"upc\":1.5}");
        let text = String::from_utf8(body).unwrap();
        assert_eq!(
            text,
            "{\"key\":\"0000000000000abc\",\"cached\":true,\"report\":{\"upc\":1.5}}"
        );
    }

    #[test]
    fn malformed_body_is_an_error() {
        assert!(SimRequest::parse("{\"workload\":").is_err());
        assert!(SimRequest::parse("{}").is_err()); // workload required
    }

    #[test]
    fn matrix_request_parses_with_defaults_absent() {
        let r = MatrixRequest::parse(r#"{"workloads":["redis","bm-cc"]}"#).unwrap();
        assert_eq!(r.workloads, ["redis", "bm-cc"]);
        assert!(r.capacities.is_none() && r.policies.is_none());
        assert!(MatrixRequest::parse("{}").is_err()); // workloads required

        let r = MatrixRequest::parse(
            r#"{"workloads":["redis"],"capacities":[2048,4096],"policies":["baseline","clasp"],"max_entries":3}"#,
        )
        .unwrap();
        assert_eq!(r.capacities.unwrap(), [2048, 4096]);
        assert_eq!(r.policies.unwrap(), ["baseline", "clasp"]);
        assert_eq!(r.max_entries, Some(3));
    }

    #[test]
    fn matrix_request_carries_plan_fields() {
        let r = MatrixRequest::parse(
            r#"{"workloads":["redis"],"tenant":"team-a","priority":3,"mode":"full"}"#,
        )
        .unwrap();
        assert_eq!(r.tenant.as_deref(), Some("team-a"));
        assert_eq!(r.priority, Some(3));
        assert_eq!(SweepMode::parse(r.mode.as_ref()), Ok(SweepMode::Full));

        let r = MatrixRequest::parse(r#"{"workloads":["redis"]}"#).unwrap();
        assert!(r.tenant.is_none() && r.priority.is_none());
        assert_eq!(SweepMode::parse(r.mode.as_ref()), Ok(SweepMode::Full));
    }

    #[test]
    fn sweep_mode_parses_adaptive_with_defaults_and_rejects_junk() {
        let m = Json::parse(r#"{"adaptive":{}}"#).unwrap();
        assert_eq!(
            SweepMode::parse(Some(&m)),
            Ok(SweepMode::Adaptive {
                axis: "capacity".to_owned(),
                tolerance: SweepMode::DEFAULT_TOLERANCE,
            })
        );

        let m = Json::parse(r#"{"adaptive":{"axis":"capacity","tolerance":0.1}}"#).unwrap();
        assert_eq!(
            SweepMode::parse(Some(&m)),
            Ok(SweepMode::Adaptive {
                axis: "capacity".to_owned(),
                tolerance: 0.1,
            })
        );

        // Unsupported axis, out-of-range tolerance, unknown shape.
        let m = Json::parse(r#"{"adaptive":{"axis":"policy"}}"#).unwrap();
        assert!(SweepMode::parse(Some(&m)).is_err());
        let m = Json::parse(r#"{"adaptive":{"tolerance":1.5}}"#).unwrap();
        assert!(SweepMode::parse(Some(&m)).is_err());
        let m = Json::parse(r#""bogus""#).unwrap();
        assert!(SweepMode::parse(Some(&m)).is_err());
        // Object spelling of full is accepted.
        let m = Json::parse(r#"{"full":{}}"#).unwrap();
        assert_eq!(SweepMode::parse(Some(&m)), Ok(SweepMode::Full));
    }

    #[test]
    fn tagged_workload_objects_normalize_to_ref_strings() {
        // v1.2 tagged object and the string alias hash identically.
        let tagged =
            SimRequest::parse(r#"{"workload":{"program":"00000000000000ab"},"seed":1}"#).unwrap();
        assert_eq!(tagged.workload, "program:00000000000000ab");
        let alias =
            SimRequest::parse(r#"{"workload":"program:00000000000000ab","seed":1}"#).unwrap();
        assert_eq!(
            content_hash(&tagged.resolve(0).canonical()),
            content_hash(&alias.resolve(0).canonical())
        );
        // Short hashes pad; profile tags collapse to the bare name.
        let r = SimRequest::parse(r#"{"workload":{"trace":"ab"}}"#).unwrap();
        assert_eq!(r.workload, "trace:00000000000000ab");
        let r = SimRequest::parse(r#"{"workload":{"profile":"redis"}}"#).unwrap();
        assert_eq!(r.workload, "redis");

        let r = MatrixRequest::parse(
            r#"{"workloads":["redis",{"program":"ab"},{"trace":"00000000000000cd"}]}"#,
        )
        .unwrap();
        assert_eq!(
            r.workloads,
            [
                "redis",
                "program:00000000000000ab",
                "trace:00000000000000cd"
            ]
        );

        // Malformed refs are parse errors, not silent pass-through.
        assert!(SimRequest::parse(r#"{"workload":{"program":"zz"}}"#).is_err());
        assert!(SimRequest::parse(r#"{"workload":{"program":"ab","trace":"cd"}}"#).is_err());
        assert!(MatrixRequest::parse(r#"{"workloads":[{"bogus":"x"}]}"#).is_err());
    }

    #[test]
    fn default_seed_is_ref_aware() {
        // Profiles keep their calibrated seed.
        let redis = WorkloadProfile::by_name("redis").unwrap().seed;
        assert_eq!(default_seed("redis"), redis);
        // Program refs default to their content hash; traces to 0.
        assert_eq!(default_seed("program:00000000000000ab"), 0xab);
        assert_eq!(default_seed("trace:00000000000000ab"), 0);
        assert_eq!(default_seed("test-sleep:50"), 0);
    }

    #[test]
    fn invalid_program_code_maps_to_422() {
        assert_eq!(ErrorCode::InvalidProgram.as_str(), "invalid_program");
        assert_eq!(ErrorCode::InvalidProgram.status(), 422);
    }

    #[test]
    fn error_envelope_has_stable_shape() {
        let body = String::from_utf8(error_envelope(
            ErrorCode::QueueFull,
            "job queue full; retry later",
            Some(2),
        ))
        .unwrap();
        let v = Json::parse(&body).unwrap();
        let e = v.get("error").unwrap();
        assert_eq!(e.get("code").unwrap().as_str(), Some("queue_full"));
        assert_eq!(
            e.get("message").unwrap().as_str(),
            Some("job queue full; retry later")
        );
        assert_eq!(e.get("retry_after").unwrap().as_u64(), Some(2));

        let body =
            String::from_utf8(error_envelope(ErrorCode::NotFound, "no such job", None)).unwrap();
        let v = Json::parse(&body).unwrap();
        assert!(v.get("error").unwrap().get("retry_after").is_none());
    }

    #[test]
    fn failure_kinds_surface_as_stable_codes() {
        let cases = [
            (FailureKind::SimulationFailed, "simulation_failed", 500),
            (FailureKind::DeadlineExceeded, "deadline_exceeded", 504),
            (FailureKind::ShuttingDown, "shutting_down", 503),
            (FailureKind::StoreIo, "internal", 500),
            (FailureKind::Cancelled, "cancelled", 409),
        ];
        for (kind, code, status) in cases {
            let e = ErrorCode::from_failure(kind);
            assert_eq!(e.as_str(), code);
            assert_eq!(e.status(), status);
        }
    }

    #[test]
    fn error_response_mirrors_retry_after_into_the_header() {
        let r = error_response(ErrorCode::QueueFull, "full", Some(7));
        assert_eq!(r.status, 429);
        assert!(r
            .headers
            .iter()
            .any(|(k, v)| *k == "retry-after" && v == "7"));
        let r = error_response(ErrorCode::MethodNotAllowed, "nope", None);
        assert_eq!(r.status, 405);
        assert!(r.headers.is_empty());
    }
}

//! SIGTERM / SIGINT handling without a libc dependency.
//!
//! The dependency-free build can't use the `libc` or `signal-hook`
//! crates, so on Unix this module declares the C `signal()` entry point
//! itself and installs a handler that flips one atomic flag — the only
//! async-signal-safe action taken. The server's accept loop polls the
//! flag and begins a graceful drain when it is set.
//!
//! On non-Unix targets installation is a no-op and the flag only changes
//! via [`request_shutdown`].

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// True once a shutdown signal (or programmatic request) has been seen.
pub fn signalled() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Programmatically triggers the same path as SIGTERM (used by tests and
/// by `Server::shutdown`).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        // Only an atomic store: async-signal-safe.
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        // ISO C `signal(2)`; present in every Unix libc the toolchain
        // links. Avoids a `libc` crate dependency.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs handlers for SIGINT (ctrl-c) and SIGTERM that set the
/// shutdown flag. Safe to call more than once.
pub fn install_signal_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_flag() {
        // The flag is process-global, so only assert the set direction.
        request_shutdown();
        assert!(signalled());
    }
}

//! A typed route table: method + path pattern + handler, replacing the
//! `match (method, path)` that grew inside the connection handler.
//!
//! Patterns are literal segments with `:name` captures
//! (`/v1/jobs/:id`). Dispatch centralizes the 404/405 distinction — a
//! path that matches some route under a different method is a 405, an
//! unmatched path a 404 — and every route carries its own metrics label,
//! so adding an endpoint is one table entry, not a new match arm plus
//! bookkeeping.

use crate::api::{self, ErrorCode};
use crate::http::{Request, Response};

/// Path captures from a matched `:name` pattern segment.
#[derive(Debug, Default)]
pub struct Params(Vec<(&'static str, String)>);

impl Params {
    /// The capture named `name`, if the pattern had one.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One routing table entry.
pub struct Route<C> {
    /// Uppercase method this route answers.
    pub method: &'static str,
    /// Path pattern; `:name` segments capture into [`Params`].
    pub pattern: &'static str,
    /// Metrics label recorded for requests served by this route.
    pub label: &'static str,
    /// The handler.
    pub handler: fn(&C, &Request, &Params) -> Response,
}

/// An interned metrics label: an index into the router's deduplicated
/// label table, assigned once at router-build time so the per-request
/// hot path records latency by direct array index instead of a linear
/// string search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelId(pub usize);

/// The route table for a context type `C` (the server's shared state).
pub struct Router<C> {
    routes: Vec<(Route<C>, LabelId)>,
    labels: Vec<&'static str>,
    not_found: LabelId,
    method_not_allowed: LabelId,
}

impl<C> Router<C> {
    /// Builds a router from its table, interning every route's metrics
    /// label (plus the reserved `404`/`405` labels) into a deduplicated
    /// table.
    pub fn new(routes: Vec<Route<C>>) -> Router<C> {
        let mut labels: Vec<&'static str> = Vec::new();
        let mut intern = |label: &'static str| -> LabelId {
            if let Some(i) = labels.iter().position(|l| *l == label) {
                LabelId(i)
            } else {
                labels.push(label);
                LabelId(labels.len() - 1)
            }
        };
        let routes = routes
            .into_iter()
            .map(|r| {
                let id = intern(r.label);
                (r, id)
            })
            .collect();
        let not_found = intern("404");
        let method_not_allowed = intern("405");
        Router {
            routes,
            labels,
            not_found,
            method_not_allowed,
        }
    }

    /// The deduplicated label table; `LabelId(i)` names `labels()[i]`.
    pub fn labels(&self) -> &[&'static str] {
        &self.labels
    }

    /// Resolves an interned label back to its string.
    pub fn label_name(&self, id: LabelId) -> &'static str {
        self.labels[id.0]
    }

    /// Dispatches one request: runs the matching handler, or builds the
    /// centralized 404/405 error-envelope response. Returns the interned
    /// metrics label alongside the response.
    pub fn dispatch(&self, ctx: &C, req: &Request) -> (LabelId, Response) {
        let mut path_matched = false;
        for (route, id) in &self.routes {
            let Some(params) = match_pattern(route.pattern, &req.path) else {
                continue;
            };
            if route.method == req.method {
                return (*id, (route.handler)(ctx, req, &params));
            }
            path_matched = true;
        }
        if path_matched {
            (
                self.method_not_allowed,
                api::error_response(ErrorCode::MethodNotAllowed, "method not allowed", None),
            )
        } else {
            (
                self.not_found,
                api::error_response(ErrorCode::NotFound, "not found", None),
            )
        }
    }
}

/// Matches `path` against `pattern`, returning captures on success.
/// Capture segments must be non-empty (`/v1/jobs/` does not match
/// `/v1/jobs/:id`).
fn match_pattern(pattern: &'static str, path: &str) -> Option<Params> {
    let mut caps = Vec::new();
    let mut pat = pattern.split('/');
    let mut got = path.split('/');
    loop {
        match (pat.next(), got.next()) {
            (None, None) => return Some(Params(caps)),
            (Some(p), Some(g)) => {
                if let Some(name) = p.strip_prefix(':') {
                    if g.is_empty() {
                        return None;
                    }
                    caps.push((name, g.to_owned()));
                } else if p != g {
                    return None;
                }
            }
            _ => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str) -> Request {
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            query: None,
            headers: Vec::new(),
            body: Vec::new(),
            request_id: String::new(),
        }
    }

    fn test_router() -> Router<u32> {
        Router::new(vec![
            Route {
                method: "GET",
                pattern: "/v1/things/:id",
                label: "GET /v1/things",
                handler: |ctx, _req, params| {
                    Response::json(
                        200,
                        format!("{{\"ctx\":{ctx},\"id\":\"{}\"}}", params.get("id").unwrap())
                            .into_bytes(),
                    )
                },
            },
            Route {
                method: "POST",
                pattern: "/v1/things",
                label: "POST /v1/things",
                handler: |_, _, _| Response::json(202, b"{}".to_vec()),
            },
        ])
    }

    #[test]
    fn literal_and_capture_segments_dispatch() {
        let r = test_router();
        let (label, resp) = r.dispatch(&7, &req("GET", "/v1/things/42"));
        assert_eq!(r.label_name(label), "GET /v1/things");
        assert_eq!(resp.status, 200);
        assert_eq!(
            String::from_utf8(resp.body).unwrap(),
            "{\"ctx\":7,\"id\":\"42\"}"
        );
        let (label, resp) = r.dispatch(&7, &req("POST", "/v1/things"));
        assert_eq!((r.label_name(label), resp.status), ("POST /v1/things", 202));
    }

    #[test]
    fn unknown_path_is_404_wrong_method_is_405() {
        let r = test_router();
        let (label, resp) = r.dispatch(&0, &req("GET", "/nope"));
        assert_eq!((r.label_name(label), resp.status), ("404", 404));
        assert!(String::from_utf8(resp.body).unwrap().contains("not_found"));

        let (label, resp) = r.dispatch(&0, &req("DELETE", "/v1/things"));
        assert_eq!((r.label_name(label), resp.status), ("405", 405));
        assert!(String::from_utf8(resp.body)
            .unwrap()
            .contains("method_not_allowed"));
    }

    #[test]
    fn empty_capture_does_not_match() {
        let r = test_router();
        let (label, _) = r.dispatch(&0, &req("GET", "/v1/things/"));
        assert_eq!(r.label_name(label), "404");
        assert!(match_pattern("/v1/things/:id", "/v1/things/a/b").is_none());
    }

    #[test]
    fn labels_are_interned_and_deduplicated() {
        let r = Router::<u32>::new(vec![
            Route {
                method: "GET",
                pattern: "/a",
                label: "shared",
                handler: |_, _, _| Response::json(200, b"{}".to_vec()),
            },
            Route {
                method: "POST",
                pattern: "/b",
                label: "shared",
                handler: |_, _, _| Response::json(200, b"{}".to_vec()),
            },
        ]);
        // One "shared" entry plus the reserved 404/405 labels.
        assert_eq!(r.labels(), &["shared", "404", "405"]);
        let (a, _) = r.dispatch(&0, &req("GET", "/a"));
        let (b, _) = r.dispatch(&0, &req("POST", "/b"));
        assert_eq!(a, b);
    }
}

//! `ucsim-serve` — the simulation job service binary.
//!
//! Runs until SIGTERM/ctrl-c, then drains in-flight jobs and exits.

use std::process::ExitCode;

use ucsim_serve::{install_signal_handlers, Server, ServerConfig};

const USAGE: &str = "\
ucsim-serve: long-running simulation job service

USAGE:
    ucsim-serve [OPTIONS]

OPTIONS:
    --addr ADDR       bind address        [default: 127.0.0.1:7199]
    --workers N       worker threads      [default: #cpus, max 8]
    --queue N         job queue capacity  [default: 64]
    --cache-mb N      result cache budget [default: 64]
    --data-dir DIR    persist results to DIR/results.log and replay
                      them into the cache on startup
    --durable         fsync the store after every appended record
    --deadline-ms N   per-job wall-clock deadline; late jobs fail with
                      deadline_exceeded       [default: none]
    --drain-timeout S seconds shutdown waits for open connections
                      before failing queued jobs [default: 30]
    --tenant-weight TENANT=W
                      fair-share weight for TENANT (repeatable); tenants
                      not listed default to weight 1
    --cell-threads N  intra-cell hash-precompute workers per job
                      (byte-identical reports)  [default: 1]
    --peer HOST:PORT  cluster member (repeatable). Any non-empty list
                      turns on peer mode: consistent-hash job routing,
                      scatter-gather sweeps, health probing, and (with
                      --data-dir) store anti-entropy. Every node may be
                      given the identical list; its own --advertise
                      address is filtered out.
    --advertise HOST:PORT
                      the address other members reach this node at
                      [default: the resolved bind address]
    --peer-deadline-ms N
                      connect/read deadline for forwarded peer requests
                      [default: 30000]
    --anti-entropy-ms N
                      interval between store delta pulls per peer
                      [default: 5000]
    --help            show this help

ENDPOINTS:
    POST /v1/sim        submit a job: {\"workload\", \"config\"?, \"seed\"?,
                        \"background\"?, \"tenant\"?, \"priority\"?}
                        -> report envelope (or 202 + id). \"workload\" is a
                        profile name, an uploaded-program ref
                        (\"program:ID\" / \"trace:ID\"), or the v1.2 tagged
                        object {\"profile\"|\"program\"|\"trace\": ...}
    POST /v1/programs   upload a user program: ucasm text or a binary
                        UCT1 trace (or {\"kind\",\"source\"|\"hex\"} JSON).
                        Content-addressed: 201 created / 200 already
                        known / 422 invalid_program
    GET  /v1/programs   list uploaded programs (?kind=asm|trace)
    GET  /v1/programs/ID       program metadata (ref, kind, insts, bytes)
    GET  /v1/programs/ID/raw   the exact uploaded bytes
    POST /v1/matrix     submit a sweep plan: {\"workloads\", \"capacities\"?,
                        \"policies\"?, \"tenant\"?, \"priority\"?,
                        \"mode\"?: \"full\" | {\"adaptive\": {\"axis\",
                        \"tolerance\"?}}, ...} -> 202 + sweep id
    GET  /v1/matrix     list sweeps (filter with ?state=running|done|...)
    GET  /v1/matrix/ID  plan progress: planned/skipped_from_store/
                        simulated/failed counts, the adaptive refinement
                        frontier, and the aggregated table when done
    DELETE /v1/matrix/ID  cancel a running sweep (envelope code
                        'cancelled'; queued cells are preempted)
    GET  /v1/jobs       list jobs (filter with ?state=queued|running|...)
    GET  /v1/jobs/ID    poll a background job
    DELETE /v1/jobs/ID  cancel a queued/running job
    GET  /v1/jobs/ID/profile  per-job stage timings + counter deltas
    GET  /v1/metrics    queue/worker/cache/latency counters; JSON, or
                        Prometheus text with 'Accept: text/plain'
    GET  /v1/trace?since=N  recent span events from the trace rings
    GET  /v1/store?since=N  a page of verified store records (peer
                        anti-entropy pulls; needs --data-dir)
    GET  /v1/healthz    liveness: queue depth, workers, store health,
                        and per-peer breaker state in peer mode
    GET  /v1/version    crate version, store format, feature flags

Connections are keep-alive; errors use the uniform envelope
{\"error\":{\"code\",\"message\",\"retry_after\"?,\"request_id\"?}}. Every
response echoes an X-Request-Id (client-supplied or server-minted).
";

fn main() -> ExitCode {
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    let bail = |msg: &str| {
        eprintln!("error: {msg}\n\n{USAGE}");
        ExitCode::FAILURE
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--addr" => match args.next() {
                Some(v) => cfg.addr = v,
                None => return bail("--addr needs a value"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.workers = v,
                None => return bail("--workers needs a number"),
            },
            "--queue" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => cfg.queue_capacity = v,
                None => return bail("--queue needs a number"),
            },
            "--cache-mb" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) => cfg.cache_budget_bytes = v * 1024 * 1024,
                None => return bail("--cache-mb needs a number"),
            },
            "--data-dir" => match args.next() {
                Some(v) => cfg.data_dir = Some(v.into()),
                None => return bail("--data-dir needs a path"),
            },
            "--durable" => cfg.durable_store = true,
            "--deadline-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) if v > 0 => {
                    cfg.job_deadline = Some(std::time::Duration::from_millis(v));
                }
                _ => return bail("--deadline-ms needs a positive number"),
            },
            "--drain-timeout" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => cfg.drain_timeout = std::time::Duration::from_secs(v),
                None => return bail("--drain-timeout needs a number of seconds"),
            },
            "--tenant-weight" => {
                let parsed = args.next().and_then(|v| {
                    let (name, w) = v.split_once('=')?;
                    let w: u64 = w.parse().ok().filter(|&w| w > 0)?;
                    Some((name.to_owned(), w))
                });
                match parsed {
                    Some(pair) => cfg.tenant_weights.push(pair),
                    None => return bail("--tenant-weight needs TENANT=WEIGHT with WEIGHT >= 1"),
                }
            }
            "--cell-threads" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(v) if v >= 1 => cfg.cell_threads = v,
                _ => return bail("--cell-threads needs a number >= 1"),
            },
            "--peer" => match args.next() {
                Some(v) if v.contains(':') => cfg.peers.push(v),
                _ => return bail("--peer needs HOST:PORT"),
            },
            "--advertise" => match args.next() {
                Some(v) if v.contains(':') => cfg.advertise = Some(v),
                _ => return bail("--advertise needs HOST:PORT"),
            },
            "--peer-deadline-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) if v > 0 => {
                    cfg.peer_deadline = std::time::Duration::from_millis(v);
                }
                _ => return bail("--peer-deadline-ms needs a positive number"),
            },
            "--anti-entropy-ms" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) if v > 0 => {
                    cfg.anti_entropy_interval = std::time::Duration::from_millis(v);
                }
                _ => return bail("--anti-entropy-ms needs a positive number"),
            },
            other => return bail(&format!("unknown option: {other}")),
        }
    }

    install_signal_handlers();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: failed to start server: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "ucsim-serve listening on {} (ctrl-c or SIGTERM to drain and stop)",
        server.local_addr()
    );
    server.run_until_shutdown();
    eprintln!("ucsim-serve: drained, bye");
    ExitCode::SUCCESS
}

//! Job lifecycle: identifiers, states, completion wake-ups, and
//! same-key coalescing.
//!
//! The table answers two questions: "what happened to job N?" (polling
//! via `GET /v1/jobs/:id`) and "is a job for this content key already in
//! flight?" (request coalescing — N concurrent identical submissions run
//! one simulation, and the N−1 joiners wait on the same [`JobCell`]).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use ucsim_model::{CancelToken, FailureKind};

/// Job identifier, monotonically assigned per server.
pub type JobId = u64;

/// A terminal failure: the stable [`FailureKind`] code plus a
/// human-readable message (e.g. the captured panic payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Why the job failed (the wire `code`).
    pub kind: FailureKind,
    /// Human-readable detail.
    pub message: String,
    /// Correlation id of the request that submitted the job, when known.
    /// Carried into the failure envelope so a client can tie a failed
    /// job back to its originating request.
    pub request_id: Option<String>,
}

impl JobFailure {
    /// Convenience constructor (no request id).
    pub fn new(kind: FailureKind, message: impl Into<String>) -> Self {
        JobFailure {
            kind,
            message: message.into(),
            request_id: None,
        }
    }

    /// Attaches the originating request's correlation id.
    #[must_use]
    pub fn with_request_id(mut self, id: impl Into<String>) -> Self {
        self.request_id = Some(id.into());
        self
    }
}

/// Lifecycle of a job.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Accepted, waiting in the bounded queue.
    Queued,
    /// A worker is simulating it.
    Running,
    /// Finished; holds the full response envelope bytes.
    Done(Arc<Vec<u8>>),
    /// Failed; holds the stable error code and message.
    Failed(JobFailure),
}

impl JobState {
    /// Wire name of the state.
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }
}

/// Shared completion cell for one job: every thread interested in the
/// result (the submitting connection, coalesced joiners, pollers) holds
/// an `Arc` to the same cell.
pub struct JobCell {
    /// The job's id.
    pub id: JobId,
    /// Content hash of the job's canonical spec.
    pub key_hash: u64,
    /// Unix timestamp (seconds) when the job was accepted.
    pub created_at: u64,
    state: Mutex<JobState>,
    /// The bare report payload (set just before [`JobCell::complete`]).
    /// Sweep aggregation reads this — the [`JobState::Done`] body is the
    /// full response envelope, not the raw report.
    payload: Mutex<Option<Arc<String>>>,
    /// Per-job execution profile (stage-time histogram + counter
    /// deltas), set by the worker that ran the simulation. `None` for
    /// cache hits and jobs that never executed.
    profile: Mutex<Option<Arc<ucsim_obs::JobProfile>>>,
    /// Cooperative cancellation flag for this job. The worker polls it
    /// mid-simulation, the scheduler drops still-queued entries whose
    /// flag is set, and `DELETE /v1/jobs/:id` flips it.
    cancel: CancelToken,
    done: Condvar,
}

impl JobCell {
    fn new(id: JobId, key_hash: u64) -> Self {
        let created_at = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        JobCell {
            id,
            key_hash,
            created_at,
            state: Mutex::new(JobState::Queued),
            payload: Mutex::new(None),
            profile: Mutex::new(None),
            cancel: CancelToken::new(),
            done: Condvar::new(),
        }
    }

    /// The job's cancellation token (cloning shares the flag).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Attaches the per-job execution profile (worker side).
    pub fn set_profile(&self, profile: Arc<ucsim_obs::JobProfile>) {
        *self.profile.lock().expect("job lock") = Some(profile);
    }

    /// The per-job execution profile, if the job actually executed under
    /// profiling.
    pub fn profile(&self) -> Option<Arc<ucsim_obs::JobProfile>> {
        self.profile.lock().expect("job lock").clone()
    }

    /// Current state snapshot.
    pub fn state(&self) -> JobState {
        self.state.lock().expect("job lock").clone()
    }

    /// Marks the job running.
    pub fn set_running(&self) {
        *self.state.lock().expect("job lock") = JobState::Running;
    }

    /// Stores the bare report payload; call before [`JobCell::complete`]
    /// so anyone observing `Done` can read it.
    pub fn set_payload(&self, payload: Arc<String>) {
        *self.payload.lock().expect("job lock") = Some(payload);
    }

    /// The bare report payload, once set.
    pub fn payload(&self) -> Option<Arc<String>> {
        self.payload.lock().expect("job lock").clone()
    }

    /// Completes the job with its response envelope and wakes waiters.
    ///
    /// First-wins: if the job already settled (e.g. a deadline fired it
    /// into `Failed` while the worker was finishing anyway), the terminal
    /// state is kept and this returns `false`.
    pub fn complete(&self, body: Arc<Vec<u8>>) -> bool {
        let mut st = self.state.lock().expect("job lock");
        if matches!(*st, JobState::Done(_) | JobState::Failed(_)) {
            return false;
        }
        *st = JobState::Done(body);
        drop(st);
        self.done.notify_all();
        true
    }

    /// Fails the job and wakes waiters. First-wins like
    /// [`complete`](Self::complete): returns `false` if the job already
    /// settled (the watchdog and a panicking worker can race; exactly one
    /// terminal state survives).
    pub fn fail(&self, failure: JobFailure) -> bool {
        let mut st = self.state.lock().expect("job lock");
        if matches!(*st, JobState::Done(_) | JobState::Failed(_)) {
            return false;
        }
        *st = JobState::Failed(failure);
        drop(st);
        self.done.notify_all();
        true
    }

    /// True once the job reached `Done` or `Failed`.
    pub fn settled(&self) -> bool {
        matches!(
            *self.state.lock().expect("job lock"),
            JobState::Done(_) | JobState::Failed(_)
        )
    }

    /// Blocks until the job is done or failed.
    ///
    /// # Errors
    ///
    /// Returns the failure (stable code + message) if the job failed.
    pub fn wait(&self) -> Result<Arc<Vec<u8>>, JobFailure> {
        let mut st = self.state.lock().expect("job lock");
        loop {
            match &*st {
                JobState::Done(b) => return Ok(Arc::clone(b)),
                JobState::Failed(e) => return Err(e.clone()),
                _ => st = self.done.wait(st).expect("job lock"),
            }
        }
    }
}

/// Result of submitting a content key to the table.
pub enum Submit {
    /// No job with this key in flight; the caller owns enqueueing this
    /// fresh cell (and must [`JobTable::abandon`] it if the queue rejects
    /// it).
    New(Arc<JobCell>),
    /// A job with the same key is already queued/running; the caller
    /// should wait on the returned cell instead of enqueueing.
    Joined(Arc<JobCell>),
}

struct TableInner {
    jobs: HashMap<JobId, Arc<JobCell>>,
    /// Completed job ids in completion order, for pruning.
    finished_order: Vec<JobId>,
    /// key hash → in-flight (queued or running) job id.
    inflight: HashMap<u64, JobId>,
    next_id: JobId,
}

/// The server's job registry. Retains the most recent completed jobs for
/// polling; prunes beyond `retain`.
pub struct JobTable {
    inner: Mutex<TableInner>,
    retain: usize,
}

impl JobTable {
    /// Creates a table retaining at most `retain` finished jobs.
    pub fn new(retain: usize) -> Self {
        JobTable {
            inner: Mutex::new(TableInner {
                jobs: HashMap::new(),
                finished_order: Vec::new(),
                inflight: HashMap::new(),
                next_id: 1,
            }),
            retain: retain.max(1),
        }
    }

    /// Registers interest in `key_hash`: returns an existing in-flight
    /// job ([`Submit::Joined`]) or a fresh one ([`Submit::New`]).
    pub fn submit(&self, key_hash: u64) -> Submit {
        let mut t = self.inner.lock().expect("job table lock");
        if let Some(&id) = t.inflight.get(&key_hash) {
            if let Some(cell) = t.jobs.get(&id) {
                return Submit::Joined(Arc::clone(cell));
            }
        }
        let id = t.next_id;
        t.next_id += 1;
        let cell = Arc::new(JobCell::new(id, key_hash));
        t.jobs.insert(id, Arc::clone(&cell));
        t.inflight.insert(key_hash, id);
        Submit::New(cell)
    }

    /// Removes a job the queue refused (429 path): it never ran, so it
    /// must not linger as in-flight or poll as queued forever.
    pub fn abandon(&self, cell: &JobCell) {
        let mut t = self.inner.lock().expect("job table lock");
        if t.inflight.get(&cell.key_hash) == Some(&cell.id) {
            t.inflight.remove(&cell.key_hash);
        }
        t.jobs.remove(&cell.id);
    }

    /// Marks a job's key no longer in flight (worker finished it, in
    /// success or failure) and prunes old finished jobs.
    pub fn finish(&self, cell: &JobCell) {
        let mut t = self.inner.lock().expect("job table lock");
        if t.inflight.get(&cell.key_hash) == Some(&cell.id) {
            t.inflight.remove(&cell.key_hash);
        }
        t.finished_order.push(cell.id);
        while t.finished_order.len() > self.retain {
            let old = t.finished_order.remove(0);
            t.jobs.remove(&old);
        }
    }

    /// Looks up a job by id.
    pub fn get(&self, id: JobId) -> Option<Arc<JobCell>> {
        self.inner
            .lock()
            .expect("job table lock")
            .jobs
            .get(&id)
            .map(Arc::clone)
    }

    /// Every registered job (in flight + retained), ascending by id —
    /// the `GET /v1/jobs` listing; state filtering is the handler's.
    pub fn snapshot(&self) -> Vec<Arc<JobCell>> {
        let t = self.inner.lock().expect("job table lock");
        let mut cells: Vec<Arc<JobCell>> = t.jobs.values().map(Arc::clone).collect();
        cells.sort_by_key(|c| c.id);
        cells
    }

    /// Number of jobs currently registered (in flight + retained).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("job table lock").jobs.len()
    }

    /// True when no jobs are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_submit_of_same_key_joins() {
        let t = JobTable::new(16);
        let a = match t.submit(42) {
            Submit::New(c) => c,
            Submit::Joined(_) => panic!("first submit must be new"),
        };
        let b = match t.submit(42) {
            Submit::Joined(c) => c,
            Submit::New(_) => panic!("second submit must join"),
        };
        assert_eq!(a.id, b.id);
        // A different key is a new job.
        assert!(matches!(t.submit(43), Submit::New(_)));
    }

    #[test]
    fn finish_releases_the_key() {
        let t = JobTable::new(16);
        let Submit::New(a) = t.submit(42) else {
            panic!()
        };
        a.complete(Arc::new(b"r".to_vec()));
        t.finish(&a);
        assert!(matches!(t.submit(42), Submit::New(_)));
        // The finished job remains pollable.
        assert!(matches!(t.get(a.id).unwrap().state(), JobState::Done(_)));
    }

    #[test]
    fn abandon_removes_entirely() {
        let t = JobTable::new(16);
        let Submit::New(a) = t.submit(42) else {
            panic!()
        };
        t.abandon(&a);
        assert!(t.get(a.id).is_none());
        assert!(matches!(t.submit(42), Submit::New(_)));
    }

    #[test]
    fn retention_prunes_oldest_finished() {
        let t = JobTable::new(2);
        let mut ids = Vec::new();
        for key in 0..4u64 {
            let Submit::New(c) = t.submit(key) else {
                panic!()
            };
            c.complete(Arc::new(vec![]));
            t.finish(&c);
            ids.push(c.id);
        }
        assert!(t.get(ids[0]).is_none());
        assert!(t.get(ids[1]).is_none());
        assert!(t.get(ids[2]).is_some());
        assert!(t.get(ids[3]).is_some());
    }

    #[test]
    fn snapshot_lists_every_job_in_id_order() {
        let t = JobTable::new(16);
        let Submit::New(a) = t.submit(1) else {
            panic!()
        };
        let Submit::New(b) = t.submit(2) else {
            panic!()
        };
        a.complete(Arc::new(vec![]));
        t.finish(&a);
        let ids: Vec<JobId> = t.snapshot().iter().map(|c| c.id).collect();
        assert_eq!(ids, [a.id, b.id]);
    }

    #[test]
    fn cancel_token_is_shared_per_cell() {
        let t = JobTable::new(4);
        let Submit::New(c) = t.submit(1) else {
            panic!()
        };
        let token = c.cancel_token();
        assert!(!token.is_cancelled());
        c.cancel_token().cancel();
        assert!(token.is_cancelled());
    }

    #[test]
    fn wait_blocks_until_complete() {
        let t = JobTable::new(4);
        let Submit::New(c) = t.submit(1) else {
            panic!()
        };
        let waiter = Arc::clone(&c);
        let h = std::thread::spawn(move || waiter.wait());
        std::thread::sleep(std::time::Duration::from_millis(20));
        c.set_running();
        c.complete(Arc::new(b"body".to_vec()));
        assert_eq!(h.join().unwrap().unwrap().as_slice(), b"body");
    }

    #[test]
    fn failure_propagates_to_waiters() {
        let t = JobTable::new(4);
        let Submit::New(c) = t.submit(1) else {
            panic!()
        };
        c.fail(JobFailure::new(FailureKind::SimulationFailed, "boom"));
        let err = c.wait().unwrap_err();
        assert_eq!(err.kind, FailureKind::SimulationFailed);
        assert_eq!(err.message, "boom");
        assert_eq!(c.state().name(), "failed");
    }

    #[test]
    fn terminal_state_is_first_wins() {
        let t = JobTable::new(4);
        let Submit::New(c) = t.submit(1) else {
            panic!()
        };
        // Deadline fires first…
        assert!(c.fail(JobFailure::new(FailureKind::DeadlineExceeded, "late")));
        // …then the worker finishes anyway: the completion is discarded.
        assert!(!c.complete(Arc::new(b"r".to_vec())));
        assert!(!c.fail(JobFailure::new(FailureKind::SimulationFailed, "again")));
        let err = c.wait().unwrap_err();
        assert_eq!(err.kind, FailureKind::DeadlineExceeded);
        assert!(c.settled());

        // And the mirror image: completion first, failure discarded.
        let Submit::New(d) = t.submit(2) else {
            panic!()
        };
        assert!(d.complete(Arc::new(b"ok".to_vec())));
        assert!(!d.fail(JobFailure::new(FailureKind::DeadlineExceeded, "late")));
        assert_eq!(d.wait().unwrap().as_slice(), b"ok");
    }
}

//! Static-membership federation: rendezvous ownership, a fault-
//! instrumented peer transport, and per-peer health tracking.
//!
//! A cluster is a set of `ucsim-serve` nodes, each started with the same
//! (order-independent) `--peer` list and its own `--advertise` address.
//! There is no coordinator election and no dynamic membership: ownership
//! of a content-addressed job is decided by rendezvous (highest-random-
//! weight) hashing over the member addresses, so every node computes the
//! same owner chain for a key without talking to anyone.
//!
//! Health is tracked per peer with a consecutive-failure circuit
//! breaker: a peer that fails [`DOWN_AFTER_FAILURES`] times in a row is
//! `down` and skipped by routing until a background probe (driven by the
//! server, with exponential backoff per peer) sees it answer again.
//! One or two recent failures leave it `degraded` — still routed to,
//! on the theory that a single timeout shouldn't exile a healthy node.
//!
//! Every transport call is a named fault site (`peer.connect`,
//! `peer.request`, `peer.recv`) with the peer address as the instance
//! target, so cluster chaos tests can refuse connections to *one* node
//! of an in-process cluster (see `ucsim_pool::faults`).

use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ucsim_model::json::Json;
use ucsim_model::SplitMix64;
use ucsim_pool::faults;

use crate::api::fnv1a;
use crate::client::HttpResponse;

/// Consecutive transport failures after which a peer is `down` (circuit
/// open: routing skips it until a probe succeeds).
pub const DOWN_AFTER_FAILURES: u32 = 3;
/// First probe backoff after a peer goes unhealthy.
const PROBE_BACKOFF_MIN: Duration = Duration::from_millis(500);
/// Probe backoff ceiling.
const PROBE_BACKOFF_MAX: Duration = Duration::from_secs(8);
/// Probe cadence for a healthy peer (keeps `last_probe_age_us` fresh).
const PROBE_INTERVAL_UP: Duration = Duration::from_secs(2);
/// Connect/read/write timeout for probes (shorter than forwards — a
/// probe answers "is it there", not "what is the answer").
const PROBE_TIMEOUT: Duration = Duration::from_millis(750);
/// Retries per forward attempt to one peer (after the first try).
const FORWARD_RETRIES: u32 = 2;
/// Base backoff between forward retries (jittered ×[0.5, 1.5), doubled
/// per retry).
const FORWARD_BACKOFF: Duration = Duration::from_millis(50);

/// Peer health as reported by `/v1/healthz` and `/v1/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerState {
    /// Last contact succeeded; routed to normally.
    Up,
    /// Recent failures below the breaker threshold; still routed to.
    Degraded,
    /// Breaker open: skipped by routing until a probe succeeds.
    Down,
}

impl PeerState {
    /// The wire name (`up` / `degraded` / `down`).
    pub fn as_str(self) -> &'static str {
        match self {
            PeerState::Up => "up",
            PeerState::Degraded => "degraded",
            PeerState::Down => "down",
        }
    }
}

#[derive(Debug)]
struct Health {
    consecutive_failures: u32,
    state: PeerState,
    last_probe: Option<Instant>,
    next_probe: Instant,
    backoff: Duration,
}

/// One cluster member (not self): address, breaker state, counters.
#[derive(Debug)]
pub struct Peer {
    addr: String,
    health: Mutex<Health>,
    /// Requests forwarded to this peer (attempts that reached transport).
    forwarded: AtomicU64,
    /// Times routing gave up on this peer and moved to the next owner.
    failed_over: AtomicU64,
    /// Health probes sent.
    probes: AtomicU64,
    /// Anti-entropy byte cursor into this peer's `results.log`.
    pull_cursor: AtomicU64,
}

impl Peer {
    fn new(addr: String) -> Peer {
        Peer {
            addr,
            health: Mutex::new(Health {
                consecutive_failures: 0,
                state: PeerState::Up,
                last_probe: None,
                next_probe: Instant::now(),
                backoff: PROBE_BACKOFF_MIN,
            }),
            forwarded: AtomicU64::new(0),
            failed_over: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            pull_cursor: AtomicU64::new(0),
        }
    }

    /// The peer's `host:port`.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Current breaker state.
    pub fn state(&self) -> PeerState {
        self.health.lock().expect("peer health lock").state
    }

    /// Whether routing should try this peer (breaker not open).
    pub fn available(&self) -> bool {
        self.state() != PeerState::Down
    }

    /// Records a successful contact: breaker closes, peer is `up`.
    pub fn note_success(&self) {
        let mut h = self.health.lock().expect("peer health lock");
        h.consecutive_failures = 0;
        h.state = PeerState::Up;
        h.backoff = PROBE_BACKOFF_MIN;
    }

    /// Records a failed contact; after [`DOWN_AFTER_FAILURES`] in a row
    /// the breaker opens.
    pub fn note_failure(&self) {
        let mut h = self.health.lock().expect("peer health lock");
        h.consecutive_failures = h.consecutive_failures.saturating_add(1);
        h.state = if h.consecutive_failures >= DOWN_AFTER_FAILURES {
            PeerState::Down
        } else {
            PeerState::Degraded
        };
    }

    /// Counts a failover away from this peer.
    pub fn note_failed_over(&self) {
        self.failed_over.fetch_add(1, Ordering::Relaxed);
    }

    /// The anti-entropy cursor (byte offset into the peer's log).
    pub fn pull_cursor(&self) -> u64 {
        self.pull_cursor.load(Ordering::Relaxed)
    }

    /// Advances the anti-entropy cursor.
    pub fn set_pull_cursor(&self, offset: u64) {
        self.pull_cursor.store(offset, Ordering::Relaxed);
    }
}

/// The cluster view of one node: its own advertised address plus every
/// peer, with routing, transport, and health probing.
#[derive(Debug)]
pub struct PeerSet {
    self_addr: String,
    peers: Vec<Peer>,
    deadline: Duration,
    /// Jitter stream for forward-retry backoff.
    jitter: Mutex<SplitMix64>,
    /// Anti-entropy pull rounds completed (all peers polled once).
    pull_rounds: AtomicU64,
    /// Records replicated in by anti-entropy.
    pull_records: AtomicU64,
}

impl PeerSet {
    /// Builds the cluster view. `self_addr` is this node's advertised
    /// address; `peers` the other members (self is filtered out if
    /// listed, so every node can be started with the identical list).
    pub fn new(self_addr: String, peers: Vec<String>, deadline: Duration) -> PeerSet {
        let mut seen = Vec::new();
        let peers = peers
            .into_iter()
            .filter(|p| {
                *p != self_addr && !seen.contains(p) && {
                    seen.push(p.clone());
                    true
                }
            })
            .map(Peer::new)
            .collect();
        PeerSet {
            jitter: Mutex::new(SplitMix64::new(fnv1a(self_addr.as_bytes()) ^ 0x9e37)),
            self_addr,
            peers,
            deadline,
            pull_rounds: AtomicU64::new(0),
            pull_records: AtomicU64::new(0),
        }
    }

    /// This node's advertised address.
    pub fn self_addr(&self) -> &str {
        &self.self_addr
    }

    /// All peers (not including self).
    pub fn peers(&self) -> &[Peer] {
        &self.peers
    }

    /// Per-request deadline for forwarded calls.
    pub fn deadline(&self) -> Duration {
        self.deadline
    }

    /// The owner chain for a content address: every member (self
    /// included) ranked by rendezvous score, best first. `None` entries
    /// mean "this node". All members compute the identical chain because
    /// the score depends only on `(key, member address)`.
    pub fn owner_chain(&self, key_hash: u64) -> Vec<Option<&Peer>> {
        let mut ranked: Vec<(u64, &str, Option<&Peer>)> = self
            .peers
            .iter()
            .map(|p| {
                (
                    rendezvous_score(key_hash, &p.addr),
                    p.addr.as_str(),
                    Some(p),
                )
            })
            .chain(std::iter::once((
                rendezvous_score(key_hash, &self.self_addr),
                self.self_addr.as_str(),
                None,
            )))
            .collect();
        // Tie-break on address so the order is total and identical
        // everywhere even in the (vanishing) case of equal scores.
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then_with(|| a.1.cmp(b.1)));
        ranked.into_iter().map(|(_, _, m)| m).collect()
    }

    /// Whether this node is the primary owner of `key_hash`.
    pub fn owns(&self, key_hash: u64) -> bool {
        matches!(self.owner_chain(key_hash).first(), Some(None))
    }

    /// Sends one request to `peer` with bounded, jittered retries and
    /// the set's deadline, maintaining the peer's breaker state. The
    /// `forwarded` counter ticks once per call.
    ///
    /// # Errors
    ///
    /// The last transport error once retries are exhausted. Any parsed
    /// HTTP response (including 5xx) is `Ok` — the caller decides
    /// whether a status is a failover reason.
    pub fn forward(
        &self,
        peer: &Peer,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
    ) -> io::Result<HttpResponse> {
        peer.forwarded.fetch_add(1, Ordering::Relaxed);
        let mut attempt = 0u32;
        loop {
            match http_once(&peer.addr, method, path, extra_headers, body, self.deadline) {
                Ok(resp) => {
                    peer.note_success();
                    return Ok(resp);
                }
                Err(e) if attempt < FORWARD_RETRIES => {
                    let _ = e;
                    let backoff = {
                        let mut rng = self.jitter.lock().expect("jitter lock");
                        FORWARD_BACKOFF
                            .saturating_mul(1 << attempt.min(8))
                            .mul_f64(0.5 + rng.unit_f64())
                    };
                    std::thread::sleep(backoff);
                    attempt += 1;
                }
                Err(e) => {
                    peer.note_failure();
                    return Err(e);
                }
            }
        }
    }

    /// One bookkeeping-light `GET` against a peer, used by the
    /// anti-entropy pull loop: no retries and no `forwarded` counter
    /// (pulls are steady-state background traffic, not routed client
    /// requests), but success and failure still feed the breaker so a
    /// dead peer stops being pulled until a probe revives it.
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write failures from the transport.
    pub fn fetch(&self, peer: &Peer, path: &str) -> io::Result<HttpResponse> {
        let res = http_once(&peer.addr, "GET", path, &[], b"", self.deadline);
        match &res {
            Ok(_) => peer.note_success(),
            Err(_) => peer.note_failure(),
        }
        res
    }

    /// Probes every peer whose schedule is due: `GET /v1/healthz` with a
    /// short timeout. Success closes the breaker; failure backs the next
    /// probe off exponentially. Returns how many probes were sent.
    /// The server calls this from a background thread a few times per
    /// second; the per-peer schedule keeps the actual probe rate low.
    pub fn probe_due(&self) -> usize {
        let now = Instant::now();
        let mut sent = 0;
        for peer in &self.peers {
            let due = {
                let h = peer.health.lock().expect("peer health lock");
                now >= h.next_probe
            };
            if !due {
                continue;
            }
            peer.probes.fetch_add(1, Ordering::Relaxed);
            sent += 1;
            let ok = http_once(&peer.addr, "GET", "/v1/healthz", &[], b"", PROBE_TIMEOUT).is_ok();
            let mut h = peer.health.lock().expect("peer health lock");
            h.last_probe = Some(now);
            if ok {
                h.consecutive_failures = 0;
                h.state = PeerState::Up;
                h.backoff = PROBE_BACKOFF_MIN;
                h.next_probe = now + PROBE_INTERVAL_UP;
            } else {
                h.consecutive_failures = h.consecutive_failures.saturating_add(1);
                h.state = if h.consecutive_failures >= DOWN_AFTER_FAILURES {
                    PeerState::Down
                } else {
                    PeerState::Degraded
                };
                h.next_probe = now + h.backoff;
                h.backoff = (h.backoff * 2).min(PROBE_BACKOFF_MAX);
            }
        }
        sent
    }

    /// Whether any peer is not `up` — the cluster `degraded` signal in
    /// `/v1/healthz` (the node itself still serves what it owns).
    pub fn degraded(&self) -> bool {
        self.peers.iter().any(|p| p.state() != PeerState::Up)
    }

    /// Counts an anti-entropy round.
    pub fn note_pull_round(&self, records: u64) {
        self.pull_rounds.fetch_add(1, Ordering::Relaxed);
        self.pull_records.fetch_add(records, Ordering::Relaxed);
    }

    /// Records replicated in by anti-entropy so far.
    pub fn pull_records(&self) -> u64 {
        self.pull_records.load(Ordering::Relaxed)
    }

    /// The `peers` member for `/v1/healthz`: per-peer state, last-probe
    /// age, and forward/failover counters, plus the cluster summary.
    pub fn healthz_json(&self) -> Json {
        let now = Instant::now();
        let peers = self
            .peers
            .iter()
            .map(|p| {
                let h = p.health.lock().expect("peer health lock");
                let mut fields = vec![
                    ("addr".to_owned(), Json::Str(p.addr.clone())),
                    ("state".to_owned(), Json::Str(h.state.as_str().to_owned())),
                ];
                if let Some(at) = h.last_probe {
                    let age = now.saturating_duration_since(at).as_micros();
                    fields.push((
                        "last_probe_age_us".to_owned(),
                        Json::Uint(u64::try_from(age).unwrap_or(u64::MAX)),
                    ));
                }
                fields.push((
                    "forwarded".to_owned(),
                    Json::Uint(p.forwarded.load(Ordering::Relaxed)),
                ));
                fields.push((
                    "failed_over".to_owned(),
                    Json::Uint(p.failed_over.load(Ordering::Relaxed)),
                ));
                Json::Obj(fields)
            })
            .collect();
        Json::Obj(vec![
            ("advertise".to_owned(), Json::Str(self.self_addr.clone())),
            (
                "state".to_owned(),
                Json::Str(if self.degraded() { "degraded" } else { "ok" }.to_owned()),
            ),
            ("members".to_owned(), Json::Arr(peers)),
        ])
    }

    /// The `peers` section for `/v1/metrics`: aggregate numeric leaves
    /// only, so the mechanical Prometheus flattening picks every one up
    /// (peer addresses contain `:` and can't be series names).
    pub fn metrics_json(&self) -> Json {
        let mut up = 0u64;
        let mut degraded = 0u64;
        let mut down = 0u64;
        let mut forwarded = 0u64;
        let mut failed_over = 0u64;
        let mut probes = 0u64;
        for p in &self.peers {
            match p.state() {
                PeerState::Up => up += 1,
                PeerState::Degraded => degraded += 1,
                PeerState::Down => down += 1,
            }
            forwarded += p.forwarded.load(Ordering::Relaxed);
            failed_over += p.failed_over.load(Ordering::Relaxed);
            probes += p.probes.load(Ordering::Relaxed);
        }
        Json::Obj(vec![
            ("configured".to_owned(), Json::Uint(self.peers.len() as u64)),
            ("up".to_owned(), Json::Uint(up)),
            ("degraded".to_owned(), Json::Uint(degraded)),
            ("down".to_owned(), Json::Uint(down)),
            ("forwarded".to_owned(), Json::Uint(forwarded)),
            ("failed_over".to_owned(), Json::Uint(failed_over)),
            ("probes".to_owned(), Json::Uint(probes)),
            (
                "pull_rounds".to_owned(),
                Json::Uint(self.pull_rounds.load(Ordering::Relaxed)),
            ),
            (
                "pull_records".to_owned(),
                Json::Uint(self.pull_records.load(Ordering::Relaxed)),
            ),
        ])
    }
}

/// The rendezvous score of `member` for `key`: a splitmix draw seeded by
/// both, so each (key, member) pair gets an independent uniform weight
/// and removing one member only moves that member's keys.
fn rendezvous_score(key_hash: u64, member: &str) -> u64 {
    SplitMix64::new(key_hash ^ fnv1a(member.as_bytes())).next_u64()
}

/// One `Connection: close` HTTP exchange with `deadline` applied to
/// connect, write, and read. The three `peer.*` fault sites fire here
/// with `addr` as the instance target.
fn http_once(
    addr: &str,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    deadline: Duration,
) -> io::Result<HttpResponse> {
    if faults::take_io_at("peer.connect", addr).is_some() {
        return Err(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            format!("injected connect refusal to {addr}"),
        ));
    }
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, format!("bad addr {addr}")))?;
    let mut stream = TcpStream::connect_timeout(&sock, deadline)?;
    stream.set_read_timeout(Some(deadline))?;
    stream.set_write_timeout(Some(deadline))?;

    faults::check_at("peer.request", addr);

    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (k, v) in extra_headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    match faults::take_io_at("peer.recv", addr) {
        Some(faults::IoFault::Error) => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("injected receive error from {addr}"),
            ));
        }
        Some(faults::IoFault::Torn { keep }) => {
            // A mid-body drop: the response died partway through, exactly
            // as if the peer crashed while answering.
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!(
                    "injected mid-body drop from {addr} ({} of {} bytes)",
                    keep.min(raw.len()),
                    raw.len()
                ),
            ));
        }
        None => {}
    }
    crate::client::parse_response(&raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(self_addr: &str, peers: &[&str]) -> PeerSet {
        PeerSet::new(
            self_addr.to_owned(),
            peers.iter().map(|s| (*s).to_owned()).collect(),
            Duration::from_secs(1),
        )
    }

    #[test]
    fn owner_chain_is_membership_order_independent() {
        let a = set("h:1", &["h:2", "h:3"]);
        let b = set("h:2", &["h:3", "h:1"]);
        let c = set("h:3", &["h:1", "h:2"]);
        let addr_of = |ps: &PeerSet, m: Option<&Peer>| {
            m.map_or_else(|| ps.self_addr().to_owned(), |p| p.addr().to_owned())
        };
        for key in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
            let ca: Vec<_> = a
                .owner_chain(key)
                .into_iter()
                .map(|m| addr_of(&a, m))
                .collect();
            let cb: Vec<_> = b
                .owner_chain(key)
                .into_iter()
                .map(|m| addr_of(&b, m))
                .collect();
            let cc: Vec<_> = c
                .owner_chain(key)
                .into_iter()
                .map(|m| addr_of(&c, m))
                .collect();
            assert_eq!(ca, cb, "key {key}: nodes disagree on the chain");
            assert_eq!(cb, cc, "key {key}: nodes disagree on the chain");
            assert_eq!(ca.len(), 3);
        }
    }

    #[test]
    fn ownership_spreads_across_members() {
        let ps = set("h:1", &["h:2", "h:3"]);
        let mut owned = 0;
        for key in 0..300u64 {
            if ps.owns(key) {
                owned += 1;
            }
        }
        // Rendezvous over 3 members: roughly a third each.
        assert!((50..250).contains(&owned), "self owns {owned}/300");
    }

    #[test]
    fn self_and_duplicates_are_filtered_from_the_peer_list() {
        let ps = set("h:1", &["h:1", "h:2", "h:2", "h:3"]);
        let addrs: Vec<_> = ps.peers().iter().map(Peer::addr).collect();
        assert_eq!(addrs, vec!["h:2", "h:3"]);
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_closes_on_success() {
        let ps = set("h:1", &["h:2"]);
        let peer = &ps.peers()[0];
        assert_eq!(peer.state(), PeerState::Up);
        peer.note_failure();
        assert_eq!(peer.state(), PeerState::Degraded);
        assert!(peer.available(), "degraded peers are still routed to");
        peer.note_failure();
        peer.note_failure();
        assert_eq!(peer.state(), PeerState::Down);
        assert!(!peer.available());
        peer.note_success();
        assert_eq!(peer.state(), PeerState::Up);
    }

    #[test]
    fn degraded_cluster_signal_follows_peer_state() {
        let ps = set("h:1", &["h:2", "h:3"]);
        assert!(!ps.degraded());
        ps.peers()[1].note_failure();
        assert!(ps.degraded());
        ps.peers()[1].note_success();
        assert!(!ps.degraded());
    }

    #[test]
    fn healthz_and_metrics_shapes() {
        let ps = set("h:1", &["h:2"]);
        ps.peers()[0].note_failure();
        let h = ps.healthz_json();
        assert_eq!(h.get("state").and_then(Json::as_str), Some("degraded"));
        let members = h.get("members").and_then(Json::as_arr).unwrap();
        assert_eq!(members.len(), 1);
        assert_eq!(
            members[0].get("state").and_then(Json::as_str),
            Some("degraded")
        );
        let m = ps.metrics_json();
        assert_eq!(m.get("configured").and_then(Json::as_u64), Some(1));
        assert_eq!(m.get("degraded").and_then(Json::as_u64), Some(1));
        assert_eq!(m.get("up").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn forward_reaches_a_live_listener_and_notes_success() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 4096];
            let _ = s.read(&mut buf);
            s.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: close\r\n\r\nok")
                .unwrap();
        });
        let ps = set("h:1", &[addr.as_str()]);
        let peer = &ps.peers()[0];
        peer.note_failure();
        let resp = ps.forward(peer, "GET", "/v1/healthz", &[], b"").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(peer.state(), PeerState::Up, "success closes the breaker");
        h.join().unwrap();
    }
}

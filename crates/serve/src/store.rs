//! The persistent result store: an append-only, checksummed log of
//! completed simulation results under `--data-dir`.
//!
//! Simulations are deterministic (DESIGN.md §6), so a result is valid
//! forever; the store makes the content-addressed cache survive restarts.
//! Every completed job appends one record; on startup the log is replayed
//! into the in-memory LRU, so a restarted server answers previously
//! computed jobs (and whole sweeps) from disk with zero re-simulations.
//!
//! ## File format (`results.log`)
//!
//! An 8-byte magic (`UCSTOR01`) followed by records, all integers
//! big-endian:
//!
//! ```text
//! [u64 key_hash][u32 canonical_len][u32 payload_len][u64 checksum]
//! [canonical bytes][payload bytes]
//! ```
//!
//! `key_hash` is the FNV-1a content address of the canonical spec;
//! `checksum` is FNV-1a over the concatenated canonical + payload bytes.
//! Replay stops at the first short or checksum-failing record and
//! truncates the file there, so a crash mid-append costs at most the last
//! record — never the log.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::api::fnv1a;

const MAGIC: &[u8; 8] = b"UCSTOR01";
/// Per-record fixed header: key (8) + lengths (4+4) + checksum (8).
const RECORD_HEADER_BYTES: usize = 24;
/// Replay refuses records larger than this (corrupt length fields would
/// otherwise make it try to allocate garbage).
const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

/// One replayed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreRecord {
    /// Content address of the canonical spec.
    pub key_hash: u64,
    /// The canonical spec string.
    pub canonical: String,
    /// The report payload JSON.
    pub payload: String,
}

/// The append-only result store. All methods take `&self`; a mutex
/// serializes appends.
#[derive(Debug)]
pub struct ResultStore {
    file: Mutex<File>,
    path: PathBuf,
}

impl ResultStore {
    /// Opens (creating if needed) `<dir>/results.log` and replays its
    /// records. A corrupt tail is truncated away; the valid prefix is
    /// returned for cache warm-up.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file I/O errors; a bad magic in
    /// an existing non-empty file maps to [`io::ErrorKind::InvalidData`].
    pub fn open(dir: &Path) -> io::Result<(ResultStore, Vec<StoreRecord>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("results.log");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;

        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let (records, valid_len) = if raw.is_empty() {
            file.write_all(MAGIC)?;
            file.flush()?;
            (Vec::new(), MAGIC.len() as u64)
        } else {
            if raw.len() < MAGIC.len() || &raw[..MAGIC.len()] != MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} is not a ucsim result store", path.display()),
                ));
            }
            replay(&raw[MAGIC.len()..])
        };
        // Chop any corrupt tail so future appends extend the valid prefix
        // (a no-op when the whole log replayed).
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok((
            ResultStore {
                file: Mutex::new(file),
                path,
            },
            records,
        ))
    }

    /// Appends one completed result and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates write errors (the caller logs and carries on — the
    /// in-memory cache still holds the result).
    pub fn append(&self, key_hash: u64, canonical: &str, payload: &str) -> io::Result<()> {
        let record = encode_record(key_hash, canonical, payload);
        let mut file = self.file.lock().expect("store lock");
        file.write_all(&record)?;
        file.flush()
    }

    /// The log's path (for diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn encode_record(key_hash: u64, canonical: &str, payload: &str) -> Vec<u8> {
    let c = canonical.as_bytes();
    let p = payload.as_bytes();
    let mut sum_input = Vec::with_capacity(c.len() + p.len());
    sum_input.extend_from_slice(c);
    sum_input.extend_from_slice(p);
    let checksum = fnv1a(&sum_input);

    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + c.len() + p.len());
    out.extend_from_slice(&key_hash.to_be_bytes());
    out.extend_from_slice(&(c.len() as u32).to_be_bytes());
    out.extend_from_slice(&(p.len() as u32).to_be_bytes());
    out.extend_from_slice(&checksum.to_be_bytes());
    out.extend_from_slice(c);
    out.extend_from_slice(p);
    out
}

/// Walks the record region, returning the valid records and the file
/// length (magic included) of the valid prefix.
fn replay(mut body: &[u8]) -> (Vec<StoreRecord>, u64) {
    let mut records = Vec::new();
    let mut valid = MAGIC.len() as u64;
    while body.len() >= RECORD_HEADER_BYTES {
        let key_hash = u64::from_be_bytes(body[0..8].try_into().expect("8 bytes"));
        let c_len = u32::from_be_bytes(body[8..12].try_into().expect("4 bytes")) as usize;
        let p_len = u32::from_be_bytes(body[12..16].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_be_bytes(body[16..24].try_into().expect("8 bytes"));
        let total = RECORD_HEADER_BYTES + c_len + p_len;
        if c_len + p_len > MAX_RECORD_BYTES || body.len() < total {
            break; // short or absurd tail — truncate here
        }
        let data = &body[RECORD_HEADER_BYTES..total];
        if fnv1a(data) != checksum {
            break;
        }
        let (c, p) = data.split_at(c_len);
        let (Ok(canonical), Ok(payload)) = (
            std::str::from_utf8(c).map(str::to_owned),
            std::str::from_utf8(p).map(str::to_owned),
        ) else {
            break;
        };
        records.push(StoreRecord {
            key_hash,
            canonical,
            payload,
        });
        valid += total as u64;
        body = &body[total..];
    }
    (records, valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ucsim-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = temp_dir("roundtrip");
        {
            let (store, replayed) = ResultStore::open(&dir).unwrap();
            assert!(replayed.is_empty());
            store.append(1, "spec-a", "{\"upc\":1.0}").unwrap();
            store.append(2, "spec-b", "{\"upc\":2.0}").unwrap();
        }
        let (_store, replayed) = ResultStore::open(&dir).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].key_hash, 1);
        assert_eq!(replayed[0].canonical, "spec-a");
        assert_eq!(replayed[1].payload, "{\"upc\":2.0}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_is_truncated_and_appends_continue() {
        let dir = temp_dir("corrupt");
        {
            let (store, _) = ResultStore::open(&dir).unwrap();
            store.append(1, "good", "{\"ok\":true}").unwrap();
        }
        let path = dir.join("results.log");
        // Simulate a crash mid-append: a torn record at the tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x01]).unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let (store, replayed) = ResultStore::open(&dir).unwrap();
        assert_eq!(replayed.len(), 1, "valid prefix survives");
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        store.append(2, "more", "{\"ok\":1}").unwrap();
        drop(store);
        let (_s, replayed) = ResultStore::open(&dir).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[1].canonical, "more");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let dir = temp_dir("checksum");
        {
            let (store, _) = ResultStore::open(&dir).unwrap();
            store.append(7, "spec", "{\"upc\":3.5}").unwrap();
        }
        let path = dir.join("results.log");
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        let (_s, replayed) = ResultStore::open(&dir).unwrap();
        assert!(replayed.is_empty(), "corrupted record must not replay");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_file_is_rejected() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("results.log"), b"not a store at all").unwrap();
        let err = ResultStore::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! The persistent result store: an append-only, checksummed log of
//! terminal job outcomes under `--data-dir`.
//!
//! Simulations are deterministic (DESIGN.md §6), so a result is valid
//! forever; the store makes the content-addressed cache survive restarts.
//! Every completed job appends one `RESULT` record, and every
//! *deterministic* failure (a worker panic — the same spec panics the
//! same way) appends one `FAILED` record. On startup the log is replayed
//! into the in-memory caches, so a restarted server answers previously
//! computed jobs (and whole sweeps) from disk with zero re-simulations —
//! including re-reporting failures without re-running doomed specs.
//! Environment-dependent failures (deadlines, drain) are never persisted.
//!
//! Since v1.2 the log also persists *uploaded programs* (DESIGN.md §11):
//! a `PROGRAM` record's canonical string is the workload ref
//! (`program:<hash>` / `trace:<hash>`) and its payload the program
//! resource JSON, so a restarted server still resolves every workload ref
//! its results refer to — and anti-entropy replicates programs to peers
//! through the same log.
//!
//! ## File format (`results.log`)
//!
//! An 8-byte magic (`UCSTOR03`) followed by records, all integers
//! big-endian:
//!
//! ```text
//! [u8 kind][u64 key_hash][u32 canonical_len][u32 payload_len][u64 checksum]
//! [canonical bytes][payload bytes]
//! ```
//!
//! `kind` is 1 (`RESULT`: payload is the report JSON), 2 (`FAILED`:
//! payload is `{"code":…,"message":…}`) or 3 (`PROGRAM`: payload is the
//! program resource JSON). `key_hash` is the FNV-1a content address of
//! the canonical spec (for programs: of the uploaded bytes); `checksum`
//! is FNV-1a over the concatenated canonical + payload bytes. Replay
//! stops at the first short, unknown-kind, or checksum-failing record and
//! truncates the file there, so a crash mid-append costs at most the last
//! record — never the log. Older logs (`UCSTOR01` — no kind byte, results
//! only — and `UCSTOR02`) are migrated to v3 in place on open.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use ucsim_model::json::Json;
use ucsim_model::FailureKind;
use ucsim_pool::faults;

use crate::api::fnv1a;
use crate::jobs::JobFailure;

const MAGIC: &[u8; 8] = b"UCSTOR03";
const MAGIC_V2: &[u8; 8] = b"UCSTOR02";
const MAGIC_V1: &[u8; 8] = b"UCSTOR01";
/// Per-record fixed header: kind (1) + key (8) + lengths (4+4) +
/// checksum (8).
const RECORD_HEADER_BYTES: usize = 25;
/// v1 had no kind byte.
const RECORD_HEADER_BYTES_V1: usize = 24;
/// Replay refuses records larger than this (corrupt length fields would
/// otherwise make it try to allocate garbage).
const MAX_RECORD_BYTES: usize = 64 * 1024 * 1024;

const KIND_RESULT: u8 = 1;
const KIND_FAILED: u8 = 2;
const KIND_PROGRAM: u8 = 3;

/// What a store record holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A completed simulation; the payload is the report JSON.
    Result,
    /// A deterministic failure; the payload is `{"code":…,"message":…}`.
    Failed,
    /// An uploaded user program; the canonical string is the workload ref
    /// and the payload the program resource JSON (DESIGN.md §11).
    Program,
}

/// One replayed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreRecord {
    /// Record type.
    pub kind: RecordKind,
    /// Content address of the canonical spec.
    pub key_hash: u64,
    /// The canonical spec string.
    pub canonical: String,
    /// The report payload JSON (`Result`) or failure envelope (`Failed`).
    pub payload: String,
}

impl StoreRecord {
    /// Decodes a `Failed` record's payload into a [`JobFailure`]. Returns
    /// `None` for `Result` records or unparseable payloads (treated as
    /// generic simulation failures would be too optimistic — the caller
    /// skips them).
    pub fn failure(&self) -> Option<JobFailure> {
        if self.kind != RecordKind::Failed {
            return None;
        }
        let v = Json::parse(&self.payload).ok()?;
        let kind = FailureKind::parse(v.get("code")?.as_str()?)?;
        let message = v.get("message")?.as_str()?.to_owned();
        let request_id = v
            .get("request_id")
            .and_then(Json::as_str)
            .map(str::to_owned);
        Some(JobFailure {
            kind,
            message,
            request_id,
        })
    }
}

/// Encodes a failure as the `FAILED` record payload.
pub fn failure_payload(failure: &JobFailure) -> String {
    let mut fields = vec![
        (
            "code".to_owned(),
            Json::Str(failure.kind.as_str().to_owned()),
        ),
        ("message".to_owned(), Json::Str(failure.message.clone())),
    ];
    if let Some(id) = &failure.request_id {
        fields.push(("request_id".to_owned(), Json::Str(id.clone())));
    }
    Json::Obj(fields).to_string()
}

/// The append-only result store. All methods take `&self`; a mutex
/// serializes appends.
#[derive(Debug)]
pub struct ResultStore {
    file: Mutex<File>,
    path: PathBuf,
    /// When set, every append is fsync'd (`--durable`).
    durable: bool,
    /// Health flag for `/v1/healthz`: cleared when an append fails, set
    /// again by the next successful append.
    healthy: AtomicBool,
}

impl ResultStore {
    /// Opens (creating if needed) `<dir>/results.log` and replays its
    /// records. A corrupt tail is truncated away; the valid prefix is
    /// returned for cache warm-up. A v1 log is migrated to the v2 format
    /// (atomically, via a temp file + rename). With `durable` set, every
    /// append is fsync'd before returning.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file I/O errors; a bad magic in
    /// an existing non-empty file maps to [`io::ErrorKind::InvalidData`].
    pub fn open(dir: &Path, durable: bool) -> io::Result<(ResultStore, Vec<StoreRecord>)> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("results.log");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;

        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let (records, valid_len) = if raw.is_empty() {
            file.write_all(MAGIC)?;
            file.flush()?;
            (Vec::new(), MAGIC.len() as u64)
        } else if raw.len() >= MAGIC_V1.len() && &raw[..MAGIC_V1.len()] == MAGIC_V1 {
            // v1 log: replay with the old layout, rewrite as v3.
            let records = replay_v1(&raw[MAGIC_V1.len()..]);
            file = rewrite_as_current(dir, &path, &records)?;
            let len = file.seek(SeekFrom::End(0))?;
            (records, len)
        } else if raw.len() >= MAGIC_V2.len() && &raw[..MAGIC_V2.len()] == MAGIC_V2 {
            // v2 log: identical record framing, only the magic moves.
            let (records, _) = replay(&raw[MAGIC_V2.len()..]);
            file = rewrite_as_current(dir, &path, &records)?;
            let len = file.seek(SeekFrom::End(0))?;
            (records, len)
        } else {
            if raw.len() < MAGIC.len() || &raw[..MAGIC.len()] != MAGIC {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} is not a ucsim result store", path.display()),
                ));
            }
            replay(&raw[MAGIC.len()..])
        };
        // Chop any corrupt tail so future appends extend the valid prefix
        // (a no-op when the whole log replayed).
        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok((
            ResultStore {
                file: Mutex::new(file),
                path,
                durable,
                healthy: AtomicBool::new(true),
            },
            records,
        ))
    }

    /// Appends one completed result.
    ///
    /// # Errors
    ///
    /// Propagates write errors (the caller counts and carries on — the
    /// in-memory cache still holds the result).
    pub fn append(&self, key_hash: u64, canonical: &str, payload: &str) -> io::Result<()> {
        self.append_record(KIND_RESULT, key_hash, canonical, payload)
    }

    /// Appends one deterministic failure as a `FAILED` record.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append_failed(
        &self,
        key_hash: u64,
        canonical: &str,
        failure: &JobFailure,
    ) -> io::Result<()> {
        self.append_record(KIND_FAILED, key_hash, canonical, &failure_payload(failure))
    }

    /// Appends one uploaded program: `canonical` is the workload ref
    /// string, `payload` the program resource JSON.
    ///
    /// # Errors
    ///
    /// Propagates write errors (the in-memory registry still holds the
    /// program; only restart durability is lost).
    pub fn append_program(&self, key_hash: u64, canonical: &str, payload: &str) -> io::Result<()> {
        self.append_record(KIND_PROGRAM, key_hash, canonical, payload)
    }

    fn append_record(
        &self,
        kind: u8,
        key_hash: u64,
        canonical: &str,
        payload: &str,
    ) -> io::Result<()> {
        let result = self.append_record_inner(kind, key_hash, canonical, payload);
        self.healthy.store(result.is_ok(), Ordering::Relaxed);
        result
    }

    fn append_record_inner(
        &self,
        kind: u8,
        key_hash: u64,
        canonical: &str,
        payload: &str,
    ) -> io::Result<()> {
        let record = encode_record(kind, key_hash, canonical, payload);
        let mut file = self.file.lock().expect("store lock");
        // Named fault site: chaos tests inject hard I/O errors and torn
        // (partial) writes here to prove the recovery paths.
        match faults::take_io("store.append") {
            Some(faults::IoFault::Error) => {
                return Err(io::Error::other("injected store I/O error"));
            }
            Some(faults::IoFault::Torn { keep }) => {
                let keep = keep.min(record.len());
                file.write_all(&record[..keep])?;
                file.flush()?;
                return Err(io::Error::other(format!(
                    "injected torn write ({keep} of {} bytes)",
                    record.len()
                )));
            }
            None => {}
        }
        file.write_all(&record)?;
        file.flush()?;
        if self.durable {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Reads up to `max_records` verified records starting at byte offset
    /// `since` (an offset of 0 is normalized to the first record, just
    /// past the magic). Returns the records, the byte offset the *next*
    /// pull should use, and whether the verified end of the log was
    /// reached. The cursor never advances past a short, corrupt, or
    /// still-being-written record, so a puller that keeps its returned
    /// offset resumes exactly where verification stopped — the anti-
    /// entropy loop (DESIGN.md §10) relies on this to never replicate a
    /// torn tail.
    ///
    /// Reads use a fresh handle on the log path so concurrent appends via
    /// `self.file` are unaffected.
    ///
    /// # Errors
    ///
    /// Propagates open/read errors on the log file.
    pub fn read_since(
        &self,
        since: u64,
        max_records: usize,
    ) -> io::Result<(Vec<StoreRecord>, u64, bool)> {
        let start = since.max(MAGIC.len() as u64);
        let mut file = File::open(&self.path)?;
        file.seek(SeekFrom::Start(start))?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let (all, valid) = replay(&raw);
        let mut records = all;
        let eof_at_cap = records.len() <= max_records;
        records.truncate(max_records);
        let mut next = start;
        for r in &records {
            next += (RECORD_HEADER_BYTES + r.canonical.len() + r.payload.len()) as u64;
        }
        // `valid` counts from MAGIC.len(); recompute the absolute offset of
        // the verified end to decide eof when nothing was capped away.
        let verified_end = start + (valid - MAGIC.len() as u64);
        let eof = eof_at_cap && next >= verified_end;
        Ok((records, next, eof))
    }

    /// Whether the last append succeeded (`true` before any append).
    /// `/v1/healthz` reports this as store writability.
    pub fn writable(&self) -> bool {
        self.healthy.load(Ordering::Relaxed)
    }

    /// The log's path (for diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether appends fsync (`--durable`).
    pub fn durable(&self) -> bool {
        self.durable
    }
}

/// Rewrites `records` as a fresh current-format log, atomically
/// replacing `path`.
fn rewrite_as_current(dir: &Path, path: &Path, records: &[StoreRecord]) -> io::Result<File> {
    let tmp = dir.join("results.log.migrate");
    let mut out = Vec::with_capacity(MAGIC.len() + records.len() * 128);
    out.extend_from_slice(MAGIC);
    for r in records {
        let kind = match r.kind {
            RecordKind::Result => KIND_RESULT,
            RecordKind::Failed => KIND_FAILED,
            RecordKind::Program => KIND_PROGRAM,
        };
        out.extend_from_slice(&encode_record(kind, r.key_hash, &r.canonical, &r.payload));
    }
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&out)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    OpenOptions::new().read(true).write(true).open(path)
}

fn encode_record(kind: u8, key_hash: u64, canonical: &str, payload: &str) -> Vec<u8> {
    let c = canonical.as_bytes();
    let p = payload.as_bytes();
    let mut sum_input = Vec::with_capacity(c.len() + p.len());
    sum_input.extend_from_slice(c);
    sum_input.extend_from_slice(p);
    let checksum = fnv1a(&sum_input);

    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES + c.len() + p.len());
    out.push(kind);
    out.extend_from_slice(&key_hash.to_be_bytes());
    out.extend_from_slice(&(c.len() as u32).to_be_bytes());
    out.extend_from_slice(&(p.len() as u32).to_be_bytes());
    out.extend_from_slice(&checksum.to_be_bytes());
    out.extend_from_slice(c);
    out.extend_from_slice(p);
    out
}

/// Walks the v2 record region, returning the valid records and the file
/// length (magic included) of the valid prefix.
fn replay(mut body: &[u8]) -> (Vec<StoreRecord>, u64) {
    let mut records = Vec::new();
    let mut valid = MAGIC.len() as u64;
    while body.len() >= RECORD_HEADER_BYTES {
        let kind = match body[0] {
            KIND_RESULT => RecordKind::Result,
            KIND_FAILED => RecordKind::Failed,
            KIND_PROGRAM => RecordKind::Program,
            _ => break, // unknown kind — truncate here
        };
        let key_hash = u64::from_be_bytes(body[1..9].try_into().expect("8 bytes"));
        let c_len = u32::from_be_bytes(body[9..13].try_into().expect("4 bytes")) as usize;
        let p_len = u32::from_be_bytes(body[13..17].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_be_bytes(body[17..25].try_into().expect("8 bytes"));
        let total = RECORD_HEADER_BYTES + c_len + p_len;
        if c_len + p_len > MAX_RECORD_BYTES || body.len() < total {
            break; // short or absurd tail — truncate here
        }
        let data = &body[RECORD_HEADER_BYTES..total];
        if fnv1a(data) != checksum {
            break;
        }
        let (c, p) = data.split_at(c_len);
        let (Ok(canonical), Ok(payload)) = (
            std::str::from_utf8(c).map(str::to_owned),
            std::str::from_utf8(p).map(str::to_owned),
        ) else {
            break;
        };
        records.push(StoreRecord {
            kind,
            key_hash,
            canonical,
            payload,
        });
        valid += total as u64;
        body = &body[total..];
    }
    (records, valid)
}

/// Replays a v1 (`UCSTOR01`) record region: same framing minus the kind
/// byte; every record is a result. Only used for migration — the corrupt
/// tail is simply dropped (the rewrite keeps the valid prefix).
fn replay_v1(mut body: &[u8]) -> Vec<StoreRecord> {
    let mut records = Vec::new();
    while body.len() >= RECORD_HEADER_BYTES_V1 {
        let key_hash = u64::from_be_bytes(body[0..8].try_into().expect("8 bytes"));
        let c_len = u32::from_be_bytes(body[8..12].try_into().expect("4 bytes")) as usize;
        let p_len = u32::from_be_bytes(body[12..16].try_into().expect("4 bytes")) as usize;
        let checksum = u64::from_be_bytes(body[16..24].try_into().expect("8 bytes"));
        let total = RECORD_HEADER_BYTES_V1 + c_len + p_len;
        if c_len + p_len > MAX_RECORD_BYTES || body.len() < total {
            break;
        }
        let data = &body[RECORD_HEADER_BYTES_V1..total];
        if fnv1a(data) != checksum {
            break;
        }
        let (c, p) = data.split_at(c_len);
        let (Ok(canonical), Ok(payload)) = (
            std::str::from_utf8(c).map(str::to_owned),
            std::str::from_utf8(p).map(str::to_owned),
        ) else {
            break;
        };
        records.push(StoreRecord {
            kind: RecordKind::Result,
            key_hash,
            canonical,
            payload,
        });
        body = &body[total..];
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ucsim-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_then_reopen_replays_in_order() {
        let dir = temp_dir("roundtrip");
        {
            let (store, replayed) = ResultStore::open(&dir, false).unwrap();
            assert!(replayed.is_empty());
            store.append(1, "spec-a", "{\"upc\":1.0}").unwrap();
            store.append(2, "spec-b", "{\"upc\":2.0}").unwrap();
        }
        let (_store, replayed) = ResultStore::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].kind, RecordKind::Result);
        assert_eq!(replayed[0].key_hash, 1);
        assert_eq!(replayed[0].canonical, "spec-a");
        assert_eq!(replayed[1].payload, "{\"upc\":2.0}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_records_round_trip() {
        let dir = temp_dir("failed");
        let failure = JobFailure::new(FailureKind::SimulationFailed, "panicked at 'boom'");
        {
            let (store, _) = ResultStore::open(&dir, false).unwrap();
            store.append(1, "spec-ok", "{\"upc\":1.0}").unwrap();
            store.append_failed(2, "spec-bad", &failure).unwrap();
        }
        let (_store, replayed) = ResultStore::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].failure(), None, "result record has no failure");
        assert_eq!(replayed[1].kind, RecordKind::Failed);
        assert_eq!(replayed[1].failure(), Some(failure));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_tail_is_truncated_and_appends_continue() {
        let dir = temp_dir("corrupt");
        {
            let (store, _) = ResultStore::open(&dir, false).unwrap();
            store.append(1, "good", "{\"ok\":true}").unwrap();
        }
        let path = dir.join("results.log");
        // Simulate a crash mid-append: a torn record at the tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[KIND_RESULT, 0xde, 0xad, 0xbe, 0xef, 0x01])
                .unwrap();
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let (store, replayed) = ResultStore::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 1, "valid prefix survives");
        assert!(std::fs::metadata(&path).unwrap().len() < before);
        store.append(2, "more", "{\"ok\":1}").unwrap();
        drop(store);
        let (_s, replayed) = ResultStore::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[1].canonical, "more");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_payload_byte_fails_the_checksum() {
        let dir = temp_dir("checksum");
        {
            let (store, _) = ResultStore::open(&dir, false).unwrap();
            store.append(7, "spec", "{\"upc\":3.5}").unwrap();
        }
        let path = dir.join("results.log");
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        let (_s, replayed) = ResultStore::open(&dir, false).unwrap();
        assert!(replayed.is_empty(), "corrupted record must not replay");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unknown_record_kind_truncates() {
        let dir = temp_dir("kind");
        {
            let (store, _) = ResultStore::open(&dir, false).unwrap();
            store.append(1, "good", "{\"ok\":true}").unwrap();
        }
        let path = dir.join("results.log");
        {
            // A whole, checksummed record with an unknown kind byte.
            let mut rec = encode_record(KIND_RESULT, 9, "x", "y");
            rec[0] = 77;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&rec).unwrap();
        }
        let (_s, replayed) = ResultStore::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 1, "unknown kind stops replay");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_log_migrates_to_v2_preserving_records() {
        let dir = temp_dir("migrate");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.log");
        // Hand-build a v1 log: magic + two kind-less records.
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC_V1);
        for (key, canonical, payload) in [(1u64, "spec-a", "{\"upc\":1.0}"), (2, "spec-b", "{}")] {
            let v2 = encode_record(KIND_RESULT, key, canonical, payload);
            raw.extend_from_slice(&v2[1..]); // drop the kind byte → v1 layout
        }
        std::fs::write(&path, &raw).unwrap();

        let (store, replayed) = ResultStore::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].canonical, "spec-a");
        assert_eq!(replayed[1].key_hash, 2);
        // The file on disk is now v2 and keeps working.
        let head = std::fs::read(&path).unwrap();
        assert_eq!(&head[..8], MAGIC);
        store
            .append_failed(
                3,
                "spec-c",
                &JobFailure::new(FailureKind::SimulationFailed, "nope"),
            )
            .unwrap();
        drop(store);
        let (_s, replayed) = ResultStore::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 3);
        assert_eq!(replayed[2].kind, RecordKind::Failed);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_log_migrates_to_v3_preserving_records() {
        let dir = temp_dir("migrate-v2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.log");
        // Hand-build a v2 log: old magic, same record framing.
        let mut raw = Vec::new();
        raw.extend_from_slice(MAGIC_V2);
        raw.extend_from_slice(&encode_record(KIND_RESULT, 1, "spec-a", "{\"upc\":1.0}"));
        raw.extend_from_slice(&encode_record(KIND_FAILED, 2, "spec-b", "{\"code\":\"x\"}"));
        std::fs::write(&path, &raw).unwrap();

        let (store, replayed) = ResultStore::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].canonical, "spec-a");
        assert_eq!(replayed[1].kind, RecordKind::Failed);
        let head = std::fs::read(&path).unwrap();
        assert_eq!(&head[..8], MAGIC);
        store.append(3, "spec-c", "{}").unwrap();
        drop(store);
        let (_s, replayed) = ResultStore::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn program_records_round_trip() {
        let dir = temp_dir("program");
        {
            let (store, _) = ResultStore::open(&dir, false).unwrap();
            store
                .append_program(0xabcd, "program:000000000000abcd", "{\"kind\":\"asm\"}")
                .unwrap();
            store.append(1, "spec", "{\"upc\":1.0}").unwrap();
        }
        let (_s, replayed) = ResultStore::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 2);
        assert_eq!(replayed[0].kind, RecordKind::Program);
        assert_eq!(replayed[0].key_hash, 0xabcd);
        assert_eq!(replayed[0].canonical, "program:000000000000abcd");
        assert_eq!(replayed[0].payload, "{\"kind\":\"asm\"}");
        assert_eq!(replayed[0].failure(), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_file_is_rejected() {
        let dir = temp_dir("foreign");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("results.log"), b"not a store at all").unwrap();
        let err = ResultStore::open(&dir, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_reports_writable_after_successful_appends() {
        let dir = temp_dir("writable");
        let (store, _) = ResultStore::open(&dir, false).unwrap();
        assert!(store.writable(), "fresh store is presumed writable");
        store.append(1, "spec", "{}").unwrap();
        assert!(store.writable());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failure_payload_round_trips_request_id() {
        let f = JobFailure::new(FailureKind::SimulationFailed, "boom").with_request_id("req-12ab");
        let rec = StoreRecord {
            kind: RecordKind::Failed,
            key_hash: 1,
            canonical: "spec".to_owned(),
            payload: failure_payload(&f),
        };
        assert_eq!(rec.failure(), Some(f));
    }

    #[test]
    fn read_since_pages_through_the_log() {
        let dir = temp_dir("read-since");
        let (store, _) = ResultStore::open(&dir, false).unwrap();
        for i in 0..5u64 {
            store
                .append(i, &format!("spec-{i}"), &format!("{{\"n\":{i}}}"))
                .unwrap();
        }
        let (page1, next1, eof1) = store.read_since(0, 2).unwrap();
        assert_eq!(page1.len(), 2);
        assert_eq!(page1[0].key_hash, 0);
        assert!(!eof1, "three records remain");
        let (page2, next2, eof2) = store.read_since(next1, 10).unwrap();
        assert_eq!(page2.len(), 3);
        assert_eq!(page2[0].key_hash, 2);
        assert!(eof2);
        let (page3, next3, eof3) = store.read_since(next2, 10).unwrap();
        assert!(page3.is_empty());
        assert_eq!(next3, next2, "cursor is stable at eof");
        assert!(eof3);
        // New appends become visible from the saved cursor.
        store.append(9, "spec-9", "{}").unwrap();
        let (page4, _, eof4) = store.read_since(next3, 10).unwrap();
        assert_eq!(page4.len(), 1);
        assert_eq!(page4[0].key_hash, 9);
        assert!(eof4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_since_stops_before_a_corrupt_tail() {
        let dir = temp_dir("read-since-corrupt");
        let (store, _) = ResultStore::open(&dir, false).unwrap();
        store.append(1, "good", "{\"ok\":true}").unwrap();
        let (_, clean_end, _) = store.read_since(0, 10).unwrap();
        // A torn half-record at the tail, as a crash mid-append leaves it.
        {
            let mut f = OpenOptions::new().append(true).open(store.path()).unwrap();
            f.write_all(&[KIND_RESULT, 0xde, 0xad]).unwrap();
        }
        let (records, next, eof) = store.read_since(0, 10).unwrap();
        assert_eq!(records.len(), 1, "only the verified prefix is served");
        assert_eq!(next, clean_end, "cursor never passes the corruption");
        assert!(eof, "verified end reached");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_store_appends_and_replays() {
        let dir = temp_dir("durable");
        {
            let (store, _) = ResultStore::open(&dir, true).unwrap();
            assert!(store.durable());
            store.append(1, "spec", "{\"upc\":1.0}").unwrap();
        }
        let (_s, replayed) = ResultStore::open(&dir, false).unwrap();
        assert_eq!(replayed.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

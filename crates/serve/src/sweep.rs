//! Sweep *plans* for `POST /v1/matrix`: request expansion into per-cell
//! job specs, store-aware cell resolution, per-plan progress counters,
//! adaptive-refinement frontier tracking, and final aggregation into a
//! [`SweepReport`].
//!
//! A plan is a set of content-addressed cells scheduled through the same
//! fair-share scheduler as single jobs. At materialization time each cell
//! independently resolves from the result cache/store (counted as
//! *skipped*), joins an in-flight job for the same key, or enqueues a
//! fresh simulation — so overlapping sweeps, repeated sweeps, and
//! restarts (via the persistent store) all dedup cell-by-cell, and a
//! re-submitted completed sweep simulates zero cells.
//!
//! Full-mode plans materialize every cell of the capacity × policy cross
//! up front. Adaptive plans materialize one capacity *wave* at a time,
//! driven by a [`KneeBisector`](ucsim_pipeline::KneeBisector) until the
//! UPC knee is bracketed; the probed frontier is reported by
//! `GET /v1/matrix/:id`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ucsim_bench::{MatrixCross, SweepPolicy};
use ucsim_model::json::Json;
use ucsim_model::{FromJson, ToJson, WorkloadRef};
use ucsim_pipeline::{LabeledConfig, SimReport, SweepCellReport, SweepReport};

use crate::api::{self, ErrorCode, JobSpec, MatrixRequest};
use crate::jobs::{JobCell, JobFailure, JobState};

/// Hard ceiling on cells per sweep (guards against a typo'd cross
/// exploding the scheduler; the unbounded plan path relies on it).
pub const MAX_SWEEP_CELLS: usize = 1024;

/// Immutable identity of one sweep cell.
#[derive(Debug, Clone)]
pub struct CellMeta {
    /// Workload name.
    pub workload: String,
    /// Configuration label from the matrix cross (`OC_2K`, `F-PWAC`, …).
    pub label: String,
    /// Effective generation seed.
    pub seed: u64,
    /// The fully-resolved job spec.
    pub spec: JobSpec,
    /// The spec's canonical encoding.
    pub canonical: String,
    /// FNV-1a content address of `canonical`.
    pub key_hash: u64,
}

impl CellMeta {
    /// The recorded-stream identity of this cell: cells sharing a
    /// workload × seed × run length replay one trace from the server's
    /// [`ucsim_trace::TraceStore`], whatever their configuration axes.
    pub fn trace_key(&self) -> ucsim_trace::TraceKey {
        self.spec.trace_key()
    }
}

/// Where a cell currently stands.
enum CellSlot {
    /// Materialized but not yet resolved against store/job table (a
    /// momentary state inside plan construction).
    Planned,
    /// Riding a queued/running job.
    Waiting(Arc<JobCell>),
    /// Finished; holds the bare report payload and — when the cell
    /// actually executed (not a cache hit) — its execution profile.
    Done(Arc<String>, Option<Arc<ucsim_obs::JobProfile>>),
    /// Failed; holds the stable error code and message.
    Failed(JobFailure),
}

/// One cell: identity plus mutable progress.
pub struct SweepCell {
    /// The cell's identity.
    pub meta: CellMeta,
    slot: Mutex<CellSlot>,
}

/// One `SweepCell::poll` observation:
/// `(state_name, payload_if_done, failure_if_failed, profile)`.
type CellPoll = (
    &'static str,
    Option<Arc<String>>,
    Option<JobFailure>,
    Option<Arc<ucsim_obs::JobProfile>>,
);

impl SweepCell {
    /// Advances `Waiting` cells whose job has settled, then reports
    /// `(state_name, payload_if_done, failure_if_failed, profile)`.
    fn poll(&self) -> CellPoll {
        let mut slot = self.slot.lock().expect("cell lock");
        if let CellSlot::Waiting(job) = &*slot {
            match job.state() {
                JobState::Done(_) => {
                    let payload = job
                        .payload()
                        .unwrap_or_else(|| Arc::new(String::from("null")));
                    *slot = CellSlot::Done(payload, job.profile());
                }
                JobState::Failed(failure) => *slot = CellSlot::Failed(failure),
                _ => {}
            }
        }
        match &*slot {
            CellSlot::Planned => ("queued", None, None, None),
            CellSlot::Waiting(job) => (job.state().name(), None, None, None),
            CellSlot::Done(p, prof) => ("done", Some(Arc::clone(p)), None, prof.clone()),
            CellSlot::Failed(failure) => ("failed", None, Some(failure.clone()), None),
        }
    }

    /// Blocks until the cell settles (its job completes/fails, or it was
    /// fulfilled/failed directly) and returns the final poll. The
    /// adaptive-plan driver waits on whole waves with this.
    pub fn wait_settled(&self) -> (Option<Arc<String>>, Option<JobFailure>) {
        loop {
            let job = match &*self.slot.lock().expect("cell lock") {
                CellSlot::Waiting(job) => Some(Arc::clone(job)),
                _ => None,
            };
            if let Some(job) = job {
                let _ = job.wait();
            }
            let (state, payload, failure, _) = self.poll();
            if state == "done" || state == "failed" {
                return (payload, failure);
            }
            // Still `Planned` (materialized but mid-resolution): back off
            // until the resolver attaches or settles it.
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}

/// The refinement frontier of an adaptive plan, for `GET /v1/matrix/:id`.
#[derive(Debug, Clone)]
pub struct Frontier {
    /// The refined axis (`"capacity"`).
    pub axis: String,
    /// Relative knee tolerance.
    pub tolerance: f64,
    /// The full capacity axis, ascending (uops).
    pub capacities: Vec<u64>,
    /// Capacities probed (simulated or resolved from store) so far.
    pub probed: Vec<u64>,
    /// Current open bracket `(below, at-or-above)` in uops.
    pub bracket: Option<(u64, u64)>,
    /// The knee capacity once bracketed to adjacent axis points.
    pub knee: Option<u64>,
}

impl Frontier {
    fn to_json(&self) -> Json {
        let mut obj = vec![
            ("axis".to_owned(), Json::Str(self.axis.clone())),
            ("tolerance".to_owned(), Json::Float(self.tolerance)),
            (
                "capacities".to_owned(),
                Json::Arr(self.capacities.iter().map(|&c| Json::Uint(c)).collect()),
            ),
            (
                "probed".to_owned(),
                Json::Arr(self.probed.iter().map(|&c| Json::Uint(c)).collect()),
            ),
        ];
        if let Some((lo, hi)) = self.bracket {
            obj.push((
                "bracket".to_owned(),
                Json::Arr(vec![Json::Uint(lo), Json::Uint(hi)]),
            ));
        }
        if let Some(knee) = self.knee {
            obj.push(("knee".to_owned(), Json::Uint(knee)));
        }
        Json::Obj(obj)
    }
}

/// Creation-time options of a plan.
#[derive(Debug, Clone)]
pub struct PlanOptions {
    /// Fair-share tenant the plan's cells are charged to.
    pub tenant: String,
    /// Scheduling priority within the tenant (higher first).
    pub priority: u64,
    /// True for adaptive-refinement plans (cells arrive in waves).
    pub adaptive: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            tenant: "default".to_owned(),
            priority: 0,
            adaptive: false,
        }
    }
}

/// A sweep plan in flight (or finished).
pub struct Sweep {
    /// Sweep identifier, monotonically assigned per server.
    pub id: u64,
    /// Unix seconds when the sweep was registered.
    pub created_at: u64,
    /// Fair-share tenant the plan's cells are charged to.
    pub tenant: String,
    /// Scheduling priority within the tenant (higher first).
    pub priority: u64,
    /// True for adaptive plans.
    pub adaptive: bool,
    cells: Mutex<Vec<Arc<SweepCell>>>,
    /// Cells resolved from the result cache/store at materialization —
    /// never simulated by this plan.
    skipped_from_store: AtomicU64,
    /// Cells fulfilled by a peer node (scatter-gather federation); they
    /// still count as simulated unless the peer answered from its cache.
    remote_done: AtomicU64,
    /// True once no further cells will be materialized (immediately for
    /// full plans; when the driver finishes for adaptive ones).
    materialized: AtomicBool,
    cancelled: AtomicBool,
    frontier: Mutex<Option<Frontier>>,
    /// Memoized final response body, built once the plan settles.
    final_body: Mutex<Option<Arc<Vec<u8>>>>,
}

impl Sweep {
    fn new(id: u64, opts: PlanOptions) -> Sweep {
        Sweep {
            id,
            created_at: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
            tenant: opts.tenant,
            priority: opts.priority,
            adaptive: opts.adaptive,
            cells: Mutex::new(Vec::new()),
            skipped_from_store: AtomicU64::new(0),
            remote_done: AtomicU64::new(0),
            materialized: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            frontier: Mutex::new(None),
            final_body: Mutex::new(None),
        }
    }

    /// Appends a wave of cells, returning the index of the first. The
    /// caller resolves each appended cell (attach / fulfill / fail).
    pub fn push_cells(&self, metas: Vec<CellMeta>) -> usize {
        let mut cells = self.cells.lock().expect("sweep lock");
        let start = cells.len();
        cells.extend(metas.into_iter().map(|meta| {
            Arc::new(SweepCell {
                meta,
                slot: Mutex::new(CellSlot::Planned),
            })
        }));
        start
    }

    /// A snapshot of the cells, in materialization order.
    pub fn cells(&self) -> Vec<Arc<SweepCell>> {
        self.cells.lock().expect("sweep lock").clone()
    }

    /// Number of cells materialized so far.
    pub fn total(&self) -> usize {
        self.cells.lock().expect("sweep lock").len()
    }

    /// Resolves cell `idx` from `Planned` to `slot`; a no-op when the
    /// cell already resolved (e.g. a concurrent cancel beat us to it).
    /// Returns whether the resolution applied.
    fn resolve(&self, idx: usize, slot: CellSlot) -> bool {
        let cell = Arc::clone(&self.cells.lock().expect("sweep lock")[idx]);
        let mut guard = cell.slot.lock().expect("cell lock");
        if matches!(*guard, CellSlot::Planned) {
            *guard = slot;
            true
        } else {
            false
        }
    }

    /// Marks cell `idx` as riding `job`.
    pub fn attach(&self, idx: usize, job: Arc<JobCell>) {
        self.resolve(idx, CellSlot::Waiting(job));
    }

    /// Marks cell `idx` as done with its payload (a fresh cache hit made
    /// by another in-flight job, so no execution profile).
    pub fn fulfill(&self, idx: usize, payload: Arc<String>) {
        self.resolve(idx, CellSlot::Done(payload, None));
    }

    /// Marks cell `idx` as resolved from the result cache/store at
    /// materialization: done without simulating, counted in
    /// `skipped_from_store`.
    pub fn fulfill_from_store(&self, idx: usize, payload: Arc<String>) {
        if self.resolve(idx, CellSlot::Done(payload, None)) {
            self.skipped_from_store.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Marks cell `idx` as done with a payload simulated by a peer node
    /// (scatter-gather): counted in `remote_done`, and in
    /// `skipped_from_store` too when the peer answered from its cache —
    /// nobody simulated anything for it this time.
    pub fn fulfill_remote(&self, idx: usize, payload: Arc<String>, peer_cached: bool) {
        if self.resolve(idx, CellSlot::Done(payload, None)) {
            self.remote_done.fetch_add(1, Ordering::AcqRel);
            if peer_cached {
                self.skipped_from_store.fetch_add(1, Ordering::AcqRel);
            }
        }
    }

    /// Marks cell `idx` as failed with a stable error code and message.
    pub fn fail(&self, idx: usize, failure: JobFailure) {
        self.resolve(idx, CellSlot::Failed(failure));
    }

    /// Declares the plan fully materialized: no further cells will be
    /// appended, so the plan settles once every present cell does.
    pub fn mark_materialized(&self) {
        self.materialized.store(true, Ordering::Release);
    }

    /// Publishes the adaptive driver's current refinement frontier.
    pub fn set_frontier(&self, frontier: Frontier) {
        *self.frontier.lock().expect("sweep lock") = Some(frontier);
    }

    /// True once [`cancel`](Self::cancel) ran.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Cancels the plan: every unsettled cell fails with the stable
    /// `cancelled` code, its job's cancel token flips (the scheduler
    /// preempts still-queued entries; running simulations bail
    /// cooperatively), and adaptive drivers stop materializing waves.
    ///
    /// Returns the jobs whose tokens were flipped, so the caller can
    /// release their content keys in the job table. Idempotent.
    pub fn cancel(&self) -> Vec<Arc<JobCell>> {
        self.cancelled.store(true, Ordering::Release);
        let mut flipped = Vec::new();
        for cell in self.cells() {
            let job = {
                let mut slot = cell.slot.lock().expect("cell lock");
                match &*slot {
                    CellSlot::Planned => {
                        // Mid-materialization: settle it here; the
                        // resolver's later attach/fulfill will no-op.
                        *slot = CellSlot::Failed(JobFailure::new(
                            ucsim_model::FailureKind::Cancelled,
                            format!("sweep {} cancelled", self.id),
                        ));
                        None
                    }
                    CellSlot::Waiting(job) => Some(Arc::clone(job)),
                    _ => None,
                }
            };
            let Some(job) = job else { continue };
            if job.fail(JobFailure::new(
                ucsim_model::FailureKind::Cancelled,
                format!("sweep {} cancelled", self.id),
            )) {
                job.cancel_token().cancel();
                flipped.push(job);
            }
        }
        self.mark_materialized();
        flipped
    }

    /// Builds the `GET /v1/matrix/:id` response body: plan counters
    /// (`planned` / `skipped_from_store` / `simulated` / `failed`),
    /// per-cell state, the adaptive frontier when present, and — once the
    /// plan settles — the aggregated [`SweepReport`] over the cells that
    /// succeeded.
    ///
    /// The terminal state is `"done"` when every cell succeeded,
    /// `"partial"` when some succeeded and some failed, and `"failed"`
    /// when every cell failed. Failed cells carry a nested
    /// `"error": {"code", "message"}` object with a stable code; a sweep
    /// with failures still completes rather than hanging its pollers.
    pub fn status_body(&self) -> Arc<Vec<u8>> {
        if let Some(body) = self.final_body.lock().expect("sweep lock").clone() {
            return body;
        }
        let cells = self.cells();
        let polls: Vec<CellPoll> = cells.iter().map(|c| c.poll()).collect();
        let done = polls.iter().filter(|(s, _, _, _)| *s == "done").count();
        let failed = polls.iter().filter(|(s, _, _, _)| *s == "failed").count();
        let materialized = self.materialized.load(Ordering::Acquire);
        let settled = materialized && done + failed == cells.len();
        let state = if !settled {
            "running"
        } else if failed == 0 {
            "done"
        } else if done == 0 {
            "failed"
        } else {
            "partial"
        };
        let skipped = self.skipped_from_store.load(Ordering::Acquire);
        let simulated = (done as u64).saturating_sub(skipped);

        let cells_json: Vec<Json> = cells
            .iter()
            .zip(&polls)
            .map(|(cell, (state, _, err, _))| {
                let mut obj = vec![
                    ("workload".to_owned(), Json::Str(cell.meta.workload.clone())),
                    ("label".to_owned(), Json::Str(cell.meta.label.clone())),
                    ("seed".to_owned(), Json::Uint(cell.meta.seed)),
                    (
                        "key".to_owned(),
                        Json::Str(api::format_key(cell.meta.key_hash)),
                    ),
                    ("state".to_owned(), Json::Str((*state).to_owned())),
                ];
                if let Some(failure) = err {
                    let mut err_obj = vec![
                        ("code".to_owned(), Json::Str(failure.kind.to_string())),
                        ("message".to_owned(), Json::Str(failure.message.clone())),
                    ];
                    if let Some(rid) = &failure.request_id {
                        err_obj.push(("request_id".to_owned(), Json::Str(rid.clone())));
                    }
                    obj.push(("error".to_owned(), Json::Obj(err_obj)));
                }
                Json::Obj(obj)
            })
            .collect();

        // Aggregate the execution profiles of every cell that actually ran
        // (cache hits carry none). Omitted entirely when nothing ran.
        let mut agg_profile = ucsim_obs::JobProfile::default();
        let mut profiled = false;
        for (_, _, _, prof) in &polls {
            if let Some(p) = prof {
                agg_profile.merge(p);
                profiled = true;
            }
        }

        let mut head_obj = vec![
            ("id".to_owned(), Json::Uint(self.id)),
            ("state".to_owned(), Json::Str(state.to_owned())),
            ("created_at".to_owned(), Json::Uint(self.created_at)),
            ("tenant".to_owned(), Json::Str(self.tenant.clone())),
            ("priority".to_owned(), Json::Uint(self.priority)),
            (
                "mode".to_owned(),
                Json::Str(if self.adaptive { "adaptive" } else { "full" }.to_owned()),
            ),
            ("total".to_owned(), Json::Uint(cells.len() as u64)),
            ("planned".to_owned(), Json::Uint(cells.len() as u64)),
            ("skipped_from_store".to_owned(), Json::Uint(skipped)),
            (
                "remote_done".to_owned(),
                Json::Uint(self.remote_done.load(Ordering::Acquire)),
            ),
            ("simulated".to_owned(), Json::Uint(simulated)),
            ("done".to_owned(), Json::Uint(done as u64)),
            ("failed".to_owned(), Json::Uint(failed as u64)),
        ];
        if let Some(frontier) = self.frontier.lock().expect("sweep lock").as_ref() {
            head_obj.push(("frontier".to_owned(), frontier.to_json()));
        }
        if profiled {
            head_obj.push(("profile".to_owned(), agg_profile.to_json()));
        }
        head_obj.push(("cells".to_owned(), Json::Arr(cells_json)));
        let head = Json::Obj(head_obj);

        if !settled {
            return Arc::new(head.to_string().into_bytes());
        }

        // Every cell settled: aggregate the successful ones. Decode the
        // canonical payloads back into reports; re-encoding is
        // byte-identical (canonical JSON, bit-exact f64 round-trips), so
        // served cells equal offline `run_matrix` output.
        let mut report_cells = Vec::with_capacity(done);
        for (cell, (_, payload, _, _)) in cells.iter().zip(&polls) {
            let Some(payload) = payload.as_ref() else {
                continue;
            };
            let report = match SimReport::from_json_str(payload) {
                Ok(r) => r,
                Err(e) => {
                    // Undecodable payload (should be impossible): report
                    // the sweep as failed rather than panicking a handler.
                    let mut out = head.to_string();
                    out.truncate(out.len() - 1);
                    out.push_str(&format!(
                        ",\"aggregate_error\":{}}}",
                        Json::Str(format!("cell {} payload: {e}", cell.meta.label))
                    ));
                    return Arc::new(out.into_bytes());
                }
            };
            report_cells.push(SweepCellReport {
                workload: cell.meta.workload.clone(),
                label: cell.meta.label.clone(),
                seed: cell.meta.seed,
                report,
            });
        }
        let mut out = head.to_string();
        if !report_cells.is_empty() {
            let aggregate = SweepReport::from_cells(report_cells);
            let encoded = aggregate.to_json_string();
            out.truncate(out.len() - 1); // strip trailing '}'
            out.push_str(",\"report\":");
            out.push_str(&encoded);
            out.push('}');
        }
        let body = Arc::new(out.into_bytes());
        *self.final_body.lock().expect("sweep lock") = Some(Arc::clone(&body));
        body
    }

    /// The plan's lifecycle name as `status_body` would report it, for
    /// `GET /v1/matrix` state filtering without building full bodies.
    pub fn state_name(&self) -> &'static str {
        let cells = self.cells();
        let polls: Vec<CellPoll> = cells.iter().map(|c| c.poll()).collect();
        let done = polls.iter().filter(|(s, _, _, _)| *s == "done").count();
        let failed = polls.iter().filter(|(s, _, _, _)| *s == "failed").count();
        if !(self.materialized.load(Ordering::Acquire) && done + failed == cells.len()) {
            "running"
        } else if failed == 0 {
            "done"
        } else if done == 0 {
            "failed"
        } else {
            "partial"
        }
    }
}

struct TableInner {
    sweeps: HashMap<u64, Arc<Sweep>>,
    order: Vec<u64>,
    next_id: u64,
}

/// The server's sweep registry; retains the most recent `retain` sweeps.
pub struct SweepTable {
    inner: Mutex<TableInner>,
    retain: usize,
}

impl SweepTable {
    /// Creates a table retaining at most `retain` sweeps.
    pub fn new(retain: usize) -> SweepTable {
        SweepTable {
            inner: Mutex::new(TableInner {
                sweeps: HashMap::new(),
                order: Vec::new(),
                next_id: 1,
            }),
            retain: retain.max(1),
        }
    }

    /// Registers a new plan. The caller materializes cells with
    /// [`Sweep::push_cells`] and resolves them; full-mode plans should
    /// then [`Sweep::mark_materialized`] immediately.
    pub fn create(&self, opts: PlanOptions) -> Arc<Sweep> {
        let mut t = self.inner.lock().expect("sweep table lock");
        let id = t.next_id;
        t.next_id += 1;
        let sweep = Arc::new(Sweep::new(id, opts));
        t.sweeps.insert(id, Arc::clone(&sweep));
        t.order.push(id);
        while t.order.len() > self.retain {
            let old = t.order.remove(0);
            t.sweeps.remove(&old);
        }
        sweep
    }

    /// Looks up a sweep by id.
    pub fn get(&self, id: u64) -> Option<Arc<Sweep>> {
        self.inner
            .lock()
            .expect("sweep table lock")
            .sweeps
            .get(&id)
            .map(Arc::clone)
    }

    /// Every retained sweep, ascending by id — the `GET /v1/matrix`
    /// listing; state filtering is the handler's.
    pub fn list(&self) -> Vec<Arc<Sweep>> {
        let t = self.inner.lock().expect("sweep table lock");
        let mut sweeps: Vec<Arc<Sweep>> = t.sweeps.values().map(Arc::clone).collect();
        sweeps.sort_by_key(|s| s.id);
        sweeps
    }
}

/// The validated axes of a matrix request, able to expand the full cross
/// or a single-capacity wave with labels identical to the full cross.
pub struct PlanAxes {
    workloads: Vec<String>,
    capacities: Vec<usize>,
    /// The full cross's labeled configurations, capacity-major (the
    /// order [`MatrixCross::expand`] produces).
    configs: Vec<LabeledConfig>,
    policies_per_capacity: usize,
    seed: Option<u64>,
    warmup: Option<u64>,
    insts: Option<u64>,
}

impl PlanAxes {
    /// Validates a [`MatrixRequest`]'s axes, resolving defaults (Table I
    /// capacities, baseline policy).
    ///
    /// # Errors
    ///
    /// Returns the envelope error code and message for invalid axes.
    pub fn resolve(
        req: &MatrixRequest,
        test_workloads: bool,
    ) -> Result<PlanAxes, (ErrorCode, String)> {
        if req.workloads.is_empty() {
            return Err((
                ErrorCode::BadRequest,
                "workloads must name at least one workload".to_owned(),
            ));
        }
        for w in &req.workloads {
            match WorkloadRef::parse(w) {
                // Profile names must be in Table II here; uploaded-program
                // refs pass through — the server resolves them against its
                // registry (with a peer fetch) before accepting the plan.
                Ok(WorkloadRef::Profile(_)) if !api::workload_known(w, test_workloads) => {
                    return Err((ErrorCode::UnknownWorkload, format!("unknown workload: {w}")));
                }
                Ok(_) => {}
                Err(e) => return Err((ErrorCode::BadRequest, format!("workload {w:?}: {e}"))),
            }
        }
        let capacities: Vec<usize> = match &req.capacities {
            Some(caps) if caps.is_empty() => {
                return Err((
                    ErrorCode::BadRequest,
                    "capacities must not be empty".to_owned(),
                ))
            }
            Some(caps) => caps.iter().map(|&c| c as usize).collect(),
            None => MatrixCross::table1_capacities(),
        };
        let policies: Vec<SweepPolicy> = match &req.policies {
            Some(names) if names.is_empty() => {
                return Err((
                    ErrorCode::BadRequest,
                    "policies must not be empty".to_owned(),
                ))
            }
            Some(names) => names
                .iter()
                .map(|n| {
                    SweepPolicy::parse(n)
                        .ok_or_else(|| (ErrorCode::BadRequest, format!("unknown policy: {n}")))
                })
                .collect::<Result<_, _>>()?,
            None => vec![SweepPolicy::Baseline],
        };
        let cross = MatrixCross {
            capacities,
            policies,
            max_entries: req.max_entries.unwrap_or(2),
        };
        let total = req.workloads.len() * cross.len();
        if total > MAX_SWEEP_CELLS {
            return Err((
                ErrorCode::BadRequest,
                format!("sweep would expand to {total} cells (max {MAX_SWEEP_CELLS})"),
            ));
        }
        let policies_per_capacity = cross.policies.len();
        let capacities = cross.capacities.clone();
        let configs = cross.expand();
        Ok(PlanAxes {
            workloads: req.workloads.clone(),
            capacities,
            configs,
            policies_per_capacity,
            seed: req.seed,
            warmup: req.warmup,
            insts: req.insts,
        })
    }

    /// The capacity axis, ascending request order (uops).
    pub fn capacities(&self) -> &[usize] {
        &self.capacities
    }

    fn build_meta(&self, workload: &str, lc: &LabeledConfig) -> CellMeta {
        let seed = self.seed.unwrap_or_else(|| api::default_seed(workload));
        let mut config = lc.config.clone();
        if let Some(w) = self.warmup {
            config.warmup_insts = w;
        }
        if let Some(n) = self.insts {
            config.measure_insts = n;
        }
        let spec = JobSpec {
            workload: workload.to_owned(),
            seed,
            config,
        };
        let canonical = spec.canonical();
        let key_hash = api::content_hash(&canonical);
        // Uploaded-program cells carry the ref's short hash in the label
        // (`prog-1a2b3c4d:OC_2K:CLASP`), so two programs swept in one plan
        // stay distinguishable in `GET /v1/matrix/:id` and in Prometheus
        // label values. Profile cells keep the bare cross label.
        let label = match WorkloadRef::parse(workload) {
            Ok(r @ (WorkloadRef::Program(_) | WorkloadRef::Trace(_))) => {
                format!("{}:{}", r.short_label(), lc.label)
            }
            _ => lc.label.clone(),
        };
        CellMeta {
            workload: workload.to_owned(),
            label,
            seed,
            spec,
            canonical,
            key_hash,
        }
    }

    /// Expands the full cross: workload-major, then the capacity × policy
    /// cross in [`MatrixCross::expand`] order — the exact cell order
    /// `run_matrix` produces offline.
    pub fn full_metas(&self) -> Vec<CellMeta> {
        let mut metas = Vec::with_capacity(self.workloads.len() * self.configs.len());
        for workload in &self.workloads {
            for lc in &self.configs {
                metas.push(self.build_meta(workload, lc));
            }
        }
        metas
    }

    /// Expands one capacity *wave*: every workload × policy at capacity
    /// index `cap_idx`, with the same labels (and therefore the same
    /// content addresses) those cells have in [`full_metas`](Self::full_metas).
    pub fn capacity_metas(&self, cap_idx: usize) -> Vec<CellMeta> {
        let start = cap_idx * self.policies_per_capacity;
        let slice = &self.configs[start..start + self.policies_per_capacity];
        let mut metas = Vec::with_capacity(self.workloads.len() * slice.len());
        for workload in &self.workloads {
            for lc in slice {
                metas.push(self.build_meta(workload, lc));
            }
        }
        metas
    }
}

/// Expands a [`MatrixRequest`] into the full cross's per-cell metas (see
/// [`PlanAxes::full_metas`]).
///
/// # Errors
///
/// Returns the envelope error code and message for invalid axes.
pub fn expand_request(
    req: &MatrixRequest,
    test_workloads: bool,
) -> Result<Vec<CellMeta>, (ErrorCode, String)> {
    Ok(PlanAxes::resolve(req, test_workloads)?.full_metas())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> MatrixRequest {
        MatrixRequest::parse(body).unwrap()
    }

    /// Creates a full-mode plan over `metas` the way the POST handler
    /// does: push, resolve nothing (tests fulfill/fail directly), seal.
    fn create_full(table: &SweepTable, metas: Vec<CellMeta>) -> Arc<Sweep> {
        let sweep = table.create(PlanOptions::default());
        sweep.push_cells(metas);
        sweep.mark_materialized();
        sweep
    }

    #[test]
    fn expansion_is_workload_major_and_content_addressed() {
        let req = parse(
            r#"{"workloads":["redis","bm-cc"],"capacities":[2048,4096],"policies":["baseline","clasp"],"warmup":100,"insts":2000}"#,
        );
        let metas = expand_request(&req, false).unwrap();
        assert_eq!(metas.len(), 8);
        assert_eq!(metas[0].workload, "redis");
        assert_eq!(metas[0].label, "OC_2K:baseline");
        assert_eq!(metas[1].label, "OC_2K:CLASP");
        assert_eq!(metas[4].workload, "bm-cc");
        // Every cell gets a distinct content address, and run lengths fold
        // into the spec.
        let mut keys: Vec<u64> = metas.iter().map(|m| m.key_hash).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 8);
        assert_eq!(metas[0].spec.config.warmup_insts, 100);
        assert_eq!(metas[0].spec.config.measure_insts, 2000);
    }

    #[test]
    fn program_ref_cells_expand_with_hash_prefixed_labels() {
        // Refs pass axis validation without being Table II names, default
        // their seed to the content hash, and prefix the cell label with
        // the ref's short hash so two programs in one plan stay distinct.
        let req = parse(
            r#"{"workloads":[{"program":"1a2b3c4d000000ab"},"redis"],"capacities":[2048],"policies":["baseline","clasp"]}"#,
        );
        let metas = expand_request(&req, false).unwrap();
        assert_eq!(metas.len(), 4);
        assert_eq!(metas[0].workload, "program:1a2b3c4d000000ab");
        assert_eq!(metas[0].label, "prog-1a2b3c4d:baseline");
        assert_eq!(metas[1].label, "prog-1a2b3c4d:CLASP");
        assert_eq!(metas[0].seed, 0x1a2b_3c4d_0000_00ab);
        // Profile cells keep the bare cross label — pinned elsewhere.
        assert_eq!(metas[2].label, "baseline");

        // Trace refs too; malformed refs are bad requests at parse time.
        let req = parse(r#"{"workloads":["trace:5e6f7089000000cd"],"capacities":[2048,4096]}"#);
        let metas = expand_request(&req, false).unwrap();
        assert_eq!(metas[0].label, "trace-5e6f7089:OC_2K");
        assert_eq!(metas[0].seed, 0);
        assert!(MatrixRequest::parse(r#"{"workloads":["program:zz"]}"#).is_err());
    }

    #[test]
    fn capacity_waves_match_the_full_cross_cell_for_cell() {
        let req = parse(
            r#"{"workloads":["redis","bm-cc"],"capacities":[2048,4096,8192],"policies":["baseline","clasp"]}"#,
        );
        let axes = PlanAxes::resolve(&req, false).unwrap();
        let full = axes.full_metas();
        // Wave k must reproduce exactly the full-cross cells at capacity
        // k — same labels, same content addresses — so adaptive plans
        // stay byte-identical to full ones on every cell they simulate.
        for (k, _) in axes.capacities().iter().enumerate() {
            let wave = axes.capacity_metas(k);
            assert_eq!(wave.len(), 4); // 2 workloads × 2 policies
            for m in &wave {
                let twin = full
                    .iter()
                    .find(|f| f.key_hash == m.key_hash)
                    .unwrap_or_else(|| panic!("wave cell {} missing from full cross", m.label));
                assert_eq!(twin.label, m.label);
                assert_eq!(twin.canonical, m.canonical);
            }
        }
    }

    #[test]
    fn cells_of_one_workload_share_a_trace_key() {
        let req = parse(
            r#"{"workloads":["redis","bm-cc"],"capacities":[2048,4096],"policies":["baseline","clasp"],"warmup":100,"insts":2000}"#,
        );
        let metas = expand_request(&req, false).unwrap();
        // All four redis cells replay one recording; bm-cc records its own.
        let k0 = metas[0].trace_key();
        assert!(metas[..4].iter().all(|m| m.trace_key() == k0));
        assert_ne!(metas[4].trace_key(), k0);
        assert_eq!(k0.insts, 2100);
        // ...even though every cell has a distinct content address.
        assert_ne!(metas[0].key_hash, metas[1].key_hash);
    }

    #[test]
    fn default_axes_are_table1_capacities_and_baseline() {
        let req = parse(r#"{"workloads":["redis"]}"#);
        let metas = expand_request(&req, false).unwrap();
        assert_eq!(metas.len(), 6);
        assert_eq!(metas[0].label, "OC_2K");
        assert_eq!(metas[5].label, "OC_64K");
    }

    #[test]
    fn invalid_axes_map_to_envelope_codes() {
        let e = expand_request(&parse(r#"{"workloads":["nope"]}"#), false).unwrap_err();
        assert_eq!(e.0, ErrorCode::UnknownWorkload);
        let e = expand_request(&parse(r#"{"workloads":[]}"#), false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
        let e = expand_request(
            &parse(r#"{"workloads":["redis"],"policies":["zap"]}"#),
            false,
        )
        .unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
        // Test workloads only expand when enabled.
        assert!(expand_request(&parse(r#"{"workloads":["test-sleep:5"]}"#), true).is_ok());
        assert!(expand_request(&parse(r#"{"workloads":["test-sleep:5"]}"#), false).is_err());
    }

    #[test]
    fn sweep_tracks_progress_to_done() {
        let req = parse(r#"{"workloads":["redis"],"capacities":[2048],"policies":["baseline"]}"#);
        let metas = expand_request(&req, false).unwrap();
        let table = SweepTable::new(8);
        let sweep = table.create(PlanOptions::default());
        sweep.push_cells(metas);
        sweep.mark_materialized();
        assert_eq!(sweep.total(), 1);
        let cell_meta = sweep.cells()[0].meta.clone();
        let jobs = crate::jobs::JobTable::new(4);
        let crate::jobs::Submit::New(job) = jobs.submit(cell_meta.key_hash) else {
            panic!()
        };
        sweep.attach(0, Arc::clone(&job));
        let body = String::from_utf8(sweep.status_body().to_vec()).unwrap();
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("state").unwrap().as_str(), Some("running"));
        assert!(body.contains("\"state\":\"queued\""), "{body}");
        // v1.1: the pre-unification aliases are gone for good.
        assert!(v.get("status").is_none(), "status alias removed in v1.1");
        assert!(!body.contains("\"pending\""), "{body}");

        // Settle the cell through its job, as a worker would: complete
        // the envelope and publish the bare report payload.
        let report = SimReport {
            workload: "redis".to_owned(),
            upc: 2.5,
            ..SimReport::default()
        };
        assert!(job.complete(Arc::new(b"{}".to_vec())));
        job.set_payload(Arc::new(report.to_json_string()));
        let body = String::from_utf8(sweep.status_body().to_vec()).unwrap();
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("state").unwrap().as_str(), Some("done"));
        assert!(v.get("status").is_none() && v.get("sweep").is_none());
        let agg = v.get("report").unwrap();
        assert_eq!(agg.get("geomean_upc").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("created_at").unwrap().as_u64().is_some());
        // Plan counters: one cell, simulated-not-skipped.
        assert_eq!(v.get("planned").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("skipped_from_store").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("simulated").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("tenant").unwrap().as_str(), Some("default"));
        assert_eq!(v.get("priority").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("mode").unwrap().as_str(), Some("full"));
        // The memoized final body is stable.
        assert_eq!(sweep.status_body().as_slice(), body.as_bytes());
        assert_eq!(table.get(sweep.id).unwrap().id, sweep.id);
        assert!(table.get(999).is_none());
    }

    #[test]
    fn store_resolved_cells_count_as_skipped_not_simulated() {
        let req = parse(r#"{"workloads":["redis"],"capacities":[2048,4096]}"#);
        let metas = expand_request(&req, false).unwrap();
        let sweep = create_full(&SweepTable::new(8), metas);
        let report = SimReport {
            workload: "redis".to_owned(),
            upc: 2.5,
            ..SimReport::default()
        };
        sweep.fulfill_from_store(0, Arc::new(report.to_json_string()));
        sweep.fulfill(1, Arc::new(report.to_json_string()));
        let v = Json::parse(core::str::from_utf8(&sweep.status_body()).unwrap()).unwrap();
        assert_eq!(v.get("planned").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("skipped_from_store").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("simulated").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("state").unwrap().as_str(), Some("done"));
    }

    #[test]
    fn an_all_failed_sweep_reports_failed_with_stable_codes() {
        let req = parse(r#"{"workloads":["redis"],"capacities":[2048]}"#);
        let metas = expand_request(&req, false).unwrap();
        let sweep = create_full(&SweepTable::new(8), metas);
        sweep.fail(
            0,
            JobFailure::new(ucsim_model::FailureKind::SimulationFailed, "boom"),
        );
        let body = String::from_utf8(sweep.status_body().to_vec()).unwrap();
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("state").unwrap().as_str(), Some("failed"));
        assert_eq!(v.get("failed").unwrap().as_u64(), Some(1));
        assert!(v.get("report").is_none());
        let cell = &v.get("cells").unwrap().as_arr().unwrap()[0];
        let err = cell.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("simulation_failed"));
        assert_eq!(err.get("message").unwrap().as_str(), Some("boom"));
        // The settled body is memoized even without an aggregate.
        assert_eq!(sweep.status_body().as_slice(), body.as_bytes());
    }

    #[test]
    fn a_mixed_sweep_is_partial_and_aggregates_the_survivors() {
        let req = parse(r#"{"workloads":["redis"],"capacities":[2048,4096]}"#);
        let metas = expand_request(&req, false).unwrap();
        let sweep = create_full(&SweepTable::new(8), metas);
        let report = SimReport {
            workload: "redis".to_owned(),
            upc: 2.5,
            ..SimReport::default()
        };
        sweep.fulfill(0, Arc::new(report.to_json_string()));
        sweep.fail(
            1,
            JobFailure::new(ucsim_model::FailureKind::DeadlineExceeded, "too slow"),
        );
        let body = String::from_utf8(sweep.status_body().to_vec()).unwrap();
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("state").unwrap().as_str(), Some("partial"));
        assert_eq!(v.get("done").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("failed").unwrap().as_u64(), Some(1));
        // The aggregate covers only the surviving cell.
        let agg = v.get("report").unwrap();
        assert_eq!(agg.get("geomean_upc").unwrap().as_arr().unwrap().len(), 1);
        let cells = v.get("cells").unwrap().as_arr().unwrap();
        let err = cells[1].get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("deadline_exceeded"));
        // Settled bodies memoize.
        assert_eq!(sweep.status_body().as_slice(), body.as_bytes());
    }

    #[test]
    fn cancel_fails_unsettled_cells_and_flips_their_tokens() {
        let req = parse(r#"{"workloads":["redis"],"capacities":[2048,4096]}"#);
        let metas = expand_request(&req, false).unwrap();
        let sweep = create_full(&SweepTable::new(8), metas);
        let jobs = crate::jobs::JobTable::new(8);
        let report = SimReport {
            workload: "redis".to_owned(),
            upc: 2.5,
            ..SimReport::default()
        };
        // Cell 0 already done; cell 1 still riding a queued job.
        sweep.fulfill(0, Arc::new(report.to_json_string()));
        let crate::jobs::Submit::New(job) = jobs.submit(sweep.cells()[1].meta.key_hash) else {
            panic!()
        };
        sweep.attach(1, Arc::clone(&job));

        let flipped = sweep.cancel();
        assert!(sweep.is_cancelled());
        assert_eq!(flipped.len(), 1);
        assert!(job.cancel_token().is_cancelled());
        let v = Json::parse(core::str::from_utf8(&sweep.status_body()).unwrap()).unwrap();
        assert_eq!(v.get("state").unwrap().as_str(), Some("partial"));
        let cells = v.get("cells").unwrap().as_arr().unwrap();
        let err = cells[1].get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("cancelled"));
        // Idempotent: a second cancel flips nothing new.
        assert!(sweep.cancel().is_empty());
    }

    #[test]
    fn frontier_renders_in_the_status_body() {
        let req = parse(r#"{"workloads":["redis"],"capacities":[2048,4096]}"#);
        let metas = expand_request(&req, false).unwrap();
        let table = SweepTable::new(8);
        let sweep = table.create(PlanOptions {
            tenant: "team-a".to_owned(),
            priority: 2,
            adaptive: true,
        });
        sweep.push_cells(metas);
        sweep.set_frontier(Frontier {
            axis: "capacity".to_owned(),
            tolerance: 0.05,
            capacities: vec![2048, 4096],
            probed: vec![2048, 4096],
            bracket: Some((2048, 4096)),
            knee: Some(4096),
        });
        let v = Json::parse(core::str::from_utf8(&sweep.status_body()).unwrap()).unwrap();
        assert_eq!(v.get("mode").unwrap().as_str(), Some("adaptive"));
        assert_eq!(v.get("state").unwrap().as_str(), Some("running"));
        let f = v.get("frontier").unwrap();
        assert_eq!(f.get("axis").unwrap().as_str(), Some("capacity"));
        assert_eq!(f.get("knee").unwrap().as_u64(), Some(4096));
        assert_eq!(f.get("bracket").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("tenant").unwrap().as_str(), Some("team-a"));
        assert_eq!(v.get("priority").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn an_unmaterialized_plan_never_reports_settled() {
        // An adaptive plan whose present cells have all settled is still
        // "running" until the driver seals it — more waves may come.
        let req = parse(r#"{"workloads":["redis"],"capacities":[2048]}"#);
        let metas = expand_request(&req, false).unwrap();
        let sweep = SweepTable::new(8).create(PlanOptions {
            adaptive: true,
            ..PlanOptions::default()
        });
        sweep.push_cells(metas);
        let report = SimReport {
            workload: "redis".to_owned(),
            upc: 1.0,
            ..SimReport::default()
        };
        sweep.fulfill(0, Arc::new(report.to_json_string()));
        assert_eq!(sweep.state_name(), "running");
        sweep.mark_materialized();
        assert_eq!(sweep.state_name(), "done");
    }

    #[test]
    fn list_returns_sweeps_in_id_order() {
        let table = SweepTable::new(8);
        let a = table.create(PlanOptions::default());
        let b = table.create(PlanOptions::default());
        let ids: Vec<u64> = table.list().iter().map(|s| s.id).collect();
        assert_eq!(ids, [a.id, b.id]);
    }

    #[test]
    fn retention_prunes_oldest_sweeps() {
        let table = SweepTable::new(2);
        let req = parse(r#"{"workloads":["redis"],"capacities":[2048]}"#);
        let ids: Vec<u64> = (0..3)
            .map(|_| create_full(&table, expand_request(&req, false).unwrap()).id)
            .collect();
        assert!(table.get(ids[0]).is_none());
        assert!(table.get(ids[1]).is_some());
        assert!(table.get(ids[2]).is_some());
    }
}

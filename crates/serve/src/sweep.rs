//! Sweep lifecycle for `POST /v1/matrix`: request expansion into
//! per-cell job specs, per-sweep progress tracking, and final
//! aggregation into a [`SweepReport`].
//!
//! A sweep is a set of content-addressed cells fanned through the same
//! worker pool as single jobs. Each cell independently resolves from the
//! result cache, joins an in-flight job for the same key, or queues a
//! fresh simulation — so overlapping sweeps, repeated sweeps, and
//! restarts (via the persistent store) all dedup cell-by-cell.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ucsim_bench::{MatrixCross, SweepPolicy};
use ucsim_model::json::Json;
use ucsim_model::{FromJson, ToJson};
use ucsim_pipeline::{SimReport, SweepCellReport, SweepReport};

use crate::api::{self, ErrorCode, JobSpec, MatrixRequest};
use crate::jobs::{JobCell, JobFailure, JobState};

/// Hard ceiling on cells per sweep (guards against a typo'd cross
/// exploding the queue).
pub const MAX_SWEEP_CELLS: usize = 1024;

/// Immutable identity of one sweep cell.
#[derive(Debug, Clone)]
pub struct CellMeta {
    /// Workload name.
    pub workload: String,
    /// Configuration label from the matrix cross (`OC_2K`, `F-PWAC`, …).
    pub label: String,
    /// Effective generation seed.
    pub seed: u64,
    /// The fully-resolved job spec.
    pub spec: JobSpec,
    /// The spec's canonical encoding.
    pub canonical: String,
    /// FNV-1a content address of `canonical`.
    pub key_hash: u64,
}

impl CellMeta {
    /// The recorded-stream identity of this cell: cells sharing a
    /// workload × seed × run length replay one trace from the server's
    /// [`ucsim_trace::TraceStore`], whatever their configuration axes.
    pub fn trace_key(&self) -> ucsim_trace::TraceKey {
        self.spec.trace_key()
    }
}

/// Where a cell currently stands.
enum CellSlot {
    /// Not yet handed to the queue (the feeder is still working).
    Pending,
    /// Riding a queued/running job.
    Waiting(Arc<JobCell>),
    /// Finished; holds the bare report payload and — when the cell
    /// actually executed (not a cache hit) — its execution profile.
    Done(Arc<String>, Option<Arc<ucsim_obs::JobProfile>>),
    /// Failed; holds the stable error code and message.
    Failed(JobFailure),
}

/// One cell: identity plus mutable progress.
pub struct SweepCell {
    /// The cell's identity.
    pub meta: CellMeta,
    slot: Mutex<CellSlot>,
}

/// One `SweepCell::poll` observation:
/// `(status_name, payload_if_done, failure_if_failed, profile)`.
type CellPoll = (
    &'static str,
    Option<Arc<String>>,
    Option<JobFailure>,
    Option<Arc<ucsim_obs::JobProfile>>,
);

impl SweepCell {
    /// Advances `Waiting` cells whose job has settled, then reports
    /// `(status_name, payload_if_done, failure_if_failed, profile)`.
    fn poll(&self) -> CellPoll {
        let mut slot = self.slot.lock().expect("cell lock");
        if let CellSlot::Waiting(job) = &*slot {
            match job.state() {
                JobState::Done(_) => {
                    let payload = job
                        .payload()
                        .unwrap_or_else(|| Arc::new(String::from("null")));
                    *slot = CellSlot::Done(payload, job.profile());
                }
                JobState::Failed(failure) => *slot = CellSlot::Failed(failure),
                _ => {}
            }
        }
        match &*slot {
            CellSlot::Pending => ("pending", None, None, None),
            CellSlot::Waiting(job) => (job.state().name(), None, None, None),
            CellSlot::Done(p, prof) => ("done", Some(Arc::clone(p)), None, prof.clone()),
            CellSlot::Failed(failure) => ("failed", None, Some(failure.clone()), None),
        }
    }
}

/// A sweep in flight (or finished).
pub struct Sweep {
    /// Sweep identifier, monotonically assigned per server.
    pub id: u64,
    /// Unix seconds when the sweep was registered.
    pub created_at: u64,
    cells: Vec<SweepCell>,
    /// Memoized final response body, built once every cell is done.
    final_body: Mutex<Option<Arc<Vec<u8>>>>,
}

impl Sweep {
    fn new(id: u64, metas: Vec<CellMeta>) -> Sweep {
        Sweep {
            id,
            created_at: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map_or(0, |d| d.as_secs()),
            cells: metas
                .into_iter()
                .map(|meta| SweepCell {
                    meta,
                    slot: Mutex::new(CellSlot::Pending),
                })
                .collect(),
            final_body: Mutex::new(None),
        }
    }

    /// The cells, in submission order.
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// Number of cells.
    pub fn total(&self) -> usize {
        self.cells.len()
    }

    /// Marks cell `idx` as riding `job`.
    pub fn attach(&self, idx: usize, job: Arc<JobCell>) {
        *self.cells[idx].slot.lock().expect("cell lock") = CellSlot::Waiting(job);
    }

    /// Marks cell `idx` as done with its payload (cache hit path, so no
    /// execution profile).
    pub fn fulfill(&self, idx: usize, payload: Arc<String>) {
        *self.cells[idx].slot.lock().expect("cell lock") = CellSlot::Done(payload, None);
    }

    /// Marks cell `idx` as failed with a stable error code and message.
    pub fn fail(&self, idx: usize, failure: JobFailure) {
        *self.cells[idx].slot.lock().expect("cell lock") = CellSlot::Failed(failure);
    }

    /// Builds the `GET /v1/matrix/:id` response body: progress counters,
    /// per-cell status, and — once every cell has settled — the
    /// aggregated [`SweepReport`] over the cells that succeeded.
    ///
    /// The terminal status is `"done"` when every cell succeeded,
    /// `"partial"` when some succeeded and some failed, and `"failed"`
    /// when every cell failed. Failed cells carry a nested
    /// `"error": {"code", "message"}` object with a stable code; a sweep
    /// with failures still completes rather than hanging its pollers.
    pub fn status_body(&self) -> Arc<Vec<u8>> {
        if let Some(body) = self.final_body.lock().expect("sweep lock").clone() {
            return body;
        }
        let polls: Vec<CellPoll> = self.cells.iter().map(SweepCell::poll).collect();
        let done = polls.iter().filter(|(s, _, _, _)| *s == "done").count();
        let failed = polls.iter().filter(|(s, _, _, _)| *s == "failed").count();
        let settled = done + failed == self.cells.len();
        let status = if !settled {
            "running"
        } else if failed == 0 {
            "done"
        } else if done == 0 {
            "failed"
        } else {
            "partial"
        };

        let cells_json: Vec<Json> = self
            .cells
            .iter()
            .zip(&polls)
            .map(|(cell, (state, _, err, _))| {
                // `state` is the canonical lifecycle name; `status` is the
                // pre-unification alias, kept one release (DESIGN.md §4.1).
                // The only divergence: `pending` normalizes to `queued` in
                // the canonical form (the feeder-lag distinction is an
                // implementation detail, not a lifecycle state).
                let canonical = if *state == "pending" { "queued" } else { state };
                let mut obj = vec![
                    ("workload".to_owned(), Json::Str(cell.meta.workload.clone())),
                    ("label".to_owned(), Json::Str(cell.meta.label.clone())),
                    ("seed".to_owned(), Json::Uint(cell.meta.seed)),
                    (
                        "key".to_owned(),
                        Json::Str(api::format_key(cell.meta.key_hash)),
                    ),
                    ("state".to_owned(), Json::Str(canonical.to_owned())),
                    ("status".to_owned(), Json::Str((*state).to_owned())),
                ];
                if let Some(failure) = err {
                    let mut err_obj = vec![
                        ("code".to_owned(), Json::Str(failure.kind.to_string())),
                        ("message".to_owned(), Json::Str(failure.message.clone())),
                    ];
                    if let Some(rid) = &failure.request_id {
                        err_obj.push(("request_id".to_owned(), Json::Str(rid.clone())));
                    }
                    obj.push(("error".to_owned(), Json::Obj(err_obj)));
                }
                Json::Obj(obj)
            })
            .collect();

        // Aggregate the execution profiles of every cell that actually ran
        // (cache hits carry none). Omitted entirely when nothing ran.
        let mut agg_profile = ucsim_obs::JobProfile::default();
        let mut profiled = false;
        for (_, _, _, prof) in &polls {
            if let Some(p) = prof {
                agg_profile.merge(p);
                profiled = true;
            }
        }

        let mut head_obj = vec![
            ("id".to_owned(), Json::Uint(self.id)),
            ("state".to_owned(), Json::Str(status.to_owned())),
            ("status".to_owned(), Json::Str(status.to_owned())),
            ("created_at".to_owned(), Json::Uint(self.created_at)),
            ("total".to_owned(), Json::Uint(self.cells.len() as u64)),
            ("done".to_owned(), Json::Uint(done as u64)),
            ("failed".to_owned(), Json::Uint(failed as u64)),
        ];
        if profiled {
            head_obj.push(("profile".to_owned(), agg_profile.to_json()));
        }
        head_obj.push(("cells".to_owned(), Json::Arr(cells_json)));
        let head = Json::Obj(head_obj);

        if !settled {
            return Arc::new(head.to_string().into_bytes());
        }

        // Every cell settled: aggregate the successful ones. Decode the
        // canonical payloads back into reports; re-encoding is
        // byte-identical (canonical JSON, bit-exact f64 round-trips), so
        // served cells equal offline `run_matrix` output.
        let mut report_cells = Vec::with_capacity(done);
        for (cell, (_, payload, _, _)) in self.cells.iter().zip(&polls) {
            let Some(payload) = payload.as_ref() else {
                continue;
            };
            let report = match SimReport::from_json_str(payload) {
                Ok(r) => r,
                Err(e) => {
                    // Undecodable payload (should be impossible): report
                    // the sweep as failed rather than panicking a handler.
                    let mut out = head.to_string();
                    out.truncate(out.len() - 1);
                    out.push_str(&format!(
                        ",\"aggregate_error\":{}}}",
                        Json::Str(format!("cell {} payload: {e}", cell.meta.label))
                    ));
                    return Arc::new(out.into_bytes());
                }
            };
            report_cells.push(SweepCellReport {
                workload: cell.meta.workload.clone(),
                label: cell.meta.label.clone(),
                seed: cell.meta.seed,
                report,
            });
        }
        let mut out = head.to_string();
        if !report_cells.is_empty() {
            let aggregate = SweepReport::from_cells(report_cells);
            let encoded = aggregate.to_json_string();
            out.truncate(out.len() - 1); // strip trailing '}'
                                         // `report` is the canonical aggregate key; `sweep` is the
                                         // pre-unification alias, kept one release (DESIGN.md §4.1).
            out.push_str(",\"report\":");
            out.push_str(&encoded);
            out.push_str(",\"sweep\":");
            out.push_str(&encoded);
            out.push('}');
        }
        let body = Arc::new(out.into_bytes());
        *self.final_body.lock().expect("sweep lock") = Some(Arc::clone(&body));
        body
    }
}

struct TableInner {
    sweeps: HashMap<u64, Arc<Sweep>>,
    order: Vec<u64>,
    next_id: u64,
}

/// The server's sweep registry; retains the most recent `retain` sweeps.
pub struct SweepTable {
    inner: Mutex<TableInner>,
    retain: usize,
}

impl SweepTable {
    /// Creates a table retaining at most `retain` sweeps.
    pub fn new(retain: usize) -> SweepTable {
        SweepTable {
            inner: Mutex::new(TableInner {
                sweeps: HashMap::new(),
                order: Vec::new(),
                next_id: 1,
            }),
            retain: retain.max(1),
        }
    }

    /// Registers a new sweep over `metas`.
    pub fn create(&self, metas: Vec<CellMeta>) -> Arc<Sweep> {
        let mut t = self.inner.lock().expect("sweep table lock");
        let id = t.next_id;
        t.next_id += 1;
        let sweep = Arc::new(Sweep::new(id, metas));
        t.sweeps.insert(id, Arc::clone(&sweep));
        t.order.push(id);
        while t.order.len() > self.retain {
            let old = t.order.remove(0);
            t.sweeps.remove(&old);
        }
        sweep
    }

    /// Looks up a sweep by id.
    pub fn get(&self, id: u64) -> Option<Arc<Sweep>> {
        self.inner
            .lock()
            .expect("sweep table lock")
            .sweeps
            .get(&id)
            .map(Arc::clone)
    }
}

/// Expands a [`MatrixRequest`] into per-cell metas: workload-major, then
/// the capacity × policy cross in [`MatrixCross::expand`] order — the
/// exact cell order `run_matrix` produces offline.
///
/// # Errors
///
/// Returns the envelope error code and message for invalid axes.
pub fn expand_request(
    req: &MatrixRequest,
    test_workloads: bool,
) -> Result<Vec<CellMeta>, (ErrorCode, String)> {
    if req.workloads.is_empty() {
        return Err((
            ErrorCode::BadRequest,
            "workloads must name at least one workload".to_owned(),
        ));
    }
    for w in &req.workloads {
        if !api::workload_known(w, test_workloads) {
            return Err((ErrorCode::UnknownWorkload, format!("unknown workload: {w}")));
        }
    }
    let capacities: Vec<usize> = match &req.capacities {
        Some(caps) if caps.is_empty() => {
            return Err((
                ErrorCode::BadRequest,
                "capacities must not be empty".to_owned(),
            ))
        }
        Some(caps) => caps.iter().map(|&c| c as usize).collect(),
        None => MatrixCross::table1_capacities(),
    };
    let policies: Vec<SweepPolicy> = match &req.policies {
        Some(names) if names.is_empty() => {
            return Err((
                ErrorCode::BadRequest,
                "policies must not be empty".to_owned(),
            ))
        }
        Some(names) => names
            .iter()
            .map(|n| {
                SweepPolicy::parse(n)
                    .ok_or_else(|| (ErrorCode::BadRequest, format!("unknown policy: {n}")))
            })
            .collect::<Result<_, _>>()?,
        None => vec![SweepPolicy::Baseline],
    };
    let cross = MatrixCross {
        capacities,
        policies,
        max_entries: req.max_entries.unwrap_or(2),
    };
    let total = req.workloads.len() * cross.len();
    if total > MAX_SWEEP_CELLS {
        return Err((
            ErrorCode::BadRequest,
            format!("sweep would expand to {total} cells (max {MAX_SWEEP_CELLS})"),
        ));
    }

    let configs = cross.expand();
    let mut metas = Vec::with_capacity(total);
    for workload in &req.workloads {
        let seed = req.seed.unwrap_or_else(|| api::default_seed(workload));
        for lc in &configs {
            let mut config = lc.config.clone();
            if let Some(w) = req.warmup {
                config.warmup_insts = w;
            }
            if let Some(n) = req.insts {
                config.measure_insts = n;
            }
            let spec = JobSpec {
                workload: workload.clone(),
                seed,
                config,
            };
            let canonical = spec.canonical();
            let key_hash = api::content_hash(&canonical);
            metas.push(CellMeta {
                workload: workload.clone(),
                label: lc.label.clone(),
                seed,
                spec,
                canonical,
                key_hash,
            });
        }
    }
    Ok(metas)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(body: &str) -> MatrixRequest {
        MatrixRequest::parse(body).unwrap()
    }

    #[test]
    fn expansion_is_workload_major_and_content_addressed() {
        let req = parse(
            r#"{"workloads":["redis","bm-cc"],"capacities":[2048,4096],"policies":["baseline","clasp"],"warmup":100,"insts":2000}"#,
        );
        let metas = expand_request(&req, false).unwrap();
        assert_eq!(metas.len(), 8);
        assert_eq!(metas[0].workload, "redis");
        assert_eq!(metas[0].label, "OC_2K:baseline");
        assert_eq!(metas[1].label, "OC_2K:CLASP");
        assert_eq!(metas[4].workload, "bm-cc");
        // Every cell gets a distinct content address, and run lengths fold
        // into the spec.
        let mut keys: Vec<u64> = metas.iter().map(|m| m.key_hash).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 8);
        assert_eq!(metas[0].spec.config.warmup_insts, 100);
        assert_eq!(metas[0].spec.config.measure_insts, 2000);
    }

    #[test]
    fn cells_of_one_workload_share_a_trace_key() {
        let req = parse(
            r#"{"workloads":["redis","bm-cc"],"capacities":[2048,4096],"policies":["baseline","clasp"],"warmup":100,"insts":2000}"#,
        );
        let metas = expand_request(&req, false).unwrap();
        // All four redis cells replay one recording; bm-cc records its own.
        let k0 = metas[0].trace_key();
        assert!(metas[..4].iter().all(|m| m.trace_key() == k0));
        assert_ne!(metas[4].trace_key(), k0);
        assert_eq!(k0.insts, 2100);
        // ...even though every cell has a distinct content address.
        assert_ne!(metas[0].key_hash, metas[1].key_hash);
    }

    #[test]
    fn default_axes_are_table1_capacities_and_baseline() {
        let req = parse(r#"{"workloads":["redis"]}"#);
        let metas = expand_request(&req, false).unwrap();
        assert_eq!(metas.len(), 6);
        assert_eq!(metas[0].label, "OC_2K");
        assert_eq!(metas[5].label, "OC_64K");
    }

    #[test]
    fn invalid_axes_map_to_envelope_codes() {
        let e = expand_request(&parse(r#"{"workloads":["nope"]}"#), false).unwrap_err();
        assert_eq!(e.0, ErrorCode::UnknownWorkload);
        let e = expand_request(&parse(r#"{"workloads":[]}"#), false).unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
        let e = expand_request(
            &parse(r#"{"workloads":["redis"],"policies":["zap"]}"#),
            false,
        )
        .unwrap_err();
        assert_eq!(e.0, ErrorCode::BadRequest);
        // Test workloads only expand when enabled.
        assert!(expand_request(&parse(r#"{"workloads":["test-sleep:5"]}"#), true).is_ok());
        assert!(expand_request(&parse(r#"{"workloads":["test-sleep:5"]}"#), false).is_err());
    }

    #[test]
    fn sweep_tracks_progress_to_done() {
        let req = parse(r#"{"workloads":["redis"],"capacities":[2048],"policies":["baseline"]}"#);
        let metas = expand_request(&req, false).unwrap();
        let table = SweepTable::new(8);
        let sweep = table.create(metas);
        assert_eq!(sweep.total(), 1);
        let body = String::from_utf8(sweep.status_body().to_vec()).unwrap();
        assert!(body.contains("\"status\":\"running\""));
        assert!(body.contains("\"pending\""));
        // Canonical cell state normalizes `pending` to `queued` while the
        // `status` alias keeps the old name.
        assert!(body.contains("\"state\":\"queued\""), "{body}");

        // Complete the cell with a tiny (but decodable) report payload.
        let report = SimReport {
            workload: "redis".to_owned(),
            upc: 2.5,
            ..SimReport::default()
        };
        sweep.fulfill(0, Arc::new(report.to_json_string()));
        let body = String::from_utf8(sweep.status_body().to_vec()).unwrap();
        assert!(body.contains("\"status\":\"done\""), "{body}");
        assert!(body.contains("\"sweep\":"), "{body}");
        let v = Json::parse(&body).unwrap();
        let agg = v.get("sweep").unwrap();
        assert_eq!(agg.get("geomean_upc").unwrap().as_arr().unwrap().len(), 1);
        // Canonical `report` key mirrors the `sweep` alias byte-for-byte,
        // and the lifecycle appears under both `state` and `status`.
        assert_eq!(v.get("report").unwrap().to_string(), agg.to_string());
        assert_eq!(v.get("state").unwrap().as_str(), Some("done"));
        assert!(v.get("created_at").unwrap().as_u64().is_some());
        // The memoized final body is stable.
        assert_eq!(sweep.status_body().as_slice(), body.as_bytes());
        assert_eq!(table.get(sweep.id).unwrap().id, sweep.id);
        assert!(table.get(999).is_none());
    }

    #[test]
    fn an_all_failed_sweep_reports_failed_with_stable_codes() {
        let req = parse(r#"{"workloads":["redis"],"capacities":[2048]}"#);
        let metas = expand_request(&req, false).unwrap();
        let sweep = SweepTable::new(8).create(metas);
        sweep.fail(
            0,
            JobFailure::new(ucsim_model::FailureKind::SimulationFailed, "boom"),
        );
        let body = String::from_utf8(sweep.status_body().to_vec()).unwrap();
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("failed"));
        assert_eq!(v.get("failed").unwrap().as_u64(), Some(1));
        assert!(v.get("sweep").is_none());
        let cell = &v.get("cells").unwrap().as_arr().unwrap()[0];
        let err = cell.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("simulation_failed"));
        assert_eq!(err.get("message").unwrap().as_str(), Some("boom"));
        // The settled body is memoized even without an aggregate.
        assert_eq!(sweep.status_body().as_slice(), body.as_bytes());
    }

    #[test]
    fn a_mixed_sweep_is_partial_and_aggregates_the_survivors() {
        let req = parse(r#"{"workloads":["redis"],"capacities":[2048,4096]}"#);
        let metas = expand_request(&req, false).unwrap();
        let sweep = SweepTable::new(8).create(metas);
        let report = SimReport {
            workload: "redis".to_owned(),
            upc: 2.5,
            ..SimReport::default()
        };
        sweep.fulfill(0, Arc::new(report.to_json_string()));
        sweep.fail(
            1,
            JobFailure::new(ucsim_model::FailureKind::DeadlineExceeded, "too slow"),
        );
        let body = String::from_utf8(sweep.status_body().to_vec()).unwrap();
        let v = Json::parse(&body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("partial"));
        assert_eq!(v.get("done").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("failed").unwrap().as_u64(), Some(1));
        // The aggregate covers only the surviving cell.
        let agg = v.get("sweep").unwrap();
        assert_eq!(agg.get("geomean_upc").unwrap().as_arr().unwrap().len(), 1);
        let cells = v.get("cells").unwrap().as_arr().unwrap();
        let err = cells[1].get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("deadline_exceeded"));
        // Settled bodies memoize.
        assert_eq!(sweep.status_body().as_slice(), body.as_bytes());
    }

    #[test]
    fn retention_prunes_oldest_sweeps() {
        let table = SweepTable::new(2);
        let req = parse(r#"{"workloads":["redis"],"capacities":[2048]}"#);
        let ids: Vec<u64> = (0..3)
            .map(|_| table.create(expand_request(&req, false).unwrap()).id)
            .collect();
        assert!(table.get(ids[0]).is_none());
        assert!(table.get(ids[1]).is_some());
        assert!(table.get(ids[2]).is_some());
    }
}

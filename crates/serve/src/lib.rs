//! # ucsim-serve
//!
//! A long-running simulation job service over the `ucsim` simulator: the
//! repo's first serving layer on the road from experiment harness to
//! production system (ROADMAP north star).
//!
//! The server speaks HTTP/1.1 + JSON over [`std::net::TcpListener`] with
//! std threads only — no async runtime, matching the workspace's
//! concurrency stance (DESIGN.md §5). Its JSON layer is the workspace's
//! own `ucsim_model::json` wire format.
//!
//! ## Architecture
//!
//! ```text
//!             POST /v1/sim            GET /v1/jobs/:id   GET /v1/metrics
//!                  │                          │                 │
//!   ┌──────────────▼──────────────────────────▼─────────────────▼───┐
//!   │ accept loop → one handler thread per connection               │
//!   └──────┬────────────────────────────────────────────────────────┘
//!          │ canonicalize request → content hash
//!   ┌──────▼───────┐  hit   ┌─────────────────────────────────────┐
//!   │ result cache ├───────►│ respond immediately, cached: true   │
//!   └──────┬───────┘        └─────────────────────────────────────┘
//!          │ miss
//!   ┌──────▼───────┐ same key in flight: join it (coalescing)
//!   │  job table   │
//!   └──────┬───────┘ new key
//!   ┌──────▼───────┐ full: HTTP 429 + Retry-After (backpressure)
//!   │bounded queue │
//!   └──────┬───────┘
//!   ┌──────▼───────┐ fixed worker pool (ucsim-pool) runs the
//!   │   workers    │ simulation once, fills the cache, wakes waiters
//!   └──────────────┘
//! ```
//!
//! Determinism (DESIGN.md §6) is what makes the cache sound: a simulation
//! is a pure function of `(workload, seed, SimConfig)`, so the cache key
//! is a stable FNV-1a hash of the request's canonical JSON encoding and a
//! cached report is *exact*, not approximate.
//!
//! ## Quick start
//!
//! ```no_run
//! use ucsim_serve::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.run_until_shutdown();
//! ```

#![warn(missing_docs)]

mod api;
mod cache;
mod client;
mod http;
mod jobs;
mod metrics;
mod server;
mod signal;

pub use api::{JobSpec, SimRequest};
pub use cache::{CacheStats, ResultCache};
pub use client::{request, HttpResponse};
pub use http::Request;
pub use jobs::{JobId, JobState, JobTable};
pub use metrics::Metrics;
pub use server::{Server, ServerConfig};
pub use signal::{install_signal_handlers, request_shutdown, signalled};

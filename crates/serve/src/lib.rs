//! # ucsim-serve
//!
//! A long-running simulation job service over the `ucsim` simulator: the
//! repo's first serving layer on the road from experiment harness to
//! production system (ROADMAP north star).
//!
//! The server speaks HTTP/1.1 + JSON over [`std::net::TcpListener`] with
//! std threads only — no async runtime, matching the workspace's
//! concurrency stance (DESIGN.md §5). Its JSON layer is the workspace's
//! own `ucsim_model::json` wire format. Connections are keep-alive with
//! `Content-Length` framing; every request dispatches through a typed
//! route table and every non-2xx answer is the uniform error envelope
//! `{"error":{"code","message","retry_after"?}}`.
//!
//! ## Architecture
//!
//! ```text
//!   POST /v1/sim   POST/DELETE /v1/matrix   GET /v1/{jobs,matrix}[/:id]
//!        │               │                      │
//!   ┌────▼───────────────▼──────────────────────▼───────────────────────┐
//!   │ accept loop → keep-alive handler thread → typed route table       │
//!   └────┬───────────────┬──────────────────────────────────────────────┘
//!        │               │ expand capacity × policy cross into a *plan*:
//!        │               │ one content-addressed cell per config
//!        │          ┌────▼────────┐ full plans resolve every cell at POST;
//!        │          │ sweep table │ adaptive plans bisect the capacity
//!        │          └────┬────────┘ axis wave by wave (knee refinement)
//!        │ canonicalize → content hash   ↓ store hit: cell skipped
//!   ┌────▼────────┐  hit   ┌──────────────────────────────────────────┐
//!   │ result cache├───────►│ respond immediately, cached: true        │
//!   └────┬────────┘        └──────────────────────────────────────────┘
//!        │ miss                       ▲ replay on startup
//!   ┌────▼────────┐            ┌──────┴──────────┐
//!   │  job table  │            │ persistent store│ append on completion
//!   └────┬────────┘            │  (results.log)  │
//!        │ new key             └─────────────────┘
//!   ┌────▼────────┐ direct jobs: bounded path, HTTP 429 + Retry-After
//!   │  fair-share │ plan cells: unbounded path under the plan's tenant
//!   │  scheduler  │ (weighted fair queueing, priorities, preemption of
//!   └────┬────────┘  cancelled entries)
//!   ┌────▼────────┐ fixed worker pool (ucsim-pool) runs the
//!   │   workers   │ simulation once, fills cache + store, wakes waiters
//!   └─────────────┘
//! ```
//!
//! ## Observability
//!
//! The service is instrumented end to end with the zero-dependency
//! `ucsim-obs` crate (compiled in via its `enabled` feature here, a
//! no-op everywhere else). Every request gets an `X-Request-Id`
//! (client-supplied or minted at the accept edge) that is echoed on the
//! response, propagated through the queue into the worker that runs the
//! job, and attached to failure envelopes. Introspection endpoints:
//!
//! - `GET /v1/metrics` — counters + latency histograms; JSON by
//!   default, Prometheus text exposition when `Accept: text/plain`.
//! - `GET /v1/jobs/:id/profile` — per-job stage-time histograms and
//!   counter deltas captured while the job executed.
//! - `GET /v1/trace?since=N` — recent span events drained from the
//!   per-thread ring buffers, with a cursor for incremental polling.
//! - `GET /v1/healthz` — queue depth, worker liveness, store health.
//! - `GET /v1/version` — crate version, store format, feature flags.
//!
//! Determinism (DESIGN.md §6) is what makes the cache *and* the store
//! sound: a simulation is a pure function of `(workload, seed,
//! SimConfig)`, so the cache key is a stable FNV-1a hash of the request's
//! canonical JSON encoding, a cached report is *exact*, and a result
//! replayed from disk after a restart is byte-identical to re-running it.
//!
//! ## Quick start
//!
//! ```no_run
//! use ucsim_serve::{Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! server.run_until_shutdown();
//! ```

#![warn(missing_docs)]

mod api;
mod cache;
mod client;
mod http;
mod jobs;
mod metrics;
mod peer;
mod programs;
mod prom;
mod router;
mod server;
mod signal;
mod store;
mod sweep;

pub use api::{fnv1a, format_key, ErrorCode, JobSpec, MatrixRequest, SimRequest, SweepMode};
pub use cache::{CacheStats, ResultCache};
pub use client::{request, Client, HttpResponse, RetryPolicy};
pub use http::{HttpConn, ReadOutcome, Request, Response};
pub use jobs::{JobCell, JobFailure, JobId, JobState, JobTable, Submit};
pub use metrics::Metrics;
pub use peer::{Peer, PeerSet, PeerState, DOWN_AFTER_FAILURES};
pub use programs::{
    decode_program_payload, validate_program_bytes, ProgramKind, ProgramRegistry, StoredProgram,
    MAX_PROGRAM_BYTES,
};
pub use prom::render_prometheus;
pub use router::{LabelId, Params, Route, Router};
pub use server::{Server, ServerConfig};
pub use signal::{install_signal_handlers, request_shutdown, signalled};
pub use store::{RecordKind, ResultStore, StoreRecord};
pub use sweep::{
    expand_request, CellMeta, Frontier, PlanAxes, PlanOptions, Sweep, SweepTable, MAX_SWEEP_CELLS,
};

//! A minimal blocking HTTP client for talking to a running server —
//! used by the `ucsim client` subcommand and the integration tests.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// A parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code (200, 429, ...).
    pub status: u16,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request to `addr` and reads the full response.
///
/// `body` may be empty (e.g. for GET). The connection is one-shot
/// (`Connection: close`), matching the server.
///
/// # Errors
///
/// Propagates connect/read/write errors; a malformed status line maps to
/// [`io::ErrorKind::InvalidData`].
pub fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let split = find_head_end(raw).ok_or_else(|| bad("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("head not utf-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_lowercase(), v.trim().to_owned()))
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: raw[split + 4..].to_vec(),
    })
}

fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw =
            b"HTTP/1.1 429 Too Many Requests\r\nretry-after: 2\r\ncontent-length: 2\r\n\r\n{}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("2"));
        assert_eq!(resp.body_str(), "{}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 nope\r\n\r\n").is_err());
    }
}

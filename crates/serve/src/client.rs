//! A minimal blocking HTTP client for talking to a running server —
//! used by the `ucsim client` subcommand and the integration tests.
//!
//! Two shapes: the one-shot [`request`] (`Connection: close`, reads to
//! EOF, never retried), and the keep-alive [`Client`], which holds one
//! TCP connection across requests using `Content-Length` framing — a
//! whole submit-then-poll sweep rides a single connection. The client's
//! [`Client::request_retrying`] adds bounded, jittered exponential
//! backoff around transient failures (connect/read errors and 429
//! backpressure, honoring `Retry-After`).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ucsim_model::SplitMix64;

/// Bounded retry with jittered exponential backoff.
///
/// Retried outcomes: I/O errors (connect refused, reset mid-response)
/// and HTTP 429. A 429 carrying `Retry-After: <secs>` sleeps that long
/// (capped at `max_delay`) instead of the computed backoff — the server
/// knows its queue better than the client does. Any other response,
/// including 5xx error envelopes, returns immediately: those are
/// terminal answers, not congestion.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = try exactly once).
    pub max_retries: u32,
    /// Backoff before retry `n` is `base_delay * 2^n`, jittered.
    pub base_delay: Duration,
    /// Ceiling on any single sleep.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_secs(2),
            jitter_seed: 0x7e57_ab1e,
        }
    }
}

impl RetryPolicy {
    /// No retries at all (the `--no-retry` escape hatch).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// The sleep before retry `attempt` (0-based): exponential from
    /// `base_delay`, multiplied by a jitter factor in `[0.5, 1.5)`,
    /// capped at `max_delay`.
    fn backoff(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(16));
        let jittered = exp.mul_f64(0.5 + rng.unit_f64());
        jittered.min(self.max_delay)
    }
}

/// A parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code (200, 429, ...).
    pub status: u16,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request to `addr` and reads the full response.
///
/// `body` may be empty (e.g. for GET). The connection is one-shot
/// (`Connection: close`).
///
/// # Errors
///
/// Propagates connect/read/write errors; a malformed status line maps to
/// [`io::ErrorKind::InvalidData`].
pub fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// A keep-alive client: one TCP connection reused across requests.
///
/// Responses are read by `Content-Length` framing rather than to EOF, so
/// the connection stays usable. If the server closed the connection in
/// the meantime (idle timeout, restart), the next request transparently
/// reconnects once.
///
/// With extra peers configured ([`Client::add_peer`], the `--peer` CLI
/// flag), [`Client::request_retrying`] *fails over*: a connect/read
/// error or a 5xx answer rotates to the next address before the next
/// attempt, so a cluster stays usable while any one member is up. A 429
/// still retries the same node — it is backpressure, not failure.
pub struct Client {
    /// Candidate addresses; `addrs[active]` is the one in use.
    addrs: Vec<String>,
    active: usize,
    conn: Option<BufReader<TcpStream>>,
    connects: u64,
    failovers: u64,
    retry: RetryPolicy,
    jitter: SplitMix64,
    request_id: Option<String>,
}

impl Client {
    /// Creates a client for `addr` (connects lazily on first request)
    /// with the default [`RetryPolicy`].
    pub fn new(addr: &str) -> Client {
        Client::with_retry(addr, RetryPolicy::default())
    }

    /// Creates a client with an explicit retry policy.
    pub fn with_retry(addr: &str, retry: RetryPolicy) -> Client {
        let jitter = SplitMix64::new(retry.jitter_seed);
        Client {
            addrs: vec![addr.to_owned()],
            active: 0,
            conn: None,
            connects: 0,
            failovers: 0,
            retry,
            jitter,
            request_id: None,
        }
    }

    /// Adds a failover peer address (idempotent; the primary and
    /// duplicates are ignored).
    pub fn add_peer(&mut self, addr: &str) {
        if !self.addrs.iter().any(|a| a == addr) {
            self.addrs.push(addr.to_owned());
        }
    }

    /// The address requests currently go to.
    pub fn addr(&self) -> &str {
        &self.addrs[self.active]
    }

    /// TCP connections established so far (tests assert keep-alive reuse
    /// by checking this stays at 1 across requests).
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Failovers to another peer so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Rotates to the next configured address and drops the cached
    /// connection. No-op with a single address.
    fn fail_over(&mut self) {
        if self.addrs.len() > 1 {
            self.active = (self.active + 1) % self.addrs.len();
            self.conn = None;
            self.failovers += 1;
        }
    }

    /// Sets an `X-Request-Id` to send on every subsequent request (the
    /// server echoes it and threads it through job failure envelopes).
    /// `None` clears it, letting the server mint its own per request.
    pub fn set_request_id(&mut self, id: Option<String>) {
        self.request_id = id;
    }

    /// Like [`Client::request`], but retries transient failures — I/O
    /// errors and 429 responses — up to the policy's `max_retries`,
    /// sleeping a jittered exponential backoff between attempts. A 429
    /// with `Retry-After: <secs>` sleeps that long (capped) instead.
    ///
    /// # Errors
    ///
    /// Returns the last I/O error once retries are exhausted. An
    /// exhausted 429 is returned as the response, not an error.
    pub fn request_retrying(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> io::Result<HttpResponse> {
        let mut attempt = 0u32;
        loop {
            let outcome = self.request(method, path, body);
            let multi = self.addrs.len() > 1;
            // With peers configured, a 5xx becomes worth retrying — on
            // the *next* peer. Single-address behavior is unchanged
            // (5xx is a terminal answer there).
            let retriable = match &outcome {
                Ok(resp) => resp.status == 429 || (multi && resp.status >= 500),
                Err(_) => true,
            };
            if !retriable || attempt >= self.retry.max_retries {
                return outcome;
            }
            match &outcome {
                Err(_) => self.fail_over(),
                Ok(resp) if resp.status >= 500 => self.fail_over(),
                Ok(_) => {}
            }
            let delay = match &outcome {
                Ok(resp) => resp
                    .header("retry-after")
                    .and_then(|v| v.parse::<u64>().ok())
                    .map_or_else(
                        || self.retry.backoff(attempt, &mut self.jitter),
                        |secs| Duration::from_secs(secs).min(self.retry.max_delay),
                    ),
                Err(_) => self.retry.backoff(attempt, &mut self.jitter),
            };
            std::thread::sleep(delay);
            attempt += 1;
        }
    }

    /// Sends one request on the kept-alive connection and reads the
    /// framed response.
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write errors after the one reconnect
    /// attempt; malformed responses map to [`io::ErrorKind::InvalidData`].
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<HttpResponse> {
        match self.try_request(method, path, body) {
            Ok(resp) => Ok(resp),
            Err(_) if self.conn.is_none() => {
                // The cached connection had gone stale (server idle-closed
                // it); retry once on a fresh one.
                self.try_request(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<HttpResponse> {
        if self.conn.is_none() {
            let addr = self.addrs[self.active].clone();
            self.conn = Some(BufReader::new(TcpStream::connect(&addr)?));
            self.connects += 1;
        }
        let id_header = self
            .request_id
            .as_ref()
            .map_or_else(String::new, |id| format!("x-request-id: {id}\r\n"));
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n{id_header}\r\n",
            self.addrs[self.active],
            body.len()
        );
        let conn = self.conn.as_mut().expect("connected above");
        let result = (|| {
            let stream = conn.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(body)?;
            stream.flush()?;
            read_framed_response(conn)
        })();
        match result {
            Ok(resp) => {
                // Honor the server's decision to close.
                if resp
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                {
                    self.conn = None;
                }
                Ok(resp)
            }
            Err(e) => {
                // Drop the broken connection so the caller (or our retry)
                // starts clean.
                self.conn = None;
                Err(e)
            }
        }
    }
}

/// Reads one `Content-Length`-framed response off a buffered stream,
/// leaving the stream positioned at the next response.
fn read_framed_response(r: &mut BufReader<TcpStream>) -> io::Result<HttpResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before response",
        ));
    }
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;

    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        if r.read_line(&mut h)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_lowercase(), v.trim().to_owned()));
        }
    }
    let len = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .ok_or_else(|| bad("response without content-length"))?;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

/// Parses a full `Connection: close` response (head + body). Shared with
/// the peer transport (`crate::peer`), which frames the same way.
pub(crate) fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let split = find_head_end(raw).ok_or_else(|| bad("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("head not utf-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_lowercase(), v.trim().to_owned()))
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: raw[split + 4..].to_vec(),
    })
}

fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw =
            b"HTTP/1.1 429 Too Many Requests\r\nretry-after: 2\r\ncontent-length: 2\r\n\r\n{}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("2"));
        assert_eq!(resp.body_str(), "{}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 nope\r\n\r\n").is_err());
    }

    /// Reads one request head (through `\r\n\r\n`) off a stream so the
    /// canned response doesn't race the client's write.
    fn read_request_head(s: &mut TcpStream) {
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            if s.read(&mut byte).unwrap_or(0) == 0 {
                return;
            }
            buf.push(byte[0]);
        }
    }

    #[test]
    fn retrying_client_rides_out_429s() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let answers = [
                "HTTP/1.1 429 Too Many Requests\r\nretry-after: 0\r\ncontent-length: 2\r\nconnection: close\r\n\r\n{}",
                "HTTP/1.1 429 Too Many Requests\r\nretry-after: 0\r\ncontent-length: 2\r\nconnection: close\r\n\r\n{}",
                "HTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: close\r\n\r\nok",
            ];
            for answer in answers {
                let (mut s, _) = listener.accept().unwrap();
                read_request_head(&mut s);
                s.write_all(answer.as_bytes()).unwrap();
            }
        });
        let policy = RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        let mut client = Client::with_retry(&addr, policy);
        let resp = client.request_retrying("GET", "/v1/healthz", b"").unwrap();
        assert_eq!(resp.status, 200);
        // One connection per attempt (each answer said `connection: close`).
        assert_eq!(client.connects(), 3);
        h.join().unwrap();
    }

    #[test]
    fn failover_rotates_past_a_dead_primary_and_a_5xx() {
        use std::net::TcpListener;
        // Primary: bound then dropped, so connects are refused.
        let dead = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = dead.local_addr().unwrap().to_string();
        drop(dead);
        // Second peer answers 503 — with peers configured that is a
        // failover trigger, not a terminal answer.
        let draining = TcpListener::bind("127.0.0.1:0").unwrap();
        let draining_addr = draining.local_addr().unwrap().to_string();
        let h1 = std::thread::spawn(move || {
            let (mut s, _) = draining.accept().unwrap();
            read_request_head(&mut s);
            s.write_all(
                b"HTTP/1.1 503 Service Unavailable\r\ncontent-length: 2\r\nconnection: close\r\n\r\n{}",
            )
            .unwrap();
        });
        // Third peer is healthy.
        let live = TcpListener::bind("127.0.0.1:0").unwrap();
        let live_addr = live.local_addr().unwrap().to_string();
        let h2 = std::thread::spawn(move || {
            let (mut s, _) = live.accept().unwrap();
            read_request_head(&mut s);
            s.write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 2\r\nconnection: close\r\n\r\nok")
                .unwrap();
        });
        let policy = RetryPolicy {
            max_retries: 4,
            base_delay: Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        let mut client = Client::with_retry(&dead_addr, policy);
        client.add_peer(&draining_addr);
        client.add_peer(&live_addr);
        let resp = client.request_retrying("GET", "/v1/healthz", b"").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(client.failovers(), 2);
        assert_eq!(client.addr(), live_addr);
        h1.join().unwrap();
        h2.join().unwrap();
    }

    #[test]
    fn no_retry_policy_surfaces_the_429() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_request_head(&mut s);
            s.write_all(
                b"HTTP/1.1 429 Too Many Requests\r\nretry-after: 1\r\ncontent-length: 2\r\nconnection: close\r\n\r\n{}",
            )
            .unwrap();
        });
        let mut client = Client::with_retry(&addr, RetryPolicy::none());
        let resp = client.request_retrying("GET", "/v1/healthz", b"").unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(client.connects(), 1);
        h.join().unwrap();
    }

    #[test]
    fn backoff_is_jittered_exponential_and_capped() {
        let policy = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(500),
            jitter_seed: 42,
        };
        let mut rng = SplitMix64::new(policy.jitter_seed);
        for attempt in 0..8 {
            let d = policy.backoff(attempt, &mut rng);
            let exp = Duration::from_millis(100 << attempt.min(16));
            assert!(
                d >= exp.mul_f64(0.5).min(policy.max_delay),
                "attempt {attempt}: {d:?}"
            );
            assert!(
                d <= policy.max_delay.max(exp.mul_f64(1.5)),
                "attempt {attempt}: {d:?}"
            );
            assert!(d <= policy.max_delay, "cap violated at {attempt}: {d:?}");
        }
        // Same seed, same sleeps: the jitter stream is deterministic.
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        assert_eq!(policy.backoff(3, &mut a), policy.backoff(3, &mut b));
    }

    #[test]
    fn framed_reads_leave_the_stream_aligned() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Two back-to-back framed responses in one write.
            s.write_all(
                b"HTTP/1.1 200 OK\r\ncontent-length: 3\r\n\r\nabcHTTP/1.1 404 Not Found\r\ncontent-length: 2\r\n\r\nno",
            )
            .unwrap();
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream);
        let a = read_framed_response(&mut r).unwrap();
        assert_eq!((a.status, a.body_str().as_str()), (200, "abc"));
        let b = read_framed_response(&mut r).unwrap();
        assert_eq!((b.status, b.body_str().as_str()), (404, "no"));
        h.join().unwrap();
    }
}

//! A minimal blocking HTTP client for talking to a running server —
//! used by the `ucsim client` subcommand and the integration tests.
//!
//! Two shapes: the one-shot [`request`] (`Connection: close`, reads to
//! EOF), and the keep-alive [`Client`], which holds one TCP connection
//! across requests using `Content-Length` framing — a whole
//! submit-then-poll sweep rides a single connection.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// A parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    /// Status code (200, 429, ...).
    pub status: u16,
    /// Header name/value pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// First value of a (lowercase) header name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one request to `addr` and reads the full response.
///
/// `body` may be empty (e.g. for GET). The connection is one-shot
/// (`Connection: close`).
///
/// # Errors
///
/// Propagates connect/read/write errors; a malformed status line maps to
/// [`io::ErrorKind::InvalidData`].
pub fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// A keep-alive client: one TCP connection reused across requests.
///
/// Responses are read by `Content-Length` framing rather than to EOF, so
/// the connection stays usable. If the server closed the connection in
/// the meantime (idle timeout, restart), the next request transparently
/// reconnects once.
pub struct Client {
    addr: String,
    conn: Option<BufReader<TcpStream>>,
    connects: u64,
}

impl Client {
    /// Creates a client for `addr` (connects lazily on first request).
    pub fn new(addr: &str) -> Client {
        Client {
            addr: addr.to_owned(),
            conn: None,
            connects: 0,
        }
    }

    /// TCP connections established so far (tests assert keep-alive reuse
    /// by checking this stays at 1 across requests).
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Sends one request on the kept-alive connection and reads the
    /// framed response.
    ///
    /// # Errors
    ///
    /// Propagates connect/read/write errors after the one reconnect
    /// attempt; malformed responses map to [`io::ErrorKind::InvalidData`].
    pub fn request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<HttpResponse> {
        match self.try_request(method, path, body) {
            Ok(resp) => Ok(resp),
            Err(_) if self.conn.is_none() => {
                // The cached connection had gone stale (server idle-closed
                // it); retry once on a fresh one.
                self.try_request(method, path, body)
            }
            Err(e) => Err(e),
        }
    }

    fn try_request(&mut self, method: &str, path: &str, body: &[u8]) -> io::Result<HttpResponse> {
        if self.conn.is_none() {
            self.conn = Some(BufReader::new(TcpStream::connect(&self.addr)?));
            self.connects += 1;
        }
        let conn = self.conn.as_mut().expect("connected above");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n",
            self.addr,
            body.len()
        );
        let result = (|| {
            let stream = conn.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(body)?;
            stream.flush()?;
            read_framed_response(conn)
        })();
        match result {
            Ok(resp) => {
                // Honor the server's decision to close.
                if resp
                    .header("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"))
                {
                    self.conn = None;
                }
                Ok(resp)
            }
            Err(e) => {
                // Drop the broken connection so the caller (or our retry)
                // starts clean.
                self.conn = None;
                Err(e)
            }
        }
    }
}

/// Reads one `Content-Length`-framed response off a buffered stream,
/// leaving the stream positioned at the next response.
fn read_framed_response(r: &mut BufReader<TcpStream>) -> io::Result<HttpResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before response",
        ));
    }
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;

    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        if r.read_line(&mut h)? == 0 {
            return Err(bad("connection closed mid-headers"));
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_lowercase(), v.trim().to_owned()));
        }
    }
    let len = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .ok_or_else(|| bad("response without content-length"))?;
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}

fn parse_response(raw: &[u8]) -> io::Result<HttpResponse> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
    let split = find_head_end(raw).ok_or_else(|| bad("no header terminator"))?;
    let head = std::str::from_utf8(&raw[..split]).map_err(|_| bad("head not utf-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_lowercase(), v.trim().to_owned()))
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: raw[split + 4..].to_vec(),
    })
}

fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw =
            b"HTTP/1.1 429 Too Many Requests\r\nretry-after: 2\r\ncontent-length: 2\r\n\r\n{}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.header("retry-after"), Some("2"));
        assert_eq!(resp.body_str(), "{}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 nope\r\n\r\n").is_err());
    }

    #[test]
    fn framed_reads_leave_the_stream_aligned() {
        use std::net::TcpListener;
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let h = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Two back-to-back framed responses in one write.
            s.write_all(
                b"HTTP/1.1 200 OK\r\ncontent-length: 3\r\n\r\nabcHTTP/1.1 404 Not Found\r\ncontent-length: 2\r\n\r\nno",
            )
            .unwrap();
        });
        let stream = TcpStream::connect(addr).unwrap();
        let mut r = BufReader::new(stream);
        let a = read_framed_response(&mut r).unwrap();
        assert_eq!((a.status, a.body_str().as_str()), (200, "abc"));
        let b = read_framed_response(&mut r).unwrap();
        assert_eq!((b.status, b.body_str().as_str()), (404, "no"));
        h.join().unwrap();
    }
}

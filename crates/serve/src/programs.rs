//! User-program resources: validation, content addressing, and the
//! in-memory registry behind `POST /v1/programs` (DESIGN.md §11).
//!
//! A *program* is a bring-your-own workload: either a ucasm source file
//! (assembled with [`ucsim_isa::assemble`] and laid out per-seed with
//! [`ucsim_trace::load_asm`]) or a recorded instruction trace in the
//! binary `UCT1` format. Both are content-addressed by the FNV-1a hash
//! of the *uploaded bytes* — uploading the same file twice (to any node
//! of a cluster) yields the same id, and a job referencing
//! `program:<id>` / `trace:<id>` is exactly as deterministic as one
//! referencing a Table II profile.
//!
//! Uploads are validated eagerly: ucasm must assemble and pass the
//! arena-layout validator, traces must decode completely. Invalid
//! uploads are rejected with a stable `invalid_program` envelope and
//! never enter the registry, so every ref that resolves is runnable.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use ucsim_isa::{assemble, AsmProgram};
use ucsim_model::json::Json;
use ucsim_model::WorkloadRef;
use ucsim_trace::{load_asm, Trace};

use crate::api::{self, fnv1a};

/// Upload size ceiling: guards the assembler and the store against
/// absurd bodies (a 4 MiB ucasm file is ~200k instructions).
pub const MAX_PROGRAM_BYTES: usize = 4 * 1024 * 1024;

/// The `UCT1` trace-file magic, used to sniff binary uploads.
const UCT1_MAGIC: &[u8; 4] = b"UCT1";

/// What kind of resource a stored program is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramKind {
    /// ucasm source, assembled at upload and laid out per-seed at run.
    Asm,
    /// A recorded `UCT1` instruction trace, replayed verbatim.
    Trace,
}

impl ProgramKind {
    /// The wire `kind` string.
    pub fn as_str(self) -> &'static str {
        match self {
            ProgramKind::Asm => "asm",
            ProgramKind::Trace => "trace",
        }
    }

    /// Parses the wire `kind` string.
    pub fn parse(s: &str) -> Option<ProgramKind> {
        match s {
            "asm" => Some(ProgramKind::Asm),
            "trace" => Some(ProgramKind::Trace),
            _ => None,
        }
    }
}

/// The validated, parsed form of an upload.
enum ProgramBody {
    /// Assembled ucasm (the source is the uploaded bytes).
    Asm(AsmProgram),
    /// A decoded recorded trace.
    Trace(Arc<Trace>),
}

/// One validated, content-addressed user program.
pub struct StoredProgram {
    hash: u64,
    raw: Vec<u8>,
    body: ProgramBody,
}

impl std::fmt::Debug for StoredProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredProgram")
            .field("id", &self.id())
            .field("kind", &self.kind().as_str())
            .field("insts", &self.insts())
            .field("bytes", &self.raw.len())
            .finish()
    }
}

impl StoredProgram {
    /// The content address: FNV-1a over the uploaded bytes.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The resource id as it appears in refs and URLs (16 hex digits).
    pub fn id(&self) -> String {
        api::format_key(self.hash)
    }

    /// The resource kind.
    pub fn kind(&self) -> ProgramKind {
        match self.body {
            ProgramBody::Asm(_) => ProgramKind::Asm,
            ProgramBody::Trace(_) => ProgramKind::Trace,
        }
    }

    /// The workload reference that runs this program.
    pub fn workload_ref(&self) -> WorkloadRef {
        match self.kind() {
            ProgramKind::Asm => WorkloadRef::Program(self.hash),
            ProgramKind::Trace => WorkloadRef::Trace(self.hash),
        }
    }

    /// The normalized ref string (`program:<id>` / `trace:<id>`).
    pub fn ref_string(&self) -> String {
        self.workload_ref().to_ref_string()
    }

    /// The exact bytes that were uploaded (re-uploading them anywhere
    /// reproduces the same content address).
    pub fn raw(&self) -> &[u8] {
        &self.raw
    }

    /// The assembled program, when this is a ucasm resource.
    pub fn asm(&self) -> Option<&AsmProgram> {
        match &self.body {
            ProgramBody::Asm(asm) => Some(asm),
            ProgramBody::Trace(_) => None,
        }
    }

    /// The decoded trace, when this is a recorded-trace resource.
    pub fn trace(&self) -> Option<&Arc<Trace>> {
        match &self.body {
            ProgramBody::Asm(_) => None,
            ProgramBody::Trace(t) => Some(t),
        }
    }

    /// Instruction count: static instructions for ucasm, recorded
    /// dynamic instructions for a trace.
    pub fn insts(&self) -> u64 {
        match &self.body {
            ProgramBody::Asm(asm) => asm.static_insts() as u64,
            ProgramBody::Trace(t) => t.len() as u64,
        }
    }

    /// The `GET /v1/programs[/:id]` resource document.
    pub fn meta_json(&self) -> Json {
        Json::Obj(vec![
            ("id".to_owned(), Json::Str(self.id())),
            ("ref".to_owned(), Json::Str(self.ref_string())),
            (
                "kind".to_owned(),
                Json::Str(self.kind().as_str().to_owned()),
            ),
            ("insts".to_owned(), Json::Uint(self.insts())),
            ("bytes".to_owned(), Json::Uint(self.raw.len() as u64)),
        ])
    }

    /// The store/replication payload: a JSON envelope that
    /// [`decode_program_payload`] turns back into this exact resource.
    /// Trace bytes ride hex-encoded — store payloads are UTF-8 strings.
    pub fn payload_json(&self) -> String {
        let fields = match &self.body {
            ProgramBody::Asm(_) => vec![
                ("kind".to_owned(), Json::Str("asm".to_owned())),
                (
                    "source".to_owned(),
                    Json::Str(String::from_utf8_lossy(&self.raw).into_owned()),
                ),
            ],
            ProgramBody::Trace(_) => vec![
                ("kind".to_owned(), Json::Str("trace".to_owned())),
                ("hex".to_owned(), Json::Str(encode_hex(&self.raw))),
            ],
        };
        Json::Obj(fields).to_string()
    }
}

/// Validates raw uploaded bytes into a [`StoredProgram`].
///
/// Bytes starting with the `UCT1` magic decode as a recorded trace;
/// anything else must be UTF-8 ucasm that assembles and lays out
/// cleanly (a seed-0 [`load_asm`] smoke pass runs the arena validator).
///
/// # Errors
///
/// A human-readable message for the `invalid_program` envelope.
pub fn validate_program_bytes(bytes: &[u8]) -> Result<StoredProgram, String> {
    if bytes.is_empty() {
        return Err("empty program body".to_owned());
    }
    if bytes.len() > MAX_PROGRAM_BYTES {
        return Err(format!(
            "program body is {} bytes (max {MAX_PROGRAM_BYTES})",
            bytes.len()
        ));
    }
    let hash = fnv1a(bytes);
    if bytes.starts_with(UCT1_MAGIC) {
        let trace = Trace::from_bytes(bytes).map_err(|e| format!("bad UCT1 trace: {e}"))?;
        if trace.is_empty() {
            return Err("trace holds zero instructions".to_owned());
        }
        return Ok(StoredProgram {
            hash,
            raw: bytes.to_vec(),
            body: ProgramBody::Trace(Arc::new(trace)),
        });
    }
    let source = std::str::from_utf8(bytes)
        .map_err(|_| "program is neither a UCT1 trace nor UTF-8 ucasm text".to_owned())?;
    let asm = assemble(source).map_err(|e| format!("ucasm: {e}"))?;
    // Layout smoke test: load_asm validates the arena invariants; the
    // seed only moves the code base, so seed 0 proves every seed.
    let _ = load_asm(&asm, 0);
    Ok(StoredProgram {
        hash,
        raw: bytes.to_vec(),
        body: ProgramBody::Asm(asm),
    })
}

/// Decodes a store/replication payload (see
/// [`StoredProgram::payload_json`]) back into a validated program.
///
/// # Errors
///
/// A human-readable message; replay callers drop undecodable records.
pub fn decode_program_payload(payload: &str) -> Result<StoredProgram, String> {
    let doc = Json::parse(payload).map_err(|e| format!("program payload: {e}"))?;
    let kind = doc
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("program payload lacks kind")?;
    match ProgramKind::parse(kind) {
        Some(ProgramKind::Asm) => {
            let source = doc
                .get("source")
                .and_then(Json::as_str)
                .ok_or("asm payload lacks source")?;
            validate_program_bytes(source.as_bytes())
        }
        Some(ProgramKind::Trace) => {
            let hex = doc
                .get("hex")
                .and_then(Json::as_str)
                .ok_or("trace payload lacks hex")?;
            validate_program_bytes(&decode_hex(hex)?)
        }
        None => Err(format!("unknown program kind {kind:?}")),
    }
}

/// Lowercase hex encoding (store payloads must be UTF-8 strings).
pub fn encode_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes [`encode_hex`] output.
///
/// # Errors
///
/// A human-readable message on odd length or non-hex digits.
pub fn decode_hex(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err("hex payload has odd length".to_owned());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16).ok_or("bad hex digit")?;
        let lo = (pair[1] as char).to_digit(16).ok_or("bad hex digit")?;
        out.push((hi * 16 + lo) as u8);
    }
    Ok(out)
}

/// The server's program registry: content hash → validated program.
/// Inserts are idempotent (content addressing makes re-uploads no-ops);
/// nothing is ever evicted — programs are small and the store replays
/// them on restart anyway.
#[derive(Default)]
pub struct ProgramRegistry {
    map: RwLock<HashMap<u64, Arc<StoredProgram>>>,
}

impl ProgramRegistry {
    /// An empty registry.
    pub fn new() -> ProgramRegistry {
        ProgramRegistry::default()
    }

    /// Inserts a validated program, returning the shared entry and
    /// whether it was newly created (false: this content address was
    /// already registered — the existing entry wins).
    pub fn insert(&self, program: StoredProgram) -> (Arc<StoredProgram>, bool) {
        let mut map = self.map.write().expect("program registry lock");
        match map.entry(program.hash) {
            std::collections::hash_map::Entry::Occupied(e) => (Arc::clone(e.get()), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                let arc = Arc::new(program);
                e.insert(Arc::clone(&arc));
                (arc, true)
            }
        }
    }

    /// Looks up a program by content hash.
    pub fn get(&self, hash: u64) -> Option<Arc<StoredProgram>> {
        self.map
            .read()
            .expect("program registry lock")
            .get(&hash)
            .map(Arc::clone)
    }

    /// Resolves a workload ref against the registry: the hash must be
    /// present *and* the resource kind must match the ref's tag.
    pub fn resolve(&self, wref: &WorkloadRef) -> Option<Arc<StoredProgram>> {
        let hash = wref.resource_hash()?;
        let p = self.get(hash)?;
        (p.workload_ref() == *wref).then_some(p)
    }

    /// Every registered program, ascending by id, optionally filtered by
    /// kind (`GET /v1/programs?kind=asm|trace`).
    pub fn list(&self, kind: Option<ProgramKind>) -> Vec<Arc<StoredProgram>> {
        let map = self.map.read().expect("program registry lock");
        let mut out: Vec<_> = map
            .values()
            .filter(|p| kind.is_none_or(|k| p.kind() == k))
            .map(Arc::clone)
            .collect();
        out.sort_by_key(|p| p.hash());
        out
    }

    /// Number of registered programs.
    pub fn len(&self) -> usize {
        self.map.read().expect("program registry lock").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOOP_ASM: &str = ".func main\ntop: alu 3\n jcc top trip=8\n jmp top\n.end\n";

    #[test]
    fn asm_uploads_validate_and_address_by_content() {
        let p = validate_program_bytes(LOOP_ASM.as_bytes()).unwrap();
        assert_eq!(p.kind(), ProgramKind::Asm);
        assert_eq!(p.hash(), fnv1a(LOOP_ASM.as_bytes()));
        assert_eq!(p.ref_string(), format!("program:{}", p.id()));
        assert_eq!(p.insts(), 3);
        assert!(p.asm().is_some() && p.trace().is_none());
        let meta = p.meta_json();
        assert_eq!(meta.get("kind").unwrap().as_str(), Some("asm"));
        assert_eq!(
            meta.get("bytes").unwrap().as_u64(),
            Some(LOOP_ASM.len() as u64)
        );
    }

    #[test]
    fn trace_uploads_validate_and_round_trip() {
        use ucsim_trace::{Program, WorkloadProfile};
        let profile = WorkloadProfile::quick_test();
        let program = Program::generate(&profile);
        let trace = Trace::record(program.walk(&profile).take(200));
        let bytes = trace.to_bytes();
        let p = validate_program_bytes(&bytes).unwrap();
        assert_eq!(p.kind(), ProgramKind::Trace);
        assert_eq!(p.insts(), 200);
        assert_eq!(p.raw(), &bytes[..]);
        assert_eq!(p.ref_string(), format!("trace:{}", p.id()));
    }

    #[test]
    fn invalid_uploads_are_rejected_with_messages() {
        assert!(validate_program_bytes(b"").unwrap_err().contains("empty"));
        // Bad asm: jcc to an unknown label.
        let e = validate_program_bytes(b".func main\n jcc nowhere\n.end\n").unwrap_err();
        assert!(e.starts_with("ucasm: line"), "{e}");
        // Truncated trace: magic + count but no records.
        let mut bytes = UCT1_MAGIC.to_vec();
        bytes.extend_from_slice(&5u64.to_be_bytes());
        let e = validate_program_bytes(&bytes).unwrap_err();
        assert!(e.starts_with("bad UCT1 trace"), "{e}");
        // Binary garbage that is neither.
        assert!(validate_program_bytes(&[0xfe, 0xff, 0x00]).is_err());
    }

    #[test]
    fn payload_json_round_trips_both_kinds() {
        let asm = validate_program_bytes(LOOP_ASM.as_bytes()).unwrap();
        let back = decode_program_payload(&asm.payload_json()).unwrap();
        assert_eq!(back.hash(), asm.hash());
        assert_eq!(back.kind(), ProgramKind::Asm);

        use ucsim_trace::{Program, WorkloadProfile};
        let profile = WorkloadProfile::quick_test();
        let trace = Trace::record(Program::generate(&profile).walk(&profile).take(50));
        let t = validate_program_bytes(&trace.to_bytes()).unwrap();
        let back = decode_program_payload(&t.payload_json()).unwrap();
        assert_eq!(back.hash(), t.hash());
        assert_eq!(back.kind(), ProgramKind::Trace);
        assert_eq!(back.raw(), t.raw());
    }

    #[test]
    fn hex_round_trips() {
        let data = [0u8, 1, 0xab, 0xff, 0x10];
        assert_eq!(decode_hex(&encode_hex(&data)).unwrap(), data);
        assert!(decode_hex("abc").is_err());
        assert!(decode_hex("zz").is_err());
    }

    #[test]
    fn registry_is_idempotent_and_kind_checked() {
        let reg = ProgramRegistry::new();
        assert!(reg.is_empty());
        let (a, created) = reg.insert(validate_program_bytes(LOOP_ASM.as_bytes()).unwrap());
        assert!(created);
        let (b, created) = reg.insert(validate_program_bytes(LOOP_ASM.as_bytes()).unwrap());
        assert!(!created);
        assert_eq!(a.hash(), b.hash());
        assert_eq!(reg.len(), 1);

        assert!(reg.resolve(&WorkloadRef::Program(a.hash())).is_some());
        // A trace ref to an asm resource must not resolve.
        assert!(reg.resolve(&WorkloadRef::Trace(a.hash())).is_none());
        assert!(reg.resolve(&WorkloadRef::Program(a.hash() ^ 1)).is_none());
        assert!(reg
            .resolve(&WorkloadRef::Profile("redis".to_owned()))
            .is_none());

        assert_eq!(reg.list(None).len(), 1);
        assert_eq!(reg.list(Some(ProgramKind::Asm)).len(), 1);
        assert_eq!(reg.list(Some(ProgramKind::Trace)).len(), 0);
    }
}

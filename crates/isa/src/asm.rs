//! ucasm — a tiny text ISA for the synthetic CISC model.
//!
//! ucasm lets a user *construct* the fragmentation pathologies the paper
//! studies instead of sampling them from a profile: every instruction's
//! byte length, uop count and immediate/displacement footprint is
//! explicit, so a 20-line program can place a basic block exactly across
//! an I-cache-line boundary and watch CLASP/compaction react.
//!
//! # Grammar
//!
//! ```text
//! program  := { func }
//! func     := ".func" NAME { line } ".end"
//! line     := [LABEL ":"] [ inst | term ]        ; "; …" comments
//! inst     := CLASS [LEN] [uops=N] [imm=N] [ucode]
//! CLASS    := alu | mul | div | load | store | fp | simd | nop
//! term     := jcc  LABEL [LEN] [p=F | trip=F]    ; conditional branch
//!           | jmp  LABEL [LEN]                   ; direct jump
//!           | jmpi LABEL{,LABEL} [LEN]           ; indirect jump (switch)
//!           | call  FUNC [LEN]                   ; direct call
//!           | calli FUNC{,FUNC} [LEN]            ; indirect call (dispatch)
//!           | ret [LEN]
//! ```
//!
//! `LEN` is the instruction's byte length (1–15, default
//! [`typical_len`] for the class); `uops=` its uop expansion (1–8);
//! `imm=` the number of 32-bit immediate/displacement fields (0–2);
//! `ucode` marks it microcode-sequenced. A `jcc` whose target label is
//! at or before the current block is a loop back-edge and takes
//! `trip=<mean>` (geometric mean trip count, default 4); a forward `jcc`
//! takes `p=<taken-probability>` (default 0.5). Labels are
//! function-local; `call`/`calli` name functions.
//!
//! # Structural rules
//!
//! The first function is the entry and must loop forever: it may not
//! contain `ret` (there is no frame to return past — the dynamic walker
//! treats the entry as the top of the call stack). Every function's last
//! block must end in a terminator (control may not fall off the end),
//! and straight-line code falls through to the next block exactly as the
//! synthetic generator lays it out.
//!
//! ```
//! use ucsim_isa::assemble;
//!
//! let prog = assemble(
//!     ".func main\n\
//!      top: alu 3\n\
//!           load 4 imm=1\n\
//!           jcc top trip=8\n\
//!           jmp top\n\
//!      .end\n",
//! )
//! .unwrap();
//! assert_eq!(prog.funcs.len(), 1);
//! assert_eq!(prog.static_insts(), 4);
//! ```

use std::collections::HashMap;

use ucsim_model::InstClass;

use crate::decode::MAX_UOPS_PER_INST;
use crate::lengths::typical_len;
use crate::static_inst::StaticInst;

/// Hard cap on functions per program (sanity bound for uploads).
pub const MAX_ASM_FUNCS: usize = 4096;
/// Hard cap on total static instructions per program.
pub const MAX_ASM_INSTS: usize = 1 << 20;

/// An assembly error, carrying the 1-based source line it points at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Control-flow semantics of an assembled block terminator.
///
/// Block targets are *function-local* block indices; call targets are
/// global function indices. The trace-crate loader rebases block targets
/// into the global arena when laying the program out.
#[derive(Debug, Clone, PartialEq)]
pub enum AsmTermKind {
    /// Forward conditional branch taken with probability `p_taken`.
    CondForward {
        /// Function-local index of the taken-path block.
        target: usize,
        /// Per-execution taken probability.
        p_taken: f64,
    },
    /// Loop back-edge with geometric mean trip count `trip_mean`.
    CondLoop {
        /// Function-local index of the loop head (at or before this block).
        target: usize,
        /// Mean trips per loop activation.
        trip_mean: f64,
    },
    /// Unconditional direct jump.
    Jump {
        /// Function-local index of the target block.
        target: usize,
    },
    /// Indirect jump choosing among `targets` per execution.
    IndirectJump {
        /// Candidate function-local block indices.
        targets: Vec<usize>,
    },
    /// Direct call; execution resumes at the fall-through block.
    Call {
        /// Global index of the callee function.
        callee: usize,
    },
    /// Indirect call through a table of functions (dispatcher-style).
    IndirectCall {
        /// Candidate global function indices.
        callees: Vec<usize>,
    },
    /// Return to the caller.
    Ret,
}

/// A block terminator: the branch instruction plus its semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmTerm {
    /// The branch instruction (class/len/uops/imm).
    pub inst: StaticInst,
    /// What it does.
    pub kind: AsmTermKind,
}

/// One assembled basic block: straight-line body, optional terminator
/// (`None` = fall-through into the next block of the function).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AsmBlock {
    /// Straight-line (non-branch) instructions.
    pub body: Vec<StaticInst>,
    /// Terminating branch, if any.
    pub term: Option<AsmTerm>,
}

/// An assembled function.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmFunc {
    /// Function name (from `.func NAME`).
    pub name: String,
    /// Blocks in source order; index 0 is the entry.
    pub blocks: Vec<AsmBlock>,
}

/// A fully assembled, structurally validated ucasm program.
///
/// Function 0 is the entry. All cross-references (labels, function
/// names) are resolved to indices; the trace-crate loader turns this
/// into a laid-out `Program` with concrete addresses.
#[derive(Debug, Clone, PartialEq)]
pub struct AsmProgram {
    /// Functions; index 0 is the entry.
    pub funcs: Vec<AsmFunc>,
}

impl AsmProgram {
    /// Total static instructions (bodies + terminators).
    pub fn static_insts(&self) -> usize {
        self.funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .map(|b| b.body.len() + usize::from(b.term.is_some()))
            .sum()
    }

    /// Total static uops across all instructions.
    pub fn static_uops(&self) -> u64 {
        self.funcs
            .iter()
            .flat_map(|f| f.blocks.iter())
            .flat_map(|b| {
                b.body
                    .iter()
                    .chain(b.term.as_ref().map(|t| &t.inst))
                    .map(|i| u64::from(i.uops))
            })
            .sum()
    }
}

/// Instruction-class mnemonics for straight-line code.
fn body_class(mnemonic: &str) -> Option<InstClass> {
    Some(match mnemonic {
        "alu" => InstClass::IntAlu,
        "mul" => InstClass::IntMul,
        "div" => InstClass::IntDiv,
        "load" => InstClass::Load,
        "store" => InstClass::Store,
        "fp" => InstClass::Fp,
        "simd" => InstClass::Simd,
        "nop" => InstClass::Nop,
        _ => return None,
    })
}

/// Terminator mnemonics and the branch class their instruction carries.
fn term_class(mnemonic: &str) -> Option<InstClass> {
    Some(match mnemonic {
        "jcc" => InstClass::CondBranch,
        "jmp" => InstClass::JumpDirect,
        "jmpi" => InstClass::JumpIndirect,
        "call" | "calli" => InstClass::Call,
        "ret" => InstClass::Ret,
        _ => return None,
    })
}

/// Unresolved terminator, as parsed (targets still names).
#[derive(Debug)]
enum PendingTerm {
    Cond {
        label: String,
        p: Option<f64>,
        trip: Option<f64>,
        line: usize,
    },
    Jump {
        label: String,
        line: usize,
    },
    IndirectJump {
        labels: Vec<String>,
        line: usize,
    },
    Call {
        func: String,
        line: usize,
    },
    IndirectCall {
        funcs: Vec<String>,
        line: usize,
    },
    Ret,
}

#[derive(Debug, Default)]
struct PendingBlock {
    body: Vec<StaticInst>,
    term: Option<(StaticInst, PendingTerm)>,
}

#[derive(Debug)]
struct PendingFunc {
    name: String,
    name_line: usize,
    blocks: Vec<PendingBlock>,
    /// label → block index.
    labels: HashMap<String, usize>,
}

/// Options parsed from an instruction's operand list.
#[derive(Debug, Default)]
struct Opts {
    len: Option<u8>,
    uops: Option<u8>,
    imm: Option<u8>,
    ucode: bool,
    p: Option<f64>,
    trip: Option<f64>,
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_num<T: std::str::FromStr>(line: usize, key: &str, raw: &str) -> Result<T, AsmError> {
    raw.parse()
        .map_err(|_| err(line, format!("bad {key} value {raw:?}")))
}

/// Parses trailing operands shared by all mnemonics: an optional bare
/// length, `key=value` options, and the `ucode` flag.
fn parse_opts(line: usize, tokens: &[&str]) -> Result<Opts, AsmError> {
    let mut opts = Opts::default();
    for tok in tokens {
        if let Some((key, value)) = tok.split_once('=') {
            match key {
                "len" => opts.len = Some(parse_num(line, "len", value)?),
                "uops" => opts.uops = Some(parse_num(line, "uops", value)?),
                "imm" => opts.imm = Some(parse_num(line, "imm", value)?),
                "p" => opts.p = Some(parse_num(line, "p", value)?),
                "trip" => opts.trip = Some(parse_num(line, "trip", value)?),
                _ => return Err(err(line, format!("unknown option {key:?}"))),
            }
        } else if *tok == "ucode" {
            opts.ucode = true;
        } else if tok.chars().all(|c| c.is_ascii_digit()) {
            if opts.len.is_some() {
                return Err(err(line, format!("duplicate length operand {tok:?}")));
            }
            opts.len = Some(parse_num(line, "len", tok)?);
        } else {
            return Err(err(line, format!("unexpected operand {tok:?}")));
        }
    }
    Ok(opts)
}

/// Builds the [`StaticInst`] for a mnemonic from its parsed options.
fn build_inst(line: usize, class: InstClass, opts: &Opts) -> Result<StaticInst, AsmError> {
    let len = opts.len.unwrap_or_else(|| typical_len(class));
    if !(1..=15).contains(&len) {
        return Err(err(line, format!("length {len} out of range 1..=15")));
    }
    let uops = opts.uops.unwrap_or(1);
    if !(1..=MAX_UOPS_PER_INST).contains(&uops) {
        return Err(err(
            line,
            format!("uops {uops} out of range 1..={MAX_UOPS_PER_INST}"),
        ));
    }
    let imm = opts.imm.unwrap_or(0);
    if imm > 2 {
        return Err(err(line, format!("imm {imm} out of range 0..=2")));
    }
    Ok(StaticInst::new(class, len)
        .with_uops(uops)
        .with_imm_disp(imm)
        .with_microcoded(opts.ucode))
}

/// Splits a comma-separated target list (`a,b,c` — whitespace already
/// stripped by tokenization).
fn split_targets(line: usize, raw: &str) -> Result<Vec<String>, AsmError> {
    let targets: Vec<String> = raw
        .split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(str::to_owned)
        .collect();
    if targets.is_empty() {
        return Err(err(line, "empty target list"));
    }
    Ok(targets)
}

/// Assembles ucasm source into a structurally validated [`AsmProgram`].
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered: syntax errors, range
/// violations, unresolved labels/functions, a terminator-less final
/// block, or a `ret` in the entry function.
pub fn assemble(src: &str) -> Result<AsmProgram, AsmError> {
    let mut funcs: Vec<PendingFunc> = Vec::new();
    let mut current: Option<PendingFunc> = None;

    for (idx, raw_line) in src.lines().enumerate() {
        let line = idx + 1;
        let mut text = raw_line;
        if let Some(cut) = text.find(';') {
            text = &text[..cut];
        }
        let mut text = text.trim();
        if text.is_empty() {
            continue;
        }

        if let Some(rest) = text.strip_prefix(".func") {
            if current.is_some() {
                return Err(err(line, "nested .func (missing .end?)"));
            }
            let name = rest.trim();
            if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(err(line, format!("bad function name {name:?}")));
            }
            if funcs.iter().any(|f| f.name == name) {
                return Err(err(line, format!("duplicate function {name:?}")));
            }
            if funcs.len() >= MAX_ASM_FUNCS {
                return Err(err(line, format!("more than {MAX_ASM_FUNCS} functions")));
            }
            current = Some(PendingFunc {
                name: name.to_owned(),
                name_line: line,
                blocks: vec![PendingBlock::default()],
                labels: HashMap::new(),
            });
            continue;
        }
        if text == ".end" {
            let func = current
                .take()
                .ok_or_else(|| err(line, ".end outside a function"))?;
            if func.blocks.len() == 1
                && func.blocks[0].body.is_empty()
                && func.blocks[0].term.is_none()
            {
                return Err(err(line, format!("function {:?} is empty", func.name)));
            }
            funcs.push(func);
            continue;
        }
        let func = current
            .as_mut()
            .ok_or_else(|| err(line, "instruction outside .func/.end"))?;

        // Leading labels? Each binds to a fresh block unless the current
        // one is still empty (so several labels can share one block).
        while let Some((label, rest)) = text.split_once(':') {
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                break;
            }
            let last = func.blocks.last().expect("at least one block");
            if !last.body.is_empty() || last.term.is_some() {
                func.blocks.push(PendingBlock::default());
            }
            let block = func.blocks.len() - 1;
            if func.labels.insert(label.to_owned(), block).is_some() {
                return Err(err(line, format!("duplicate label {label:?}")));
            }
            text = rest.trim();
        }
        if text.is_empty() {
            continue;
        }

        let tokens: Vec<&str> = text.split_whitespace().collect();
        let mnemonic = tokens[0];

        if let Some(class) = body_class(mnemonic) {
            let opts = parse_opts(line, &tokens[1..])?;
            if opts.p.is_some() || opts.trip.is_some() {
                return Err(err(line, format!("{mnemonic} takes no p=/trip= options")));
            }
            let inst = build_inst(line, class, &opts)?;
            let last = func.blocks.last_mut().expect("at least one block");
            if last.term.is_some() {
                func.blocks.push(PendingBlock {
                    body: vec![inst],
                    term: None,
                });
            } else {
                last.body.push(inst);
            }
            continue;
        }

        let Some(class) = term_class(mnemonic) else {
            return Err(err(line, format!("unknown mnemonic {mnemonic:?}")));
        };
        let (target_raw, rest) = if mnemonic == "ret" {
            ("", &tokens[1..])
        } else {
            let t = tokens
                .get(1)
                .ok_or_else(|| err(line, format!("{mnemonic} needs a target")))?;
            (*t, &tokens[2..])
        };
        let opts = parse_opts(line, rest)?;
        if (opts.p.is_some() || opts.trip.is_some()) && mnemonic != "jcc" {
            return Err(err(line, format!("{mnemonic} takes no p=/trip= options")));
        }
        let inst = build_inst(line, class, &opts)?;
        let pending = match mnemonic {
            "jcc" => {
                if opts.p.is_some() && opts.trip.is_some() {
                    return Err(err(line, "jcc takes p= or trip=, not both"));
                }
                PendingTerm::Cond {
                    label: target_raw.to_owned(),
                    p: opts.p,
                    trip: opts.trip,
                    line,
                }
            }
            "jmp" => PendingTerm::Jump {
                label: target_raw.to_owned(),
                line,
            },
            "jmpi" => PendingTerm::IndirectJump {
                labels: split_targets(line, target_raw)?,
                line,
            },
            "call" => PendingTerm::Call {
                func: target_raw.to_owned(),
                line,
            },
            "calli" => PendingTerm::IndirectCall {
                funcs: split_targets(line, target_raw)?,
                line,
            },
            _ => PendingTerm::Ret,
        };
        let last = func.blocks.last_mut().expect("at least one block");
        if last.term.is_some() {
            func.blocks.push(PendingBlock::default());
        }
        let last = func.blocks.last_mut().expect("at least one block");
        last.term = Some((inst, pending));
    }

    if let Some(func) = current {
        return Err(err(
            func.name_line,
            format!("function {:?} missing .end", func.name),
        ));
    }
    if funcs.is_empty() {
        return Err(err(1, "program has no functions"));
    }
    resolve(funcs)
}

/// Resolves label/function references and enforces the structural rules.
fn resolve(pending: Vec<PendingFunc>) -> Result<AsmProgram, AsmError> {
    let func_index: HashMap<String, usize> = pending
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i))
        .collect();

    let mut funcs = Vec::with_capacity(pending.len());
    let mut total_insts = 0usize;
    for (fi, func) in pending.iter().enumerate() {
        let lookup_label = |label: &str, line: usize| -> Result<usize, AsmError> {
            func.labels
                .get(label)
                .copied()
                .ok_or_else(|| err(line, format!("unknown label {label:?} in {:?}", func.name)))
        };
        let lookup_func = |name: &str, line: usize| -> Result<usize, AsmError> {
            func_index
                .get(name)
                .copied()
                .ok_or_else(|| err(line, format!("unknown function {name:?}")))
        };

        let mut blocks = Vec::with_capacity(func.blocks.len());
        for (bi, block) in func.blocks.iter().enumerate() {
            total_insts += block.body.len() + usize::from(block.term.is_some());
            let term = match &block.term {
                None => None,
                Some((inst, pending_term)) => {
                    let kind = match pending_term {
                        PendingTerm::Cond {
                            label,
                            p,
                            trip,
                            line,
                        } => {
                            let target = lookup_label(label, *line)?;
                            if target <= bi {
                                // Back-edge (or self-loop): a loop.
                                if p.is_some() {
                                    return Err(err(
                                        *line,
                                        format!(
                                            "jcc {label} is a loop back-edge; \
                                             use trip=<mean>, not p="
                                        ),
                                    ));
                                }
                                let trip_mean = trip.unwrap_or(4.0);
                                if !trip_mean.is_finite() || trip_mean < 1.0 {
                                    return Err(err(
                                        *line,
                                        format!("trip {trip_mean} must be >= 1"),
                                    ));
                                }
                                AsmTermKind::CondLoop { target, trip_mean }
                            } else {
                                if trip.is_some() {
                                    return Err(err(
                                        *line,
                                        format!(
                                            "jcc {label} is a forward branch; \
                                             use p=<prob>, not trip="
                                        ),
                                    ));
                                }
                                let p_taken = p.unwrap_or(0.5);
                                if !(0.0..=1.0).contains(&p_taken) {
                                    return Err(err(
                                        *line,
                                        format!("p {p_taken} out of range [0, 1]"),
                                    ));
                                }
                                AsmTermKind::CondForward { target, p_taken }
                            }
                        }
                        PendingTerm::Jump { label, line } => AsmTermKind::Jump {
                            target: lookup_label(label, *line)?,
                        },
                        PendingTerm::IndirectJump { labels, line } => AsmTermKind::IndirectJump {
                            targets: labels
                                .iter()
                                .map(|l| lookup_label(l, *line))
                                .collect::<Result<_, _>>()?,
                        },
                        PendingTerm::Call { func: callee, line } => AsmTermKind::Call {
                            callee: lookup_func(callee, *line)?,
                        },
                        PendingTerm::IndirectCall { funcs, line } => AsmTermKind::IndirectCall {
                            callees: funcs
                                .iter()
                                .map(|f| lookup_func(f, *line))
                                .collect::<Result<_, _>>()?,
                        },
                        PendingTerm::Ret => {
                            if fi == 0 {
                                return Err(err(
                                    func.name_line,
                                    format!(
                                        "entry function {:?} must loop forever: \
                                         'ret' would return past the top frame",
                                        func.name
                                    ),
                                ));
                            }
                            AsmTermKind::Ret
                        }
                    };
                    Some(AsmTerm { inst: *inst, kind })
                }
            };
            blocks.push(AsmBlock {
                body: block.body.clone(),
                term,
            });
        }

        // Control may not fall off the end of a function.
        if blocks.last().is_none_or(|b| b.term.is_none()) {
            return Err(err(
                func.name_line,
                format!("function {:?}: control falls off the end", func.name),
            ));
        }
        funcs.push(AsmFunc {
            name: func.name.clone(),
            blocks,
        });
    }
    if total_insts > MAX_ASM_INSTS {
        return Err(err(
            1,
            format!("program exceeds {MAX_ASM_INSTS} static instructions"),
        ));
    }
    Ok(AsmProgram { funcs })
}

#[cfg(test)]
mod tests {
    use super::*;

    const DISPATCH: &str = "\
.func main
top: alu 3
     calli f1,f2
     jmp top
.end
.func f1
     load 4 imm=1
     ret
.end
.func f2
     store 7 imm=2 uops=2
     ret 1
.end
";

    #[test]
    fn dispatcher_program_assembles() {
        let p = assemble(DISPATCH).unwrap();
        assert_eq!(p.funcs.len(), 3);
        assert_eq!(p.funcs[0].name, "main");
        // main: one block with body [alu] + calli term, then jmp block.
        assert_eq!(p.funcs[0].blocks.len(), 2);
        let calli = p.funcs[0].blocks[0].term.as_ref().unwrap();
        assert_eq!(
            calli.kind,
            AsmTermKind::IndirectCall {
                callees: vec![1, 2]
            }
        );
        assert_eq!(calli.inst.class, InstClass::Call);
        assert_eq!(p.static_insts(), 7);
        assert!(p.static_uops() >= 8, "store has 2 uops");
    }

    #[test]
    fn loops_and_forward_branches_classify_by_direction() {
        let p = assemble(
            ".func main\n\
             head: alu 2\n\
                   jcc skip p=0.25\n\
                   mul 4\n\
             skip: nop 1\n\
                   jcc head trip=16\n\
                   jmp head\n\
             .end\n",
        )
        .unwrap();
        let blocks = &p.funcs[0].blocks;
        assert!(matches!(
            blocks[0].term.as_ref().unwrap().kind,
            AsmTermKind::CondForward { target: 2, p_taken } if (p_taken - 0.25).abs() < 1e-12
        ));
        assert!(matches!(
            blocks[2].term.as_ref().unwrap().kind,
            AsmTermKind::CondLoop { target: 0, trip_mean } if (trip_mean - 16.0).abs() < 1e-12
        ));
    }

    #[test]
    fn defaults_fill_len_and_uops() {
        let p = assemble(".func m\nl: alu\n jmp l\n.end\n").unwrap();
        let alu = p.funcs[0].blocks[0].body[0];
        assert_eq!(alu.len, typical_len(InstClass::IntAlu));
        assert_eq!(alu.uops, 1);
        assert!(!alu.microcoded);
    }

    #[test]
    fn ucode_and_option_forms_parse() {
        let p = assemble(".func m\nl: div len=7 uops=8 imm=1 ucode\n jmp l\n.end\n").unwrap();
        let div = p.funcs[0].blocks[0].body[0];
        assert_eq!((div.len, div.uops, div.imm_disp), (7, 8, 1));
        assert!(div.microcoded);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases: &[(&str, usize, &str)] = &[
            ("alu 3\n", 1, "outside .func"),
            (".func m\nl: alu 99\n jmp l\n.end\n", 2, "out of range"),
            (".func m\nl: alu uops=9\n jmp l\n.end\n", 2, "uops 9"),
            (".func m\nl: alu imm=3\n jmp l\n.end\n", 2, "imm 3"),
            (".func m\nl: bogus 3\n jmp l\n.end\n", 2, "unknown mnemonic"),
            (".func m\nl: jmp nowhere\n.end\n", 2, "unknown label"),
            (".func m\nl: call nofunc\n.end\n", 2, "unknown function"),
            (".func m\nl: alu 3\n.end\n", 1, "falls off the end"),
            (".func m\nl: ret\n.end\n", 1, "must loop forever"),
            (".func m\n.end\n", 2, "is empty"),
            (".func m\nl: alu\n jmp l\n", 1, "missing .end"),
            (".func m\nl: jcc l p=0.5\n jmp l\n.end\n", 2, "trip="),
            (
                ".func m\nl: alu\n jcc z p=2\nz: jmp l\n.end\n",
                3,
                "out of range",
            ),
        ];
        for (src, line, needle) in cases {
            let e = assemble(src).expect_err(src);
            assert_eq!(e.line, *line, "{src:?} → {e}");
            assert!(e.message.contains(needle), "{src:?} → {e}");
        }
    }

    #[test]
    fn comments_blank_lines_and_shared_labels_are_fine() {
        let p = assemble(
            "; a comment\n\
             .func main   ; entry\n\
             a: b: alu 3  ; two labels, one block\n\
             \n\
             jmpi a,b\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(p.funcs[0].blocks.len(), 1);
        assert_eq!(
            p.funcs[0].blocks[0].term.as_ref().unwrap().kind,
            AsmTermKind::IndirectJump {
                targets: vec![0, 0]
            }
        );
    }

    #[test]
    fn code_after_a_terminator_starts_a_new_fallthrough_block() {
        let p = assemble(
            ".func main\n\
             top: alu 2\n\
                  call f\n\
                  alu 1\n\
                  jmp top\n\
             .end\n\
             .func f\n\
                  ret\n\
             .end\n",
        )
        .unwrap();
        // call ends block 0; the alu after it is the fall-through block.
        assert_eq!(p.funcs[0].blocks.len(), 2);
        assert_eq!(p.funcs[0].blocks[1].body.len(), 1);
    }
}

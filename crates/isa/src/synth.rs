//! Statistical synthesis of static instructions.

use ucsim_model::{InstClass, SplitMix64};

use crate::{lengths, InstMix, StaticInst};

/// Synthesizes statistically realistic non-branch instructions from an
/// [`InstMix`].
///
/// The CFG generator in `ucsim-trace` uses one synthesizer per workload to
/// fill basic-block bodies and separately emits the terminating branch.
///
/// # Example
///
/// ```
/// use ucsim_isa::{InstMix, InstSynthesizer};
/// use ucsim_model::SplitMix64;
///
/// let synth = InstSynthesizer::new(InstMix::analytics());
/// let mut rng = SplitMix64::new(9);
/// let block: Vec<_> = (0..6).map(|_| synth.sample(&mut rng)).collect();
/// assert!(block.iter().all(|i| !i.class.is_branch()));
/// ```
#[derive(Debug, Clone)]
pub struct InstSynthesizer {
    mix: InstMix,
}

impl InstSynthesizer {
    /// Creates a synthesizer over the given mix.
    pub fn new(mix: InstMix) -> Self {
        InstSynthesizer { mix }
    }

    /// The underlying mix.
    pub fn mix(&self) -> &InstMix {
        &self.mix
    }

    /// Samples one non-branch static instruction.
    pub fn sample(&self, rng: &mut SplitMix64) -> StaticInst {
        let class = self.mix.sample_class(rng);
        let len = lengths::sample_len(class, rng);
        let mut inst = StaticInst::new(class, len);

        // Micro-coded instructions expand to 4–8 uops.
        if rng.chance(self.mix.microcode_prob) {
            let uops = 4 + rng.below(5) as u8; // 4..=8
            inst = inst.with_uops(uops).with_microcoded(true);
        } else if matches!(class, InstClass::IntDiv) {
            // Divides are multi-uop even when not micro-coded.
            inst = inst.with_uops(3);
        } else if rng.chance(self.mix.two_uop_prob) {
            // Load-op / op-store fusion-breaking cases: 2 uops.
            inst = inst.with_uops(2);
        }

        // Immediate/displacement fields.
        if rng.chance(self.mix.imm_disp_prob) {
            let n = if rng.chance(self.mix.second_imm_prob) {
                2
            } else {
                1
            };
            inst = inst.with_imm_disp(n);
        }
        inst
    }

    /// Samples a branch instruction of the given class (CFG terminators).
    pub fn sample_branch(&self, class: InstClass, rng: &mut SplitMix64) -> StaticInst {
        assert!(class.is_branch(), "sample_branch needs a branch class");
        let len = lengths::sample_len(class, rng);
        let mut inst = StaticInst::new(class, len);
        match class {
            InstClass::Call | InstClass::Ret => {
                inst = inst.with_uops(2);
            }
            InstClass::CondBranch
                // Jcc rel32 carries a displacement field.
                if len > 4 => {
                    inst = inst.with_imm_disp(1);
                }
            InstClass::JumpDirect if len >= 5 => {
                inst = inst.with_imm_disp(1);
            }
            _ => {}
        }
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bodies_are_branch_free_and_legal() {
        let synth = InstSynthesizer::new(InstMix::integer_heavy());
        let mut rng = SplitMix64::new(1);
        for _ in 0..5000 {
            let i = synth.sample(&mut rng);
            assert!(!i.class.is_branch());
            assert!((1..=15).contains(&i.len));
            assert!(i.uops >= 1 && i.uops <= 8);
            assert!(i.imm_disp <= 2);
        }
    }

    #[test]
    fn microcoded_rate_tracks_mix() {
        let mut mix = InstMix::integer_heavy();
        mix.microcode_prob = 0.2;
        let synth = InstSynthesizer::new(mix);
        let mut rng = SplitMix64::new(2);
        let n = 20_000;
        let mc = (0..n).filter(|_| synth.sample(&mut rng).microcoded).count();
        let frac = mc as f64 / n as f64;
        assert!((0.17..0.23).contains(&frac), "frac={frac}");
    }

    #[test]
    fn microcoded_uops_in_range() {
        let mut mix = InstMix::integer_heavy();
        mix.microcode_prob = 1.0;
        let synth = InstSynthesizer::new(mix);
        let mut rng = SplitMix64::new(3);
        for _ in 0..1000 {
            let i = synth.sample(&mut rng);
            assert!(i.microcoded);
            assert!((4..=8).contains(&i.uops), "{}", i.uops);
        }
    }

    #[test]
    #[should_panic(expected = "needs a branch class")]
    fn sample_branch_rejects_nonbranch() {
        let synth = InstSynthesizer::new(InstMix::integer_heavy());
        let mut rng = SplitMix64::new(3);
        let _ = synth.sample_branch(InstClass::Load, &mut rng);
    }

    #[test]
    fn call_ret_two_uops() {
        let synth = InstSynthesizer::new(InstMix::server());
        let mut rng = SplitMix64::new(4);
        let c = synth.sample_branch(InstClass::Call, &mut rng);
        let r = synth.sample_branch(InstClass::Ret, &mut rng);
        assert_eq!(c.uops, 2);
        assert_eq!(r.uops, 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let synth = InstSynthesizer::new(InstMix::server());
        let mut a = SplitMix64::new(50);
        let mut b = SplitMix64::new(50);
        for _ in 0..100 {
            assert_eq!(synth.sample(&mut a), synth.sample(&mut b));
        }
    }
}

//! x86-like instruction length model.
//!
//! Measured x86-64 code has a mean instruction length around 3.7–4.2 bytes
//! with a long tail to 15 (REX/VEX/EVEX prefixes, SIB, disp32, imm32).
//! The uop cache study is sensitive to this distribution because it
//! determines how many instructions fit in a 64-byte I-cache line and thus
//! where the line-boundary termination bites.

use ucsim_model::{InstClass, SplitMix64};

/// Cumulative length distribution for "plain" integer code, calibrated to
/// published x86-64 length histograms: P(len ≤ k).
const BASE_CDF: [(u8, f64); 11] = [
    (1, 0.03),
    (2, 0.11),
    (3, 0.32),
    (4, 0.54),
    (5, 0.70),
    (6, 0.81),
    (7, 0.89),
    (8, 0.94),
    (10, 0.98),
    (12, 0.994),
    (15, 1.0),
];

/// Typical (modal) length for an instruction class, used when a
/// deterministic layout is needed (tests, hand-built blocks).
pub const fn typical_len(class: InstClass) -> u8 {
    match class {
        InstClass::IntAlu => 3,
        InstClass::IntMul => 4,
        InstClass::IntDiv => 3,
        InstClass::Load => 4,
        InstClass::Store => 4,
        InstClass::CondBranch => 2,
        InstClass::JumpDirect => 2,
        InstClass::JumpIndirect => 3,
        InstClass::Call => 5,
        InstClass::Ret => 1,
        InstClass::Fp => 5,
        InstClass::Simd => 6,
        InstClass::Nop => 1,
    }
}

/// Samples a byte length for an instruction of the given class.
///
/// Branches, SIMD and FP shift the base distribution to match their typical
/// encodings (short Jcc rel8/rel32; long VEX/EVEX vector ops).
///
/// # Example
///
/// ```
/// use ucsim_isa::sample_len;
/// use ucsim_model::{InstClass, SplitMix64};
/// let mut rng = SplitMix64::new(7);
/// let l = sample_len(InstClass::Simd, &mut rng);
/// assert!((1..=15).contains(&l));
/// ```
pub fn sample_len(class: InstClass, rng: &mut SplitMix64) -> u8 {
    let u = rng.unit_f64();
    let base = BASE_CDF
        .iter()
        .find(|&&(_, c)| u <= c)
        .map(|&(l, _)| l)
        .unwrap_or(15);
    let adjusted: i16 = match class {
        // Jcc rel8 = 2B, rel32 = 6B; calls are 5B; ret 1B.
        InstClass::CondBranch => {
            if rng.chance(0.75) {
                2
            } else {
                6
            }
        }
        InstClass::JumpDirect => {
            if rng.chance(0.6) {
                2
            } else {
                5
            }
        }
        InstClass::JumpIndirect => 3,
        InstClass::Call => 5,
        InstClass::Ret => 1,
        // Vector encodings carry VEX/EVEX prefixes.
        InstClass::Simd => (base as i16 + 2).min(11),
        InstClass::Fp => (base as i16 + 1).min(10),
        // Memory ops frequently carry ModRM+SIB+disp.
        InstClass::Load | InstClass::Store => (base as i16 + 1).min(9),
        InstClass::Nop => 1,
        _ => base as i16,
    };
    adjusted.clamp(1, 15) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_monotone_and_terminates_at_one() {
        let mut prev = 0.0;
        for &(_, c) in &BASE_CDF {
            assert!(c >= prev);
            prev = c;
        }
        assert_eq!(BASE_CDF.last().unwrap().1, 1.0);
    }

    #[test]
    fn all_lengths_legal() {
        let mut rng = SplitMix64::new(42);
        for class in [
            InstClass::IntAlu,
            InstClass::Load,
            InstClass::Store,
            InstClass::CondBranch,
            InstClass::Call,
            InstClass::Ret,
            InstClass::Fp,
            InstClass::Simd,
            InstClass::JumpDirect,
            InstClass::JumpIndirect,
            InstClass::Nop,
        ] {
            for _ in 0..500 {
                let l = sample_len(class, &mut rng);
                assert!((1..=15).contains(&l), "{class}: {l}");
            }
        }
    }

    #[test]
    fn mean_length_is_x86_like() {
        let mut rng = SplitMix64::new(11);
        let n = 50_000;
        let sum: u64 = (0..n)
            .map(|_| sample_len(InstClass::IntAlu, &mut rng) as u64)
            .sum();
        let mean = sum as f64 / n as f64;
        assert!(
            (3.0..5.0).contains(&mean),
            "mean x86 length should be ~3.5-4.5, got {mean}"
        );
    }

    #[test]
    fn branches_are_short() {
        let mut rng = SplitMix64::new(11);
        let n = 10_000;
        let sum: u64 = (0..n)
            .map(|_| sample_len(InstClass::CondBranch, &mut rng) as u64)
            .sum();
        let mean = sum as f64 / n as f64;
        assert!(mean < 4.0, "Jcc mean should be short, got {mean}");
    }

    #[test]
    fn typical_lengths_legal() {
        for class in [
            InstClass::IntAlu,
            InstClass::Ret,
            InstClass::Simd,
            InstClass::Call,
        ] {
            assert!((1..=15).contains(&typical_len(class)));
        }
    }
}

//! # ucsim-isa
//!
//! A synthetic, x86-calibrated CISC instruction model.
//!
//! The paper's experiments ran on traces of real x86 binaries. An open
//! reproduction cannot ship those, so this crate models the *properties of
//! x86 instructions that the uop cache actually cares about*:
//!
//! * variable byte length (1–15 bytes, x86-like distribution),
//! * decode into one or more fixed-length 56-bit uops,
//! * 32-bit immediate/displacement fields that must be co-located with
//!   their uops in a uop cache entry,
//! * micro-coded instructions that expand into longer MS-ROM sequences.
//!
//! [`StaticInst`] describes one static instruction; [`InstSynthesizer`]
//! materializes statistically realistic instructions from an [`InstMix`];
//! [`expand_uops`] performs the "decode" into [`ucsim_model::Uop`]s.
//!
//! # Example
//!
//! ```
//! use ucsim_isa::{InstMix, InstSynthesizer};
//! use ucsim_model::SplitMix64;
//!
//! let synth = InstSynthesizer::new(InstMix::integer_heavy());
//! let mut rng = SplitMix64::new(1);
//! let inst = synth.sample(&mut rng);
//! assert!(inst.len >= 1 && inst.len <= 15);
//! assert!(inst.uops >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;

mod decode;
mod lengths;
mod mix;
mod static_inst;
mod synth;

pub use asm::{assemble, AsmBlock, AsmError, AsmFunc, AsmProgram, AsmTerm, AsmTermKind};
pub use decode::{
    expand_uops, uop_kinds_for, uop_kinds_into, UopKindTable, UopTemplate, MAX_UOPS_PER_INST,
};
pub use lengths::{sample_len, typical_len};
pub use mix::InstMix;
pub use static_inst::StaticInst;
pub use synth::InstSynthesizer;

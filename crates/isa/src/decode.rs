//! Instruction → uop expansion ("decode" semantics).
//!
//! The decoder *timing* lives in `ucsim-pipeline`; this module defines the
//! expansion itself: which [`UopKind`]s an instruction turns into, with
//! imm/disp fields attached to the first uop, matching how hardware stores
//! them alongside uops in a uop cache entry (paper Figure 11).

use ucsim_model::{DynInst, InstClass, Uop, UopKind};

/// Upper bound on uops per instruction (micro-coded sequences are capped
/// here; longer MS-ROM flows exist in hardware but are irrelevant to uop
/// cache behaviour since micro-coded entries are limited per entry anyway).
pub const MAX_UOPS_PER_INST: u8 = 8;

/// Returns the uop kind sequence for an instruction class with `n` uops.
///
/// Expansion templates:
/// * loads/stores expand to their memory uop plus ALU helper uops,
/// * branches expand to a branch uop (+ ALU for indirect targets),
/// * micro-coded sequences interleave ALU/load/store like real MS-ROM code.
pub fn uop_kinds_for(class: InstClass, n: u8) -> Vec<UopKind> {
    let n = n.clamp(1, MAX_UOPS_PER_INST) as usize;
    let primary: UopKind = match class {
        InstClass::IntAlu => UopKind::IntAlu,
        InstClass::IntMul => UopKind::IntMul,
        InstClass::IntDiv => UopKind::IntDiv,
        InstClass::Load => UopKind::Load,
        InstClass::Store => UopKind::Store,
        InstClass::CondBranch
        | InstClass::JumpDirect
        | InstClass::JumpIndirect
        | InstClass::Call
        | InstClass::Ret => UopKind::Branch,
        InstClass::Fp => UopKind::FpAdd,
        InstClass::Simd => UopKind::Simd,
        InstClass::Nop => UopKind::Nop,
    };
    let mut kinds = Vec::with_capacity(n);
    match class {
        // Call = store return addr + branch; Ret = load + branch.
        InstClass::Call if n >= 2 => {
            kinds.push(UopKind::Store);
            kinds.push(UopKind::Branch);
        }
        InstClass::Ret if n >= 2 => {
            kinds.push(UopKind::Load);
            kinds.push(UopKind::Branch);
        }
        _ => {
            kinds.push(primary);
        }
    }
    // Fill the remainder with realistic helper uops.
    let helpers = [
        UopKind::IntAlu,
        UopKind::Load,
        UopKind::IntAlu,
        UopKind::Store,
    ];
    let mut h = 0;
    while kinds.len() < n {
        kinds.push(helpers[h % helpers.len()]);
        h += 1;
    }
    // Keep the branch uop last so resolution happens at the end of the
    // instruction's uop sequence (matches hardware retirement semantics).
    if class.is_branch() {
        if let Some(pos) = kinds.iter().position(|k| k.is_branch()) {
            let last = kinds.len() - 1;
            kinds.swap(pos, last);
        }
    }
    kinds
}

/// Non-allocating variant of [`uop_kinds_for`]: writes the kinds into
/// `out` and returns the count. The simulator's hot path uses this.
///
/// # Example
///
/// ```
/// use ucsim_isa::{uop_kinds_into, MAX_UOPS_PER_INST};
/// use ucsim_model::{InstClass, UopKind};
/// let mut buf = [UopKind::Nop; MAX_UOPS_PER_INST as usize];
/// let n = uop_kinds_into(InstClass::Ret, 2, &mut buf);
/// assert_eq!(&buf[..n], &[UopKind::Load, UopKind::Branch]);
/// ```
pub fn uop_kinds_into(
    class: InstClass,
    n: u8,
    out: &mut [UopKind; MAX_UOPS_PER_INST as usize],
) -> usize {
    let n = n.clamp(1, MAX_UOPS_PER_INST) as usize;
    let primary: UopKind = match class {
        InstClass::IntAlu => UopKind::IntAlu,
        InstClass::IntMul => UopKind::IntMul,
        InstClass::IntDiv => UopKind::IntDiv,
        InstClass::Load => UopKind::Load,
        InstClass::Store => UopKind::Store,
        InstClass::CondBranch
        | InstClass::JumpDirect
        | InstClass::JumpIndirect
        | InstClass::Call
        | InstClass::Ret => UopKind::Branch,
        InstClass::Fp => UopKind::FpAdd,
        InstClass::Simd => UopKind::Simd,
        InstClass::Nop => UopKind::Nop,
    };
    let mut len = match class {
        InstClass::Call if n >= 2 => {
            out[0] = UopKind::Store;
            out[1] = UopKind::Branch;
            2
        }
        InstClass::Ret if n >= 2 => {
            out[0] = UopKind::Load;
            out[1] = UopKind::Branch;
            2
        }
        _ => {
            out[0] = primary;
            1
        }
    };
    const HELPERS: [UopKind; 4] = [
        UopKind::IntAlu,
        UopKind::Load,
        UopKind::IntAlu,
        UopKind::Store,
    ];
    let mut h = 0;
    while len < n {
        out[len] = HELPERS[h % HELPERS.len()];
        h += 1;
        len += 1;
    }
    if class.is_branch() {
        if let Some(pos) = out[..len].iter().position(|k| k.is_branch()) {
            out.swap(pos, len - 1);
        }
    }
    len
}

/// Number of [`InstClass`] variants (the table below is indexed by the
/// class discriminant).
const N_CLASSES: usize = 13;

/// One precomputed expansion: `kinds[..len as usize]` is the uop sequence.
#[derive(Debug, Clone, Copy)]
pub struct UopTemplate {
    /// Number of valid kinds.
    pub len: u8,
    /// The expansion, padded with `Nop` past `len`.
    pub kinds: [UopKind; MAX_UOPS_PER_INST as usize],
}

/// Every `(class, uop-count)` expansion precomputed from
/// [`uop_kinds_into`]. The expansion is a pure function of the class and
/// the clamped count, so the simulator's decode→dispatch path reads a
/// template row instead of re-deriving the sequence per instruction.
#[derive(Debug)]
pub struct UopKindTable {
    rows: [[UopTemplate; MAX_UOPS_PER_INST as usize]; N_CLASSES],
}

impl UopKindTable {
    /// The process-wide table, built on first use.
    pub fn get() -> &'static UopKindTable {
        static TABLE: std::sync::OnceLock<UopKindTable> = std::sync::OnceLock::new();
        TABLE.get_or_init(UopKindTable::build)
    }

    fn build() -> UopKindTable {
        const ALL: [InstClass; N_CLASSES] = [
            InstClass::IntAlu,
            InstClass::IntMul,
            InstClass::IntDiv,
            InstClass::Load,
            InstClass::Store,
            InstClass::CondBranch,
            InstClass::JumpDirect,
            InstClass::JumpIndirect,
            InstClass::Call,
            InstClass::Ret,
            InstClass::Fp,
            InstClass::Simd,
            InstClass::Nop,
        ];
        let empty = UopTemplate {
            len: 0,
            kinds: [UopKind::Nop; MAX_UOPS_PER_INST as usize],
        };
        let mut rows = [[empty; MAX_UOPS_PER_INST as usize]; N_CLASSES];
        for class in ALL {
            for n in 1..=MAX_UOPS_PER_INST {
                let mut kinds = [UopKind::Nop; MAX_UOPS_PER_INST as usize];
                let len = uop_kinds_into(class, n, &mut kinds) as u8;
                rows[class as usize][n as usize - 1] = UopTemplate { len, kinds };
            }
        }
        UopKindTable { rows }
    }

    /// The expansion template for `class` with `n` uops (`n` clamped to
    /// `1..=MAX_UOPS_PER_INST` exactly like [`uop_kinds_for`]).
    #[inline]
    pub fn template(&self, class: InstClass, n: u8) -> &UopTemplate {
        let n = n.clamp(1, MAX_UOPS_PER_INST) as usize;
        &self.rows[class as usize][n - 1]
    }
}

/// Expands a dynamic instruction into its uop sequence.
///
/// `seq` is the dynamic sequence number of the instruction (stamped into
/// every uop for deterministic back-end modeling).
///
/// # Example
///
/// ```
/// use ucsim_isa::expand_uops;
/// use ucsim_model::{Addr, DynInst, InstClass};
///
/// let inst = DynInst::simple(Addr::new(0x10), 4, InstClass::Load).with_imm_disp(1);
/// let uops = expand_uops(&inst, 42);
/// assert_eq!(uops.len(), 1);
/// assert!(uops[0].has_imm_disp);
/// assert_eq!(uops[0].seq, 42);
/// ```
pub fn expand_uops(inst: &DynInst, seq: u64) -> Vec<Uop> {
    let kinds = uop_kinds_for(inst.class, inst.uops);
    kinds
        .into_iter()
        .enumerate()
        .map(|(slot, kind)| {
            // First uop(s) carry the instruction's imm/disp fields.
            let has_imm = (slot as u8) < inst.imm_disp;
            Uop::new(inst.pc, seq, kind)
                .with_slot(slot as u8)
                .with_microcoded(inst.microcoded)
                .with_imm_disp(has_imm)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucsim_model::{Addr, BranchExec};

    #[test]
    fn single_uop_classes() {
        assert_eq!(uop_kinds_for(InstClass::IntAlu, 1), vec![UopKind::IntAlu]);
        assert_eq!(uop_kinds_for(InstClass::Load, 1), vec![UopKind::Load]);
        assert_eq!(uop_kinds_for(InstClass::Nop, 1), vec![UopKind::Nop]);
    }

    #[test]
    fn call_ret_expansions() {
        assert_eq!(
            uop_kinds_for(InstClass::Call, 2),
            vec![UopKind::Store, UopKind::Branch]
        );
        assert_eq!(
            uop_kinds_for(InstClass::Ret, 2),
            vec![UopKind::Load, UopKind::Branch]
        );
    }

    #[test]
    fn branch_uop_is_last() {
        for n in 1..=MAX_UOPS_PER_INST {
            let kinds = uop_kinds_for(InstClass::CondBranch, n);
            assert!(kinds.last().unwrap().is_branch(), "n={n}: {kinds:?}");
            assert_eq!(kinds.iter().filter(|k| k.is_branch()).count(), 1);
        }
    }

    #[test]
    fn expansion_count_clamped() {
        assert_eq!(uop_kinds_for(InstClass::IntAlu, 0).len(), 1);
        assert_eq!(
            uop_kinds_for(InstClass::IntAlu, 200).len(),
            MAX_UOPS_PER_INST as usize
        );
    }

    #[test]
    fn imm_disp_lands_on_leading_uops() {
        let inst = DynInst::simple(Addr::new(0), 5, InstClass::IntAlu)
            .with_uops(3)
            .with_imm_disp(2);
        let uops = expand_uops(&inst, 7);
        assert_eq!(uops.len(), 3);
        assert!(uops[0].has_imm_disp);
        assert!(uops[1].has_imm_disp);
        assert!(!uops[2].has_imm_disp);
    }

    #[test]
    fn microcoded_flag_propagates() {
        let inst = DynInst::simple(Addr::new(0), 3, InstClass::IntDiv)
            .with_uops(6)
            .with_microcoded(true);
        let uops = expand_uops(&inst, 1);
        assert!(uops.iter().all(|u| u.microcoded));
        assert_eq!(uops.len(), 6);
    }

    #[test]
    fn slots_are_sequential() {
        let inst = DynInst::branch(
            Addr::new(0x20),
            2,
            InstClass::CondBranch,
            BranchExec {
                taken: false,
                target: Addr::new(0x80),
            },
        )
        .with_uops(2);
        let uops = expand_uops(&inst, 3);
        assert_eq!(uops[0].slot, 0);
        assert_eq!(uops[1].slot, 1);
        assert!(uops[1].kind.is_branch());
    }
}

#[cfg(test)]
mod into_tests {
    use super::*;

    /// The non-allocating expansion must agree with the allocating one for
    /// every class and count.
    #[test]
    fn uop_kinds_into_matches_uop_kinds_for() {
        let classes = [
            InstClass::IntAlu,
            InstClass::IntMul,
            InstClass::IntDiv,
            InstClass::Load,
            InstClass::Store,
            InstClass::CondBranch,
            InstClass::JumpDirect,
            InstClass::JumpIndirect,
            InstClass::Call,
            InstClass::Ret,
            InstClass::Fp,
            InstClass::Simd,
            InstClass::Nop,
        ];
        for class in classes {
            for n in 0..=10u8 {
                let expected = uop_kinds_for(class, n);
                let mut buf = [UopKind::Nop; MAX_UOPS_PER_INST as usize];
                let len = uop_kinds_into(class, n, &mut buf);
                assert_eq!(&buf[..len], expected.as_slice(), "{class} n={n}");
            }
        }
    }

    /// The precomputed table must agree with the derivation it caches.
    #[test]
    fn table_matches_uop_kinds_for() {
        let table = UopKindTable::get();
        let classes = [
            InstClass::IntAlu,
            InstClass::IntMul,
            InstClass::IntDiv,
            InstClass::Load,
            InstClass::Store,
            InstClass::CondBranch,
            InstClass::JumpDirect,
            InstClass::JumpIndirect,
            InstClass::Call,
            InstClass::Ret,
            InstClass::Fp,
            InstClass::Simd,
            InstClass::Nop,
        ];
        for class in classes {
            for n in 0..=10u8 {
                let expected = uop_kinds_for(class, n);
                let t = table.template(class, n);
                assert_eq!(&t.kinds[..t.len as usize], expected.as_slice());
            }
        }
    }
}

//! Instruction-class mix distributions.
//!
//! A workload's instruction mix determines uop expansion pressure,
//! imm/disp density and branch density — the raw inputs of uop cache entry
//! fragmentation. Presets are calibrated to published SPEC CPU / server
//! workload characterizations.

use ucsim_model::{InstClass, SplitMix64};

/// A categorical distribution over [`InstClass`] for non-control
/// instructions, plus knobs for imm/disp density and micro-coded frequency.
///
/// Control-flow density itself is owned by the CFG generator (branches end
/// basic blocks); `InstMix` only describes the *body* of a block.
///
/// # Example
///
/// ```
/// use ucsim_isa::InstMix;
/// use ucsim_model::SplitMix64;
/// let mix = InstMix::server();
/// let mut rng = SplitMix64::new(3);
/// let c = mix.sample_class(&mut rng);
/// assert!(!c.is_branch()); // block bodies never contain branches
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InstMix {
    /// (class, weight) pairs; weights need not be normalized.
    weights: Vec<(InstClass, f64)>,
    total: f64,
    /// Probability a sampled instruction carries ≥1 imm/disp field.
    pub imm_disp_prob: f64,
    /// Probability an imm/disp-carrying instruction carries a second field.
    pub second_imm_prob: f64,
    /// Probability a sampled instruction is micro-coded.
    pub microcode_prob: f64,
    /// Probability a multi-uop (but not micro-coded) expansion (2 uops).
    pub two_uop_prob: f64,
}

impl InstMix {
    /// Creates a mix from raw `(class, weight)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is negative/non-finite, the
    /// total weight is zero, or any class is a branch (block bodies are
    /// branch-free by construction).
    pub fn new(weights: Vec<(InstClass, f64)>) -> Self {
        assert!(!weights.is_empty(), "instruction mix cannot be empty");
        for &(c, w) in &weights {
            assert!(w.is_finite() && w >= 0.0, "bad weight {w} for {c}");
            assert!(!c.is_branch(), "branches belong to the CFG, not the mix");
        }
        let total: f64 = weights.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "total weight must be positive");
        InstMix {
            weights,
            total,
            imm_disp_prob: 0.45,
            second_imm_prob: 0.06,
            microcode_prob: 0.008,
            two_uop_prob: 0.05,
        }
    }

    /// Integer-dominated mix (compilers, interpreters, compression —
    /// e.g. gcc, perlbench, xz, deepsjeng, leela).
    pub fn integer_heavy() -> Self {
        InstMix::new(vec![
            (InstClass::IntAlu, 52.0),
            (InstClass::Load, 24.0),
            (InstClass::Store, 11.0),
            (InstClass::IntMul, 1.5),
            (InstClass::IntDiv, 0.3),
            (InstClass::Fp, 0.5),
            (InstClass::Simd, 1.5),
            (InstClass::Nop, 1.2),
        ])
    }

    /// Server/managed-runtime mix (JITted Java, key-value stores): more
    /// loads/stores, more micro-coded ops, denser immediates.
    pub fn server() -> Self {
        let mut m = InstMix::new(vec![
            (InstClass::IntAlu, 45.0),
            (InstClass::Load, 28.0),
            (InstClass::Store, 14.0),
            (InstClass::IntMul, 1.0),
            (InstClass::IntDiv, 0.2),
            (InstClass::Fp, 0.3),
            (InstClass::Simd, 1.0),
            (InstClass::Nop, 2.0),
        ]);
        m.imm_disp_prob = 0.50;
        m.microcode_prob = 0.015;
        m.two_uop_prob = 0.07;
        m
    }

    /// Media/vector mix (x264): SIMD-heavy with larger instructions.
    pub fn vector_heavy() -> Self {
        let mut m = InstMix::new(vec![
            (InstClass::IntAlu, 34.0),
            (InstClass::Load, 22.0),
            (InstClass::Store, 10.0),
            (InstClass::IntMul, 2.0),
            (InstClass::Simd, 22.0),
            (InstClass::Fp, 3.0),
            (InstClass::Nop, 1.0),
        ]);
        m.imm_disp_prob = 0.40;
        m.two_uop_prob = 0.10;
        m
    }

    /// Analytics mix (Spark/Mahout): FP + loads.
    pub fn analytics() -> Self {
        let mut m = InstMix::new(vec![
            (InstClass::IntAlu, 40.0),
            (InstClass::Load, 27.0),
            (InstClass::Store, 12.0),
            (InstClass::Fp, 8.0),
            (InstClass::Simd, 4.0),
            (InstClass::IntMul, 2.0),
            (InstClass::IntDiv, 0.4),
            (InstClass::Nop, 1.5),
        ]);
        m.imm_disp_prob = 0.46;
        m.microcode_prob = 0.012;
        m
    }

    /// Samples a non-branch instruction class.
    pub fn sample_class(&self, rng: &mut SplitMix64) -> InstClass {
        let mut x = rng.unit_f64() * self.total;
        for &(c, w) in &self.weights {
            if x < w {
                return c;
            }
            x -= w;
        }
        self.weights.last().expect("non-empty by invariant").0
    }

    /// The configured `(class, weight)` pairs.
    pub fn weights(&self) -> &[(InstClass, f64)] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn rejects_empty() {
        let _ = InstMix::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "branches belong to the CFG")]
    fn rejects_branches() {
        let _ = InstMix::new(vec![(InstClass::CondBranch, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "bad weight")]
    fn rejects_negative_weight() {
        let _ = InstMix::new(vec![(InstClass::IntAlu, -1.0)]);
    }

    #[test]
    fn sampling_respects_weights() {
        let mix = InstMix::new(vec![(InstClass::IntAlu, 9.0), (InstClass::Load, 1.0)]);
        let mut rng = SplitMix64::new(5);
        let n = 20_000;
        let alus = (0..n)
            .filter(|_| mix.sample_class(&mut rng) == InstClass::IntAlu)
            .count();
        let frac = alus as f64 / n as f64;
        assert!((0.87..0.93).contains(&frac), "frac={frac}");
    }

    #[test]
    fn presets_sample_without_branches() {
        let mut rng = SplitMix64::new(5);
        for mix in [
            InstMix::integer_heavy(),
            InstMix::server(),
            InstMix::vector_heavy(),
            InstMix::analytics(),
        ] {
            for _ in 0..1000 {
                assert!(!mix.sample_class(&mut rng).is_branch());
            }
        }
    }

    #[test]
    fn preset_probabilities_sane() {
        for mix in [
            InstMix::integer_heavy(),
            InstMix::server(),
            InstMix::vector_heavy(),
            InstMix::analytics(),
        ] {
            assert!((0.0..=1.0).contains(&mix.imm_disp_prob));
            assert!((0.0..=1.0).contains(&mix.microcode_prob));
            assert!((0.0..=1.0).contains(&mix.two_uop_prob));
        }
    }
}

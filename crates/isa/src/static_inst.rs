//! Static instruction descriptors.

use ucsim_model::{Addr, BranchExec, DynInst, InstClass};

/// A position-independent static instruction: everything about an x86-like
/// instruction except *where* it lives and *what its branch did*.
///
/// The workload generator lays these out into basic blocks; the dynamic
/// walker stamps each execution with a PC and branch outcome to produce a
/// [`DynInst`].
///
/// # Example
///
/// ```
/// use ucsim_isa::StaticInst;
/// use ucsim_model::{Addr, InstClass};
///
/// let s = StaticInst::new(InstClass::Load, 4).with_imm_disp(1);
/// let d = s.instantiate(Addr::new(0x1000), None, Some(Addr::new(0x8000)));
/// assert_eq!(d.pc, Addr::new(0x1000));
/// assert_eq!(d.imm_disp, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StaticInst {
    /// Architectural class.
    pub class: InstClass,
    /// Byte length (1–15).
    pub len: u8,
    /// Uop expansion count (≥1).
    pub uops: u8,
    /// Number of 32-bit immediate/displacement fields (0–2).
    pub imm_disp: u8,
    /// True if decoded by the microcode sequencer.
    pub microcoded: bool,
}

impl StaticInst {
    /// Creates a single-uop instruction of the given class and length.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not in `1..=15`.
    pub fn new(class: InstClass, len: u8) -> Self {
        assert!(
            (1..=15).contains(&len),
            "x86 length must be 1..=15, got {len}"
        );
        StaticInst {
            class,
            len,
            uops: 1,
            imm_disp: 0,
            microcoded: false,
        }
    }

    /// Builder-style: set the uop expansion count.
    pub const fn with_uops(mut self, uops: u8) -> Self {
        self.uops = uops;
        self
    }

    /// Builder-style: set the immediate/displacement field count.
    pub const fn with_imm_disp(mut self, n: u8) -> Self {
        self.imm_disp = n;
        self
    }

    /// Builder-style: mark micro-coded.
    pub const fn with_microcoded(mut self, m: bool) -> Self {
        self.microcoded = m;
        self
    }

    /// Stamps this static instruction into a dynamic instance at `pc`.
    ///
    /// `branch` must be `Some` iff the class is a branch; `mem` should be
    /// `Some` for loads/stores.
    pub fn instantiate(self, pc: Addr, branch: Option<BranchExec>, mem: Option<Addr>) -> DynInst {
        debug_assert_eq!(self.class.is_branch(), branch.is_some());
        DynInst {
            pc,
            len: self.len,
            uops: self.uops,
            imm_disp: self.imm_disp,
            microcoded: self.microcoded,
            class: self.class,
            branch,
            mem_addr: mem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "1..=15")]
    fn rejects_zero_length() {
        let _ = StaticInst::new(InstClass::Nop, 0);
    }

    #[test]
    #[should_panic(expected = "1..=15")]
    fn rejects_oversized() {
        let _ = StaticInst::new(InstClass::Nop, 16);
    }

    #[test]
    fn instantiate_branch() {
        let s = StaticInst::new(InstClass::CondBranch, 2);
        let d = s.instantiate(
            Addr::new(0x10),
            Some(BranchExec {
                taken: true,
                target: Addr::new(0x40),
            }),
            None,
        );
        assert!(d.is_taken_branch());
        assert_eq!(d.next_pc(), Addr::new(0x40));
    }

    #[test]
    fn builders_compose() {
        let s = StaticInst::new(InstClass::IntDiv, 3)
            .with_uops(6)
            .with_microcoded(true)
            .with_imm_disp(1);
        assert_eq!(s.uops, 6);
        assert!(s.microcoded);
        assert_eq!(s.imm_disp, 1);
    }
}

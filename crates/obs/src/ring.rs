//! Span events and the per-thread lock-free ring buffers that hold them.
//!
//! Every writing thread owns (at most) one ring at a time; rings are
//! pooled through a global free list so short-lived threads (the server
//! spawns one per connection) reuse rings instead of leaking them. Total
//! memory is bounded by [`MAX_RINGS`] × [`RING_SLOTS`] slots; a thread
//! that cannot acquire a ring silently drops its events.
//!
//! Each slot is a tiny seqlock: one version word (odd while a write is
//! in flight) plus five data words, all `AtomicU64`. Writers never
//! block; readers ([`drain_since`]) skip slots whose version changes
//! under them. Tracing is best-effort diagnostics — a dropped or torn
//! slot loses one event, never corrupts anything.

/// Slots per ring (one event per slot; older events are overwritten).
pub const RING_SLOTS: usize = 1024;

/// Maximum live rings — bounds total trace memory at
/// `MAX_RINGS * RING_SLOTS * 6 * 8` bytes (≈3 MiB at the defaults).
pub const MAX_RINGS: usize = 64;

/// What a span event describes. Request-scale operations only — the
/// pipeline's per-stage timings go to the job profile, not the ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// A TCP connection was accepted.
    Accept = 0,
    /// An HTTP request head + body was read and parsed.
    Parse = 1,
    /// A routed handler ran (detail = HTTP status).
    Handle = 2,
    /// A result-store append (detail = 1 on failure).
    StoreIo = 3,
    /// Time a job spent queued before a worker picked it up
    /// (detail = worker index).
    QueueWait = 4,
    /// A worker executed a job (detail = 1 if the handler panicked).
    Execute = 5,
    /// A supervision event: worker panic observed or worker respawned
    /// (detail = worker index).
    Supervise = 6,
}

impl SpanKind {
    /// All kinds, in discriminant order.
    pub const ALL: [SpanKind; 7] = [
        SpanKind::Accept,
        SpanKind::Parse,
        SpanKind::Handle,
        SpanKind::StoreIo,
        SpanKind::QueueWait,
        SpanKind::Execute,
        SpanKind::Supervise,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Accept => "accept",
            SpanKind::Parse => "parse",
            SpanKind::Handle => "handle",
            SpanKind::StoreIo => "store_io",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Execute => "execute",
            SpanKind::Supervise => "supervise",
        }
    }

    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn from_u8(b: u8) -> Option<SpanKind> {
        SpanKind::ALL.get(b as usize).copied()
    }
}

/// One drained span event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global monotone sequence number (drain cursor).
    pub seq: u64,
    /// What happened.
    pub kind: SpanKind,
    /// Microseconds since process start when the span began.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// FNV-1a hash of the originating request id (0 = none).
    pub request_id: u64,
    /// Kind-specific payload (status code, worker index, …).
    pub detail: u32,
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{Event, SpanKind, MAX_RINGS, RING_SLOTS};
    use std::cell::{Cell, RefCell};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock};
    use std::time::Instant;

    /// version + (seq, kind|detail, start, dur, request) data words.
    const WORDS: usize = 6;

    struct Ring {
        slots: Box<[AtomicU64]>,
    }

    impl Ring {
        fn new() -> Ring {
            let mut v = Vec::with_capacity(RING_SLOTS * WORDS);
            v.resize_with(RING_SLOTS * WORDS, || AtomicU64::new(0));
            Ring {
                slots: v.into_boxed_slice(),
            }
        }

        /// Single-writer seqlock store: version goes odd, data lands,
        /// version goes even. Emit frequency is per request, not per
        /// instruction, so `SeqCst` simplicity beats cleverness here.
        fn write(&self, cursor: u64, ev: &Event) {
            let base = (cursor as usize % RING_SLOTS) * WORDS;
            let ver = self.slots[base].load(Ordering::SeqCst);
            self.slots[base].store(ver.wrapping_add(1), Ordering::SeqCst);
            self.slots[base + 1].store(ev.seq, Ordering::SeqCst);
            self.slots[base + 2].store(
                (u64::from(ev.kind as u8) << 32) | u64::from(ev.detail),
                Ordering::SeqCst,
            );
            self.slots[base + 3].store(ev.start_us, Ordering::SeqCst);
            self.slots[base + 4].store(ev.dur_us, Ordering::SeqCst);
            self.slots[base + 5].store(ev.request_id, Ordering::SeqCst);
            self.slots[base].store(ver.wrapping_add(2), Ordering::SeqCst);
        }

        /// Seqlock read of one slot; `None` when empty or torn.
        fn read(&self, slot: usize) -> Option<Event> {
            let base = slot * WORDS;
            let v1 = self.slots[base].load(Ordering::SeqCst);
            if v1 == 0 || v1 % 2 == 1 {
                return None; // never written, or a write is in flight
            }
            let seq = self.slots[base + 1].load(Ordering::SeqCst);
            let meta = self.slots[base + 2].load(Ordering::SeqCst);
            let start_us = self.slots[base + 3].load(Ordering::SeqCst);
            let dur_us = self.slots[base + 4].load(Ordering::SeqCst);
            let request_id = self.slots[base + 5].load(Ordering::SeqCst);
            let v2 = self.slots[base].load(Ordering::SeqCst);
            if v1 != v2 {
                return None; // overwritten while reading
            }
            let kind = SpanKind::from_u8((meta >> 32) as u8)?;
            Some(Event {
                seq,
                kind,
                start_us,
                dur_us,
                request_id,
                detail: meta as u32,
            })
        }
    }

    struct Registry {
        all: Vec<Arc<Ring>>,
        free: Vec<Arc<Ring>>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
        REG.get_or_init(|| {
            Mutex::new(Registry {
                all: Vec::new(),
                free: Vec::new(),
            })
        })
    }

    static SEQ: AtomicU64 = AtomicU64::new(1);

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    pub fn now_us() -> u64 {
        epoch().elapsed().as_micros() as u64
    }

    struct RingHandle {
        ring: Arc<Ring>,
        cursor: u64,
    }

    impl Drop for RingHandle {
        fn drop(&mut self) {
            // Return the ring to the pool so the next short-lived
            // thread reuses it instead of minting a new one.
            if let Ok(mut reg) = registry().lock() {
                reg.free.push(Arc::clone(&self.ring));
            }
        }
    }

    thread_local! {
        static RING: RefCell<Option<RingHandle>> = const { RefCell::new(None) };
        static REQUEST: Cell<u64> = const { Cell::new(0) };
    }

    fn acquire_ring() -> Option<RingHandle> {
        let mut reg = registry().lock().ok()?;
        let ring = if let Some(r) = reg.free.pop() {
            r
        } else if reg.all.len() < MAX_RINGS {
            let r = Arc::new(Ring::new());
            reg.all.push(Arc::clone(&r));
            r
        } else {
            return None; // at the cap: this thread drops its events
        };
        Some(RingHandle { ring, cursor: 0 })
    }

    pub fn current_request() -> u64 {
        REQUEST.with(Cell::get)
    }

    /// RAII restore of the previous request scope.
    pub struct ScopeGuard {
        prev: u64,
    }

    impl Drop for ScopeGuard {
        fn drop(&mut self) {
            REQUEST.with(|r| r.set(self.prev));
        }
    }

    #[must_use = "dropping the guard immediately restores the previous scope"]
    pub fn request_scope(id: u64) -> ScopeGuard {
        let prev = REQUEST.with(|r| r.replace(id));
        ScopeGuard { prev }
    }

    pub fn emit_full(kind: SpanKind, start_us: u64, dur_us: u64, detail: u32, request_id: u64) {
        let ev = Event {
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            kind,
            start_us,
            dur_us,
            request_id,
            detail,
        };
        RING.with(|h| {
            let mut h = h.borrow_mut();
            if h.is_none() {
                *h = acquire_ring();
            }
            if let Some(handle) = h.as_mut() {
                handle.ring.write(handle.cursor, &ev);
                handle.cursor += 1;
            }
        });
    }

    pub fn emit(kind: SpanKind, start_us: u64, dur_us: u64, detail: u32) {
        emit_full(kind, start_us, dur_us, detail, current_request());
    }

    /// An open span; [`Span::finish`] emits the event.
    pub struct Span {
        kind: SpanKind,
        start_us: u64,
        t0: Instant,
    }

    pub fn span(kind: SpanKind) -> Span {
        Span {
            kind,
            start_us: now_us(),
            t0: Instant::now(),
        }
    }

    impl Span {
        pub fn finish(self, detail: u32) {
            emit(
                self.kind,
                self.start_us,
                self.t0.elapsed().as_micros() as u64,
                detail,
            );
        }
    }

    /// Queue-residency token: captures the enqueue time and the
    /// enqueuing thread's request scope, so the dequeuing worker can
    /// report the wait and inherit the request.
    #[derive(Debug)]
    pub struct QueueToken {
        enqueued_us: u64,
        request_id: u64,
    }

    impl QueueToken {
        pub fn capture() -> QueueToken {
            QueueToken {
                enqueued_us: now_us(),
                request_id: current_request(),
            }
        }

        pub fn on_dequeue(&self, worker: u32) -> ScopeGuard {
            let now = now_us();
            emit_full(
                SpanKind::QueueWait,
                self.enqueued_us,
                now.saturating_sub(self.enqueued_us),
                worker,
                self.request_id,
            );
            request_scope(self.request_id)
        }
    }

    pub fn drain_since(since: u64, max: usize) -> (Vec<Event>, u64) {
        let rings: Vec<Arc<Ring>> = match registry().lock() {
            Ok(reg) => reg.all.iter().map(Arc::clone).collect(),
            Err(_) => Vec::new(),
        };
        let mut events = Vec::new();
        for ring in &rings {
            for slot in 0..RING_SLOTS {
                if let Some(ev) = ring.read(slot) {
                    if ev.seq > since {
                        events.push(ev);
                    }
                }
            }
        }
        events.sort_by_key(|e| e.seq);
        events.truncate(max);
        let next = events.last().map_or(since, |e| e.seq);
        (events, next)
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    //! No-op mirrors: identical signatures, empty bodies. The optimizer
    //! erases every call site, which the tracked benchmark verifies.
    use super::{Event, SpanKind};

    #[inline(always)]
    pub fn now_us() -> u64 {
        0
    }

    #[inline(always)]
    pub fn current_request() -> u64 {
        0
    }

    /// Zero-sized stand-in for the enabled build's scope guard.
    pub struct ScopeGuard;

    #[inline(always)]
    #[must_use = "dropping the guard immediately restores the previous scope"]
    pub fn request_scope(_id: u64) -> ScopeGuard {
        ScopeGuard
    }

    #[inline(always)]
    pub fn emit(_kind: SpanKind, _start_us: u64, _dur_us: u64, _detail: u32) {}

    /// Zero-sized stand-in for an open span.
    pub struct Span;

    #[inline(always)]
    pub fn span(_kind: SpanKind) -> Span {
        Span
    }

    impl Span {
        #[inline(always)]
        pub fn finish(self, _detail: u32) {}
    }

    /// Zero-sized stand-in for the queue-residency token.
    #[derive(Debug)]
    pub struct QueueToken;

    impl QueueToken {
        #[inline(always)]
        pub fn capture() -> QueueToken {
            QueueToken
        }

        #[inline(always)]
        pub fn on_dequeue(&self, _worker: u32) -> ScopeGuard {
            ScopeGuard
        }
    }

    #[inline(always)]
    pub fn drain_since(since: u64, _max: usize) -> (Vec<Event>, u64) {
        (Vec::new(), since)
    }
}

pub use imp::{
    current_request, drain_since, emit, now_us, request_scope, span, QueueToken, ScopeGuard, Span,
};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn emit_drain_roundtrip() {
        let (_, start) = drain_since(0, usize::MAX);
        emit(SpanKind::Handle, 10, 5, 200);
        emit(SpanKind::StoreIo, 20, 1, 0);
        let (events, next) = drain_since(start, usize::MAX);
        assert!(events.len() >= 2, "got {events:?}");
        assert!(next > start);
        let handle = events
            .iter()
            .find(|e| e.kind == SpanKind::Handle && e.start_us == 10)
            .expect("handle event present");
        assert_eq!(handle.dur_us, 5);
        assert_eq!(handle.detail, 200);
        // Seqs strictly increase in the drained order.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn request_scope_nests_and_restores() {
        assert_eq!(current_request(), 0);
        {
            let _a = request_scope(7);
            assert_eq!(current_request(), 7);
            {
                let _b = request_scope(9);
                assert_eq!(current_request(), 9);
            }
            assert_eq!(current_request(), 7);
        }
        assert_eq!(current_request(), 0);
    }

    #[test]
    fn queue_token_carries_request_across_threads() {
        let (_, start) = drain_since(0, usize::MAX);
        let guard = request_scope(42);
        let token = QueueToken::capture();
        drop(guard);
        let handle = std::thread::spawn(move || {
            let _scope = token.on_dequeue(3);
            assert_eq!(current_request(), 42);
        });
        handle.join().unwrap();
        let (events, _) = drain_since(start, usize::MAX);
        let wait = events
            .iter()
            .find(|e| e.kind == SpanKind::QueueWait && e.request_id == 42)
            .expect("queue-wait event present");
        assert_eq!(wait.detail, 3);
    }

    #[test]
    fn ring_overwrite_keeps_newest() {
        let (_, start) = drain_since(0, usize::MAX);
        for i in 0..(RING_SLOTS as u32 + 10) {
            emit(SpanKind::Accept, u64::from(i), 0, i);
        }
        let (events, _) = drain_since(start, usize::MAX);
        // The ring holds at most RING_SLOTS of them; the newest survive.
        let accepts: Vec<_> = events
            .iter()
            .filter(|e| e.kind == SpanKind::Accept)
            .collect();
        assert!(accepts.len() <= RING_SLOTS);
        assert!(accepts.iter().any(|e| e.detail == RING_SLOTS as u32 + 9));
    }

    #[test]
    fn drain_max_pages() {
        let (_, mut cursor) = drain_since(0, usize::MAX);
        for i in 0..10 {
            emit(SpanKind::Parse, i, 1, 0);
        }
        let mut seen = 0;
        loop {
            let (page, next) = drain_since(cursor, 3);
            if page.is_empty() {
                break;
            }
            assert!(page.len() <= 3);
            seen += page.iter().filter(|e| e.kind == SpanKind::Parse).count();
            cursor = next;
        }
        assert!(seen >= 10);
    }

    #[test]
    fn kind_names_are_stable() {
        for k in SpanKind::ALL {
            assert!(!k.name().is_empty());
        }
        assert_eq!(SpanKind::QueueWait.name(), "queue_wait");
    }
}

//! `ucsim-obs` — zero-dependency observability for the ucsim stack.
//!
//! Three facilities, all feature-gated behind `enabled` so that every
//! entry point compiles to a literal no-op when the feature is off:
//!
//! 1. **Span tracing** ([`span`], [`emit`], [`drain_since`]): short
//!    structured events (kind, start, duration, request id, detail)
//!    written to per-thread lock-free ring buffers with bounded global
//!    memory. The serve layer drains them via `GET /v1/trace?since=`.
//! 2. **Request-ID scope** ([`request_scope`], [`current_request`]):
//!    a thread-local request identifier installed at the HTTP edge and
//!    re-installed on pool workers, so every span emitted on behalf of
//!    a request carries its id without threading it through call
//!    signatures.
//! 3. **Per-job stage profiles** ([`profile_begin`], [`profile_end`],
//!    [`stage_start`], [`counter_add`]): a thread-local collector the
//!    pipeline hot loop feeds with per-stage wall times and counter
//!    deltas. Profiles never touch simulated state — results stay
//!    byte-identical with or without profiling.
//!
//! The hot-loop instrumentation (stage timers) deliberately does *not*
//! emit ring events: a simulation executes millions of stage calls and
//! would cycle any bounded ring in milliseconds. Stage timings go to the
//! profile collector only; ring events are reserved for request-scale
//! operations (accept, parse, handle, store I/O, queue wait, execute,
//! supervise).

mod profile;
mod ring;

pub use profile::{
    counter_add, profile_begin, profile_end, Counter, JobProfile, Stage, StageStat, StageTimer,
    COUNTER_COUNT, STAGE_BOUNDS_NS, STAGE_COUNT,
};
pub use ring::{
    current_request, drain_since, emit, now_us, request_scope, span, Event, QueueToken, ScopeGuard,
    Span, SpanKind, MAX_RINGS, RING_SLOTS,
};

/// Whether this build carries live instrumentation (`enabled` feature).
pub const ENABLED: bool = cfg!(feature = "enabled");

/// FNV-1a hash of a request-id string — the numeric form spans carry.
///
/// Deterministic and dependency-free; the same function the serve layer
/// uses for content addressing, duplicated here so the crate stays leaf.
pub fn hash_id(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Entry point used by [`stage_start`] callers; re-exported for docs.
#[inline]
pub fn stage_start(stage: Stage) -> StageTimer {
    profile::stage_start(stage)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_id_is_stable_and_distinguishes() {
        assert_eq!(hash_id(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(hash_id("a"), hash_id("b"));
        assert_eq!(hash_id("req-1"), hash_id("req-1"));
    }
}

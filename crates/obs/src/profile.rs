//! Per-job stage profiles: where did the wall time go inside one job?
//!
//! The pipeline's hot loop calls [`stage_start`]/[`StageTimer::stop`]
//! around each front-end stage and [`counter_add`] once per run with
//! structure-counter deltas. Both write to a *thread-local* collector
//! that the serve worker installs with [`profile_begin`] just before
//! running a job and harvests with [`profile_end`] right after. When no
//! collector is active (CLI runs, benchmarks) the timers cost one
//! thread-local flag read; when the `enabled` feature is off they cost
//! nothing at all.
//!
//! Profiles observe wall clocks only — never simulated state — so a
//! profiled run's report is byte-identical to an unprofiled one.

use ucsim_model::Json;

/// Per-call duration bucket bounds in nanoseconds (inclusive); a sixth
/// implicit bucket catches the overflow.
pub const STAGE_BOUNDS_NS: [u64; 5] = [1_000, 4_000, 16_000, 65_000, 262_000];

/// Number of instrumented pipeline stages.
pub const STAGE_COUNT: usize = 5;

/// Number of structure counters a profile carries.
pub const COUNTER_COUNT: usize = 5;

/// An instrumented front-end pipeline stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Stage {
    /// Branch prediction / prediction-window generation.
    Predict = 0,
    /// Uop-cache lookup and hit-path uop delivery.
    UcLookup = 1,
    /// Uop-cache fill (entry build + placement).
    UcFill = 2,
    /// Legacy decode path (I-cache fetch + decoders).
    Decode = 3,
    /// End-of-batch backend accounting (redirects, retire bookkeeping).
    Retire = 4,
}

impl Stage {
    /// All stages, in index order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Predict,
        Stage::UcLookup,
        Stage::UcFill,
        Stage::Decode,
        Stage::Retire,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Predict => "predict",
            Stage::UcLookup => "uc_lookup",
            Stage::UcFill => "uc_fill",
            Stage::Decode => "decode",
            Stage::Retire => "retire",
        }
    }
}

/// Structure-counter deltas a job reports when it finishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Uop-cache lookup hits.
    OcHits = 0,
    /// Uop-cache lookup misses.
    OcMisses = 1,
    /// Uop-cache entries evicted by fills.
    OcEvictions = 2,
    /// Fills compacted into an existing line (RAC/PWAC/F-PWAC).
    OcCompactions = 3,
    /// Prediction windows dispatched by the BPU.
    PwsDispatched = 4,
}

impl Counter {
    /// All counters, in index order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::OcHits,
        Counter::OcMisses,
        Counter::OcEvictions,
        Counter::OcCompactions,
        Counter::PwsDispatched,
    ];

    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::OcHits => "oc_hits",
            Counter::OcMisses => "oc_misses",
            Counter::OcEvictions => "oc_evictions",
            Counter::OcCompactions => "oc_compactions",
            Counter::PwsDispatched => "pws_dispatched",
        }
    }
}

/// Timing summary for one stage: call count, total nanoseconds, and a
/// per-call duration histogram over [`STAGE_BOUNDS_NS`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageStat {
    /// Number of timed calls.
    pub count: u64,
    /// Summed wall time across calls, nanoseconds.
    pub total_ns: u64,
    /// Per-call duration buckets (last = overflow).
    pub buckets: [u64; STAGE_BOUNDS_NS.len() + 1],
}

impl StageStat {
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        let idx = STAGE_BOUNDS_NS
            .iter()
            .position(|&b| ns <= b)
            .unwrap_or(STAGE_BOUNDS_NS.len());
        self.buckets[idx] += 1;
    }

    fn merge(&mut self, other: &StageStat) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// A finished job's profile: per-stage timing plus counter deltas.
///
/// Mergeable ([`JobProfile::merge`]) so a sweep can aggregate its cells.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobProfile {
    /// Per-stage stats, indexed by [`Stage`] discriminant.
    pub stages: [StageStat; STAGE_COUNT],
    /// Counter deltas, indexed by [`Counter`] discriminant.
    pub counters: [u64; COUNTER_COUNT],
    /// Wall time between `profile_begin` and `profile_end`, ns.
    pub wall_ns: u64,
    /// Jobs folded into this profile (1 for a single job).
    pub jobs: u64,
}

impl JobProfile {
    /// Folds another profile into this one (sweep aggregation).
    pub fn merge(&mut self, other: &JobProfile) {
        for (a, b) in self.stages.iter_mut().zip(&other.stages) {
            a.merge(b);
        }
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        self.wall_ns += other.wall_ns;
        self.jobs += other.jobs;
    }

    /// Canonical JSON form served by `GET /v1/jobs/:id/profile`.
    pub fn to_json(&self) -> Json {
        let stages = Stage::ALL
            .iter()
            .map(|&s| {
                let st = &self.stages[s as usize];
                (
                    s.name().to_owned(),
                    Json::Obj(vec![
                        ("count".to_owned(), Json::Uint(st.count)),
                        ("total_ns".to_owned(), Json::Uint(st.total_ns)),
                        (
                            "bounds_ns".to_owned(),
                            Json::Arr(STAGE_BOUNDS_NS.iter().map(|&b| Json::Uint(b)).collect()),
                        ),
                        (
                            "buckets".to_owned(),
                            Json::Arr(st.buckets.iter().map(|&c| Json::Uint(c)).collect()),
                        ),
                    ]),
                )
            })
            .collect();
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name().to_owned(), Json::Uint(self.counters[c as usize])))
            .collect();
        Json::Obj(vec![
            ("jobs".to_owned(), Json::Uint(self.jobs)),
            ("wall_ns".to_owned(), Json::Uint(self.wall_ns)),
            ("stages".to_owned(), Json::Obj(stages)),
            ("counters".to_owned(), Json::Obj(counters)),
        ])
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use super::{JobProfile, Stage};
    use std::cell::{Cell, RefCell};
    use std::time::Instant;

    struct Active {
        profile: JobProfile,
        t0: Instant,
    }

    thread_local! {
        // Separate cheap flag: the hot path reads one `Cell<bool>` and
        // bails before ever touching the RefCell or the clock.
        static PROFILING: Cell<bool> = const { Cell::new(false) };
        static COLLECTOR: RefCell<Option<Active>> = const { RefCell::new(None) };
    }

    pub fn profile_begin() {
        COLLECTOR.with(|c| {
            *c.borrow_mut() = Some(Active {
                profile: JobProfile {
                    jobs: 1,
                    ..JobProfile::default()
                },
                t0: Instant::now(),
            });
        });
        PROFILING.with(|p| p.set(true));
    }

    pub fn profile_end() -> Option<JobProfile> {
        PROFILING.with(|p| p.set(false));
        COLLECTOR.with(|c| {
            c.borrow_mut().take().map(|a| {
                let mut p = a.profile;
                p.wall_ns = a.t0.elapsed().as_nanos() as u64;
                p
            })
        })
    }

    /// An in-flight stage timing; `None` inside when profiling is off.
    pub struct StageTimer(Option<(Stage, Instant)>);

    #[inline]
    pub fn stage_start(stage: Stage) -> StageTimer {
        if PROFILING.with(Cell::get) {
            StageTimer(Some((stage, Instant::now())))
        } else {
            StageTimer(None)
        }
    }

    impl StageTimer {
        /// Stops the timer and records the elapsed time.
        #[inline]
        pub fn stop(self) {
            if let Some((stage, t0)) = self.0 {
                let ns = t0.elapsed().as_nanos() as u64;
                COLLECTOR.with(|c| {
                    if let Some(a) = c.borrow_mut().as_mut() {
                        a.profile.stages[stage as usize].record(ns);
                    }
                });
            }
        }
    }

    #[inline]
    pub fn counter_add(counter: super::Counter, delta: u64) {
        if !PROFILING.with(Cell::get) {
            return;
        }
        COLLECTOR.with(|c| {
            if let Some(a) = c.borrow_mut().as_mut() {
                a.profile.counters[counter as usize] += delta;
            }
        });
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::{JobProfile, Stage};

    #[inline(always)]
    pub fn profile_begin() {}

    #[inline(always)]
    pub fn profile_end() -> Option<JobProfile> {
        None
    }

    /// Zero-sized stand-in for an in-flight stage timing.
    pub struct StageTimer;

    #[inline(always)]
    pub fn stage_start(_stage: Stage) -> StageTimer {
        StageTimer
    }

    impl StageTimer {
        /// No-op.
        #[inline(always)]
        pub fn stop(self) {}
    }

    #[inline(always)]
    pub fn counter_add(_counter: super::Counter, _delta: u64) {}
}

pub(crate) use imp::stage_start;
pub use imp::{counter_add, profile_begin, profile_end, StageTimer};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_json_names_every_stage_and_counter() {
        let p = JobProfile::default();
        let j = p.to_json();
        for s in Stage::ALL {
            assert!(j.get("stages").and_then(|v| v.get(s.name())).is_some());
        }
        for c in Counter::ALL {
            assert!(j.get("counters").and_then(|v| v.get(c.name())).is_some());
        }
    }

    #[test]
    fn merge_accumulates() {
        let mut a = JobProfile {
            jobs: 1,
            wall_ns: 10,
            ..JobProfile::default()
        };
        a.stages[0].record(500);
        a.counters[0] = 3;
        let mut b = JobProfile {
            jobs: 1,
            wall_ns: 20,
            ..JobProfile::default()
        };
        b.stages[0].record(2_000_000);
        b.counters[0] = 4;
        a.merge(&b);
        assert_eq!(a.jobs, 2);
        assert_eq!(a.wall_ns, 30);
        assert_eq!(a.counters[0], 7);
        assert_eq!(a.stages[0].count, 2);
        assert_eq!(a.stages[0].buckets[0], 1, "500ns in the first bucket");
        assert_eq!(
            a.stages[0].buckets[STAGE_BOUNDS_NS.len()],
            1,
            "2ms in the overflow bucket"
        );
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn collector_records_and_detaches() {
        assert!(profile_end().is_none(), "no collector installed yet");
        profile_begin();
        let t = stage_start(Stage::Decode);
        std::hint::black_box(());
        t.stop();
        counter_add(Counter::OcHits, 11);
        let p = profile_end().expect("collector active");
        assert_eq!(p.jobs, 1);
        assert_eq!(p.stages[Stage::Decode as usize].count, 1);
        assert_eq!(p.counters[Counter::OcHits as usize], 11);
        // After harvest the timers go quiet again.
        let t = stage_start(Stage::Decode);
        t.stop();
        counter_add(Counter::OcHits, 1);
        assert!(profile_end().is_none());
    }
}

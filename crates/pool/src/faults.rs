//! Deterministic, feature-gated fault injection.
//!
//! Production code marks *named sites* where a fault could occur —
//! `faults::check("worker.simulate")` before running a job,
//! `faults::take_io("store.append")` before a write — and a chaos test
//! installs a seeded rule set saying which sites misbehave and how. With
//! the `fault-injection` feature disabled (the default), every site
//! compiles to an inline no-op: production binaries carry no injection
//! machinery and no global state.
//!
//! Determinism: each rule owns a [`SplitMix64`](ucsim_model::SplitMix64)
//! stream seeded from `seed ^ fnv1a(site)`, and fire decisions consume
//! that stream in site-hit order. Which *thread* observes a given hit is
//! scheduling-dependent, but the number of fires across N hits — the
//! quantity chaos tests assert on — is a pure function of `(seed, rules,
//! N)`.
//!
//! Rules may optionally carry a `target` — a dynamic instance label such
//! as a peer's `host:port` — checked by the `*_at` site markers. A rule
//! with `target: None` fires at every instance of its site; a targeted
//! rule fires only when the site reports a matching target. Cluster chaos
//! tests use this to partition *one* node of an in-process cluster (the
//! harness is process-global, so all nodes share it).
//!
//! Sites currently instrumented (see DESIGN.md §4.2):
//!
//! | site              | faults honored            | placed at                       |
//! |-------------------|---------------------------|---------------------------------|
//! | `worker.pre_sim`  | [`FaultAction::DelayMs`]  | after a job is marked running   |
//! | `worker.simulate` | [`FaultAction::Panic`]    | immediately before simulation   |
//! | `store.append`    | [`FaultAction::IoError`], [`FaultAction::TornWrite`] | the `results.log` write path |
//! | `peer.connect`    | [`FaultAction::IoError`]  | peer transport, before connect (connect refused; target = peer addr) |
//! | `peer.request`    | [`FaultAction::DelayMs`]  | peer transport, before the request is written (response delay; target = peer addr) |
//! | `peer.recv`       | [`FaultAction::IoError`], [`FaultAction::TornWrite`] | peer transport, while reading the response (mid-body drop; target = peer addr) |

/// What an installed rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultAction {
    /// Panic with a recognizable payload (`injected fault at <site>`).
    Panic,
    /// Sleep this many milliseconds (push a job past its deadline).
    DelayMs(u64),
    /// Report an I/O error to the caller of [`take_io`].
    IoError,
    /// Report a torn write: the caller should write only the first
    /// `keep` bytes of the record, then fail — simulating a crash
    /// mid-append.
    TornWrite {
        /// Bytes of the record that reach the disk before the "crash".
        keep: usize,
    },
}

/// When a rule fires, as a function of the site's hit count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FireMode {
    /// Fire on each hit independently with this probability, drawn from
    /// the rule's seeded stream.
    Prob(f64),
    /// Fire on the first `n` hits, then never again.
    First(u64),
    /// Fire on every `n`-th hit (1-based: hits n, 2n, 3n, …).
    EveryNth(u64),
}

/// An I/O fault surfaced to a store write path via [`take_io`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Fail the write outright.
    Error,
    /// Write only the first `keep` bytes, then fail.
    Torn {
        /// Bytes that reach the disk before the simulated crash.
        keep: usize,
    },
}

/// One injection rule: at `site`, perform `action` per `mode`.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// The named site this rule arms.
    pub site: &'static str,
    /// What happens when the rule fires.
    pub action: FaultAction,
    /// When it fires.
    pub mode: FireMode,
    /// Restricts the rule to one site instance (e.g. a peer address seen
    /// by the `*_at` markers). `None` fires at every instance.
    pub target: Option<String>,
}

#[cfg(feature = "fault-injection")]
mod armed {
    use super::{FaultAction, FaultRule, FireMode, IoFault};
    use std::sync::{Mutex, OnceLock};
    use ucsim_model::SplitMix64;

    struct ArmedRule {
        rule: FaultRule,
        rng: SplitMix64,
        hits: u64,
        fired: u64,
    }

    impl ArmedRule {
        /// Decides whether this hit fires, consuming the seeded stream.
        fn draw(&mut self) -> bool {
            self.hits += 1;
            let fire = match self.rule.mode {
                FireMode::Prob(p) => self.rng.chance(p),
                FireMode::First(n) => self.hits <= n,
                FireMode::EveryNth(n) => n > 0 && self.hits.is_multiple_of(n),
            };
            if fire {
                self.fired += 1;
            }
            fire
        }
    }

    #[derive(Default)]
    struct Harness {
        rules: Vec<ArmedRule>,
    }

    fn state() -> &'static Mutex<Option<Harness>> {
        static STATE: OnceLock<Mutex<Option<Harness>>> = OnceLock::new();
        STATE.get_or_init(|| Mutex::new(None))
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Installs a rule set, replacing any previous one. Each rule's RNG is
    /// seeded from `seed ^ fnv1a(site)` (targeted rules additionally fold
    /// in `fnv1a(target)`) so distinct rules draw independent
    /// deterministic streams.
    pub fn install(seed: u64, rules: Vec<FaultRule>) {
        let armed = rules
            .into_iter()
            .map(|rule| ArmedRule {
                rng: SplitMix64::new(
                    seed ^ fnv1a(rule.site) ^ rule.target.as_deref().map_or(0, fnv1a),
                ),
                rule,
                hits: 0,
                fired: 0,
            })
            .collect();
        *state().lock().expect("faults lock") = Some(Harness { rules: armed });
    }

    /// Whether `rule` applies to this hit: the site must match, and a
    /// targeted rule additionally requires the site to report the same
    /// target instance.
    fn applies(rule: &FaultRule, site: &str, target: Option<&str>) -> bool {
        rule.site == site && rule.target.as_deref().is_none_or(|t| Some(t) == target)
    }

    /// Disarms every site. Subsequent checks are no-ops.
    pub fn clear() {
        *state().lock().expect("faults lock") = None;
    }

    /// Evaluates `site` against Panic/Delay rules. Panics or sleeps
    /// *after* releasing the harness lock, so an injected panic never
    /// poisons the injection state.
    pub fn check(site: &str) {
        check_impl(site, None);
    }

    /// Like [`check`], for a specific site instance: untargeted rules and
    /// rules targeting exactly `target` fire.
    pub fn check_at(site: &str, target: &str) {
        check_impl(site, Some(target));
    }

    fn check_impl(site: &str, target: Option<&str>) {
        let mut action: Option<FaultAction> = None;
        {
            let mut guard = state().lock().expect("faults lock");
            if let Some(h) = guard.as_mut() {
                for r in h
                    .rules
                    .iter_mut()
                    .filter(|r| applies(&r.rule, site, target))
                {
                    let a = r.rule.action;
                    match a {
                        FaultAction::Panic | FaultAction::DelayMs(_) if r.draw() => {
                            action = Some(a);
                            break;
                        }
                        _ => {}
                    }
                }
            }
        }
        match action {
            Some(FaultAction::Panic) => panic!("injected fault at {site}"),
            Some(FaultAction::DelayMs(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            _ => {}
        }
    }

    /// Evaluates `site` against I/O rules, returning the fault the write
    /// path must emulate, if one fired.
    pub fn take_io(site: &str) -> Option<IoFault> {
        take_io_impl(site, None)
    }

    /// Like [`take_io`], for a specific site instance: untargeted rules
    /// and rules targeting exactly `target` fire.
    pub fn take_io_at(site: &str, target: &str) -> Option<IoFault> {
        take_io_impl(site, Some(target))
    }

    fn take_io_impl(site: &str, target: Option<&str>) -> Option<IoFault> {
        let mut guard = state().lock().expect("faults lock");
        let h = guard.as_mut()?;
        for r in h
            .rules
            .iter_mut()
            .filter(|r| applies(&r.rule, site, target))
        {
            let a = r.rule.action;
            match a {
                FaultAction::IoError if r.draw() => return Some(IoFault::Error),
                FaultAction::TornWrite { keep } if r.draw() => return Some(IoFault::Torn { keep }),
                _ => {}
            }
        }
        None
    }

    /// Total fires across all rules armed at `site` since [`install`].
    pub fn fired(site: &str) -> u64 {
        state()
            .lock()
            .expect("faults lock")
            .as_ref()
            .map(|h| {
                h.rules
                    .iter()
                    .filter(|r| r.rule.site == site)
                    .map(|r| r.fired)
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Total draws across all rules armed at `site` since [`install`].
    pub fn hits(site: &str) -> u64 {
        state()
            .lock()
            .expect("faults lock")
            .as_ref()
            .map(|h| {
                h.rules
                    .iter()
                    .filter(|r| r.rule.site == site)
                    .map(|r| r.hits)
                    .sum()
            })
            .unwrap_or(0)
    }
}

#[cfg(feature = "fault-injection")]
pub use armed::{check, check_at, clear, fired, hits, install, take_io, take_io_at};

/// No-op site marker (the `fault-injection` feature is disabled).
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn check(_site: &str) {}

/// No-op targeted site marker (the `fault-injection` feature is
/// disabled).
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn check_at(_site: &str, _target: &str) {}

/// No-op I/O site marker (the `fault-injection` feature is disabled).
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn take_io(_site: &str) -> Option<IoFault> {
    None
}

/// No-op targeted I/O site marker (the `fault-injection` feature is
/// disabled).
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn take_io_at(_site: &str, _target: &str) -> Option<IoFault> {
    None
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    // The harness is process-global; tests that install rules must not
    // run concurrently with each other. Serialize them with a local lock.
    fn serial() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn seeded_prob_fire_count_is_deterministic() {
        let _g = serial();
        let rules = || {
            vec![FaultRule {
                site: "t.prob",
                action: FaultAction::DelayMs(0),
                mode: FireMode::Prob(0.3),
                target: None,
            }]
        };
        install(7, rules());
        for _ in 0..1000 {
            check("t.prob");
        }
        let first = fired("t.prob");
        assert_eq!(hits("t.prob"), 1000);
        assert!(first > 200 && first < 400, "p=0.3 of 1000: {first}");
        install(7, rules());
        for _ in 0..1000 {
            check("t.prob");
        }
        assert_eq!(fired("t.prob"), first, "same seed, same fire count");
        clear();
    }

    #[test]
    fn first_n_and_every_nth_modes() {
        let _g = serial();
        install(
            1,
            vec![
                FaultRule {
                    site: "t.first",
                    action: FaultAction::IoError,
                    mode: FireMode::First(2),
                    target: None,
                },
                FaultRule {
                    site: "t.nth",
                    action: FaultAction::TornWrite { keep: 3 },
                    mode: FireMode::EveryNth(3),
                    target: None,
                },
            ],
        );
        let got: Vec<_> = (0..5).map(|_| take_io("t.first")).collect();
        assert_eq!(
            got,
            vec![Some(IoFault::Error), Some(IoFault::Error), None, None, None]
        );
        let torn: Vec<_> = (0..6).map(|_| take_io("t.nth")).collect();
        assert_eq!(torn[2], Some(IoFault::Torn { keep: 3 }));
        assert_eq!(torn[5], Some(IoFault::Torn { keep: 3 }));
        assert_eq!(torn.iter().filter(|t| t.is_some()).count(), 2);
        clear();
    }

    #[test]
    fn injected_panic_carries_site_name_and_spares_the_harness() {
        let _g = serial();
        install(
            3,
            vec![FaultRule {
                site: "t.panic",
                action: FaultAction::Panic,
                mode: FireMode::First(1),
                target: None,
            }],
        );
        let r = std::panic::catch_unwind(|| check("t.panic"));
        let payload = r.expect_err("first hit panics");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("injected fault at t.panic"), "{msg}");
        // The harness survived the panic (lock released before unwinding).
        check("t.panic"); // First(1) exhausted: no panic
        assert_eq!(fired("t.panic"), 1);
        assert_eq!(hits("t.panic"), 2);
        clear();
    }

    #[test]
    fn unarmed_sites_are_no_ops() {
        let _g = serial();
        clear();
        check("t.nothing");
        assert_eq!(take_io("t.nothing"), None);
        assert_eq!(fired("t.nothing"), 0);
    }

    #[test]
    fn targeted_rules_fire_only_for_their_instance() {
        let _g = serial();
        install(
            5,
            vec![FaultRule {
                site: "t.peer",
                action: FaultAction::IoError,
                mode: FireMode::First(10),
                target: Some("10.0.0.2:7199".to_owned()),
            }],
        );
        // A different instance of the same site: the rule stays silent.
        assert_eq!(take_io_at("t.peer", "10.0.0.3:7199"), None);
        // The untargeted marker never matches a targeted rule.
        assert_eq!(take_io("t.peer"), None);
        // The matching instance fires.
        assert_eq!(take_io_at("t.peer", "10.0.0.2:7199"), Some(IoFault::Error));
        assert_eq!(fired("t.peer"), 1);
        clear();
    }

    #[test]
    fn untargeted_rules_fire_at_every_instance() {
        let _g = serial();
        install(
            5,
            vec![FaultRule {
                site: "t.any",
                action: FaultAction::IoError,
                mode: FireMode::First(10),
                target: None,
            }],
        );
        assert_eq!(take_io_at("t.any", "a:1"), Some(IoFault::Error));
        assert_eq!(take_io_at("t.any", "b:2"), Some(IoFault::Error));
        assert_eq!(take_io("t.any"), Some(IoFault::Error));
        assert_eq!(fired("t.any"), 3);
        clear();
    }

    #[test]
    fn targeted_delay_rules_follow_the_same_filter() {
        let _g = serial();
        install(
            9,
            vec![FaultRule {
                site: "t.delay",
                action: FaultAction::DelayMs(0),
                mode: FireMode::First(1),
                target: Some("x:1".to_owned()),
            }],
        );
        check_at("t.delay", "y:2"); // no match: draw not consumed
        assert_eq!(fired("t.delay"), 0);
        check_at("t.delay", "x:1");
        assert_eq!(fired("t.delay"), 1);
        clear();
    }
}

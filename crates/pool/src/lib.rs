//! # ucsim-pool
//!
//! Shared work-queue primitives for the workspace, extracted from the
//! hand-rolled `Mutex<usize>` scheduler that used to live in
//! `ucsim-bench`'s matrix runner. Std-only (threads + `Mutex`/`Condvar`),
//! matching the workspace's no-async stance (DESIGN.md §5).
//!
//! * [`run_indexed`] — fan a fixed index range out over a scoped thread
//!   pool and collect results in index order. `ucsim-bench`'s `run_matrix`
//!   is built on this.
//! * [`BoundedQueue`] — a blocking MPMC queue with a hard capacity and
//!   non-blocking [`BoundedQueue::try_push`] for explicit backpressure.
//! * [`Scheduler`] — a priority + weighted-fair-share scheduler over
//!   per-tenant queues with cancel-token preemption. `ucsim-serve`'s job
//!   scheduling (HTTP 429 on the bounded interactive path, unbounded
//!   pull-based sweep plans) is built on this.
//! * [`WorkerPool`] — a fixed set of named worker threads draining a
//!   [`BoundedQueue`] until it is closed.
//! * [`SupervisedPool`] — a `WorkerPool` whose workers survive panicking
//!   handlers: the panic is caught and reported, and a supervisor thread
//!   respawns the worker so capacity never decays. Drains any
//!   [`WorkSource`] — a `BoundedQueue` or a `Scheduler`.
//! * [`Watchdog`] — one timer thread enforcing wall-clock deadlines on
//!   any number of in-flight jobs via disarm-on-drop guards.
//! * [`faults`] — named-site deterministic fault injection, compiled to
//!   no-ops unless the `fault-injection` feature is enabled.
//! * [`Progress`] — a mutex-serialized line reporter so progress output
//!   from concurrent workers never interleaves mid-line.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
mod sched;
mod supervise;
mod watchdog;

pub use sched::{SchedStats, Scheduler, WorkSource};
pub use supervise::{PoolMonitor, SupervisedPool};
pub use watchdog::{WatchGuard, Watchdog};

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::thread::JoinHandle;

/// Runs `f(0..count)` across at most `threads` scoped worker threads and
/// returns the results in index order.
///
/// Work is claimed dynamically (an atomic next-index counter), so uneven
/// item costs balance across workers. With `threads <= 1` or `count <= 1`
/// the work still runs, on a single worker.
///
/// # Example
///
/// ```
/// let squares = ucsim_pool::run_indexed(5, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn run_indexed<T, F>(count: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(count));
    std::thread::scope(|s| {
        for _ in 0..threads.max(1).min(count.max(1)) {
            s.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= count {
                    break;
                }
                let out = f(idx);
                results.lock().expect("results lock").push((idx, out));
            });
        }
    });
    let mut collected = results.into_inner().expect("results");
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, t)| t).collect()
}

/// Error returned by [`BoundedQueue::try_push`]; hands the rejected item
/// back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was at capacity.
    Full(T),
    /// The queue has been closed; no further items are accepted.
    Closed(T),
}

struct QueueState<T> {
    /// Each entry carries an observability token capturing the enqueue
    /// time and the pushing thread's request scope (zero-sized unless
    /// `ucsim-obs/enabled` is on somewhere in the build graph).
    items: VecDeque<(T, ucsim_obs::QueueToken)>,
    closed: bool,
}

/// A blocking multi-producer multi-consumer FIFO with a hard capacity.
///
/// Producers use the non-blocking [`try_push`](Self::try_push) and handle
/// [`PushError::Full`] themselves — this is the backpressure point, not a
/// hidden wait. Consumers block in [`pop`](Self::pop) until an item
/// arrives or the queue is [closed](Self::close) and drained.
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues `item`, or returns it in a [`PushError`] if the queue is
    /// full or closed. Never blocks.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close).
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.state.lock().expect("queue lock");
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.items.push_back((item, ucsim_obs::QueueToken::capture()));
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is empty. Returns
    /// `None` once the queue is closed **and** drained — the worker-loop
    /// termination signal.
    pub fn pop(&self) -> Option<T> {
        self.pop_with_obs().map(|(item, _)| item)
    }

    /// Like [`pop`](Self::pop), but also hands back the item's
    /// observability token so the consumer can report the queue wait and
    /// inherit the enqueuing request's scope
    /// (see [`ucsim_obs::QueueToken::on_dequeue`]). [`SupervisedPool`]
    /// workers use this; plain consumers can keep calling `pop`.
    pub fn pop_with_obs(&self) -> Option<(T, ucsim_obs::QueueToken)> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if let Some(entry) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(entry);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue lock");
        }
    }

    /// Dequeues the next item if one is ready; never blocks. A draining
    /// server uses this to sweep out still-queued jobs and fail them
    /// explicitly rather than abandoning them at close.
    pub fn try_pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue lock");
        let item = st.items.pop_front();
        drop(st);
        if item.is_some() {
            self.not_full.notify_one();
        }
        item.map(|(item, _)| item)
    }

    /// Closes the queue: future pushes fail, and consumers drain what
    /// remains then receive `None`. Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The hard capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True once [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue lock").closed
    }
}

/// A fixed set of named OS threads draining a shared [`BoundedQueue`].
///
/// Each worker runs `handler(item)` for every item it pops; the pool ends
/// when the queue is closed and drained. [`join`](Self::join) waits for
/// that — in-flight items finish (graceful drain), they are never dropped.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads named `{name}-{i}` running `handler` over
    /// items popped from `queue`.
    ///
    /// The queue and handler are shared by reference with `'static`
    /// lifetime — wrap them in `Arc` at the call site.
    pub fn spawn<T, F>(
        name: &str,
        workers: usize,
        queue: std::sync::Arc<BoundedQueue<T>>,
        handler: std::sync::Arc<F>,
    ) -> Self
    where
        T: Send + 'static,
        F: Fn(T) + Send + Sync + 'static,
    {
        let handles = (0..workers.max(1))
            .map(|i| {
                let queue = std::sync::Arc::clone(&queue);
                let handler = std::sync::Arc::clone(&handler);
                std::thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Some(item) = queue.pop() {
                            handler(item);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Waits for every worker to finish (close the queue first, or this
    /// blocks forever).
    pub fn join(self) {
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// A mutex-serialized progress reporter.
///
/// Concurrent workers that report progress with bare `eprintln!` interleave
/// nondeterministically; routing lines through one `Progress` guarantees
/// each line is written whole, in one `write_all`, under one lock.
pub struct Progress {
    sink: Mutex<Sink>,
}

enum Sink {
    Stderr,
    /// Capture buffer for tests.
    Buffer(Vec<u8>),
}

impl Progress {
    /// A reporter writing whole lines to stderr.
    pub fn stderr() -> Self {
        Progress {
            sink: Mutex::new(Sink::Stderr),
        }
    }

    /// A reporter capturing lines in memory (for tests).
    pub fn sink() -> Self {
        Progress {
            sink: Mutex::new(Sink::Buffer(Vec::new())),
        }
    }

    /// Writes one line atomically (a trailing newline is added).
    pub fn line(&self, msg: &str) {
        let mut out = Vec::with_capacity(msg.len() + 1);
        out.extend_from_slice(msg.as_bytes());
        out.push(b'\n');
        let mut sink = self.sink.lock().expect("progress lock");
        match &mut *sink {
            Sink::Stderr => {
                let _ = std::io::stderr().write_all(&out);
            }
            Sink::Buffer(buf) => buf.extend_from_slice(&out),
        }
    }

    /// The captured output of a [`Progress::sink`] reporter.
    pub fn captured(&self) -> String {
        match &*self.sink.lock().expect("progress lock") {
            Sink::Stderr => String::new(),
            Sink::Buffer(buf) => String::from_utf8_lossy(buf).into_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn run_indexed_preserves_order() {
        let out = run_indexed(100, 7, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn run_indexed_handles_degenerate_sizes() {
        assert_eq!(run_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(run_indexed(1, 0, |i| i + 1), vec![1]);
        assert_eq!(run_indexed(3, 100, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn queue_backpressure_is_explicit() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        q.close();
        assert_eq!(q.try_push(4), Err(PushError::Closed(4)));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn queue_capacity_floor_is_one() {
        let q = BoundedQueue::<u8>::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
    }

    #[test]
    fn worker_pool_drains_everything_then_stops() {
        let q = Arc::new(BoundedQueue::new(64));
        let sum = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&sum);
        let pool = WorkerPool::spawn(
            "test",
            4,
            Arc::clone(&q),
            Arc::new(move |v: u64| {
                s.fetch_add(v, Ordering::Relaxed);
            }),
        );
        assert_eq!(pool.workers(), 4);
        for v in 1..=50u64 {
            while q.try_push(v).is_err() {
                std::thread::yield_now();
            }
        }
        q.close();
        pool.join();
        assert_eq!(sum.load(Ordering::Relaxed), 50 * 51 / 2);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_push(99).unwrap();
        assert_eq!(h.join().unwrap(), Some(99));
    }

    #[test]
    fn progress_lines_never_tear() {
        let p = Arc::new(Progress::sink());
        std::thread::scope(|s| {
            for t in 0..8 {
                let p = Arc::clone(&p);
                s.spawn(move || {
                    for i in 0..50 {
                        p.line(&format!("worker {t} item {i} done"));
                    }
                });
            }
        });
        let text = p.captured();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 8 * 50);
        for l in lines {
            assert!(
                l.starts_with("worker ") && l.ends_with(" done"),
                "torn line: {l:?}"
            );
        }
    }
}

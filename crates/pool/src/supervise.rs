//! Supervised worker pools: catch panics, fail the job, respawn the
//! worker.
//!
//! A plain [`WorkerPool`](crate::WorkerPool) thread dies with the first
//! panicking job — the pool's capacity silently decays until the service
//! wedges. A [`SupervisedPool`] runs every job under
//! [`std::panic::catch_unwind`]; a panic is reported to the caller's
//! `on_panic` hook (which marks the job failed), then the worker thread
//! *exits* and a supervisor thread spawns a replacement. The
//! let-it-crash discipline — tear down the possibly-wedged thread rather
//! than reuse it — costs one thread spawn per panic and guarantees the
//! pool ends every storm at full strength.
//!
//! The handler borrows its item (`Fn(&T)`) so a panic cannot consume it:
//! `on_panic` receives the same `&T` and can still reach the job cell,
//! progress reporter, or anything else the item carries.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::WorkSource;

/// Shared counters a [`SupervisedPool`] exposes through [`PoolMonitor`].
#[derive(Debug, Default)]
struct Counters {
    /// Worker threads currently alive.
    alive: AtomicUsize,
    /// Items currently being handled (popped, not yet finished).
    in_flight: AtomicUsize,
    /// Replacement workers spawned after panics.
    respawned: AtomicU64,
    /// Panics caught in handlers.
    panics: AtomicU64,
}

/// A cloneable, read-only view of a [`SupervisedPool`]'s health. Safe to
/// stash in server state and poll from a metrics endpoint; outlives the
/// pool itself (counters freeze at their final values).
#[derive(Debug, Clone)]
pub struct PoolMonitor {
    counters: Arc<Counters>,
}

impl PoolMonitor {
    /// Worker threads currently alive.
    pub fn alive(&self) -> usize {
        self.counters.alive.load(Ordering::Acquire)
    }

    /// Items currently being handled (popped from the queue, handler not
    /// yet returned).
    pub fn in_flight(&self) -> usize {
        self.counters.in_flight.load(Ordering::Acquire)
    }

    /// Replacement workers spawned after panics.
    pub fn respawned(&self) -> u64 {
        self.counters.respawned.load(Ordering::Acquire)
    }

    /// Panics caught in handlers.
    pub fn panics(&self) -> u64 {
        self.counters.panics.load(Ordering::Acquire)
    }
}

/// How a worker thread ended, reported to the supervisor.
enum WorkerExit {
    /// The queue closed and drained; no replacement needed.
    Drained,
    /// The handler panicked; the thread self-terminated and index `i`
    /// needs a replacement.
    Panicked(usize),
}

struct SupState {
    exits: Vec<WorkerExit>,
    handles: Vec<JoinHandle<()>>,
}

struct Control {
    state: Mutex<SupState>,
    exited: Condvar,
    counters: Arc<Counters>,
}

/// A [`WorkerPool`](crate::WorkerPool) variant whose workers survive
/// panicking handlers: the panic is caught, reported via `on_panic`, and
/// the thread is replaced by a supervisor so capacity never decays.
pub struct SupervisedPool {
    supervisor: JoinHandle<()>,
    control: Arc<Control>,
    workers: usize,
}

impl SupervisedPool {
    /// Spawns `workers` supervised threads named `{name}-{i}` (respawns
    /// are `{name}-{i}r{generation}`) draining `queue` — any
    /// [`WorkSource`]: a [`BoundedQueue`](crate::BoundedQueue) or a
    /// [`Scheduler`](crate::Scheduler).
    ///
    /// `handler` runs each item by reference under `catch_unwind`. On a
    /// panic, `on_panic(item, payload)` runs on the dying worker thread
    /// with the panic payload rendered to a string — mark the job failed
    /// there; it must not panic itself.
    pub fn spawn<T, Q, F, P>(
        name: &str,
        workers: usize,
        queue: Arc<Q>,
        handler: Arc<F>,
        on_panic: Arc<P>,
    ) -> Self
    where
        T: Send + 'static,
        Q: WorkSource<T> + 'static,
        F: Fn(&T) + Send + Sync + 'static,
        P: Fn(&T, &str) + Send + Sync + 'static,
    {
        let workers = workers.max(1);
        let counters = Arc::new(Counters::default());
        let control = Arc::new(Control {
            state: Mutex::new(SupState {
                exits: Vec::new(),
                handles: Vec::with_capacity(workers),
            }),
            exited: Condvar::new(),
            counters: Arc::clone(&counters),
        });

        {
            let mut st = control.state.lock().expect("supervisor lock");
            for i in 0..workers {
                let h = spawn_worker(
                    format!("{name}-{i}"),
                    i,
                    Arc::clone(&queue),
                    Arc::clone(&handler),
                    Arc::clone(&on_panic),
                    Arc::clone(&control),
                );
                st.handles.push(h);
            }
        }

        let supervisor = {
            let name = name.to_owned();
            let control = Arc::clone(&control);
            std::thread::Builder::new()
                .name(format!("{name}-supervisor"))
                .spawn(move || {
                    let mut drained = 0usize;
                    let mut generation = 0u64;
                    let mut st = control.state.lock().expect("supervisor lock");
                    while drained < workers {
                        while let Some(exit) = st.exits.pop() {
                            match exit {
                                WorkerExit::Drained => drained += 1,
                                WorkerExit::Panicked(i) => {
                                    generation += 1;
                                    control.counters.respawned.fetch_add(1, Ordering::AcqRel);
                                    ucsim_obs::emit(
                                        ucsim_obs::SpanKind::Supervise,
                                        ucsim_obs::now_us(),
                                        0,
                                        i as u32,
                                    );
                                    let h = spawn_worker(
                                        format!("{name}-{i}r{generation}"),
                                        i,
                                        Arc::clone(&queue),
                                        Arc::clone(&handler),
                                        Arc::clone(&on_panic),
                                        Arc::clone(&control),
                                    );
                                    st.handles.push(h);
                                }
                            }
                        }
                        if drained < workers {
                            st = control.exited.wait(st).expect("supervisor lock");
                        }
                    }
                })
                .expect("spawn supervisor thread")
        };

        SupervisedPool {
            supervisor,
            control,
            workers,
        }
    }

    /// The pool's nominal worker count (the supervisor holds it there).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A cloneable health view (alive / in-flight / respawned / panics).
    pub fn monitor(&self) -> PoolMonitor {
        PoolMonitor {
            counters: Arc::clone(&self.control.counters),
        }
    }

    /// Waits for the supervisor and every worker — including respawns —
    /// to finish. Close the queue first, or this blocks forever.
    pub fn join(self) {
        let _ = self.supervisor.join();
        let handles =
            std::mem::take(&mut self.control.state.lock().expect("supervisor lock").handles);
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Spawns one worker thread. Split out so the initial spawn and the
/// supervisor's respawn path are the same code.
fn spawn_worker<T, Q, F, P>(
    thread_name: String,
    index: usize,
    queue: Arc<Q>,
    handler: Arc<F>,
    on_panic: Arc<P>,
    control: Arc<Control>,
) -> JoinHandle<()>
where
    T: Send + 'static,
    Q: WorkSource<T> + 'static,
    F: Fn(&T) + Send + Sync + 'static,
    P: Fn(&T, &str) + Send + Sync + 'static,
{
    control.counters.alive.fetch_add(1, Ordering::AcqRel);
    std::thread::Builder::new()
        .name(thread_name)
        .spawn(move || {
            let exit = loop {
                let Some((item, token)) = queue.pop_with_obs() else {
                    break WorkerExit::Drained;
                };
                // Reports the queue wait and installs the enqueuing
                // request's scope for the handler, so spans emitted
                // below (and inside the handler) carry its id.
                let _scope = token.on_dequeue(index as u32);
                control.counters.in_flight.fetch_add(1, Ordering::AcqRel);
                let span = ucsim_obs::span(ucsim_obs::SpanKind::Execute);
                let result = catch_unwind(AssertUnwindSafe(|| handler(&item)));
                span.finish(u32::from(result.is_err()));
                control.counters.in_flight.fetch_sub(1, Ordering::AcqRel);
                if let Err(payload) = result {
                    control.counters.panics.fetch_add(1, Ordering::AcqRel);
                    ucsim_obs::emit(
                        ucsim_obs::SpanKind::Supervise,
                        ucsim_obs::now_us(),
                        0,
                        index as u32,
                    );
                    on_panic(&item, &payload_to_string(&*payload));
                    break WorkerExit::Panicked(index);
                }
            };
            control.counters.alive.fetch_sub(1, Ordering::AcqRel);
            let mut st = control.state.lock().expect("supervisor lock");
            st.exits.push(exit);
            drop(st);
            control.exited.notify_all();
        })
        .expect("spawn supervised worker")
}

/// Renders a panic payload the way the default hook does: `&str` and
/// `String` payloads verbatim, anything else a placeholder.
fn payload_to_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BoundedQueue, Progress};
    use std::sync::atomic::AtomicU64;

    /// Suppresses the default panic hook's backtrace spam for panics on
    /// threads whose name starts with `prefix`; other panics still print.
    fn quiet_worker_panics(prefix: &'static str) {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let default = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let on_worker = std::thread::current()
                    .name()
                    .is_some_and(|n| n.starts_with(prefix));
                if !on_worker {
                    default(info);
                }
            }));
        });
    }

    #[test]
    fn respawn_accounting_across_injected_panics() {
        quiet_worker_panics("sup-test");
        let queue = Arc::new(BoundedQueue::new(64));
        let progress = Arc::new(Progress::sink());
        let done = Arc::new(AtomicU64::new(0));
        let failed = Arc::new(AtomicU64::new(0));

        let pool = SupervisedPool::spawn(
            "sup-test",
            3,
            Arc::clone(&queue),
            Arc::new({
                let progress = Arc::clone(&progress);
                let done = Arc::clone(&done);
                move |v: &u64| {
                    if *v % 10 == 3 {
                        panic!("poisoned item {v}");
                    }
                    done.fetch_add(1, Ordering::AcqRel);
                    progress.line(&format!("item {v} done"));
                }
            }),
            Arc::new({
                let progress = Arc::clone(&progress);
                let failed = Arc::clone(&failed);
                move |v: &u64, payload: &str| {
                    assert!(payload.contains("poisoned item"), "payload: {payload}");
                    failed.fetch_add(1, Ordering::AcqRel);
                    progress.line(&format!("item {v} failed"));
                }
            }),
        );
        assert_eq!(pool.workers(), 3);
        let monitor = pool.monitor();

        // 100 items, 10 of which (3, 13, …, 93) panic the handler.
        for v in 0..100u64 {
            while queue.try_push(v).is_err() {
                std::thread::yield_now();
            }
        }
        queue.close();
        pool.join();

        // Every item was handled exactly once: panics became failures,
        // nothing was dropped, and the queue fully drained.
        assert_eq!(done.load(Ordering::Acquire), 90);
        assert_eq!(failed.load(Ordering::Acquire), 10);
        assert!(queue.is_empty());

        // Capacity never decayed: one respawn per panic, nothing in
        // flight, and all workers (original or replacement) exited only
        // because the queue drained.
        assert_eq!(monitor.panics(), 10);
        assert_eq!(monitor.respawned(), 10);
        assert_eq!(monitor.in_flight(), 0);
        assert_eq!(monitor.alive(), 0, "post-join: all workers exited");

        // Serialized progress survived the panic storm: one whole line
        // per item, none torn, none duplicated.
        let text = progress.captured();
        let mut seen = std::collections::HashSet::new();
        for line in text.lines() {
            let (item, status) = line
                .strip_prefix("item ")
                .and_then(|r| r.split_once(' '))
                .expect("well-formed line");
            let v: u64 = item.parse().expect("item number");
            assert_eq!(status, if v % 10 == 3 { "failed" } else { "done" });
            assert!(seen.insert(v), "item {v} reported twice");
        }
        assert_eq!(seen.len(), 100);
    }

    #[test]
    fn pool_without_panics_behaves_like_worker_pool() {
        let queue = Arc::new(BoundedQueue::new(16));
        let sum = Arc::new(AtomicU64::new(0));
        let pool = SupervisedPool::spawn(
            "sup-plain",
            2,
            Arc::clone(&queue),
            Arc::new({
                let sum = Arc::clone(&sum);
                move |v: &u64| {
                    sum.fetch_add(*v, Ordering::AcqRel);
                }
            }),
            Arc::new(|_: &u64, _: &str| panic!("no panics expected")),
        );
        let monitor = pool.monitor();
        for v in 1..=20u64 {
            while queue.try_push(v).is_err() {
                std::thread::yield_now();
            }
        }
        queue.close();
        pool.join();
        assert_eq!(sum.load(Ordering::Acquire), 20 * 21 / 2);
        assert_eq!(monitor.panics(), 0);
        assert_eq!(monitor.respawned(), 0);
    }

    #[test]
    fn alive_holds_at_nominal_while_running() {
        quiet_worker_panics("sup-alive");
        let queue = Arc::new(BoundedQueue::new(8));
        let pool = SupervisedPool::spawn(
            "sup-alive",
            2,
            Arc::clone(&queue),
            Arc::new(|v: &u64| {
                if *v == 0 {
                    panic!("boom");
                }
            }),
            Arc::new(|_: &u64, _: &str| {}),
        );
        let monitor = pool.monitor();
        queue.try_push(0u64).unwrap(); // panics one worker
                                       // Wait for the respawn to land, then confirm strength restored.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while monitor.respawned() < 1 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(monitor.respawned(), 1);
        while monitor.alive() < 2 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(monitor.alive(), 2, "replacement restored pool strength");
        queue.close();
        pool.join();
    }
}
